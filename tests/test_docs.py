"""The docs site is tested: links resolve, registries are documented.

Two guarantees, both cheap enough for tier-1:

* every relative markdown link in ``README.md`` and ``docs/`` points at a
  file that exists (and, for ``#fragment`` links, at a heading that exists —
  GitHub-style slugs);
* every backend registered in ``repro.api.BACKENDS``, every algorithm name
  in ``repro.collectives.ALGORITHM_CHOICES`` and every metric declared in
  ``repro.obs.METRIC_NAMES`` is mentioned in its docs page, so extending a
  registry without documenting the new name fails CI.
"""

import re
from pathlib import Path

import pytest

from repro.api import BACKENDS
from repro.collectives import ALGORITHM_CHOICES
from repro.obs import METRIC_NAMES

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

#: ``[text](target)`` — inline markdown links. Images and reference-style
#: links are not used in this repo's docs.
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _strip_code_blocks(text):
    """Drop fenced code blocks so example snippets are not scanned for links."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def _github_slug(heading):
    """GitHub's anchor slug for a heading: lowercase, punctuation dropped."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*]", "", slug)  # inline formatting markers
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _anchors(markdown_path):
    text = markdown_path.read_text(encoding="utf-8")
    return {_github_slug(match) for match in _HEADING.findall(_strip_code_blocks(text))}


def _relative_links(markdown_path):
    text = _strip_code_blocks(markdown_path.read_text(encoding="utf-8"))
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    """Every relative link in the docs points at an existing file + heading."""
    for target in _relative_links(doc):
        path_part, _, fragment = target.partition("#")
        linked = (doc.parent / path_part).resolve() if path_part else doc
        assert linked.exists(), f"{doc.name}: broken link {target!r}"
        if fragment:
            assert linked.suffix == ".md", (
                f"{doc.name}: fragment link into non-markdown {target!r}")
            assert fragment in _anchors(linked), (
                f"{doc.name}: no heading {fragment!r} in {linked.name} "
                f"(have {sorted(_anchors(linked))})")


def test_docs_directory_is_nonempty():
    assert any(path.name != "README.md" for path in DOC_FILES)


def test_every_backend_documented():
    """Each name in the backend registry appears in docs/algorithms.md.

    Test suites may plug in throwaway backends via ``register_backend`` (the
    fuzzer's negative test does); the documentation contract only covers
    backends whose factory ships in the ``repro`` package.
    """
    text = (REPO_ROOT / "docs" / "algorithms.md").read_text(encoding="utf-8")
    shipped = [name for name, factory in BACKENDS.items()
               if getattr(factory, "__module__", "").startswith("repro.")]
    assert shipped, "backend registry is empty?"
    for name in shipped:
        assert f"`{name}`" in text, (
            f"backend {name!r} is registered but not documented in "
            f"docs/algorithms.md")


def test_every_algorithm_documented():
    """Each name the algorithm knob accepts appears in docs/algorithms.md."""
    text = (REPO_ROOT / "docs" / "algorithms.md").read_text(encoding="utf-8")
    for name in ALGORITHM_CHOICES:
        assert f"`{name}`" in text, (
            f"algorithm {name!r} is accepted but not documented in "
            f"docs/algorithms.md")


def test_every_metric_documented():
    """Each declared metric name appears in docs/observability.md."""
    text = (REPO_ROOT / "docs" / "observability.md").read_text(encoding="utf-8")
    assert METRIC_NAMES, "metric registry is empty?"
    for name in METRIC_NAMES:
        assert f"`{name}`" in text, (
            f"metric {name!r} is declared but not documented in "
            f"docs/observability.md")
