"""Critical-path time attribution: causal DAG, buckets, flows, the ledger.

The analysis layer's core contract is **conservation**: for every traced
invocation the attributed buckets (queueing, alpha, beta, memory, overhead,
contention, completion, residual) must telescope back to the measured
submit-to-complete virtual time — the residual is the error term and must
stay ~0 on fault-free runs.  These tests pin that identity on both the DFCCL
and NCCL backends, the cross-rank critical-path walk on a multi-node fabric,
the chrome-trace flow arrows, the windowed link-utilization timelines (with
and without degraded links), the bucket-level calibration feedback, and the
machine-normalized benchmark history ledger.
"""

import json

import pytest

from repro.obs.analysis import (
    BUCKET_NAMES,
    TIER_NAMES,
    analyze_run,
    critical_path_flows,
    render_analysis,
)
from repro.obs.links import link_rows, link_utilization_timeline
from repro.obs.report import demo_run
from repro.obs.trace import chrome_trace_events


@pytest.fixture(scope="module")
def flat_run():
    """An analyzed 8-rank single-node DFCCL all-reduce (two iterations)."""
    cluster, backend = demo_run(ranks=8, analyze=True)
    obs = cluster.engine.obs
    return cluster, backend, obs, analyze_run(obs)


@pytest.fixture(scope="module")
def fat_tree_run():
    """An analyzed 32-rank fat-tree DFCCL all-reduce (cross-node ring)."""
    cluster, backend = demo_run(ranks=32, topology="fat-tree-32",
                                analyze=True)
    obs = cluster.engine.obs
    return cluster, backend, obs, analyze_run(obs)


class TestConservation:
    def test_buckets_sum_to_measured_time(self, flat_run):
        _, _, _, results = flat_run
        assert len(results["invocations"]) == 2
        for invocation in results["invocations"]:
            buckets = invocation["buckets"]
            assert set(buckets) == set(BUCKET_NAMES)
            assert sum(buckets.values()) == pytest.approx(
                invocation["measured_us"], rel=1e-9)
            # The residual *is* the conservation error; fault-free runs
            # decompose exactly (floating-point noise only).
            assert invocation["conservation_error"] < 1e-9

    def test_run_level_decomposition_conserves(self, flat_run):
        _, _, _, results = flat_run
        run = results["run"]
        assert run is not None
        assert sum(run["buckets"].values()) == pytest.approx(
            run["measured_us"], rel=1e-9)
        assert run["conservation_error"] < 1e-9
        # The run spans both invocations, so it measures at least as much
        # time as either one alone.
        assert run["measured_us"] >= max(
            inv["measured_us"] for inv in results["invocations"])

    def test_nccl_backend_conserves_too(self):
        cluster, _ = demo_run(ranks=4, backend="nccl", analyze=True)
        results = analyze_run(cluster.engine.obs)
        assert results["invocations"]
        for invocation in results["invocations"]:
            assert invocation["backend"] == "nccl"
            assert invocation["conservation_error"] < 1e-9

    def test_pipelined_iteration_charges_wait_to_queueing(self, flat_run):
        _, _, _, results = flat_run
        first, second = sorted(results["invocations"],
                               key=lambda inv: str(inv["invocation"]))
        # Iteration two is submitted immediately but must wait for iteration
        # one's data on the shared channels — that wait is queueing, so the
        # pipelined invocation queues strictly longer.
        assert (second["buckets"]["queueing_us"]
                > first["buckets"]["queueing_us"])

    def test_analyze_requires_enable(self):
        cluster, _ = demo_run(ranks=4)
        with pytest.raises(ValueError, match="enable_analysis"):
            analyze_run(cluster.engine.obs)


class TestCriticalPath:
    def test_cross_rank_walk_on_fat_tree(self, fat_tree_run):
        _, _, _, results = fat_tree_run
        for invocation in results["invocations"]:
            path = invocation["critical_path"]
            assert path["nodes"] >= 1
            assert path["cross_rank_edges"] >= 1
            assert path["path_time_us"] <= invocation["measured_us"]
            assert "->" in path["slowest_link"]
            for edge in path["edges"]:
                assert edge["from_track"] != edge["to_track"]
                assert edge["ts_to"] >= edge["ts_from"]

    def test_straggler_names_the_slowest_rank(self, fat_tree_run):
        _, _, _, results = fat_tree_run
        invocation = results["invocations"][0]
        straggler = invocation["straggler"]
        assert straggler["slowest_rank"].startswith("rank")
        assert straggler["completion_z"] >= 0.0
        assert straggler["skew_us"] >= 0.0
        assert (invocation["critical_path"]["slowest_rank"]
                == straggler["slowest_rank"])

    def test_tiers_split_the_wire_time_exactly(self, fat_tree_run):
        _, _, _, results = fat_tree_run
        for invocation in results["invocations"]:
            tiers = invocation["tiers"]
            assert set(tiers) == set(TIER_NAMES)
            wire = (invocation["buckets"]["alpha_us"]
                    + invocation["buckets"]["beta_us"])
            assert sum(tiers.values()) == pytest.approx(wire, rel=1e-9)
            # fat-tree-32 is one pod of four nodes: the ring crosses RDMA
            # links but never the spine.
            assert tiers["intra_pod_us"] > 0.0
            assert tiers["spine_us"] == 0.0

    def test_render_is_human_readable(self, flat_run):
        _, _, _, results = flat_run
        text = render_analysis(results)
        assert "critical path" in text
        assert "conservation error" in text
        for name in BUCKET_NAMES:
            assert name in text


class TestCalibrationFeedback:
    def test_cells_carry_measured_and_predicted_buckets(self, fat_tree_run):
        _, _, obs, _ = fat_tree_run
        rows = obs.calibration_report()
        assert rows
        for row in rows:
            measured = row["measured_buckets"]
            assert set(measured) == set(BUCKET_NAMES)
            predicted = row["predicted_buckets"]
            assert predicted["alpha_us"] >= 0.0
            # The breakdown must sum to the scalar prediction the selector
            # already reported — same model, two granularities.
            assert sum(predicted.values()) == pytest.approx(
                row["predicted_cost_us"], rel=1e-6)
            assert row["mispredicted_bucket"] in BUCKET_NAMES
            assert row["mispredicted_bucket"] != "residual_us"
            assert row["mispredicted_gap_us"] >= 0.0

    def test_measured_wire_matches_prediction_on_fat_tree(self, fat_tree_run):
        _, _, obs, _ = fat_tree_run
        row = obs.calibration_report()[0]
        # The ring's alpha/beta physics are modeled exactly, so the gap must
        # come from queueing (pipelining), not from the wire terms.
        assert row["measured_buckets"]["alpha_us"] == pytest.approx(
            row["predicted_buckets"]["alpha_us"], rel=0.05)
        assert row["measured_buckets"]["beta_us"] == pytest.approx(
            row["predicted_buckets"]["beta_us"], rel=0.05)


class TestFlowArrows:
    def test_flows_render_as_paired_chrome_events(self, fat_tree_run):
        _, _, obs, results = fat_tree_run
        flows = critical_path_flows(results)
        assert flows
        events = chrome_trace_events(obs, flows=flows)
        starts = [event for event in events if event["ph"] == "s"]
        finishes = [event for event in events if event["ph"] == "f"]
        assert len(starts) == len(finishes) == len(flows)
        by_id = {event["id"]: event for event in starts}
        for finish in finishes:
            start = by_id[finish["id"]]
            assert finish["bp"] == "e"
            assert finish["ts"] >= start["ts"]
            assert finish["pid"] == start["pid"]

    def test_trace_valid_without_flows(self, fat_tree_run):
        _, _, obs, _ = fat_tree_run
        events = chrome_trace_events(obs)
        assert not [event for event in events if event["ph"] in ("s", "f")]
        json.dumps(events)  # must stay serializable either way

    def test_unknown_tracks_are_skipped_not_fatal(self, fat_tree_run):
        _, _, obs, _ = fat_tree_run
        bogus = [{"id": 99, "job": "no-such-job", "from_track": "rankX",
                  "to_track": "rankY", "ts_from": 0.0, "ts_to": 1.0}]
        events = chrome_trace_events(obs, flows=bogus)
        assert not [event for event in events if event["ph"] in ("s", "f")]


class TestLinkTimeline:
    def test_windows_bucket_traced_sends(self, fat_tree_run):
        _, _, obs, _ = fat_tree_run
        timeline = link_utilization_timeline(obs)
        assert timeline["links"]
        assert timeline["window_us"] > 0.0
        for link in timeline["links"]:
            assert "->" not in link["src"]  # src/dst split, not joined
            for window in link["windows"]:
                assert window["end_us"] - window["start_us"] == \
                    pytest.approx(timeline["window_us"])
                assert window["bytes"] > 0
                assert window["messages"] >= 1
                assert window["utilization"] == pytest.approx(
                    window["busy_us"] / timeline["window_us"])

    def test_explicit_window_size(self, fat_tree_run):
        _, _, obs, _ = fat_tree_run
        timeline = link_utilization_timeline(obs, window_us=50.0)
        assert timeline["window_us"] == 50.0
        spans = {window["start_us"] % 50.0
                 for link in timeline["links"] for window in link["windows"]}
        assert spans == {0.0}

    def test_empty_without_analysis(self):
        cluster, _ = demo_run(ranks=4)
        timeline = link_utilization_timeline(cluster.engine.obs)
        assert timeline["links"] == []


class TestLinksUnderDegradation:
    def test_busy_follows_the_current_link_spec(self, fat_tree_run):
        cluster, backend, _, _ = fat_tree_run
        communicators = [coll.communicator
                         for coll in backend.dfccl._collectives.values()]
        baseline = {(row["src"], row["dst"]): row
                    for row in link_rows(communicators)}
        src = cluster.device(7).device_id
        dst = cluster.device(8).device_id  # ring edge crossing to node 1
        key = (str(src), str(dst))
        assert key in baseline
        cluster.interconnect.degrade_link(src, dst, beta_factor=10.0,
                                          alpha_add_us=25.0)
        try:
            degraded = {(row["src"], row["dst"]): row
                        for row in link_rows(communicators)}
            # Busy time is derived from the *current* LinkSpec at aggregation
            # time: a degraded link re-prices its recorded traffic, while the
            # traffic counters themselves are immutable history.
            assert degraded[key]["busy_us"] > 2 * baseline[key]["busy_us"]
            assert degraded[key]["bytes"] == baseline[key]["bytes"]
            assert degraded[key]["messages"] == baseline[key]["messages"]
            untouched = (str(cluster.device(15).device_id),
                         str(cluster.device(16).device_id))
            assert degraded[untouched]["busy_us"] == pytest.approx(
                baseline[untouched]["busy_us"])
        finally:
            cluster.interconnect.restore_link(src, dst)

    def test_channels_counted_once_across_views(self, fat_tree_run):
        _, backend, _, _ = fat_tree_run
        communicators = [coll.communicator
                         for coll in backend.dfccl._collectives.values()]
        once = link_rows(communicators)
        twice = link_rows(communicators + communicators)
        assert twice == once


class TestBenchHistory:
    @staticmethod
    def _write_scale(path, calibration, steps_per_sec):
        report = {
            "calibration_ops_per_sec": calibration,
            "points": [{"ranks": 64, "topology": "flat", "algorithm": "ring",
                        "steps_per_sec": steps_per_sec,
                        "virtual_time_us": 1234.5}],
        }
        path.write_text(json.dumps(report))

    def test_append_then_check_clean(self, tmp_path):
        from repro.bench.history import append_snapshot, diff_latest

        scale = tmp_path / "BENCH_scale.json"
        history = tmp_path / "BENCH_history.json"
        self._write_scale(scale, 1e6, 40_000.0)
        append_snapshot(history_path=str(history), scale_path=str(scale),
                        obs_path=str(tmp_path / "missing.json"))
        # A faster machine (2x calibration, 2x raw throughput) normalizes to
        # the *same* efficiency — no regression.
        self._write_scale(scale, 2e6, 80_000.0)
        append_snapshot(history_path=str(history), scale_path=str(scale),
                        obs_path=str(tmp_path / "missing.json"))
        regressions, lines = diff_latest(history_path=str(history))
        assert regressions == []
        assert any("64/flat/ring" in line for line in lines)

    def test_check_flags_normalized_regression(self, tmp_path):
        from repro.bench.history import append_snapshot, diff_latest, main

        scale = tmp_path / "BENCH_scale.json"
        history = tmp_path / "BENCH_history.json"
        self._write_scale(scale, 1e6, 40_000.0)
        append_snapshot(history_path=str(history), scale_path=str(scale),
                        obs_path=str(tmp_path / "missing.json"))
        self._write_scale(scale, 1e6, 30_000.0)  # 25% drop, same machine
        append_snapshot(history_path=str(history), scale_path=str(scale),
                        obs_path=str(tmp_path / "missing.json"))
        regressions, _ = diff_latest(history_path=str(history))
        assert len(regressions) == 1
        assert regressions[0]["change"] == pytest.approx(-0.25)
        assert main(["--check", "--history", str(history)]) == 1
        # A looser threshold lets the same step pass.
        assert main(["--check", "--history", str(history),
                     "--threshold", "0.30"]) == 0

    def test_single_entry_is_not_a_failure(self, tmp_path):
        from repro.bench.history import append_snapshot, main

        scale = tmp_path / "BENCH_scale.json"
        history = tmp_path / "BENCH_history.json"
        self._write_scale(scale, 1e6, 40_000.0)
        append_snapshot(history_path=str(history), scale_path=str(scale),
                        obs_path=str(tmp_path / "missing.json"))
        assert main(["--check", "--history", str(history)]) == 0

    def test_missing_scale_report_raises(self, tmp_path):
        from repro.bench.history import snapshot_from_reports

        with pytest.raises(ValueError, match="no scale report"):
            snapshot_from_reports(
                scale_path=str(tmp_path / "nope.json"),
                obs_path=str(tmp_path / "nope2.json"))


class TestBenchAttribution:
    def test_scale_point_row_carries_conserving_attribution(self):
        from repro.bench.scale_experiments import run_scale_point

        row = run_scale_point(8, topology="flat", algorithm="ring",
                              analyze=True)
        attribution = row["attribution"]
        run = attribution["run"]
        assert sum(run["buckets"].values()) == pytest.approx(
            run["measured_us"], rel=1e-9)
        assert attribution["worst_invocation_conservation_error"] <= 0.01
        assert run["critical_path"]["slowest_rank"]
        for invocation in attribution["invocations"]:
            assert sum(invocation["buckets"].values()) == pytest.approx(
                invocation["measured_us"], rel=1e-9)
