"""Chrome-trace export of engine events (``chrome://tracing`` JSON)."""

import json

from repro.core import DfcclBackend, chrome_trace_events, write_chrome_trace
from repro.gpusim import HostProgram, build_cluster


def _traced_run():
    """A tiny DFCCL run with engine tracing on; returns the trace list."""
    trace = []
    cluster = build_cluster("single-3090")
    cluster.engine.trace = trace
    backend = DfcclBackend(cluster)
    ranks = [0, 1]
    backend.init_all_ranks(ranks)
    backend.register_all_reduce(0, count=1024, ranks=ranks)
    programs = []
    for rank in ranks:
        handle = backend.submit(rank, 0)
        programs.append(HostProgram(handle.ops() + [backend.destroy_op(rank)]))
    cluster.add_hosts(programs)
    cluster.run()
    return trace


class TestChromeTraceExport:
    def test_events_have_trace_viewer_fields(self):
        trace = _traced_run()
        assert trace, "engine tracing must record events"
        events = chrome_trace_events(trace)
        metadata = [event for event in events if event["ph"] == "M"]
        spans = [event for event in events if event["ph"] == "X"]
        assert any(event["name"] == "process_name" for event in metadata)
        thread_names = {event["args"]["name"] for event in metadata
                        if event["name"] == "thread_name"}
        # One thread row per engine actor: hosts, GPUs, daemon kernels.
        assert any(name.startswith("host-") for name in thread_names)
        assert any(name.startswith("dfccl-daemon") for name in thread_names)
        assert spans
        for event in spans:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["tid"], int)

    def test_spans_are_monotonic_per_thread(self):
        events = chrome_trace_events(_traced_run())
        by_tid = {}
        for event in events:
            if event["ph"] == "X":
                by_tid.setdefault(event["tid"], []).append(event)
        for spans in by_tid.values():
            ends = [span["ts"] + span["dur"] for span in spans]
            assert ends == sorted(ends)

    def test_write_chrome_trace_file_is_loadable(self, tmp_path):
        trace = _traced_run()
        path = tmp_path / "engine-trace.json"
        count = write_chrome_trace(trace, path)
        assert count > 0
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == count

    def test_write_accepts_open_file(self, tmp_path):
        trace = _traced_run()
        path = tmp_path / "engine-trace.json"
        with open(path, "w", encoding="utf-8") as handle:
            write_chrome_trace(trace, handle)
        assert json.loads(path.read_text())["traceEvents"]

    def test_multijob_trace_shows_both_tenants(self, tmp_path):
        from repro.bench import run_multijob

        trace = []
        result = run_multijob(backend="dfccl", seed=3, num_jobs=2,
                              trace=trace, deadline_us=4_000_000)
        assert result["summary"]["completed"] >= 1
        events = chrome_trace_events(trace)
        thread_names = {event["args"]["name"] for event in events
                        if event.get("name") == "thread_name"}
        tenants = {name.split("-rank")[0] for name in thread_names
                   if name.startswith("job-")}
        assert len(tenants) >= 2  # both jobs' rank processes appear
