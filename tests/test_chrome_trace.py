"""Chrome-trace export of engine events (``chrome://tracing`` JSON).

The exporter under test is the observability-based one
(:mod:`repro.obs.trace`), which reads the always-on flight recorder.  The
legacy list-of-tuples exporter (``repro.core.profiler``) and the
``Engine(trace=[...])`` kwarg were removed after their deprecation cycle.
"""

import json

from repro.core import DfcclBackend
from repro.gpusim import HostProgram, build_cluster
from repro.obs import chrome_trace_events, write_chrome_trace


def _traced_cluster():
    """A tiny DFCCL run; returns the cluster (flight recorder is always on)."""
    cluster = build_cluster("single-3090")
    backend = DfcclBackend(cluster)
    ranks = [0, 1]
    backend.init_all_ranks(ranks)
    backend.register_all_reduce(0, count=1024, ranks=ranks)
    programs = []
    for rank in ranks:
        handle = backend.submit(rank, 0)
        programs.append(HostProgram(handle.ops() + [backend.destroy_op(rank)]))
    cluster.add_hosts(programs)
    cluster.run()
    return cluster


class TestChromeTraceExport:
    def test_events_have_trace_viewer_fields(self):
        cluster = _traced_cluster()
        assert cluster.engine.obs.recorder.ring, \
            "the flight recorder must capture step events always-on"
        events = chrome_trace_events(cluster.engine.obs)
        metadata = [event for event in events if event["ph"] == "M"]
        spans = [event for event in events if event["ph"] == "X"]
        assert any(event["name"] == "process_name" for event in metadata)
        thread_names = {event["args"]["name"] for event in metadata
                        if event["name"] == "thread_name"}
        # One thread row per engine actor: hosts, GPUs, daemon kernels.
        assert any(name.startswith("host-") for name in thread_names)
        assert any(name.startswith("dfccl-daemon") for name in thread_names)
        assert spans
        for event in spans:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["tid"], int)

    def test_collective_span_tracks_present(self):
        cluster = _traced_cluster()
        events = chrome_trace_events(cluster.engine.obs)
        collective_spans = [event for event in events
                            if event["ph"] == "X"
                            and event.get("cat") == "collective"]
        # One span per rank of the single all-reduce, on a pid > 0 process.
        assert len(collective_spans) == 2
        assert all(event["pid"] >= 1 for event in collective_spans)
        counters = [event for event in events if event["ph"] == "C"]
        assert counters, "in-flight collective counter track expected"
        assert max(event["args"]["collectives"] for event in counters) >= 1

    def test_engine_step_slices_are_monotonic_per_thread(self):
        events = chrome_trace_events(_traced_cluster().engine.obs)
        by_tid = {}
        for event in events:
            if event["ph"] == "X" and event["pid"] == 0:
                by_tid.setdefault(event["tid"], []).append(event)
        for spans in by_tid.values():
            ends = [span["ts"] + span["dur"] for span in spans]
            assert ends == sorted(ends)

    def test_write_chrome_trace_file_is_loadable(self, tmp_path):
        cluster = _traced_cluster()
        path = tmp_path / "engine-trace.json"
        count = write_chrome_trace(cluster.engine.obs, path)
        assert count > 0
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == count

    def test_write_accepts_open_file(self, tmp_path):
        cluster = _traced_cluster()
        path = tmp_path / "engine-trace.json"
        with open(path, "w", encoding="utf-8") as handle:
            write_chrome_trace(cluster.engine.obs, handle)
        assert json.loads(path.read_text())["traceEvents"]

    def test_multijob_trace_shows_both_tenants(self):
        from repro.bench import run_multijob

        result = run_multijob(backend="dfccl", seed=3, num_jobs=2,
                              deadline_us=4_000_000)
        assert result["summary"]["completed"] >= 1
        events = chrome_trace_events(result["obs"])
        job_processes = {event["args"]["name"] for event in events
                         if event.get("name") == "process_name"
                         and event["args"]["name"].startswith("job:")}
        assert len(job_processes) >= 2  # one span process per tenant


class TestLegacyProfilerRemoved:
    def test_legacy_exporter_is_gone(self):
        from repro.core import profiler

        assert not hasattr(profiler, "chrome_trace_events")
        assert not hasattr(profiler, "write_chrome_trace")

    def test_engine_trace_kwarg_is_gone(self):
        import inspect

        from repro.gpusim.engine import Engine

        assert "trace" not in inspect.signature(Engine.__init__).parameters
