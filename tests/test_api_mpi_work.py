"""Coverage for ``api.mpi_adapter`` error paths and ``Work`` wait semantics.

The MPI backend is the only host-staged execution platform behind
``repro.api``; its rendezvous error modes (missing participants, deadline
expiry mid-rendezvous) and the partial-completion semantics of
``Work`` / ``wait_all`` were previously untested.
"""

import pytest

from repro.api import Work, make_backend, wait_all
from repro.api.mpi_adapter import MpiCollectiveBackend
from repro.common.errors import ConfigurationError, DeadlockError
from repro.gpusim import HostProgram, build_cluster
from repro.gpusim.host import CpuCompute


def _run_all(backend, group, works_by_rank, until_us=None, extra_ops=None):
    cluster = backend.cluster
    for rank, works in works_by_rank.items():
        ops = list((extra_ops or {}).get(rank, []))
        ops.extend(work.submit_op() for work in works)
        ops.extend(wait_all(works))
        cluster.add_host(rank, HostProgram(ops), name=f"h{rank}")
    return cluster.run(until_us=until_us)


class TestMpiErrorPaths:
    def test_non_member_rank_rejected(self):
        cluster = build_cluster("single-3090")
        mpi = make_backend("mpi", cluster)
        group = mpi.new_group([0, 1, 2])
        with pytest.raises(ConfigurationError):
            group.all_reduce(5, count=16)

    def test_missing_participant_deadlocks(self):
        """A rank that never submits leaves the rendezvous waiting forever."""
        cluster = build_cluster("single-3090")  # deadlock_mode="raise"
        mpi = make_backend("mpi", cluster)
        group = mpi.new_group([0, 1])
        work0 = group.all_reduce(0, count=1 << 10, key="lonely")
        # Rank 1 never calls: rank 0's wait op can never be signalled.
        cluster.add_host(0, HostProgram(work0.ops()), name="h0")
        with pytest.raises(DeadlockError):
            cluster.run()
        assert not work0.done
        assert work0.completion_info() is None

    def test_duplicate_group_ranks_rejected(self):
        cluster = build_cluster("single-3090")
        mpi = make_backend("mpi", cluster)
        with pytest.raises(ConfigurationError):
            mpi.new_group([0, 0, 1])

    def test_unknown_backend_name(self):
        cluster = build_cluster("single-3090")
        with pytest.raises(ConfigurationError):
            make_backend("definitely-not-a-backend", cluster)

    def test_knob_uniformity_ignores_gpu_knobs(self):
        cluster = build_cluster("single-3090")
        mpi = make_backend("mpi", cluster, chunk_bytes=1 << 20,
                           algorithm="tree", config=object())
        assert isinstance(mpi, MpiCollectiveBackend)

    def test_alpha_beta_knobs_change_timing(self):
        def run(beta_gbps):
            cluster = build_cluster("single-3090")
            mpi = make_backend("mpi", cluster, alpha_us=5.0, beta_gbps=beta_gbps)
            group = mpi.new_group([0, 1])
            works = {rank: [group.all_reduce(rank, count=1 << 18)]
                     for rank in (0, 1)}
            _run_all(mpi, group, works)
            return works[0][0].completion_info().time_us

        assert run(beta_gbps=0.5) > run(beta_gbps=8.0)


class TestPartialCompletion:
    def test_deadline_leaves_later_work_incomplete(self):
        """A virtual-time deadline mid-program: early works done, late not."""
        cluster = build_cluster("single-3090")
        mpi = make_backend("mpi", cluster)
        group = mpi.new_group([0, 1])
        works = {rank: [group.all_reduce(rank, count=1 << 8, key="fast"),
                        group.all_reduce(rank, count=1 << 8, key="slow")]
                 for rank in (0, 1)}
        # Rank 1 burns 10ms of CPU before submitting the second collective;
        # the run deadline expires during that gap.
        for rank in (0, 1):
            fast, slow = works[rank]
            ops = [fast.submit_op(), fast.wait_op()]
            if rank == 1:
                ops.append(CpuCompute(10_000.0, label="straggling"))
            ops.extend([slow.submit_op(), slow.wait_op()])
            cluster.add_host(rank, HostProgram(ops), name=f"h{rank}")
        cluster.run(until_us=2_000.0)

        for rank in (0, 1):
            fast, slow = works[rank]
            assert fast.done
            assert fast.completion_info().member_ranks == (0, 1)
            assert not slow.done
            assert slow.completion_info() is None
            assert slow.finished_at_us is None
        assert works[0][0].finished_at_us == works[0][0].completion_info().time_us

    def test_wait_all_preserves_submission_order(self):
        cluster = build_cluster("single-3090")
        mpi = make_backend("mpi", cluster)
        group = mpi.new_group([0, 1])
        works = [group.all_reduce(0, count=1 << 10, key=i) for i in range(3)]
        ops = wait_all(works)
        assert len(ops) == 3
        assert [op.work for op in ops] == works

    def test_callback_fires_once_per_rank(self):
        cluster = build_cluster("single-3090")
        mpi = make_backend("mpi", cluster)
        group = mpi.new_group([0, 1])
        fired = []
        works = {rank: [group.all_reduce(rank, count=1 << 10,
                                         callback=lambda w: fired.append(w.rank))]
                 for rank in (0, 1)}
        _run_all(mpi, group, works)
        assert sorted(fired) == [0, 1]
        # mark_complete is idempotent: a second call must not re-fire.
        works[0][0].mark_complete(works[0][0].completion_info().time_us)
        assert sorted(fired) == [0, 1]

    def test_started_at_reflects_submission(self):
        cluster = build_cluster("single-3090")
        mpi = make_backend("mpi", cluster)
        group = mpi.new_group([0, 1])
        works = {rank: [group.all_reduce(rank, count=1 << 10)]
                 for rank in (0, 1)}
        for rank in (0, 1):
            assert works[rank][0].started_at_us is None
        _run_all(mpi, group, works)
        for rank in (0, 1):
            work = works[rank][0]
            assert work.started_at_us is not None
            assert work.finished_at_us >= work.started_at_us

    def test_perf_report(self):
        cluster = build_cluster("single-3090")
        mpi = make_backend("mpi", cluster)
        group = mpi.new_group([0, 1, 2, 3])
        works = {rank: [group.all_reduce(rank, count=1 << 16, key=i)
                        for i in range(2)]
                 for rank in group.ranks}
        _run_all(mpi, group, works)
        report = mpi.perf_report(group, works)
        assert report["algorithm"] == "host-staged-ring"
        assert report["latency_us"] > 0
        assert report["core_time_us"] > 0
        assert report["preemptions"] == 0


class TestWorkBaseClass:
    def test_abstract_surface(self):
        work = Work(group=None, rank=0, key="k", index=0)
        with pytest.raises(NotImplementedError):
            work.submit_op()
        with pytest.raises(NotImplementedError):
            work.wait_op()
        with pytest.raises(NotImplementedError):
            work.done  # noqa: B018 - property access raises
        with pytest.raises(NotImplementedError):
            work.completion_info()
        assert work.primitive_sequence() is None
        assert work.started_at_us is None
