"""Tests for the adaptive stickiness scheduling policies and the profiler."""

import pytest

from repro.core import DfcclConfig
from repro.core.profiler import AutoProfiler
from repro.core.scheduling import (
    AdaptiveSpinPolicy,
    DaemonStats,
    FifoOrderingPolicy,
    NaiveSpinPolicy,
    PriorityOrderingPolicy,
    TaskEntry,
    TaskQueue,
    make_ordering_policy,
    make_spin_policy,
)


class _FakeInvocation:
    def __init__(self, coll_id):
        self.coll_id = coll_id
        self.invocation_id = coll_id


def make_entry(coll_id, priority=0, arrival=0):
    return TaskEntry(invocation=_FakeInvocation(coll_id), group_rank=0, executor=None,
                     priority=priority, arrival_index=arrival)


class TestTaskQueue:
    def test_append_remove(self):
        queue = TaskQueue()
        entry = make_entry(1)
        queue.append(entry)
        assert len(queue) == 1
        queue.remove(entry)
        assert len(queue) == 0

    def test_priority_sort_is_stable(self):
        queue = TaskQueue()
        queue.append(make_entry(1, priority=0, arrival=0))
        queue.append(make_entry(2, priority=5, arrival=1))
        queue.append(make_entry(3, priority=5, arrival=2))
        queue.sort_by_priority()
        assert [entry.coll_id for entry in queue] == [2, 3, 1]

    def test_length_samples(self):
        queue = TaskQueue()
        queue.append(make_entry(1))
        queue.record_length(1)
        assert queue.length_samples == [(1, 1)]


class TestOrderingPolicies:
    def test_fifo_fetches_when_empty_or_stuck(self):
        policy = FifoOrderingPolicy()
        assert policy.should_fetch(queue_empty=True, pass_made_progress=True,
                                   at_pass_start=True)
        assert policy.should_fetch(queue_empty=False, pass_made_progress=False,
                                   at_pass_start=True)
        assert not policy.should_fetch(queue_empty=False, pass_made_progress=True,
                                       at_pass_start=True)

    def test_priority_fetches_every_pass(self):
        policy = PriorityOrderingPolicy()
        assert policy.should_fetch(queue_empty=False, pass_made_progress=True,
                                   at_pass_start=True)

    def test_factory(self):
        assert isinstance(make_ordering_policy(DfcclConfig()), FifoOrderingPolicy)
        assert isinstance(make_ordering_policy(DfcclConfig(ordering="priority")),
                          PriorityOrderingPolicy)


class TestSpinPolicies:
    def test_adaptive_front_gets_largest_threshold(self):
        policy = AdaptiveSpinPolicy(initial=10_000, position_decay=0.5, minimum=100)
        queue = TaskQueue()
        for coll_id in range(4):
            queue.append(make_entry(coll_id))
        policy.assign_initial(queue)
        thresholds = [entry.spin_threshold for entry in queue]
        assert thresholds == sorted(thresholds, reverse=True)
        assert thresholds[0] == 10_000

    def test_adaptive_minimum_floor(self):
        policy = AdaptiveSpinPolicy(initial=1_000, position_decay=0.1, minimum=500)
        assert policy.initial_for_position(5) == 500

    def test_adaptive_boost_after_success(self):
        policy = AdaptiveSpinPolicy(initial=1_000, boost=20.0)
        entry = make_entry(0)
        entry.reset_spin(1_000)
        policy.on_success(entry)
        assert entry.spin_threshold == 20_000
        assert entry.spin_remaining == 20_000

    def test_naive_policy_fixed_threshold(self):
        policy = NaiveSpinPolicy(threshold=10_000)
        queue = TaskQueue()
        for coll_id in range(3):
            queue.append(make_entry(coll_id))
        policy.assign_initial(queue)
        assert {entry.spin_threshold for entry in queue} == {10_000}

    def test_factory(self):
        assert isinstance(make_spin_policy(DfcclConfig()), AdaptiveSpinPolicy)
        assert isinstance(make_spin_policy(DfcclConfig(spin_policy="naive")),
                          NaiveSpinPolicy)

    def test_entry_spin_quantum_resets(self):
        entry = make_entry(0)
        entry.spin_quantum = 8_000
        entry.reset_spin(1_000)
        assert entry.spin_quantum == 500


class TestDaemonStats:
    def test_mean_costs(self):
        stats = DaemonStats()
        assert stats.mean_cqe_write_time_us() == 0.0
        stats.cqes_written = 2
        stats.cqe_write_time_us = 4.0
        assert stats.mean_cqe_write_time_us() == 2.0
        stats.sqes_read = 4
        stats.sqe_read_time_us = 21.2
        assert stats.mean_sqe_read_time_us() == pytest.approx(5.3)


class TestAutoProfiler:
    def test_recommends_positive_threshold(self):
        profiler = AutoProfiler(DfcclConfig())
        result = profiler.calibrate()
        assert result.initial_spin_threshold >= profiler.MIN_THRESHOLD
        assert result.quit_period_us >= 200.0

    def test_tuned_config_applies_recommendation(self):
        config = DfcclConfig()
        tuned = AutoProfiler(config).tuned_config()
        assert tuned.initial_spin_threshold == AutoProfiler(config).calibrate().initial_spin_threshold

    def test_overhead_model_is_convex_in_threshold(self):
        """Expression (2): T ~ N + 1/N has a minimum away from the extremes."""
        values = {n: AutoProfiler.overhead_model(n, scale=100.0) for n in (1, 100, 10_000)}
        assert values[100] < values[1]
        assert values[100] < values[10_000]
