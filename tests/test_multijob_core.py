"""Multi-tenant scheduler: specs, arrivals, runtime mapping, end-to-end runs."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.communicator_pool import CommunicatorPool
from repro.gpusim import SmInterferenceModel, build_cluster
from repro.multijob import (
    JobSpec,
    JobState,
    RankMappedPlan,
    generate_jobs,
    install_scheduler,
    make_job_runner,
)
from repro.multijob.arrivals import estimate_standalone_us, zipf_weights
from repro.workloads.parallelism import CollectiveItem


class TestJobSpec:
    def test_world_size_and_samples(self):
        spec = JobSpec(job_id="a", tp=2, dp=2, pp=2, iterations=3,
                       microbatch_size=16, num_microbatches=2)
        assert spec.world_size == 8
        assert spec.total_samples == 16 * 2 * 2 * 3

    def test_validation_rejects_bad_specs(self):
        with pytest.raises(ConfigurationError):
            JobSpec(job_id="", dp=2).validate()
        with pytest.raises(ConfigurationError):
            JobSpec(job_id="a", model="alexnet").validate()
        with pytest.raises(ConfigurationError):
            JobSpec(job_id="a", dp=0).validate()
        with pytest.raises(ConfigurationError):
            JobSpec(job_id="a", iterations=1, warmup=1).validate()
        with pytest.raises(ConfigurationError):
            JobSpec(job_id="a", arrival_time_us=-1.0).validate()

    def test_build_plan_is_job_local(self):
        plan = JobSpec(job_id="a", dp=4).build_plan()
        assert plan.base_rank == 0
        assert plan.world_size == 4

    def test_describe_schema(self):
        record = JobSpec(job_id="a", dp=2, priority=1).describe()
        for field in ("job_id", "model", "world_size", "priority",
                      "arrival_time_us", "slo_us"):
            assert field in record


class TestArrivals:
    def test_same_seed_same_stream(self):
        first = generate_jobs(42, num_jobs=8)
        second = generate_jobs(42, num_jobs=8)
        assert [spec.describe() for spec in first] == \
            [spec.describe() for spec in second]

    def test_different_seed_differs(self):
        first = generate_jobs(42, num_jobs=8)
        second = generate_jobs(43, num_jobs=8)
        assert [spec.describe() for spec in first] != \
            [spec.describe() for spec in second]

    def test_zipf_weights_decrease(self):
        weights = zipf_weights(4, exponent=1.2)
        assert weights == sorted(weights, reverse=True)

    def test_zipf_demand_skews_small(self):
        specs = generate_jobs(7, num_jobs=60, size_classes=(2, 4, 8))
        counts = {}
        for spec in specs:
            counts[spec.world_size] = counts.get(spec.world_size, 0) + 1
        assert counts.get(2, 0) > counts.get(8, 0)

    def test_arrivals_are_open_loop_and_monotonic(self):
        specs = generate_jobs(7, num_jobs=10)
        arrivals = [spec.arrival_time_us for spec in specs]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0
        assert arrivals[-1] > 0.0

    def test_slo_derived_from_standalone_estimate(self):
        specs = generate_jobs(7, num_jobs=4, slo_stretch=6.0)
        for spec in specs:
            assert spec.slo_us == pytest.approx(
                6.0 * estimate_standalone_us(spec)
            )


class TestRankMappedPlan:
    def test_translates_group_ranks_onto_lease(self):
        plan = JobSpec(job_id="a", dp=4).build_plan()
        mapped = RankMappedPlan(plan, [5, 2, 9, 11])
        assert mapped.ranks() == [5, 2, 9, 11]
        schedule = mapped.iteration_schedule(9)
        collectives = [item for item in schedule
                       if isinstance(item, CollectiveItem)]
        assert collectives, "dp=4 schedule must contain all-reduces"
        for item in collectives:
            assert set(item.group_ranks) <= {5, 2, 9, 11}

    def test_rejects_wrong_lease_size_and_duplicates(self):
        plan = JobSpec(job_id="a", dp=4).build_plan()
        with pytest.raises(ConfigurationError):
            RankMappedPlan(plan, [0, 1, 2])
        with pytest.raises(ConfigurationError):
            RankMappedPlan(plan, [0, 1, 2, 2])

    def test_unique_collectives_are_mapped(self):
        plan = JobSpec(job_id="a", dp=2).build_plan()
        mapped = RankMappedPlan(plan, [6, 3])
        for item in mapped.unique_collectives().values():
            assert set(item.group_ranks) <= {6, 3}


class TestCommunicatorPoolNamespacing:
    def _pool(self):
        cluster = build_cluster("single-3090")
        return cluster, CommunicatorPool(cluster.interconnect)

    def test_jobs_never_share_pooled_communicators(self):
        cluster, pool = self._pool()
        devices = [cluster.device(0), cluster.device(1)]
        comm = pool.acquire(devices, job="job-a")
        pool.release(comm)
        other = pool.acquire(devices, job="job-b")
        assert other is not comm
        again = pool.acquire(devices, job="job-a")
        assert again is comm

    def test_stats_hits_misses_active(self):
        cluster, pool = self._pool()
        devices = [cluster.device(0), cluster.device(1)]
        comm = pool.acquire(devices, job="job-a")
        stats = pool.stats()
        assert stats["misses"] == 1 and stats["hits"] == 0
        assert stats["active"] == 1
        pool.release(comm)
        assert pool.stats()["active"] == 0
        pool.acquire(devices, job="job-a")
        stats = pool.stats()
        assert stats["hits"] == 1 and stats["active"] == 1

    def test_double_release_is_rejected_and_counted(self):
        cluster, pool = self._pool()
        devices = [cluster.device(0), cluster.device(1)]
        comm = pool.acquire(devices)
        assert pool.release(comm) is True
        assert pool.release(comm) is False
        stats = pool.stats()
        assert stats["double_releases"] == 1
        assert stats["free"] == 1
        # The guarded double release must not duplicate the pool entry.
        assert pool.acquire(devices) is comm
        assert pool.acquire(devices) is not comm

    def test_rerelease_of_discarded_communicator_is_counted(self):
        # A collective that shrinks to zero survivors keeps its invalidated
        # communicator; job teardown then releases it a second time.  The
        # guard must flag it instead of corrupting active/discarded counts.
        cluster, pool = self._pool()
        devices = [cluster.device(0), cluster.device(1)]
        comm = pool.acquire(devices, job="job-a")
        comm.invalidate()
        assert pool.release(comm) is False      # discarded
        stats = pool.stats()
        assert stats["discarded"] == 1 and stats["active"] == 0
        assert pool.release(comm) is False      # re-release of discarded
        stats = pool.stats()
        assert stats["double_releases"] == 1
        assert stats["discarded"] == 1          # not double-counted
        assert stats["active"] == 0             # not double-decremented

    def test_release_all_for_spans_all_jobs(self):
        cluster, pool = self._pool()
        devices = [cluster.device(0), cluster.device(1)]
        for job in ("job-a", "job-b"):
            pool.release(pool.acquire(devices, job=job))
        assert pool.stats()["free"] == 2
        dropped = pool.release_all_for([cluster.device(1)])
        assert dropped == 2
        assert pool.stats()["free"] == 0


def _shared_cluster(max_resident_blocks=8):
    return build_cluster("dual-3090", deadlock_mode="record",
                         max_resident_blocks=max_resident_blocks,
                         interference=SmInterferenceModel())


def _small_spec(job_id, arrival=0.0, model="resnet50", dp=2, priority=0,
                iterations=2):
    return JobSpec(job_id=job_id, model=model, dp=dp, iterations=iterations,
                   grad_buckets=2, priority=priority, arrival_time_us=arrival)


class TestSchedulerLifecycle:
    def test_rejects_oversized_and_duplicate_jobs(self):
        cluster = _shared_cluster()
        runner = make_job_runner("dfccl", cluster, seed=1)
        scheduler = install_scheduler(cluster, runner, [], policy="packed")
        with pytest.raises(ConfigurationError):
            scheduler.submit(JobSpec(job_id="big", dp=32))
        scheduler.submit(_small_spec("a"))
        with pytest.raises(ConfigurationError):
            scheduler.submit(_small_spec("a"))

    def test_queueing_when_capacity_exhausted(self):
        # A 4-GPU cluster with one tenant per GPU: the second job must queue
        # until the first finishes, and its queueing delay must be positive.
        cluster = build_cluster("single-3090", deadlock_mode="record",
                                max_resident_blocks=8)
        runner = make_job_runner("dfccl", cluster, seed=3, launch_jitter_us=0.0)
        specs = [
            JobSpec(job_id="first", dp=8, iterations=2, grad_buckets=2),
            JobSpec(job_id="second", dp=8, iterations=2, grad_buckets=2,
                    arrival_time_us=10.0),
        ]
        scheduler = install_scheduler(cluster, runner, specs,
                                      policy="packed", tenants_per_gpu=1)
        total = cluster.run(until_us=8_000_000)
        records = {record.job_id: record
                   for record in scheduler.finalize(total)}
        assert records["first"].state is JobState.COMPLETED
        assert records["second"].state is JobState.COMPLETED
        assert records["second"].queueing_delay_us > 0
        assert records["second"].start_time_us >= records["first"].finish_time_us

    def test_priority_order_served_first(self):
        cluster = build_cluster("single-3090", deadlock_mode="record",
                                max_resident_blocks=8)
        runner = make_job_runner("dfccl", cluster, seed=3, launch_jitter_us=0.0)
        specs = [
            JobSpec(job_id="running", dp=8, iterations=2, grad_buckets=2),
            # Both queued at t=10; the high-priority one must start first.
            JobSpec(job_id="low", dp=8, iterations=2, grad_buckets=2,
                    priority=0, arrival_time_us=10.0),
            JobSpec(job_id="high", dp=8, iterations=2, grad_buckets=2,
                    priority=5, arrival_time_us=10.0),
        ]
        scheduler = install_scheduler(cluster, runner, specs,
                                      policy="packed", tenants_per_gpu=1)
        total = cluster.run(until_us=20_000_000)
        records = {record.job_id: record
                   for record in scheduler.finalize(total)}
        assert all(record.state is JobState.COMPLETED
                   for record in records.values())
        assert records["high"].start_time_us < records["low"].start_time_us

    def test_metrics_rows_have_expected_fields(self):
        cluster = _shared_cluster()
        runner = make_job_runner("dfccl", cluster, seed=5)
        scheduler = install_scheduler(cluster, runner,
                                      [_small_spec("a"), _small_spec("b", 200.0)])
        total = cluster.run(until_us=8_000_000)
        scheduler.finalize(total)
        for row in scheduler.job_rows():
            for field in ("job", "state", "jct_us", "queueing_delay_us",
                          "goodput_samples_per_s", "leased_ranks"):
                assert field in row
        summary = scheduler.summary(total)
        assert summary["jobs"] == 2
        assert summary["completed"] == 2
        assert summary["stuck_ratio"] == 0.0
        assert summary["never_placed"] == 0
        assert summary["aggregate_goodput_samples_per_s"] > 0


class TestConcurrentJobsEndToEnd:
    def test_colocated_dfccl_jobs_complete_with_namespaced_pool(self):
        cluster = _shared_cluster()
        runner = make_job_runner("dfccl", cluster, seed=7)
        specs = [_small_spec("ten-a"), _small_spec("ten-b", arrival=100.0)]
        scheduler = install_scheduler(cluster, runner, specs,
                                      policy="packed", tenants_per_gpu=2)
        total = cluster.run(until_us=8_000_000)
        records = scheduler.finalize(total)
        assert all(record.state is JobState.COMPLETED for record in records)
        # Packed placement co-locates both jobs on the same GPUs.
        leases = [set(record.lease.ranks) for record in records]
        assert leases[0] & leases[1]
        # The shared pool holds entries for both job namespaces, none shared.
        jobs = runner.dfccl.pool.jobs()
        assert set(jobs) <= {"ten-a", "ten-b"}
        stats = runner.dfccl.pool.stats()
        assert stats["double_releases"] == 0

    def test_one_daemon_kernel_per_gpu_serves_both_jobs(self):
        cluster = _shared_cluster()
        runner = make_job_runner("dfccl", cluster, seed=7)
        specs = [_small_spec("ten-a"), _small_spec("ten-b")]
        scheduler = install_scheduler(cluster, runner, specs,
                                      policy="packed", tenants_per_gpu=2)

        # Snapshot mid-run evidence from a completion callback: while ten-b
        # is still running, the co-located rank contexts hold collectives of
        # BOTH namespaces (the rank context is keyed by GPU, not by job).
        observed = set()

        original = scheduler.on_rank_done

        def spying_on_rank_done(job_id, rank, time_us):
            ctx = runner.dfccl.contexts.get(rank)
            if ctx is not None:
                observed.update(coll_id[0] for coll_id in ctx.registered)
            original(job_id, rank, time_us)

        scheduler.on_rank_done = spying_on_rank_done
        cluster.run(until_us=8_000_000)
        scheduler.finalize(cluster.engine.now)
        assert observed == {"ten-a", "ten-b"}
        # Teardown unregistered everything and evicted each departed
        # tenant's pool namespace, so the shared backend stays bounded.
        assert all(len(ctx.registered) == 0
                   for ctx in runner.dfccl.contexts.values())
        assert runner.dfccl.pool.jobs() == []
        stats = runner.dfccl.pool.stats()
        assert stats["active"] == 0 and stats["free"] == 0
        assert stats["discarded"] > 0

    def test_cross_job_sm_contention_deadlocks_nccl_baseline(self):
        # Tight SM capacity: a full-GPU collective kernel fills the device.
        # Two co-located data-parallel jobs with per-iteration launch skew
        # interleave their dedicated kernels differently on different GPUs
        # and wedge in a cross-job hold-and-wait cycle.
        cluster = _shared_cluster(max_resident_blocks=4)
        runner = make_job_runner("nccl", cluster, seed=7,
                                 launch_jitter_us=300.0)
        specs = [
            _small_spec("ten-a", dp=4, iterations=3),
            _small_spec("ten-b", dp=4, iterations=3, arrival=40.0),
        ]
        scheduler = install_scheduler(cluster, runner, specs,
                                      policy="packed", tenants_per_gpu=2)
        total = cluster.run(until_us=8_000_000)
        scheduler.finalize(total)
        assert cluster.engine.deadlock_report is not None
        summary = scheduler.summary(total)
        assert summary["unfinished"] >= 1
        assert sum(device.cross_tenant_block_waits
                   for device in cluster.devices) > 0

    def test_same_scenario_completes_under_dfccl(self):
        cluster = _shared_cluster(max_resident_blocks=4)
        runner = make_job_runner("dfccl", cluster, seed=7,
                                 launch_jitter_us=300.0)
        specs = [
            _small_spec("ten-a", dp=4, iterations=3),
            _small_spec("ten-b", dp=4, iterations=3, arrival=40.0),
        ]
        scheduler = install_scheduler(cluster, runner, specs,
                                      policy="packed", tenants_per_gpu=2)
        total = cluster.run(until_us=8_000_000)
        records = scheduler.finalize(total)
        assert cluster.engine.deadlock_report is None
        assert all(record.state is JobState.COMPLETED for record in records)


class TestChurnEdgeCases:
    def test_crash_after_last_survivor_completion_degrades_job(self):
        # The crash eliminates the job's last outstanding rank AFTER every
        # survivor already ran its completion hook: no further hook will ever
        # fire, so the parked scheduler must be woken by the device-failure
        # signal itself and reap the job as degraded (not leave it running
        # until the deadline).
        from repro.faults.injector import install_fault_plan
        from repro.faults.plan import FaultPlan

        cluster = build_cluster("single-3090", deadlock_mode="record",
                                max_resident_blocks=8)
        runner = make_job_runner("dfccl", cluster, seed=3, launch_jitter_us=0.0)
        spec = JobSpec(job_id="solo", dp=2, iterations=2, grad_buckets=2)
        scheduler = install_scheduler(cluster, runner, [spec],
                                      policy="packed", tenants_per_gpu=1)
        plan = (FaultPlan(name="late-crash")
                .add_straggler(1, at_us=100.0, factor=30.0)
                .add_crash(1, at_us=872_800.0))
        install_fault_plan(cluster, plan)
        deadline = 8_000_000
        total = cluster.run(until_us=deadline)
        records = scheduler.finalize(total)
        assert records[0].state is JobState.DEGRADED
        assert records[0].finish_time_us is not None
        # The reap happened at crash time, not at the deadline.
        assert total < deadline / 2


class TestInterferenceModel:
    def test_factor_only_bites_with_multiple_tenants(self):
        model = SmInterferenceModel(slope=0.5, cap=3.0)
        assert model.factor(1, 8, 8) == 1.0
        assert model.factor(2, 8, 8) == pytest.approx(1.5)
        assert model.factor(2, 4, 8) == pytest.approx(1.25)
        assert model.factor(10, 8, 8) == 3.0  # capped

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SmInterferenceModel(slope=-1.0).validate()
        with pytest.raises(ConfigurationError):
            SmInterferenceModel(cap=0.5).validate()

    def test_coresident_tenants_dilate_each_other(self):
        from repro.gpusim.device import SleepKernel

        cluster = build_cluster("single-3090", max_resident_blocks=8,
                                interference=SmInterferenceModel(slope=1.0))
        device = cluster.device(0)
        alone = SleepKernel("alone", device, duration_us=100.0, grid_size=4)
        alone.tenant = "job-a"
        device.enqueue_kernel(alone, "s1", 0.0)
        cluster.run()
        alone_duration = alone.complete_time_us - alone.launch_time_us

        cluster = build_cluster("single-3090", max_resident_blocks=8,
                                interference=SmInterferenceModel(slope=1.0))
        device = cluster.device(0)
        first = SleepKernel("first", device, duration_us=100.0, grid_size=4)
        first.tenant = "job-a"
        second = SleepKernel("second", device, duration_us=100.0, grid_size=4)
        second.tenant = "job-b"
        device.enqueue_kernel(first, "s1", 0.0)
        device.enqueue_kernel(second, "s2", 0.0)
        cluster.run()
        contended = first.complete_time_us - first.launch_time_us
        assert contended > alone_duration
        assert device.peak_resident_tenants == 2
