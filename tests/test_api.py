"""Tests for the unified ``repro.api`` front-end.

Covers the backend registry, ProcessGroup call semantics, Work futures,
full training runs driven through ``make_backend`` + ``ProcessGroup`` on
every backend, and the deprecation shims of the legacy per-backend surfaces.
"""

import pytest

from repro.api import (
    BACKENDS,
    CollectiveBackend,
    make_backend,
    register_backend,
    wait_all,
)
from repro.common.errors import ConfigurationError, DeadlockError
from repro.common.types import CollectiveKind, CollectiveSpec
from repro.core import DfcclBackend, DfcclConfig
from repro.gpusim import HostProgram, build_cluster
from repro.workloads import (
    GroupTrainingBackend,
    ParallelPlan,
    TrainingRun,
    resnet50_model,
)

CHUNK = 512 << 10


def small_plan(dp=2, batch=32, buckets=4):
    return ParallelPlan(resnet50_model(), dp=dp, microbatch_size=batch,
                        grad_buckets=buckets)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"dfccl", "nccl", "mpi"} <= set(BACKENDS)

    def test_unknown_backend_rejected(self):
        cluster = build_cluster("single-3090")
        with pytest.raises(ConfigurationError, match="unknown collective backend"):
            make_backend("gloo", cluster)

    def test_custom_backend_pluggable(self):
        class NullBackend(CollectiveBackend):
            name = "null"

        register_backend("null-test", NullBackend)
        try:
            cluster = build_cluster("single-3090")
            backend = make_backend("null-test", cluster)
            assert backend.name == "null"
            assert backend.new_group([0, 1]).size == 2
        finally:
            del BACKENDS["null-test"]

    def test_uniform_knob_surface(self):
        # Every builtin factory tolerates the common knob set, so sweep
        # drivers need no per-backend argument plumbing.
        cluster = build_cluster("single-3090")
        for name in ("dfccl", "nccl", "mpi"):
            backend = make_backend(name, cluster, chunk_bytes=64 << 10,
                                   config=DfcclConfig())
            assert backend.name == name


class TestProcessGroup:
    def test_group_membership_checked(self):
        cluster = build_cluster("single-3090")
        group = make_backend("dfccl", cluster).new_group([0, 1, 2])
        assert group.size == 3
        assert group.group_rank(2) == 2
        with pytest.raises(ConfigurationError):
            group.group_rank(5)
        with pytest.raises(ConfigurationError):
            group.all_reduce(7, count=4)

    def test_auto_assigned_ids_and_invocation_indices(self):
        cluster = build_cluster("single-3090")
        backend = make_backend("dfccl", cluster)
        group = backend.new_group([0, 1])
        # Two keys -> two registered collectives; repeated calls -> indices.
        works = [group.all_reduce(rank, count=256, key=key)
                 for key in (0, 1) for rank in (0, 1)]
        again = [group.all_reduce(rank, count=256, key=0) for rank in (0, 1)]
        assert len(backend.dfccl._collectives) == 2
        assert {work.index for work in works} == {0}
        assert {work.index for work in again} == {1}

    def test_shape_identity_without_key(self):
        # Same spec without a key joins the same logical collective.
        cluster = build_cluster("single-3090")
        backend = make_backend("dfccl", cluster)
        group = backend.new_group([0, 1])
        first = group.all_reduce(0, count=256)
        second = group.all_reduce(0, count=256)
        assert (first.index, second.index) == (0, 1)
        assert len(backend.dfccl._collectives) == 1

    def test_key_identity_overrides_shape(self):
        # With an explicit key the key is the identity: per-rank shape
        # asymmetries (pipeline send/recv quoting sender vs receiver sizes)
        # still meet in one collective, first spec canonical.
        cluster = build_cluster("single-3090")
        backend = make_backend("dfccl", cluster)
        group = backend.new_group([0, 1])
        sender = group.collective(
            0, CollectiveSpec(CollectiveKind.ALL_REDUCE, 512), key="pp")
        receiver = group.collective(
            1, CollectiveSpec(CollectiveKind.ALL_REDUCE, 1024), key="pp")
        assert sender.invocation.coll is receiver.invocation.coll
        assert sender.invocation.coll.spec.count == 512

    def test_group_priority_flows_into_registration(self):
        cluster = build_cluster("single-3090")
        backend = make_backend("dfccl", cluster)
        group = backend.new_group([0, 1], priority=7)
        work = group.all_reduce(0, count=256)
        assert work.invocation.coll.priority == 7

    def test_explicit_priority_zero_beats_group_default(self):
        cluster = build_cluster("single-3090")
        backend = make_backend("dfccl", cluster)
        group = backend.new_group([0, 1], priority=7)
        work = group.all_reduce(0, count=256, priority=0)
        assert work.invocation.coll.priority == 0

    def test_group_usable_again_after_unregister_all(self):
        cluster = build_cluster("single-3090")
        backend = make_backend("dfccl", cluster)
        group = backend.new_group([0, 1])
        group.ensure_collective(CollectiveSpec(CollectiveKind.ALL_REDUCE, 256),
                                key=0)
        assert backend.unregister_all() == 1
        # A later call re-registers instead of submitting to a dead id.
        work = group.all_reduce(0, count=256, key=0)
        assert work.invocation.coll.coll_id in backend.dfccl._collectives

    def test_job_namespace_flows_into_ids_and_pool(self):
        cluster = build_cluster("single-3090")
        backend = make_backend("dfccl", cluster)
        view = backend.job_view("tenant-a")
        group = view.new_group([0, 1])
        work = group.all_reduce(0, count=256)
        coll = work.invocation.coll
        assert coll.coll_id[0] == "tenant-a"
        assert coll.job == "tenant-a"


def _run_disordered(name, cluster=None):
    """The Fig. 1(c) recipe as one backend-agnostic program."""
    cluster = cluster or build_cluster("single-3090")
    backend = make_backend(name, cluster)
    group = backend.new_group(list(range(4)))
    all_works = []
    programs = []
    for rank in group.ranks:
        order = [0, 1] if rank < 2 else [1, 0]
        works = [group.all_reduce(rank, count=1 << 16, key=key) for key in order]
        all_works.extend(works)
        ops = [work.submit_op() for work in works] + wait_all(works)
        ops.extend(backend.finalize_ops(rank))
        programs.append(HostProgram(ops))
    cluster.add_hosts(programs)
    cluster.run()
    return all_works


class TestWorkFutures:
    def test_dfccl_completes_disordered_program(self):
        works = _run_disordered("dfccl")
        assert all(work.done for work in works)
        infos = [work.completion_info() for work in works]
        assert all(info.member_ranks == (0, 1, 2, 3) for info in infos)
        assert len({info.signature for info in infos}) == 1

    def test_mpi_completes_disordered_program(self):
        works = _run_disordered("mpi")
        assert all(work.done for work in works)
        assert all(work.finished_at_us > work.started_at_us for work in works)

    def test_nccl_deadlocks_on_disordered_program(self):
        with pytest.raises(DeadlockError):
            _run_disordered("nccl")

    def test_incomplete_work_reports_none(self):
        cluster = build_cluster("single-3090")
        group = make_backend("nccl", cluster).new_group([0, 1])
        work = group.all_reduce(0, count=256)
        assert not work.done
        assert work.completion_info() is None
        assert work.finished_at_us is None

    @pytest.mark.parametrize("name", ["dfccl", "nccl", "mpi"])
    def test_callbacks_fire_uniformly(self, name):
        cluster = build_cluster("single-3090")
        backend = make_backend(name, cluster)
        group = backend.new_group([0, 1])
        fired = []
        programs = []
        for rank in group.ranks:
            work = group.all_reduce(rank, count=256,
                                    callback=lambda w: fired.append(w.rank))
            ops = work.ops()
            ops.extend(backend.finalize_ops(rank))
            programs.append(HostProgram(ops))
        cluster.add_hosts(programs)
        cluster.run()
        assert sorted(fired) == [0, 1]

    @pytest.mark.parametrize("name", ["dfccl", "nccl", "mpi"])
    def test_barrier_synchronizes_all_members(self, name):
        cluster = build_cluster("single-3090")
        backend = make_backend(name, cluster)
        group = backend.new_group([0, 1, 2])
        works = []
        programs = []
        for rank in group.ranks:
            work = group.barrier(rank)
            works.append(work)
            ops = work.ops()
            ops.extend(backend.finalize_ops(rank))
            programs.append(HostProgram(ops))
        cluster.add_hosts(programs)
        cluster.run()
        assert all(work.done for work in works)

    def test_wait_all_preserves_submission_order(self):
        cluster = build_cluster("single-3090")
        group = make_backend("mpi", cluster).new_group([0])
        works = [group.all_reduce(0, count=256, key=key) for key in (0, 1)]
        ops = wait_all(works)
        assert len(ops) == 2


class TestTrainingThroughApi:
    """Acceptance: make_backend + ProcessGroup drive a full training run."""

    @pytest.mark.parametrize("name", ["dfccl", "nccl"])
    def test_full_training_run_both_backends(self, name):
        cluster = build_cluster("single-3090")
        backend = GroupTrainingBackend(cluster, make_backend(name, cluster,
                                                             chunk_bytes=CHUNK))
        result = TrainingRun(cluster, small_plan(), backend, iterations=3).run()
        assert result.iterations == 2
        assert result.throughput_samples_per_s > 0
        assert result.backend.startswith(name)

    def test_mpi_backend_trains_too(self):
        cluster = build_cluster("single-3090")
        backend = GroupTrainingBackend(cluster, "mpi")
        result = TrainingRun(cluster, small_plan(), backend, iterations=2).run()
        assert result.throughput_samples_per_s > 0
        assert result.backend == "mpi"

    def test_nccl_training_charges_default_orchestration(self):
        cluster = build_cluster("single-3090")
        backend = GroupTrainingBackend(cluster, "nccl", chunk_bytes=CHUNK)
        result = TrainingRun(cluster, small_plan(), backend, iterations=2).run()
        # The dedicated-kernel baseline ships with its manual-orchestration
        # coordination layer by default.
        assert result.backend == "nccl+megatron-manual"

    def test_training_backends_share_one_codepath(self):
        # The whole point of the redesign: one GroupTrainingBackend class,
        # configured purely by the backend object it drives.
        cluster_a = build_cluster("single-3090")
        cluster_b = build_cluster("single-3090")
        a = GroupTrainingBackend(cluster_a, "dfccl", chunk_bytes=CHUNK)
        b = GroupTrainingBackend(cluster_b, "nccl", orchestrator="oneflow",
                                 chunk_bytes=CHUNK)
        assert type(a) is type(b) is GroupTrainingBackend


class TestSatelliteRegisterForwarding:
    """register_* must forward name=/job= instead of silently dropping them."""

    @pytest.mark.parametrize("register, kwargs", [
        ("register_all_reduce", {}),
        ("register_all_gather", {}),
        ("register_reduce_scatter", {}),
        ("register_broadcast", {"root": 1}),
        ("register_reduce", {"root": 1}),
    ])
    def test_name_and_job_forwarded(self, register, kwargs):
        cluster = build_cluster("single-3090")
        backend = DfcclBackend(cluster, DfcclConfig())
        coll = getattr(backend, register)(
            ("jobX", 0), count=256, ranks=[0, 1], name="my-coll", job="jobX",
            **kwargs,
        )
        assert coll.name == "my-coll"
        assert coll.job == "jobX"


class TestRemovedShims:
    """The paper-era shim surfaces were deleted after their deprecation cycle."""

    def test_training_backend_shims_are_gone(self):
        import repro.workloads as workloads

        assert not hasattr(workloads, "DfcclTrainingBackend")
        assert not hasattr(workloads, "NcclTrainingBackend")

    def test_job_runner_shims_are_gone(self):
        import repro.multijob as multijob

        assert not hasattr(multijob, "DfcclJobRunner")
        assert not hasattr(multijob, "NcclJobRunner")
        assert not hasattr(multijob, "JobRunner")

    def test_listing1_aliases_are_gone(self):
        from repro.core import api as core_api

        for name in ("dfccl_init", "dfccl_register_all_reduce",
                     "dfccl_register_all_gather", "dfccl_register_reduce_scatter",
                     "dfccl_register_broadcast", "dfccl_register_reduce",
                     "dfccl_run", "dfccl_destroy"):
            assert not hasattr(core_api, name), name

    def test_make_job_runner_accepts_any_registered_backend(self):
        from repro.multijob import ClusterJobRunner, make_job_runner

        cluster = build_cluster("single-3090", deadlock_mode="record")
        runner = make_job_runner("dfccl", cluster, seed=1)
        assert isinstance(runner, ClusterJobRunner)
        # Legacy attribute access resolves through the adapter.
        assert runner.dfccl is runner.backend.dfccl
        with pytest.raises(ConfigurationError):
            make_job_runner("bogus", cluster)


class TestNoInternalStringDispatch:
    def test_no_backend_string_branches_outside_registry(self):
        """Acceptance: zero ``backend == "dfccl"`` branches outside repro/api."""
        import pathlib
        import re

        root = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
        pattern = re.compile(r"""(?:backend|flavor)\s*==\s*['"](?:dfccl|nccl|mpi)['"]""")
        offenders = []
        for path in root.rglob("*.py"):
            if "api" in path.parts:
                continue
            if pattern.search(path.read_text()):
                offenders.append(str(path))
        assert offenders == []
