"""Elastic control-plane fuzzer: scenario generation, oracle, CLI wiring."""

import json

import repro.testing.fuzz as fuzz_cli
from repro.testing.elastic import (
    EVENT_KINDS,
    check_elastic_scenario,
    fuzz_elastic,
    generate_elastic_scenario,
    run_elastic_scenario,
)


class TestScenarioGeneration:
    def test_pure_function_of_seed(self):
        first = generate_elastic_scenario(1234)
        second = generate_elastic_scenario(1234)
        assert first == second
        assert first != generate_elastic_scenario(1235)

    def test_scenario_is_json_safe_plain_data(self):
        scenario = generate_elastic_scenario(7)
        assert json.loads(json.dumps(scenario)) == scenario
        assert scenario["jobs"]
        for event in scenario["events"]:
            assert event["kind"] in EVENT_KINDS
            assert event["time_us"] > 0

    def test_events_sorted_by_time(self):
        scenario = generate_elastic_scenario(99, max_events=3)
        times = [event["time_us"] for event in scenario["events"]]
        assert times == sorted(times)


class TestScenarioOracle:
    def test_replay_is_deterministic_and_live(self):
        scenario = generate_elastic_scenario(21)
        problems, outcome = check_elastic_scenario(scenario)
        assert problems == []
        assert outcome["summary"]["unfinished"] == 0
        assert outcome["summary"]["starved"] == 0
        assert {row["job"] for row in outcome["jobs"]} >= \
            {job["job_id"] for job in scenario["jobs"]}

    def test_outcome_shape(self):
        scenario = generate_elastic_scenario(5)
        outcome = run_elastic_scenario(scenario)
        json.dumps(outcome)  # JSON-safe (tuples degrade to lists)
        for row in outcome["jobs"]:
            for field in ("job", "state", "preemptions", "epoch",
                          "completed_iterations", "checkpoint"):
                assert field in row


class TestFuzzLoop:
    def test_smoke_scenarios_pass(self):
        summary = fuzz_elastic(seed=0, scenarios=2, log=lambda *args: None)
        assert summary["failures"] == []
        assert summary["kinds"]

    def test_cli_elastic_flag(self, capsys):
        exit_code = fuzz_cli.main(["--elastic", "1", "--programs", "1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "elastic fuzz: 1 scenarios" in out
