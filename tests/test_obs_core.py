"""The unified observability layer: metrics, spans, flight recorder, reports.

Covers the contracts the rest of the tree relies on:

* the metrics registry (counters/gauges/histograms/lazy gauge callbacks) and
  both exporters (JSON snapshot, Prometheus text);
* the bounded flight recorder and its auto-dump on engine deadlock — the
  dump must name the wait-for cycle's actors;
* collective spans and calibration samples recorded by a real DFCCL run;
* the ``perf_report`` / ``completion_info`` / ``diagnostics`` field contract
  across all three ``repro.api`` backends;
* the ``python -m repro.obs.report`` CLI.
"""

import json

import pytest

from repro.api import make_backend, wait_all
from repro.gpusim import HostProgram, build_cluster
from repro.gpusim.engine import Actor, Engine, StepResult
from repro.obs import METRIC_NAMES, MetricsRegistry, Observability


def _run_all_reduce(backend_name, ranks=4, nbytes=1 << 20, iterations=2,
                    observability=None):
    """One small traced all-reduce workload; returns (cluster, backend,
    group, works_by_rank)."""
    cluster = build_cluster("single-3090", observability=observability)
    backend = make_backend(backend_name, cluster, chunk_bytes=128 << 10,
                           algorithm="ring")
    group = backend.new_group(list(range(ranks)))
    works_by_rank = {}
    programs = []
    for rank in group.ranks:
        works = [group.all_reduce(rank, nbytes // 4, key=f"ar{i}")
                 for i in range(iterations)]
        works_by_rank[rank] = works
        ops = [work.submit_op() for work in works]
        ops.extend(wait_all(works))
        ops.extend(backend.finalize_ops(rank))
        programs.append(HostProgram(ops))
    cluster.add_hosts(programs)
    cluster.run()
    return cluster, backend, group, works_by_rank


class TestMetricsRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("engine_deadlocks").inc()
        registry.counter("engine_deadlocks").inc(2)
        registry.gauge("engine_steps").set(41)
        registry.gauge_fn("pool_active", lambda: 7)
        histogram = registry.histogram("collective_latency_us",
                                       labels={"backend": "dfccl",
                                               "algorithm": "ring"})
        histogram.observe(3.0)
        histogram.observe(300.0)

        snap = registry.snapshot()
        assert snap["engine_deadlocks"] == 3
        assert snap["engine_steps"] == 41
        assert snap["pool_active"] == 7
        hist = snap['collective_latency_us{algorithm="ring",backend="dfccl"}']
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(303.0)
        assert hist["min"] == 3.0 and hist["max"] == 300.0
        # Buckets are cumulative and end with +Inf == count.
        assert hist["buckets"][-1] == ["+Inf", 2]
        cumulative = [count for _, count in hist["buckets"]]
        assert cumulative == sorted(cumulative)

    def test_labels_are_order_insensitive(self):
        registry = MetricsRegistry()
        registry.counter("link_bytes_total", labels={"src": "a", "dst": "b"}).inc()
        registry.counter("link_bytes_total", labels={"dst": "b", "src": "a"}).inc()
        assert registry.snapshot() == {
            'link_bytes_total{dst="b",src="a"}': 2}

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("engine_deadlocks").inc()
        registry.histogram("collective_latency_us",
                           labels={"backend": "mpi",
                                   "algorithm": "host-staged-ring"}).observe(42.0)
        text = registry.to_prometheus_text()
        assert "# HELP engine_deadlocks" in text
        assert "# TYPE engine_deadlocks counter" in text
        assert "engine_deadlocks 1" in text
        assert "# TYPE collective_latency_us histogram" in text
        assert 'le="+Inf"' in text
        assert "collective_latency_us_count" in text
        assert "collective_latency_us_sum" in text

    def test_every_declared_metric_has_kind_and_help(self):
        assert len(METRIC_NAMES) >= 30
        for name, info in METRIC_NAMES.items():
            assert info["kind"] in ("counter", "gauge", "histogram"), name
            assert info["help"], name


class TestFlightRecorder:
    def test_ring_and_span_buffers_are_bounded(self):
        obs = Observability(event_capacity=16, span_capacity=4)
        for i in range(100):
            obs.recorder.record_event(float(i), "test", f"e{i}")
            obs.tracer.record(f"s{i}", "test", float(i), float(i) + 1.0)
        assert len(obs.recorder.ring) <= 16
        assert len(obs.recorder.spans) == 4
        # The newest entries survive, the oldest are evicted.
        assert obs.recorder.spans[-1].name == "s99"

    def test_step_and_marker_events_are_distinguished(self):
        engine = Engine()

        class _OneShot(Actor):
            def step(self):
                self.clock.advance(1.0)
                return StepResult.done()

        engine.add_actor(_OneShot("worker"))
        engine.run()
        engine.obs.recorder.record_event(5.0, "fault", "killed:worker")
        steps = engine.obs.recorder.step_events()
        markers = engine.obs.recorder.marker_events()
        assert steps and all(len(event) == 4 for event in steps)
        assert markers == [("event", 5.0, "fault", "killed:worker", None)]

    def test_dump_on_engine_deadlock_names_the_cycle(self):
        engine = Engine(deadlock_mode="record")

        class _Blocked(Actor):
            def __init__(self, name, wait_key):
                super().__init__(name)
                self.wait_key = wait_key

            def step(self):
                return StepResult.blocked([self.wait_key])

        # a waits on a key only b would signal, and vice versa: a 2-cycle.
        engine.add_actor(_Blocked("actor-a", ("turn", "b")))
        engine.add_actor(_Blocked("actor-b", ("turn", "a")))
        engine.run()

        assert engine.deadlock_report is not None
        dump = engine.obs.last_dump
        assert dump is not None and dump["reason"] == "deadlock"
        assert set(dump["context"]["blocked_actors"]) == {"actor-a", "actor-b"}
        assert set(dump["context"]["wait_graph"]) == {"actor-a", "actor-b"}
        assert engine.obs.metrics.snapshot()["engine_deadlocks"] == 1
        assert dump["metrics"]["engine_steps"] > 0

    def test_disabled_observability_records_nothing(self):
        cluster, *_ = _run_all_reduce(
            "dfccl", observability=Observability(enabled=False))
        obs = cluster.engine.obs
        assert not obs.enabled
        assert len(obs.recorder.ring) == 0
        assert len(obs.recorder.spans) == 0
        assert not obs.calibration
        assert obs.metrics.snapshot() == {}


class TestCollectiveSpans:
    def test_dfccl_run_records_spans_and_calibration(self):
        cluster, backend, group, works_by_rank = _run_all_reduce("dfccl")
        obs = cluster.engine.obs
        spans = [span for span in obs.recorder.spans
                 if span.category == "collective"]
        # One span per (rank, invocation): 4 ranks x 2 invocations.
        assert len(spans) == 8
        for span in spans:
            assert span.end_us is not None and span.duration_us >= 0.0
            assert span.attrs["algorithm"] == "ring"
            assert span.attrs["predicted_cost_us"] > 0.0
        samples = list(obs.calibration)
        assert len(samples) == 2
        for sample in samples:
            assert sample["backend"] == "dfccl"
            assert sample["predicted_us"] > 0.0
            assert sample["measured_us"] > 0.0
        report = obs.calibration_report()
        assert len(report) == 1
        assert report[0]["samples"] == 2
        assert report[0]["relative_error"] is not None

    def test_calibration_report_covers_every_backend(self):
        for backend_name in ("dfccl", "nccl", "mpi"):
            cluster, *_ = _run_all_reduce(backend_name)
            report = cluster.engine.obs.calibration_report()
            assert report, f"{backend_name} must record calibration samples"
            assert report[0]["backend"] == backend_name


class TestBackendReportingContract:
    """Field contracts satellites of the api layer depend on."""

    REQUIRED_PERF_KEYS = {"algorithm", "latency_us", "core_time_us",
                          "preemptions", "predicted_cost_us"}

    @pytest.mark.parametrize("backend_name", ["dfccl", "nccl", "mpi"])
    def test_perf_report_fields(self, backend_name):
        _, backend, group, works_by_rank = _run_all_reduce(backend_name)
        report = backend.perf_report(group, works_by_rank)
        assert self.REQUIRED_PERF_KEYS <= set(report)
        assert report["latency_us"] > 0.0
        assert report["predicted_cost_us"] > 0.0

    @pytest.mark.parametrize("backend_name", ["dfccl", "nccl", "mpi"])
    def test_completion_info_fields(self, backend_name):
        _, backend, group, works_by_rank = _run_all_reduce(backend_name)
        for rank, works in works_by_rank.items():
            for work in works:
                info = work.completion_info()
                assert info is not None
                assert tuple(info.member_ranks) == tuple(group.ranks)
                assert info.time_us is not None and info.time_us > 0.0
                generation, members = info.signature
                assert generation == 0
                assert len(members) == len(group.ranks)

    @pytest.mark.parametrize("backend_name", ["dfccl", "nccl", "mpi"])
    def test_diagnostics_nonempty_with_metrics(self, backend_name):
        cluster, backend, *_ = _run_all_reduce(backend_name)
        diag = backend.diagnostics()
        assert diag, f"{backend_name} diagnostics must not be empty"
        assert "metrics" in diag
        assert diag["metrics"]["engine_steps"] > 0
        assert diag["metrics"]["collective_invocations"] == 2

    def test_mpi_diagnostics_report_rendezvous_counters(self):
        _, backend, *_ = _run_all_reduce("mpi")
        diag = backend.diagnostics()
        assert diag["backend"] == "mpi"
        assert diag["host_staged_ops"] == 2
        assert diag["rendezvous_completed"] == 2
        assert diag["rendezvous_pending"] == 0
        assert diag["metrics"]["mpi_host_staged_ops"] == 2

    def test_link_metrics_fold_into_registry_at_diagnostics_time(self):
        cluster, backend, *_ = _run_all_reduce("dfccl")
        diag = backend.diagnostics()
        link_keys = [key for key in diag["metrics"]
                     if key.startswith("link_bytes_total")]
        assert link_keys, "per-link byte gauges expected after diagnostics()"
        assert all(diag["metrics"][key] > 0 for key in link_keys)
        busy = [key for key in diag["metrics"]
                if key.startswith("link_busy_us")]
        assert busy and all(diag["metrics"][key] > 0 for key in busy)


class TestRecoveryObservability:
    def test_recovery_episode_dumps_and_counts(self):
        from repro.core import DfcclBackend, DfcclConfig
        from repro.faults.injector import install_fault_plan
        from repro.faults.plan import FaultPlan

        cluster = build_cluster("single-3090")
        config = DfcclConfig(recovery_enabled=True)
        backend = DfcclBackend(cluster, config)
        ranks = [0, 1, 2, 3]
        backend.init_all_ranks(ranks)
        backend.register_all_reduce(0, count=1 << 16, ranks=ranks)
        install_fault_plan(cluster,
                           FaultPlan("crash").add_crash(2, at_us=30.0))
        programs = []
        for rank in ranks:
            handle = backend.submit(rank, 0)
            programs.append(
                HostProgram(handle.ops() + [backend.destroy_op(rank)]))
        cluster.add_hosts(programs)
        cluster.run()

        obs = cluster.engine.obs
        snap = obs.metrics.snapshot()
        assert snap["recovery_episodes"] >= 1
        assert snap["engine_actors_killed"] >= 1
        recovery_dumps = [dump for dump in obs.dumps
                          if dump["reason"] == "recovery"]
        assert recovery_dumps
        context = recovery_dumps[0]["context"]
        assert 2 in context["failed_ranks"]
        assert context["invocations_rerun"] >= 1
        recovery_spans = [span for span in obs.recorder.spans
                          if span.category == "recovery"]
        assert recovery_spans


class TestReportCli:
    def test_cli_writes_json_and_prometheus(self, tmp_path, capsys):
        from repro.obs.report import main

        json_path = tmp_path / "obs.json"
        prom_path = tmp_path / "obs.prom"
        exit_code = main(["--ranks", "4", "--iterations", "1",
                          "--json", str(json_path),
                          "--prometheus", str(prom_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "selector calibration" in out
        document = json.loads(json_path.read_text())
        assert document["metrics"]["collective_invocations"] == 1
        assert document["calibration"]
        assert "# TYPE engine_steps gauge" in prom_path.read_text()
