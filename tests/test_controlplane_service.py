"""Control plane: live submission, quotas, preemption, migration, elasticity."""

import json

import pytest

from repro.common.errors import ConfigurationError, InvalidStateError
from repro.controlplane import (
    JobCheckpoint,
    collective_fingerprints,
    install_control_plane,
)
from repro.core import DfcclBackend
from repro.core.queues import Sqe
from repro.gpusim import HostProgram, build_cluster
from repro.gpusim.host import CpuCompute
from repro.multijob import JobSpec, JobState, make_job_runner

DEADLINE_US = 60_000_000.0


def _cluster(topology="single-3090", blocks=8):
    return build_cluster(topology, deadlock_mode="record",
                         max_resident_blocks=blocks)


def _service(cluster, specs, seed=3, **kwargs):
    runner = make_job_runner("dfccl", cluster, seed=seed, launch_jitter_us=0.0)
    return install_control_plane(cluster, runner, specs, policy="packed",
                                 **kwargs)


def _spec(job_id, dp=8, iterations=2, priority=0, arrival=0.0, tenant=None):
    return JobSpec(job_id=job_id, dp=dp, iterations=iterations,
                   priority=priority, arrival_time_us=arrival, tenant=tenant)


class TestLiveSubmission:
    def test_live_submit_lands_and_completes(self):
        cluster = _cluster()
        service = _service(cluster, [_spec("boot", dp=2)], tenants_per_gpu=1)
        service.schedule(
            5_000.0,
            lambda s, now: s.submit(_spec("live", dp=2, arrival=now)))
        total = cluster.run(until_us=DEADLINE_US)
        records = {record.job_id: record
                   for record in service.finalize(total)}
        assert set(records) == {"boot", "live"}
        assert records["live"].state is JobState.COMPLETED
        assert records["live"].spec.arrival_time_us >= 5_000.0
        assert records["live"].start_time_us >= 5_000.0

    def test_live_submit_validates_id_and_size(self):
        cluster = _cluster()
        service = _service(cluster, [_spec("only", dp=2, iterations=2)],
                           tenants_per_gpu=1)
        total = cluster.run(until_us=DEADLINE_US)
        service.finalize(total)
        with pytest.raises(ConfigurationError):
            service.submit(_spec("only", dp=2))  # duplicate id
        with pytest.raises(ConfigurationError):
            service.submit(_spec("huge", dp=16))  # exceeds the 8-GPU world

    def test_actions_run_in_time_then_schedule_order(self):
        cluster = _cluster()
        service = _service(cluster, [_spec("a", dp=2)], tenants_per_gpu=1)
        seen = []
        service.schedule(2_000.0, lambda s, now: seen.append("second"))
        service.schedule(1_000.0, lambda s, now: seen.append("first"))
        service.schedule(2_000.0, lambda s, now: seen.append("third"))
        cluster.run(until_us=DEADLINE_US)
        assert seen == ["first", "second", "third"]


class TestQuotas:
    def test_oversized_job_rejected_at_admission(self):
        cluster = _cluster()
        service = _service(
            cluster,
            [_spec("big", dp=8, tenant="capped"),
             _spec("ok", dp=2, tenant="free")],
            tenants_per_gpu=1, quotas={"capped": 4},
        )
        total = cluster.run(until_us=DEADLINE_US)
        records = {record.job_id: record
                   for record in service.finalize(total)}
        assert records["big"].state is JobState.REJECTED
        assert records["ok"].state is JobState.COMPLETED
        assert (records["big"].spec.arrival_time_us, "reject", "big") in [
            (time_us, event, job) for time_us, event, job in service.events
        ]
        summary = service.summary(total)
        assert summary["rejected"] == 1
        assert summary["never_placed"] == 0  # rejection is not starvation
        assert records["big"].slo_attained is None
        assert cluster.obs.metrics.counter("jobs_rejected").value == 1

    def test_quota_caps_concurrent_leases(self):
        cluster = _cluster()
        # Capacity allows both 8-rank jobs at tenants_per_gpu=2, but the
        # tenant's 8-GPU quota serialises them.
        service = _service(
            cluster,
            [_spec("first", dp=8, tenant="t"),
             _spec("second", dp=8, tenant="t", arrival=100.0)],
            tenants_per_gpu=2, quotas={"t": 8},
        )
        total = cluster.run(until_us=DEADLINE_US)
        records = {record.job_id: record
                   for record in service.finalize(total)}
        assert records["first"].state is JobState.COMPLETED
        assert records["second"].state is JobState.COMPLETED
        assert records["second"].start_time_us >= \
            records["first"].finish_time_us


class TestPreemption:
    def _preemption_run(self, **kwargs):
        cluster = _cluster(blocks=4)
        service = _service(
            cluster,
            [_spec("victim", dp=8, iterations=3, priority=0),
             _spec("urgent", dp=8, iterations=2, priority=5,
                   arrival=30_000.0)],
            tenants_per_gpu=1, **kwargs,
        )
        total = cluster.run(until_us=DEADLINE_US)
        records = {record.job_id: record
                   for record in service.finalize(total)}
        return cluster, service, records, total

    def test_high_priority_preempts_and_victim_resumes(self):
        cluster, service, records, total = self._preemption_run()
        victim, urgent = records["victim"], records["urgent"]
        # The urgent job did not wait for the victim's three iterations.
        assert urgent.start_time_us < victim.finish_time_us
        assert urgent.state is JobState.COMPLETED
        # The victim was checkpoint-evicted, requeued, resumed, completed.
        assert victim.preemptions == 1
        assert victim.epoch >= 1
        assert victim.state is JobState.COMPLETED
        assert victim.completed_iterations == 3
        checkpoint = victim.checkpoint
        assert checkpoint is not None
        assert checkpoint.job_id == "victim"
        assert checkpoint.reason == "preempted-by:urgent"
        assert 0 <= checkpoint.completed_iterations < 3
        assert isinstance(checkpoint.fingerprints, tuple)
        events = [event for _, event, job in service.events
                  if job == "victim"]
        assert "preempt:preempted-by:urgent" in events
        assert "resume" in events
        metrics = cluster.obs.metrics
        assert metrics.counter("jobs_preempted").value == 1
        assert metrics.counter("jobs_resumed").value == 1
        summary = service.summary(total)
        assert summary["preemptions"] == 1
        assert summary["preempted_jobs"] == 1
        assert summary["resumed_jobs"] == 1
        # Queueing delay is recorded once per job at *first* placement: the
        # victim's resume is service interruption, not queueing.
        histogram = metrics.histogram("jobs_queueing_delay_us")
        assert histogram.count == 2

    def test_preemption_disabled_runs_to_completion(self):
        _, _, records, _ = self._preemption_run(preemption=False)
        assert records["victim"].preemptions == 0
        assert records["urgent"].start_time_us >= \
            records["victim"].finish_time_us

    def test_preemption_budget_zero_blocks_eviction(self):
        _, _, records, _ = self._preemption_run(max_preemptions_per_job=0)
        assert records["victim"].preemptions == 0
        assert records["urgent"].start_time_us >= \
            records["victim"].finish_time_us

    def test_equal_priority_never_preempts(self):
        cluster = _cluster(blocks=4)
        service = _service(
            cluster,
            [_spec("first", dp=8, iterations=3, priority=2),
             _spec("peer", dp=8, iterations=2, priority=2,
                   arrival=30_000.0)],
            tenants_per_gpu=1,
        )
        total = cluster.run(until_us=DEADLINE_US)
        records = {record.job_id: record
                   for record in service.finalize(total)}
        assert records["first"].preemptions == 0
        assert records["peer"].start_time_us >= \
            records["first"].finish_time_us

    def test_no_eviction_when_job_still_cannot_fit(self):
        cluster = _cluster(blocks=4)
        # Evicting the only lower-priority candidate frees 4 of the 8 GPUs
        # the wanted job needs; the other 4 belong to an equal-priority job.
        # The simulation must conclude "does not fit" and evict nothing.
        service = _service(
            cluster,
            [_spec("candidate", dp=4, iterations=3, priority=0),
             _spec("protected", dp=4, iterations=3, priority=5),
             _spec("wanted", dp=8, iterations=2, priority=3,
                   arrival=30_000.0)],
            tenants_per_gpu=1,
        )
        total = cluster.run(until_us=DEADLINE_US)
        records = {record.job_id: record
                   for record in service.finalize(total)}
        assert records["candidate"].preemptions == 0
        assert records["protected"].preemptions == 0
        assert records["wanted"].state is JobState.COMPLETED
        assert records["wanted"].start_time_us >= max(
            records["candidate"].finish_time_us,
            records["protected"].finish_time_us,
        )

    def test_starvation_aging_lifts_queued_priority(self):
        cluster = _cluster(blocks=4)
        # Both queue behind the runner; the low-priority job arrives first.
        # With aging its effective priority overtakes the later high-priority
        # arrival, so it is placed first despite the lower spec priority.
        specs = [
            _spec("runner", dp=8, iterations=2, priority=0),
            _spec("patient", dp=8, iterations=2, priority=0,
                  arrival=10.0),
            _spec("pushy", dp=8, iterations=2, priority=1,
                  arrival=20_000.0),
        ]
        service = _service(cluster, specs, tenants_per_gpu=1,
                           preemption=False, starvation_boost_us=15_000.0)
        total = cluster.run(until_us=DEADLINE_US)
        records = {record.job_id: record
                   for record in service.finalize(total)}
        assert records["patient"].start_time_us < \
            records["pushy"].start_time_us

        cluster = _cluster(blocks=4)
        service = _service(cluster, specs, tenants_per_gpu=1,
                           preemption=False, starvation_boost_us=None)
        total = cluster.run(until_us=DEADLINE_US)
        records = {record.job_id: record
                   for record in service.finalize(total)}
        assert records["pushy"].start_time_us < \
            records["patient"].start_time_us


class TestMigration:
    def test_migrate_moves_job_off_its_old_ranks(self):
        cluster = _cluster()
        service = _service(cluster, [_spec("solo", dp=2, iterations=3)],
                           tenants_per_gpu=1)
        captured = {}

        def do_migrate(s, now):
            captured["old"] = tuple(s.jobs["solo"].lease.ranks)
            s.migrate("solo", now)

        service.schedule(10_000.0, do_migrate)
        total = cluster.run(until_us=DEADLINE_US)
        records = {record.job_id: record
                   for record in service.finalize(total)}
        solo = records["solo"]
        assert solo.state is JobState.COMPLETED
        assert solo.preemptions == 1
        assert solo.completed_iterations == 3
        assert service.migrations == 1
        assert not set(captured["old"]) & set(solo.lease.ranks)
        assert solo.checkpoint.reason == "migrate"
        events = [event for _, event, job in service.events if job == "solo"]
        assert "preempt:migrate" in events
        assert "resume" in events
        assert cluster.obs.metrics.counter("jobs_migrated").value == 1

    def test_migrate_requires_running_job(self):
        cluster = _cluster()
        service = _service(cluster, [_spec("done", dp=2, iterations=2)],
                           tenants_per_gpu=1)
        total = cluster.run(until_us=DEADLINE_US)
        service.finalize(total)
        with pytest.raises(InvalidStateError):
            service.migrate("done")


class TestElasticGrowAndRejoin:
    def test_grow_cluster_places_queued_work_on_new_node(self):
        cluster = _cluster()
        service = _service(
            cluster,
            [_spec("head", dp=8, iterations=3),
             _spec("tail", dp=8, iterations=2, arrival=100.0)],
            tenants_per_gpu=1,
        )
        service.schedule(20_000.0,
                         lambda s, now: s.grow_cluster(time_us=now))
        total = cluster.run(until_us=DEADLINE_US)
        records = {record.job_id: record
                   for record in service.finalize(total)}
        assert cluster.world_size == 16
        assert service.grow_events == 1
        assert cluster.obs.metrics.counter("cluster_grow_events").value == 1
        # The queued job landed on the grown node while the first still ran.
        tail = records["tail"]
        assert tail.state is JobState.COMPLETED
        assert tail.start_time_us >= 20_000.0
        assert tail.start_time_us < records["head"].finish_time_us
        assert set(tail.lease.ranks) <= set(range(8, 16))
        assert any(event == "grow" for _, event, _ in service.events)

    def test_rejoin_after_leased_rank_failure(self):
        cluster = _cluster()
        service = _service(cluster, [_spec("r", dp=4, iterations=3)],
                           tenants_per_gpu=1)

        def fail(s, now):
            if not s.cluster.device(1).failed:
                s.cluster.fail_rank(1, now)

        service.schedule(10_000.0, fail)
        total = cluster.run(until_us=DEADLINE_US)
        records = {record.job_id: record
                   for record in service.finalize(total)}
        job = records["r"]
        # The job lost a rank but was evicted and re-formed at full size on
        # healthy devices — it completes, it is not degraded.
        assert job.state is JobState.COMPLETED
        assert job.preemptions == 1
        assert job.completed_iterations == 3
        assert 1 not in job.lease.ranks
        assert service.rejoins == 1
        assert job.checkpoint.reason == "rejoin"
        assert cluster.obs.metrics.counter("jobs_rejoined").value == 1
        events = [event for _, event, job_id in service.events
                  if job_id == "r"]
        assert "preempt:rejoin" in events

    def test_rejoin_disabled_degrades_instead(self):
        cluster = _cluster()
        service = _service(cluster, [_spec("r", dp=4, iterations=3)],
                           tenants_per_gpu=1, rejoin=False)
        service.schedule(10_000.0,
                         lambda s, now: s.cluster.fail_rank(1, now))
        total = cluster.run(until_us=DEADLINE_US)
        records = {record.job_id: record
                   for record in service.finalize(total)}
        assert records["r"].state is JobState.DEGRADED
        assert service.rejoins == 0


class TestClusterElasticity:
    def test_add_node_appends_ranks_and_keeps_existing(self):
        cluster = _cluster()
        first = cluster.device(0)
        added = cluster.add_node(time_us=2_500.0)
        assert cluster.world_size == 16
        assert cluster.device(0) is first
        assert [cluster.rank_of(device) for device in added] == \
            list(range(8, 16))
        assert "grow" in cluster.spec.nodes[-1].name
        for device in added:
            assert device.clock.now >= 2_500.0

    def test_add_host_starts_at_given_virtual_time(self):
        cluster = _cluster()
        host = cluster.add_host(0, HostProgram([CpuCompute(100.0)]),
                                name="late", start_time_us=5_000.0)
        assert host.now == 5_000.0
        total = cluster.run()
        # The late host's work happened entirely after its start time.
        assert host.now >= 5_100.0
        assert total >= 5_100.0


class TestQueueingDelayHistogram:
    def test_first_placement_delay_recorded_per_job(self):
        cluster = _cluster()
        service = _service(
            cluster,
            [_spec("now", dp=8, iterations=2),
             _spec("later", dp=8, iterations=2, arrival=100.0)],
            tenants_per_gpu=1,
        )
        total = cluster.run(until_us=DEADLINE_US)
        service.finalize(total)
        histogram = cluster.obs.metrics.histogram("jobs_queueing_delay_us")
        assert histogram.count == 2
        assert histogram.min == 0.0  # "now" was placed on arrival
        assert histogram.max > 0.0   # "later" waited for the full cluster
        summary = service.summary(total)
        assert summary["mean_queueing_delay_us"] > 0.0


class TestCheckpointHelpers:
    def test_checkpoint_describe_is_json_safe(self):
        checkpoint = JobCheckpoint(job_id="j", epoch=1,
                                   completed_iterations=2,
                                   taken_at_us=5.0, reason="migrate",
                                   aborted_parts=3,
                                   fingerprints=(("ar", "all_reduce",
                                                  (0, 1), 2, 1),))
        data = json.loads(json.dumps(checkpoint.describe()))
        assert data["job_id"] == "j"
        assert data["completed_iterations"] == 2
        assert data["reason"] == "migrate"

    def test_fingerprints_empty_view(self):
        class View:
            _collectives = {}

        assert collective_fingerprints(View()) == ()


class TestStaleSqeHandling:
    def test_unknown_coll_resolves_to_none(self):
        """A fetched SQE whose collective was unregistered (preempted job)
        resolves to ``None`` instead of raising; the daemon drops it."""
        cluster = _cluster()
        backend = DfcclBackend(cluster)
        ctx = backend.init_rank(0)
        sqe = Sqe(coll_id=4_242, invocation_id=0)
        assert ctx.invocation_for_sqe(sqe) is None

    def test_daemon_stats_expose_drop_counter(self):
        from repro.core.scheduling import DaemonStats

        assert DaemonStats().stale_sqes_dropped == 0
