"""Integration tests: the trainer over both backends, and the bench drivers."""

import pytest

from repro.gpusim import build_cluster
from repro.orchestration import make_orchestrator
from repro.workloads import (
    GroupTrainingBackend,
    ParallelPlan,
    TrainingRun,
    resnet50_model,
    vit_model,
)

CHUNK = 512 << 10


def dfccl_backend(cluster):
    return GroupTrainingBackend(cluster, "dfccl", chunk_bytes=CHUNK)


def nccl_backend(cluster, orchestrator, world_size):
    return GroupTrainingBackend(
        cluster, "nccl", chunk_bytes=CHUNK,
        orchestrator=make_orchestrator(orchestrator, world_size=world_size),
    )


def small_dp_plan(dp=2, batch=32, buckets=4):
    return ParallelPlan(resnet50_model(), dp=dp, microbatch_size=batch,
                        grad_buckets=buckets)


class TestTrainingRun:
    def test_dfccl_dp_training_completes(self):
        cluster = build_cluster("single-3090")
        backend = dfccl_backend(cluster)
        result = TrainingRun(cluster, small_dp_plan(), backend, iterations=3).run()
        assert result.iterations == 2
        assert result.throughput_samples_per_s > 0
        assert len(result.iteration_times_us) == 2

    def test_nccl_orchestrated_dp_training_completes(self):
        cluster = build_cluster("single-3090")
        backend = nccl_backend(cluster, "oneflow", world_size=2)
        result = TrainingRun(cluster, small_dp_plan(), backend, iterations=3).run()
        assert result.throughput_samples_per_s > 0

    def test_dfccl_comparable_to_static_sorting(self):
        """Fig. 10 shape: DFCCL within a few percent of statically sorted NCCL."""
        plan = small_dp_plan(dp=4, batch=48, buckets=6)
        cluster_a = build_cluster("single-3090")
        dfccl = TrainingRun(cluster_a, plan, dfccl_backend(cluster_a),
                            iterations=3).run()
        cluster_b = build_cluster("single-3090")
        static = TrainingRun(cluster_b, plan,
                             nccl_backend(cluster_b, "oneflow", world_size=4),
                             iterations=3).run()
        ratio = dfccl.throughput_samples_per_s / static.throughput_samples_per_s
        assert 0.9 < ratio < 1.15

    def test_horovod_slower_than_dfccl(self):
        """Fig. 10 shape: coordination overhead costs Horovod throughput."""
        plan = small_dp_plan(dp=4, batch=48, buckets=12)
        cluster_a = build_cluster("single-3090")
        dfccl = TrainingRun(cluster_a, plan, dfccl_backend(cluster_a),
                            iterations=3).run()
        cluster_b = build_cluster("single-3090")
        horovod = TrainingRun(cluster_b, plan,
                              nccl_backend(cluster_b, "horovod", world_size=4),
                              iterations=3).run()
        assert dfccl.throughput_samples_per_s > horovod.throughput_samples_per_s

    def test_hybrid_parallel_training_completes(self):
        plan = ParallelPlan(vit_model(), tp=2, dp=2, pp=2, microbatch_size=16,
                            num_microbatches=1, grad_buckets=4)
        cluster = build_cluster("single-3090")
        backend = dfccl_backend(cluster)
        result = TrainingRun(cluster, plan, backend, iterations=2, warmup=1).run()
        assert result.throughput_samples_per_s > 0

    def test_result_statistics(self):
        cluster = build_cluster("single-3090")
        backend = dfccl_backend(cluster)
        result = TrainingRun(cluster, small_dp_plan(), backend, iterations=4).run()
        assert result.iteration_time_cv() >= 0.0
        curve = result.cumulative_mean_throughput()
        assert len(curve) == result.iterations


class TestBenchDrivers:
    def test_measure_collective_both_backends(self):
        from repro.bench import measure_collective
        nccl = measure_collective("nccl", "all_reduce", 64 << 10, world_size=4)
        dfccl = measure_collective("dfccl", "all_reduce", 64 << 10, world_size=4)
        assert nccl["latency_us"] > 0 and dfccl["latency_us"] > 0
        # Comparable latency: within a small constant factor of each other.
        assert dfccl["latency_us"] < 4 * nccl["latency_us"]

    def test_bandwidth_grows_with_buffer_size(self):
        from repro.bench import measure_collective
        small = measure_collective("dfccl", "all_reduce", 16 << 10, world_size=4)
        large = measure_collective("dfccl", "all_reduce", 4 << 20, world_size=4)
        assert large["bandwidth_gbps"] > small["bandwidth_gbps"]

    def test_workload_independent_overheads(self):
        from repro.bench import workload_independent_overheads
        report = workload_independent_overheads(world_size=2)
        variants = {row["cq_variant"]: row["cqe_write_us"] for row in report["time_overheads"]}
        assert variants["vanilla"] > variants["optimized-ring"] > variants["optimized-cas"]
        assert report["memory_overheads"]["shared_bytes_per_block"] > 0

    def test_sec61_programs(self):
        from repro.bench import sec61_random_order_program, sec61_sync_program
        nccl = sec61_random_order_program("nccl", num_gpus=4, num_collectives=4)
        dfccl = sec61_random_order_program("dfccl", num_gpus=4, num_collectives=4,
                                           iterations=1)
        assert nccl["deadlocked"] is True
        assert dfccl["deadlocked"] is False
        sync_nccl = sec61_sync_program("nccl", num_gpus=4, num_collectives=3)
        sync_dfccl = sec61_sync_program("dfccl", num_gpus=4, num_collectives=3,
                                        iterations=1)
        assert sync_nccl["deadlocked"] is True
        assert sync_dfccl["deadlocked"] is False

    def test_table1_row_runs(self):
        from repro.bench import run_table1_row
        row = run_table1_row("sq-free-1x8-1e-5", rounds=30, collective_scale=0.2)
        assert 0.0 <= row["measured_ratio"] <= 1.0
        assert row["paper_ratio"] == pytest.approx(0.0121)

    def test_nccl_vs_mpi_large_buffer_speedup(self):
        from repro.bench import nccl_vs_mpi_comparison
        rows = nccl_vs_mpi_comparison(world_size=4, sizes=[4 << 10, 4 << 20])
        large = [row for row in rows if row["nbytes"] == 4 << 20][0]
        assert large["speedup"] > 1.0

    def test_reporting_helpers(self):
        from repro.bench import format_series, format_table
        table = format_table([{"a": 1, "b": 2.5}], title="demo")
        assert "demo" in table and "2.500" in table
        series = format_series([(1, 2.0), (2, 4.0)], "x", "y")
        assert "4.000" in series
