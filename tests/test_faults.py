"""Unit and scenario tests for the fault-injection subsystem (repro.faults)."""

import pytest

from repro.common.errors import ConfigurationError, InvalidStateError
from repro.faults import (
    FaultEvent,
    FaultPlan,
    chaos_rank_crash_comparison,
    install_fault_plan,
    run_dfccl_chaos,
    run_nccl_chaos,
)
from repro.gpusim import HostProgram, build_cluster
from repro.gpusim.device import SleepKernel

pytestmark = pytest.mark.timeout(300)


class TestFaultPlan:
    def test_builders_and_schema(self):
        plan = (FaultPlan(name="demo")
                .add_crash(3, at_us=100.0)
                .add_straggler(1, at_us=50.0, factor=4.0, duration_us=200.0)
                .add_link_flap(0, 2, at_us=10.0)
                .add_kernel_stall(2, at_us=30.0, duration_us=25.0))
        described = plan.describe()
        assert described["name"] == "demo"
        assert [event["kind"] for event in described["events"]] == [
            "rank_crash", "gpu_slowdown", "link_flap", "kernel_stall",
        ]
        assert described["events"][0]["rank"] == 3
        assert described["events"][2]["link"] == (0, 2)

    def test_timeline_expands_transients_in_time_order(self):
        plan = (FaultPlan()
                .add_straggler(0, at_us=100.0, duration_us=50.0)
                .add_crash(1, at_us=120.0))
        actions = [(action.time_us, action.action) for action in plan.timeline()]
        assert actions == [(100.0, "slowdown"), (120.0, "crash"),
                           (150.0, "restore_speed")]

    def test_validation_rejects_bad_events(self):
        with pytest.raises(ConfigurationError):
            FaultEvent("rank_crash", -1.0, rank=0).validate()
        with pytest.raises(ConfigurationError):
            FaultEvent("rank_crash", 0.0).validate()
        with pytest.raises(ConfigurationError):
            FaultEvent("link_degrade", 0.0, link=(1, 1)).validate()
        with pytest.raises(ConfigurationError):
            FaultEvent("gpu_slowdown", 0.0, rank=0, factor=0.5).validate()
        with pytest.raises(ConfigurationError):
            FaultEvent("kernel_stall", 0.0, rank=0).validate()
        with pytest.raises(ConfigurationError):
            FaultEvent("meteor_strike", 0.0, rank=0).validate()

    def test_random_plans_are_seed_deterministic(self):
        kwargs = dict(world_size=8, horizon_us=5000.0, expected_crashes=2.0)
        plan_a = FaultPlan.random(42, **kwargs)
        plan_b = FaultPlan.random(42, **kwargs)
        plan_c = FaultPlan.random(43, **kwargs)
        assert plan_a.describe() == plan_b.describe()
        assert plan_a.describe() != plan_c.describe()

    def test_random_plan_protects_ranks(self):
        for seed in range(8):
            plan = FaultPlan.random(seed, world_size=4, horizon_us=1000.0,
                                    expected_crashes=3.0, protect_ranks=(0,))
            assert 0 not in plan.crash_ranks()

    def test_shifted_delays_every_event(self):
        plan = FaultPlan().add_crash(0, at_us=10.0).add_kernel_stall(
            1, at_us=20.0, duration_us=5.0)
        shifted = plan.shifted(100.0)
        assert [event.time_us for event in shifted.events] == [110.0, 120.0]


class TestGpusimFaultHooks:
    def test_device_fail_kills_resident_kernels(self):
        cluster = build_cluster("single-3090")
        device = cluster.device(0)
        kernel = SleepKernel("victim", device, duration_us=10_000.0)
        device.enqueue_kernel(kernel, time_us=0.0)
        cluster.engine.run(until_us=50.0)
        assert kernel.launched and not kernel.completed
        killed = device.fail(60.0)
        assert kernel in killed
        assert kernel.finished and device.failed
        with pytest.raises(InvalidStateError):
            device.enqueue_kernel(SleepKernel("late", device, 1.0))

    def test_slowdown_dilates_kernel_time(self):
        def run_with(factor):
            cluster = build_cluster("single-3090")
            device = cluster.device(0)
            if factor != 1.0:
                device.set_slowdown(factor)
            kernel = SleepKernel("work", device, duration_us=100.0)
            device.enqueue_kernel(kernel, time_us=0.0)
            cluster.engine.run()
            return kernel.complete_time_us - kernel.launch_time_us

        assert run_with(4.0) == pytest.approx(4.0 * run_with(1.0))

    def test_link_degradation_and_restore(self):
        cluster = build_cluster("single-3090")
        inter = cluster.interconnect
        a, b = cluster.device(0).device_id, cluster.device(1).device_id
        baseline = inter.transfer_time_us(a, b, 1 << 20)
        inter.degrade_link(a, b, beta_factor=10.0, alpha_add_us=50.0)
        assert inter.degraded_links == 1
        degraded = inter.transfer_time_us(a, b, 1 << 20)
        assert degraded > 5 * baseline
        inter.restore_link(a, b)
        assert inter.degraded_links == 0
        assert inter.transfer_time_us(a, b, 1 << 20) == pytest.approx(baseline)

    def test_device_level_degradation_covers_all_links(self):
        cluster = build_cluster("single-3090")
        inter = cluster.interconnect
        a = cluster.device(0).device_id
        others = [cluster.device(rank).device_id for rank in (1, 5)]
        baselines = [inter.transfer_time_us(a, other, 1 << 20) for other in others]
        inter.degrade_device_links(a, beta_factor=8.0)
        for other, baseline in zip(others, baselines):
            assert inter.transfer_time_us(a, other, 1 << 20) > 4 * baseline
        inter.restore_device_links(a)
        for other, baseline in zip(others, baselines):
            assert inter.transfer_time_us(a, other, 1 << 20) == pytest.approx(baseline)

    def test_overlapping_link_degradations_stack(self):
        cluster = build_cluster("single-3090")
        inter = cluster.interconnect
        a, b = cluster.device(0).device_id, cluster.device(1).device_id
        baseline = inter.link(a, b)
        inter.degrade_link(a, b, beta_factor=10.0, alpha_add_us=5.0)
        inter.degrade_link(a, b, beta_factor=4.0, alpha_add_us=2.0)
        worst = inter.link(a, b)
        assert worst.beta_gbps == pytest.approx(baseline.beta_gbps / 10.0)
        assert worst.alpha_us == pytest.approx(baseline.alpha_us + 7.0)
        # The first fault ending must not cancel the second, still-active one.
        inter.restore_link(a, b, beta_factor=10.0, alpha_add_us=5.0)
        remaining = inter.link(a, b)
        assert remaining.beta_gbps == pytest.approx(baseline.beta_gbps / 4.0)
        inter.restore_link(a, b, beta_factor=4.0, alpha_add_us=2.0)
        assert inter.link(a, b).beta_gbps == pytest.approx(baseline.beta_gbps)

    def test_overlapping_stragglers_keep_worst_factor(self):
        from repro.faults.plan import AtomicAction

        cluster = build_cluster("single-3090")
        device = cluster.device(1)
        slow_a = FaultEvent("gpu_slowdown", 0.0, rank=1, factor=4.0,
                            duration_us=100.0)
        slow_b = FaultEvent("gpu_slowdown", 0.0, rank=1, factor=2.0,
                            duration_us=300.0)
        injector = FaultPlan(name="overlap")
        injector = install_fault_plan(cluster, injector)
        injector._apply(AtomicAction(0.0, "slowdown", slow_a))
        injector._apply(AtomicAction(50.0, "slowdown", slow_b))
        assert device.slowdown_factor == 4.0
        injector._apply(AtomicAction(100.0, "restore_speed", slow_a))
        assert device.slowdown_factor == 2.0  # b is still active
        injector._apply(AtomicAction(300.0, "restore_speed", slow_b))
        assert device.slowdown_factor == 1.0

    def test_injector_replays_plan_into_cluster(self):
        cluster = build_cluster("single-3090")
        kernel = SleepKernel("long", cluster.device(3), duration_us=5_000.0)
        cluster.device(3).enqueue_kernel(kernel, time_us=0.0)
        # A longer-lived worker elsewhere keeps the engine running past the
        # straggler's restore event.
        cluster.device(0).enqueue_kernel(
            SleepKernel("bystander", cluster.device(0), duration_us=1_000.0),
            time_us=0.0,
        )
        plan = (FaultPlan(name="inject")
                .add_straggler(1, at_us=100.0, factor=2.0, duration_us=300.0)
                .add_crash(3, at_us=200.0))
        injector = install_fault_plan(cluster, plan)
        cluster.engine.run()
        assert injector.applied_kinds() == ["slowdown", "crash", "restore_speed"]
        assert cluster.device(3).failed
        assert cluster.device(1).slowdown_factor == 1.0  # restored


class TestChaosScenarios:
    def test_nccl_crash_deadlocks_with_crash_anchored_cycle(self):
        plan = FaultPlan(name="crash").add_crash(2, at_us=80.0)
        result = run_nccl_chaos(plan, topology="single-3090", world_size=4,
                                num_collectives=1, nbytes=1 << 20, iterations=1)
        assert result.outcome == "deadlock"
        assert result.analysis.fault_induced
        assert ("crashed", 2) in result.analysis.cycle

    def test_nccl_kernel_reports_waiting_on_dead_peer(self):
        from repro.ncclsim import NcclBackend
        from repro.ncclsim.program import launch_collective, wait_collective

        cluster = build_cluster("single-3090", deadlock_mode="record")
        nccl = NcclBackend(cluster)
        comm = nccl.create_communicator(ranks=[0, 1, 2])
        op = comm.all_reduce(0, count=1 << 18)
        programs = [
            HostProgram([launch_collective(nccl, op, rank),
                         wait_collective(op, rank)])
            for rank in (0, 1, 2)
        ]
        cluster.add_hosts(programs)
        install_fault_plan(cluster, FaultPlan(name="crash").add_crash(1, at_us=30.0))
        cluster.run()
        assert cluster.engine.deadlock_report is not None
        dead_id = cluster.device(1).device_id
        stuck = [kernel for kernel in (op.kernel(0), op.kernel(2))
                 if kernel is not None and not kernel.finished]
        assert stuck
        # At least one surviving kernel is observably blocked on the dead peer.
        waits = [kernel.waiting_on() for kernel in stuck]
        assert any(wait is not None and wait[0] == dead_id for wait in waits)

    def test_dfccl_without_recovery_is_stuck_but_not_deadlocked(self):
        plan = FaultPlan(name="crash").add_crash(2, at_us=80.0)
        result = run_dfccl_chaos(plan, topology="single-3090", world_size=4,
                                 num_collectives=1, nbytes=1 << 20, iterations=1,
                                 recovery=False, deadline_us=20_000.0)
        # Preemption keeps the engine live (no deadlock report), but without
        # the recovery layer the survivors can never finish.
        assert result.outcome == "stuck"
        assert result.min_survivor_completions() == 0

    def test_dfccl_with_recovery_completes_after_crash(self):
        plan = FaultPlan(name="crash").add_crash(2, at_us=80.0)
        result = run_dfccl_chaos(plan, topology="single-3090", world_size=4,
                                 num_collectives=2, nbytes=512 << 10, iterations=2)
        assert result.outcome == "completed"
        assert result.recovery["recoveries"] >= 1
        event = result.recovery["events"][0]
        assert event["failed_ranks"] == (2,)
        assert event["survivor_ranks"] == (0, 1, 3)

    def test_link_flap_degrades_but_completes_on_both_backends(self):
        plan = FaultPlan(name="flap").add_link_flap(0, 1, at_us=20.0,
                                                    duration_us=400.0)
        healthy = run_dfccl_chaos(FaultPlan(name="ok"), topology="single-3090",
                                  world_size=4, num_collectives=1,
                                  nbytes=1 << 20, iterations=1)
        flapped = run_dfccl_chaos(plan, topology="single-3090", world_size=4,
                                  num_collectives=1, nbytes=1 << 20, iterations=1)
        assert healthy.outcome == flapped.outcome == "completed"
        assert flapped.time_us > healthy.time_us
        baseline = run_nccl_chaos(plan, topology="single-3090", world_size=4,
                                  num_collectives=1, nbytes=1 << 20, iterations=1)
        assert baseline.outcome == "completed"

    def test_rank_crash_mid_allreduce_acceptance_scenario(self):
        """The ISSUE acceptance criterion on dual-3090-nvlink."""
        result = chaos_rank_crash_comparison()
        nccl, dfccl = result["nccl"], result["dfccl"]
        assert nccl.outcome == "deadlock"
        assert nccl.analysis.fault_induced  # wait-for cycle through dead rank
        assert dfccl.outcome == "completed"
        assert dfccl.recovery["recoveries"] >= 1
        # Byte-identical reductions on every surviving rank, per invocation
        # (the default crash time lands mid-first-all-reduce, so every
        # survivor re-runs; the generation-aware check is the general form).
        assert dfccl.fingerprints_consistent()
        fingerprints = dfccl.reduction_fingerprints()
        assert fingerprints
        for per_rank in fingerprints.values():
            survivor_values = {per_rank[rank] for rank in dfccl.survivor_ranks
                               if rank in per_rank}
            assert len(survivor_values) == 1
