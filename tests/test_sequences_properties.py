"""Property tests for ``collectives.sequences``: byte conservation.

For any rank count, payload and chunking, the compiled per-rank primitive
sequences must satisfy the collective's algebra:

* **pairwise flow conservation** — the bytes rank *i* sends to rank *j*
  equal the bytes *j* receives from *i*, step by step (otherwise some
  executor would block forever on a missing or surplus chunk);
* **algebraic totals** — summed over ranks, the bytes on the wire equal the
  collective's textbook cost: ``2(n-1)·L`` for all-reduce (ring and double
  binary tree alike — each tree half carries its half up and down),
  ``(n-1)·L`` for all-gather / reduce-scatter / broadcast / reduce, where
  ``L`` is the total chunk-loop payload.

Hypothesis drives rank counts, sizes and chunk sizes; failures shrink to the
smallest diverging configuration automatically.
"""

from hypothesis import given, settings, strategies as st

from repro.common.types import CollectiveKind
from repro.collectives.sequences import (
    ALGORITHM_HIERARCHICAL,
    ALGORITHM_RING,
    ALGORITHM_TREE,
    TREE_KINDS,
    chunk_loops,
    generate_primitive_sequence,
)

KINDS = [
    CollectiveKind.ALL_REDUCE,
    CollectiveKind.ALL_GATHER,
    CollectiveKind.REDUCE_SCATTER,
    CollectiveKind.ALL_TO_ALL,
    CollectiveKind.BROADCAST,
    CollectiveKind.REDUCE,
]

#: Per-loop-byte wire multiplier of each collective (times (n-1)).
WIRE_FACTOR = {
    CollectiveKind.ALL_REDUCE: 2,
    CollectiveKind.ALL_GATHER: 1,
    CollectiveKind.REDUCE_SCATTER: 1,
    CollectiveKind.ALL_TO_ALL: 1,
    CollectiveKind.BROADCAST: 1,
    CollectiveKind.REDUCE: 1,
}

group_sizes = st.integers(min_value=2, max_value=24)
payloads = st.integers(min_value=1, max_value=2 << 20)
chunks = st.sampled_from([4 << 10, 32 << 10, 128 << 10])
kinds = st.sampled_from(KINDS)
roots = st.integers(min_value=0, max_value=23)
algorithms = st.sampled_from([ALGORITHM_RING, ALGORITHM_TREE])


def _sequences(kind, group_size, nbytes, chunk_bytes, root, algorithm):
    return {
        rank: generate_primitive_sequence(
            kind, rank, group_size, nbytes, chunk_bytes=chunk_bytes,
            root=root % group_size, algorithm=algorithm,
        )
        for rank in range(group_size)
    }


def _flows(sequences):
    """``{(src, dst): [(loop, step, nbytes), ...]}`` send and recv views."""
    sends, recvs = {}, {}
    for rank, sequence in sequences.items():
        for primitive in sequence:
            if primitive.sends and primitive.send_peer is not None:
                sends.setdefault((rank, primitive.send_peer), []).append(
                    primitive.nbytes)
            if primitive.recvs and primitive.recv_peer is not None:
                recvs.setdefault((primitive.recv_peer, rank), []).append(
                    primitive.nbytes)
    return sends, recvs


@settings(max_examples=120, deadline=None)
@given(kind=kinds, group_size=group_sizes, nbytes=payloads, chunk_bytes=chunks,
       root=roots, algorithm=algorithms)
def test_pairwise_flow_conservation(kind, group_size, nbytes, chunk_bytes,
                                    root, algorithm):
    """Every byte sent i->j is received j<-i, in the same per-step sizes."""
    sequences = _sequences(kind, group_size, nbytes, chunk_bytes, root, algorithm)
    sends, recvs = _flows(sequences)
    assert set(sends) == set(recvs)
    for pair, sent in sends.items():
        assert sorted(sent) == sorted(recvs[pair]), f"flow mismatch on {pair}"


@settings(max_examples=120, deadline=None)
@given(kind=kinds, group_size=group_sizes, nbytes=payloads, chunk_bytes=chunks,
       root=roots, algorithm=algorithms)
def test_total_wire_bytes_match_algebraic_cost(kind, group_size, nbytes,
                                               chunk_bytes, root, algorithm):
    """Summed over ranks, wire bytes equal the collective's textbook cost."""
    sequences = _sequences(kind, group_size, nbytes, chunk_bytes, root, algorithm)
    total_sent = sum(
        primitive.nbytes
        for sequence in sequences.values()
        for primitive in sequence
        if primitive.sends and primitive.send_peer is not None
    )
    tree = algorithm == ALGORITHM_TREE and kind in TREE_KINDS
    sliced = not tree and kind in (
        CollectiveKind.ALL_REDUCE,
        CollectiveKind.ALL_GATHER,
        CollectiveKind.REDUCE_SCATTER,
        CollectiveKind.ALL_TO_ALL,
    )
    loop_total = sum(chunk_loops(nbytes, group_size, chunk_bytes,
                                 per_rank_slices=sliced))
    # Sliced ring collectives: every rank moves factor*(n-1) slices of the
    # per-loop slice size, so the cluster-wide total carries an extra factor
    # of n (with exact division this is the textbook factor*(n-1)*nbytes).
    # Chains and trees move whole loop payloads over n-1 logical edges.
    participants = group_size if sliced else 1
    expected = WIRE_FACTOR[kind] * (group_size - 1) * loop_total * participants
    assert total_sent == expected


@settings(max_examples=80, deadline=None)
@given(group_size=group_sizes, nbytes=payloads, chunk_bytes=chunks)
def test_symmetric_collectives_balance_per_rank(group_size, nbytes, chunk_bytes):
    """Symmetric collectives: each rank sends exactly what it receives."""
    for kind in (CollectiveKind.ALL_REDUCE, CollectiveKind.ALL_GATHER,
                 CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALL_TO_ALL):
        sequences = _sequences(kind, group_size, nbytes, chunk_bytes, 0,
                               ALGORITHM_RING)
        for rank, sequence in sequences.items():
            sent = sum(p.nbytes for p in sequence
                       if p.sends and p.send_peer is not None)
            received = sum(p.nbytes for p in sequence
                           if p.recvs and p.recv_peer is not None)
            assert sent == received, f"rank {rank} imbalance for {kind}"


@settings(max_examples=80, deadline=None)
@given(group_size=group_sizes, nbytes=payloads, chunk_bytes=chunks, root=roots)
def test_rooted_collectives_source_and_sink(group_size, nbytes, chunk_bytes, root):
    """Broadcast: only the root injects net bytes; reduce: only it absorbs."""
    root %= group_size
    for kind, net_at_root in ((CollectiveKind.BROADCAST, 1),
                              (CollectiveKind.REDUCE, -1)):
        sequences = _sequences(kind, group_size, nbytes, chunk_bytes, root,
                               ALGORITHM_RING)
        loop_total = sum(chunk_loops(nbytes, group_size, chunk_bytes,
                                     per_rank_slices=False))
        for rank, sequence in sequences.items():
            sent = sum(p.nbytes for p in sequence
                       if p.sends and p.send_peer is not None)
            received = sum(p.nbytes for p in sequence
                           if p.recvs and p.recv_peer is not None)
            if rank == root:
                assert sent - received == net_at_root * loop_total
            else:
                # Interior chain ranks forward; the chain end nets the data.
                assert sent - received in (0, -net_at_root * loop_total)


# -- hierarchical all-reduce ---------------------------------------------------

island_sizes = st.integers(min_value=2, max_value=6)
island_counts = st.integers(min_value=2, max_value=6)


def _hierarchical_sequences(island_size, islands, nbytes, chunk_bytes):
    group_size = island_size * islands
    return group_size, {
        rank: generate_primitive_sequence(
            CollectiveKind.ALL_REDUCE, rank, group_size, nbytes,
            chunk_bytes=chunk_bytes, algorithm=ALGORITHM_HIERARCHICAL,
            island_size=island_size,
        )
        for rank in range(group_size)
    }


@settings(max_examples=100, deadline=None)
@given(island_size=island_sizes, islands=island_counts, nbytes=payloads,
       chunk_bytes=chunks)
def test_hierarchical_all_reduce_flow_conservation(island_size, islands,
                                                   nbytes, chunk_bytes):
    """Two-level all-reduce: every byte sent i->j is received j<-i."""
    _, sequences = _hierarchical_sequences(island_size, islands, nbytes,
                                           chunk_bytes)
    sends, recvs = _flows(sequences)
    assert set(sends) == set(recvs)
    for pair, sent in sends.items():
        assert sorted(sent) == sorted(recvs[pair]), f"flow mismatch on {pair}"


@settings(max_examples=100, deadline=None)
@given(island_size=island_sizes, islands=island_counts, nbytes=payloads,
       chunk_bytes=chunks)
def test_hierarchical_all_reduce_wire_totals_match_flat_ring(
        island_size, islands, nbytes, chunk_bytes):
    """The two-level schedule moves exactly the flat ring's byte volume.

    Per rank: ``2(m-1)`` intra-island slabs of ``k`` slices plus ``2(k-1)``
    inter-island slices equals ``2(n-1)`` slices — the textbook
    bandwidth-optimal all-reduce total.  Only the link placement differs.
    """
    group_size, sequences = _hierarchical_sequences(island_size, islands,
                                                    nbytes, chunk_bytes)
    loop_total = sum(chunk_loops(nbytes, group_size, chunk_bytes,
                                 per_rank_slices=True))
    for rank, sequence in sequences.items():
        sent = sum(p.nbytes for p in sequence
                   if p.sends and p.send_peer is not None)
        received = sum(p.nbytes for p in sequence
                       if p.recvs and p.recv_peer is not None)
        assert sent == received, f"rank {rank} imbalance"
        assert sent == 2 * (group_size - 1) * loop_total


@settings(max_examples=60, deadline=None)
@given(island_size=island_sizes, islands=island_counts, nbytes=payloads,
       chunk_bytes=chunks)
def test_hierarchical_peers_stay_in_tier(island_size, islands, nbytes,
                                         chunk_bytes):
    """Slab-sized steps stay inside an island; slice steps cross islands.

    This is the schedule's entire point: only the ``2(k-1)`` single-slice
    steps may touch inter-island links.
    """
    group_size, sequences = _hierarchical_sequences(island_size, islands,
                                                    nbytes, chunk_bytes)
    nloops = len(chunk_loops(nbytes, group_size, chunk_bytes,
                             per_rank_slices=True))
    for rank, sequence in sequences.items():
        island = rank // island_size
        crossing_sends = 0
        intra_sends = 0
        for primitive in sequence:
            if primitive.sends and primitive.send_peer is not None:
                if primitive.send_peer // island_size == island:
                    intra_sends += 1
                else:
                    crossing_sends += 1
            for peer in (primitive.send_peer, primitive.recv_peer):
                if peer is not None and peer // island_size != island:
                    assert peer % island_size == rank % island_size, (
                        f"inter-island step not between position peers: "
                        f"{rank}->{peer}"
                    )
        assert crossing_sends == 2 * (islands - 1) * nloops
        assert intra_sends == 2 * (island_size - 1) * nloops
