"""Tests for the differential conformance fuzzer (``repro.testing``).

Includes the committed *negative* test: a backend with a deliberately
injected sequence bug (wrong chunking on an otherwise correct engine) must be
caught by the checker's sequence-parity invariant, and the minimizer must
shrink the failing program.
"""

import pytest

from repro.api import register_backend
from repro.api.nccl_adapter import NcclCollectiveBackend
from repro.common.errors import ConfigurationError
from repro.testing import (
    CallSpec,
    GroupSpec,
    ProgramSpec,
    check_program,
    generate_program,
    replay_program,
    topology_for_world,
)
from repro.testing.differential import DEFAULT_BACKENDS
from repro.testing.fuzz import fuzz, main, minimize_program
from dataclasses import replace


class TestGenerator:
    def test_same_seed_same_program(self):
        one = generate_program(seed=123, world_size=6)
        two = generate_program(seed=123, world_size=6)
        assert one.describe() == two.describe()

    def test_different_seeds_differ(self):
        programs = {repr(generate_program(seed=s, world_size=6).describe())
                    for s in range(8)}
        assert len(programs) > 1

    def test_programs_are_well_formed(self):
        for seed in range(20):
            program = generate_program(seed=seed, world_size=8)
            assert program.groups[0].ranks == tuple(range(8))
            for call in program.calls:
                group = program.group(call.group_index)
                assert call.count >= 1
                assert 0 <= call.root < len(group.ranks)
                # Every member rank issues the call exactly once.
                for rank in range(8):
                    occurrences = program.order_for(rank).count(call.call_id)
                    assert occurrences == (1 if rank in group.ranks else 0)

    def test_fault_programs_always_crash_someone(self):
        program = generate_program(seed=77, world_size=8, with_faults=True)
        assert program.has_faults
        assert program.crashed_ranks()
        assert 0 not in program.crashed_ranks()

    def test_topology_for_world(self):
        assert topology_for_world(4) == "single-3090"
        assert topology_for_world(16) == "dual-3090"
        assert topology_for_world(32) == "mixed-32"
        assert topology_for_world(64) == "fat-tree-64"
        assert topology_for_world(500) == "fat-tree-504"
        with pytest.raises(ConfigurationError):
            topology_for_world(0)


class TestReplay:
    def test_replay_completes_and_records(self):
        program = generate_program(seed=1, world_size=4)
        result = replay_program(program, "dfccl")
        assert result.completed
        assert result.records
        assert all(record.done for record in result.records)
        # dfccl compiles sequences; every record carries one.
        assert result.sequences_available()

    def test_mpi_has_no_sequences(self):
        program = generate_program(seed=1, world_size=4)
        result = replay_program(program, "mpi")
        assert result.completed
        assert not result.sequences_available()

    def test_deadline_yields_stuck(self):
        program = replace(generate_program(seed=1, world_size=4),
                          deadline_us=1.0)
        result = replay_program(program, "dfccl")
        assert result.outcome == "stuck"
        undone = [record for record in result.records if not record.done]
        assert undone
        assert all(record.members is None for record in undone)


class TestChecker:
    def test_clean_programs_pass(self):
        for seed in (3, 11, 29):
            program = generate_program(seed=seed, world_size=5)
            check = check_program(program)
            assert check.ok, check.summary()
            assert set(check.results) == set(DEFAULT_BACKENDS)

    def test_fault_program_checks_dfccl_only(self):
        program = generate_program(seed=77, world_size=8, with_faults=True)
        check = check_program(program)
        assert check.ok, check.summary()
        assert set(check.results) == {"dfccl"}

    def test_determinism_replay_included(self):
        program = generate_program(seed=8, world_size=4)
        check = check_program(program, check_determinism=True)
        assert check.ok

    def test_dead_root_broadcast_aborts_instead_of_hanging(self):
        """Fuzzer-found recovery gap: a rooted collective whose root dies
        cannot be re-formed — survivors' waits must resolve as *aborted*
        (communicator-abort semantics) instead of spinning to the deadline."""
        from repro.faults.plan import FaultPlan

        order = (0,)
        program = ProgramSpec(
            seed=0, world_size=4, topology="single-3090",
            chunk_bytes=64 << 10, algorithm="ring",
            groups=(GroupSpec(0, (0, 1, 2, 3)),),
            calls=(CallSpec(call_id=0, group_index=0, kind="broadcast",
                            count=1 << 12, root=3, key="c0"),),
            orders=(order, order, order, order),
            # The root dies before it can submit anything: its data is gone.
            fault_plan=FaultPlan("dead-root").add_crash(3, at_us=0.5),
            deadline_us=100_000.0,
        )
        result = replay_program(program, "dfccl")
        assert result.outcome == "completed"
        assert result.time_us < program.deadline_us
        survivors = [rec for rec in result.records if rec.rank != 3]
        assert survivors
        assert all(rec.aborted and not rec.done for rec in survivors)
        check = check_program(program)
        assert check.ok, check.summary()

    def test_stuck_fault_program_is_flagged(self):
        """A recovery hang is a divergence even without an engine deadlock
        report: survivors of a fault program must complete by the deadline."""
        program = replace(
            generate_program(seed=77, world_size=8, with_faults=True),
            deadline_us=1.0,
        )
        check = check_program(program, check_determinism=False)
        assert not check.ok
        assert any(d.invariant == "liveness" and d.backend == "dfccl"
                   for d in check.divergences)


def _single_all_reduce_program(count=1 << 16, chunk_bytes=16 << 10, calls=1):
    """A handcrafted program big enough that chunking shapes the sequence."""
    call_list = tuple(
        CallSpec(call_id=i, group_index=0, kind="all_reduce", count=count,
                 key=f"c{i}")
        for i in range(calls)
    )
    order = tuple(call.call_id for call in call_list)
    return ProgramSpec(
        seed=0,
        world_size=4,
        topology="single-3090",
        chunk_bytes=chunk_bytes,
        algorithm="ring",
        groups=(GroupSpec(0, (0, 1, 2, 3)),),
        calls=call_list,
        orders=(order, order, order, order),
    )


class _WrongChunkNcclBackend(NcclCollectiveBackend):
    """Deliberately injected sequence bug: ignores the requested chunk size.

    Every rank is internally consistent (the program completes!), but the
    compiled per-rank primitive sequences no longer match DFCCL's — exactly
    the class of silent divergence the differential checker exists to catch.
    """

    name = "nccl-wrongchunk"

    def __init__(self, cluster, chunk_bytes=None, **knobs):
        wrong = (chunk_bytes // 2) if chunk_bytes else 64 << 10
        super().__init__(cluster, chunk_bytes=wrong, **knobs)


register_backend("nccl-wrongchunk", _WrongChunkNcclBackend)


class TestNegative:
    """The checker must catch an injected sequence bug (acceptance criterion)."""

    def test_wrong_chunking_is_caught(self):
        program = _single_all_reduce_program()
        check = check_program(program, backends=("dfccl", "nccl-wrongchunk"),
                              check_determinism=False)
        assert not check.ok
        invariants = {divergence.invariant for divergence in check.divergences}
        assert "sequence-parity" in invariants
        # The program itself completed on both backends: the bug is silent
        # without differential checking.
        assert all(result.completed for result in check.results.values())

    def test_healthy_backend_passes_same_program(self):
        program = _single_all_reduce_program()
        check = check_program(program, backends=("dfccl", "nccl"),
                              check_determinism=False)
        assert check.ok, check.summary()

    def test_minimizer_shrinks_failing_program(self):
        program = _single_all_reduce_program(calls=3)
        backends = ("dfccl", "nccl-wrongchunk")
        assert not check_program(program, backends=backends,
                                 check_determinism=False).ok
        minimized = minimize_program(program, backends=backends)
        assert len(minimized.calls) == 1
        assert minimized.calls[0].count < program.calls[0].count
        # Still failing: the minimizer never "fixes" the reproducer.
        assert not check_program(minimized, backends=backends,
                                 check_determinism=False).ok

    def test_fuzz_loop_reports_failure(self, monkeypatch):
        """The loop must actually surface a divergent program as a failure."""
        import repro.testing.fuzz as fuzz_module

        monkeypatch.setattr(
            fuzz_module, "program_at",
            lambda seed, index, **_: _single_all_reduce_program(),
        )
        summary = fuzz(seed=5, programs=3, backends=("dfccl", "nccl-wrongchunk"),
                       log=lambda *_: None)
        assert len(summary["failures"]) == 1  # stop_on_failure default
        failure = summary["failures"][0]
        assert failure["index"] == 0
        assert any("sequence-parity" in d for d in failure["divergences"])

    def test_failure_writes_flight_recorder_artifacts(self, monkeypatch,
                                                      tmp_path):
        """A seeded failure lands the minimized program plus a flight dump."""
        import json

        import repro.testing.fuzz as fuzz_module

        monkeypatch.setattr(
            fuzz_module, "program_at",
            lambda seed, index, **_: _single_all_reduce_program(),
        )
        summary = fuzz(seed=5, programs=1,
                       backends=("dfccl", "nccl-wrongchunk"),
                       minimize=True, artifact_dir=str(tmp_path),
                       log=lambda *_: None)
        failure = summary["failures"][0]
        program_path, flight_path = failure["artifacts"]
        assert program_path.endswith("fuzz-seed5-p0.program.json")
        assert flight_path.endswith("fuzz-seed5-p0.flight.json")

        with open(program_path, encoding="utf-8") as handle:
            program_doc = json.load(handle)
        # The minimized reproducer, not the original 3-call program.
        assert program_doc["program"] == json.loads(
            json.dumps(failure["minimized"].describe(), default=str))
        assert any("sequence-parity" in d for d in program_doc["divergences"])

        with open(flight_path, encoding="utf-8") as handle:
            flight = json.load(handle)
        assert flight["reason"] == "fuzz"
        assert flight["context"]["backend"] == "dfccl"
        assert flight["events"], "flight dump must carry engine step events"
        assert flight["spans"], "flight dump must carry collective spans"
        assert flight["metrics"]["engine_steps"] > 0

    def test_main_exits_nonzero_and_prints_repro_on_failure(self, monkeypatch,
                                                            capsys):
        import repro.testing.fuzz as fuzz_module

        monkeypatch.setattr(
            fuzz_module, "program_at",
            lambda seed, index, **_: _single_all_reduce_program(),
        )
        exit_code = main(["--seed", "5", "--programs", "2", "--ranks", "16",
                          "--fault-fraction", "0.25", "--max-calls", "6",
                          "--backends", "dfccl,nccl-wrongchunk"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "failing program:" in captured.out
        # The repro command echoes the original generation knobs, not the
        # drawn world size.
        assert ("repro: python -m repro.testing.fuzz --seed 5 --programs 1 "
                "--ranks 16 --fault-fraction 0.25 --max-calls 6") in captured.out


class TestFuzzCli:
    def test_cli_smoke_passes(self, capsys):
        exit_code = main(["--seed", "1", "--programs", "4"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "0 divergent" in captured.out

    def test_fuzz_function_clean_run(self):
        summary = fuzz(seed=2, programs=5, log=lambda *_: None)
        assert summary["failures"] == []
        assert summary["programs"] == 5
        assert summary["calls"] >= 5


class TestReproFidelity:
    def test_program_at_is_pure_and_index_independent(self):
        from repro.testing.fuzz import program_at

        knobs = {"max_ranks": 32, "fault_fraction": 0.4, "max_calls": 6}
        once = program_at(7, 11, **knobs)
        again = program_at(7, 11, **knobs)
        assert once.describe() == again.describe()

    def test_program_at_depends_on_generation_knobs(self):
        """The drawn program is a function of the knobs, which is exactly why
        the printed repro command must echo them rather than the drawn
        world size."""
        from repro.testing.fuzz import program_at

        wide = [program_at(0, i, max_ranks=32).describe() for i in range(10)]
        narrow = [program_at(0, i, max_ranks=8).describe() for i in range(10)]
        assert wide != narrow

    def test_fuzz_summary_carries_knobs(self):
        summary = fuzz(seed=3, programs=2, max_ranks=16, fault_fraction=0.5,
                       max_calls=3, log=lambda *_: None)
        assert summary["knobs"] == {"max_ranks": 16, "fault_fraction": 0.5,
                                    "max_calls": 3}

    def test_fuzz_loop_matches_program_at(self):
        """The loop generates exactly what the repro function regenerates."""
        from repro.testing.fuzz import program_at

        seen = []
        fuzz(seed=9, programs=3, max_ranks=16, fault_fraction=0.3,
             max_calls=4, verbose=True,
             log=lambda line: seen.append(line))
        for index in range(3):
            regenerated = program_at(9, index, max_ranks=16,
                                     fault_fraction=0.3, max_calls=4)
            assert f"seed={regenerated.seed} " in seen[index]
            assert f"world={regenerated.world_size} " in seen[index]
