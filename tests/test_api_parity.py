"""Cross-backend parity suite.

The acceptance property of the ``repro.api`` redesign: the *same*
ProcessGroup program yields identical per-rank primitive sequences whether a
shared DFCCL daemon kernel or dedicated NCCL kernels execute it.  Both
backends compile their sequences through
:func:`repro.collectives.sequences.generate_primitive_sequence`; parity means
the unified front-end feeds them identical (kind, rank, size, chunking,
algorithm) inputs on every rank.

Run in CI with ``-W error::DeprecationWarning``: these paths must never touch
the legacy shims.
"""

import pytest

from repro.api import make_backend, wait_all
from repro.common.types import CollectiveKind, CollectiveSpec
from repro.gpusim import HostProgram, build_cluster

CHUNK = 64 << 10

KINDS = [
    ("all_reduce", {}),
    ("all_gather", {}),
    ("reduce_scatter", {}),
    ("broadcast", {"root": 1}),
    ("reduce", {"root": 2}),
]


def _run_program(backend_name, world_size, program, topology="single-3090",
                 algorithm="ring"):
    """Run ``program(group, rank) -> [works]`` for every rank; return works."""
    cluster = build_cluster(topology)
    backend = make_backend(backend_name, cluster, chunk_bytes=CHUNK,
                           algorithm=algorithm)
    group = backend.new_group(list(range(world_size)))
    works_by_rank = {}
    programs = []
    for rank in group.ranks:
        works = program(group, rank)
        works_by_rank[rank] = works
        ops = [work.submit_op() for work in works] + wait_all(works)
        ops.extend(backend.finalize_ops(rank))
        programs.append(HostProgram(ops))
    cluster.add_hosts(programs)
    cluster.run()
    return works_by_rank


def _sequences(works_by_rank):
    return {
        rank: [work.primitive_sequence() for work in works]
        for rank, works in works_by_rank.items()
    }


class TestPrimitiveSequenceParity:
    @pytest.mark.parametrize("kind,extra", KINDS)
    def test_single_collective_identical_sequences(self, kind, extra):
        spec = CollectiveSpec(CollectiveKind(kind), 1 << 16, **extra)

        def program(group, rank):
            return [group.collective(rank, spec, key=0)]

        dfccl = _sequences(_run_program("dfccl", 4, program))
        nccl = _sequences(_run_program("nccl", 4, program))
        assert dfccl == nccl
        # Sequences are non-trivial (real primitives, not placeholders).
        assert all(len(seqs[0]) > 0 for seqs in dfccl.values())

    def test_disordered_multi_collective_program(self):
        """Per-rank submission order must not change what each rank executes.

        Each collective runs on its own stream so the dedicated-kernel
        baseline survives the disorder (one shared stream would wedge it —
        that deadlock is covered in test_api).
        """

        def program(group, rank):
            order = [0, 1, 2] if rank % 2 == 0 else [2, 1, 0]
            return [group.all_reduce(rank, 1 << 14, key=key, stream=f"s{key}")
                    for key in order]

        # Compare per logical key, not submission position.
        def by_key(works_by_rank):
            return {
                rank: {work.key: work.primitive_sequence() for work in works}
                for rank, works in works_by_rank.items()
            }

        dfccl_works = _run_program("dfccl", 4, program)
        nccl_works = _run_program("nccl", 4, program)
        assert by_key(dfccl_works) == by_key(nccl_works)

    @pytest.mark.parametrize("algorithm", ["ring", "tree"])
    def test_algorithm_parity(self, algorithm):
        spec = CollectiveSpec(CollectiveKind.ALL_REDUCE, 1 << 15)

        def program(group, rank):
            return [group.collective(rank, spec, key=0)]

        dfccl = _sequences(_run_program("dfccl", 8, program, algorithm=algorithm))
        nccl = _sequences(_run_program("nccl", 8, program, algorithm=algorithm))
        assert dfccl == nccl

    def test_subgroup_parity(self):
        """A group over a rank subset compiles the same compacted sequences."""

        def program(group, rank):
            return [group.all_reduce(rank, 1 << 14, key="sub")]

        def run(backend_name):
            cluster = build_cluster("single-3090")
            backend = make_backend(backend_name, cluster, chunk_bytes=CHUNK)
            group = backend.new_group([1, 3, 5])
            works_by_rank = {}
            programs = {}
            for rank in group.ranks:
                works = program(group, rank)
                works_by_rank[rank] = works
                ops = [work.submit_op() for work in works] + wait_all(works)
                ops.extend(backend.finalize_ops(rank))
                programs[rank] = HostProgram(ops)
            for rank, host_program in programs.items():
                cluster.add_host(rank, host_program, name=f"h{rank}")
            cluster.run()
            return _sequences(works_by_rank)

        assert run("dfccl") == run("nccl")


class TestCompletionParity:
    def test_same_completion_surface(self):
        """done / completion_info answer identically across backends."""

        def program(group, rank):
            return [group.all_reduce(rank, 1 << 14, key=key) for key in (0, 1)]

        for backend_name in ("dfccl", "nccl", "mpi"):
            works_by_rank = _run_program(backend_name, 4, program)
            for works in works_by_rank.values():
                for work in works:
                    assert work.done
                    info = work.completion_info()
                    assert info.member_ranks == (0, 1, 2, 3)
                    assert info.signature[0] == 0  # no recovery happened
                    assert info.time_us >= 0.0

    def test_invocation_indices_align_across_backends(self):
        def program(group, rank):
            return [group.all_reduce(rank, 1 << 12, key=0) for _ in range(3)]

        for backend_name in ("dfccl", "nccl", "mpi"):
            works_by_rank = _run_program(backend_name, 2, program)
            for works in works_by_rank.values():
                assert [work.index for work in works] == [0, 1, 2]


class TestDiagnosticsParity:
    def test_every_backend_reports_diagnostics(self):
        """No backend falls back to the empty CollectiveBackend default."""

        def program(group, rank):
            return [group.all_reduce(rank, 1 << 14, key=0)]

        for backend_name in ("dfccl", "nccl", "mpi"):
            cluster = build_cluster("single-3090")
            backend = make_backend(backend_name, cluster, chunk_bytes=CHUNK,
                                   algorithm="ring")
            group = backend.new_group([0, 1, 2, 3])
            programs = []
            for rank in group.ranks:
                works = program(group, rank)
                ops = [work.submit_op() for work in works] + wait_all(works)
                ops.extend(backend.finalize_ops(rank))
                programs.append(HostProgram(ops))
            cluster.add_hosts(programs)
            cluster.run()
            diag = backend.diagnostics()
            assert diag, f"{backend_name} returned empty diagnostics"
            assert diag["metrics"]["collective_invocations"] == 1


class TestMeasureCollectiveParity:
    def test_measure_collective_runs_on_every_backend(self):
        from repro.bench import measure_collective

        rows = [measure_collective(backend, "all_reduce", 256 << 10, world_size=4)
                for backend in ("dfccl", "nccl", "mpi")]
        for row in rows:
            assert row["latency_us"] > 0
            assert row["bandwidth_gbps"] > 0
        # The paper's ordering at 256 KB: both GPU backends beat host-staged
        # MPI.
        by_backend = {row["backend"]: row for row in rows}
        assert by_backend["mpi"]["bandwidth_gbps"] < by_backend["nccl"]["bandwidth_gbps"]
        assert by_backend["mpi"]["bandwidth_gbps"] < by_backend["dfccl"]["bandwidth_gbps"]
