"""Property tests for the placement policies.

The three policies must all be: *capacity-respecting* (never exceed the
per-GPU tenant cap, never hand out failed devices), *disjoint* (within one
lease every rank is distinct; with a tenant cap of one, concurrent leases are
globally disjoint), and *deterministic* (the same seeded request sequence
produces identical placements on every run).
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.gpusim import build_cluster
from repro.multijob.placement import PLACEMENT_POLICIES, make_placement_policy

POLICY_NAMES = sorted(PLACEMENT_POLICIES)


def _cluster(topology="dual-3090-nvlink"):
    return build_cluster(topology, deadlock_mode="record")


def _random_requests(seed, count=40, max_world=8):
    rng = DeterministicRNG(seed).child("placement-prop")
    sizes = [1, 2, 4, max_world]
    events = []
    for index in range(count):
        if rng.bernoulli(0.35):
            events.append(("release", rng.randint(0, index)))
        events.append(("place", rng.choice(sizes)))
    return events


def _replay(policy_name, cluster, events, capacity):
    """Replay place/release events; returns the list of granted leases."""
    policy = make_placement_policy(policy_name)
    load = {rank: 0 for rank in range(cluster.world_size)}
    active = {}
    leases = []
    for index, (action, value) in enumerate(events):
        if action == "release":
            lease = active.pop(value, None)
            if lease is not None:
                for rank in lease:
                    load[rank] -= 1
            continue
        ranks = policy.place(value, load, capacity, cluster)
        leases.append(ranks)
        if ranks is not None:
            active[len(leases) - 1] = ranks
            for rank in ranks:
                load[rank] += 1
    return leases


class TestPlacementProperties:
    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    def test_within_lease_ranks_are_disjoint(self, policy_name):
        cluster = _cluster()
        for leases in (_replay(policy_name, cluster, _random_requests(5), 2),):
            for lease in leases:
                if lease is not None:
                    assert len(set(lease)) == len(lease)

    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    def test_capacity_one_gives_globally_disjoint_leases(self, policy_name):
        cluster = _cluster()
        policy = make_placement_policy(policy_name)
        load = {rank: 0 for rank in range(cluster.world_size)}
        granted = []
        for world in (4, 4, 4, 4, 4):
            ranks = policy.place(world, load, 1, cluster)
            if ranks is None:
                continue
            for rank in ranks:
                load[rank] += 1
            granted.append(set(ranks))
        for i, first in enumerate(granted):
            for second in granted[i + 1:]:
                assert not (first & second)
        # 16 GPUs / 4 per job at capacity 1: exactly four leases fit.
        assert len(granted) == 4
        assert policy.place(4, load, 1, cluster) is None

    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    @pytest.mark.parametrize("capacity", [1, 2, 3])
    def test_capacity_is_respected(self, policy_name, capacity):
        cluster = _cluster()
        policy = make_placement_policy(policy_name)
        load = {rank: 0 for rank in range(cluster.world_size)}
        for _ in range(64):
            ranks = policy.place(2, load, capacity, cluster)
            if ranks is None:
                break
            for rank in ranks:
                load[rank] += 1
                assert load[rank] <= capacity
        assert max(load.values()) <= capacity

    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_deterministic_under_seed(self, policy_name, seed):
        events = _random_requests(seed)
        first = _replay(policy_name, _cluster(), events, 2)
        second = _replay(policy_name, _cluster(), events, 2)
        assert first == second

    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    def test_insufficient_capacity_returns_none(self, policy_name):
        cluster = _cluster()
        policy = make_placement_policy(policy_name)
        load = {rank: 1 for rank in range(cluster.world_size)}
        assert policy.place(4, load, 1, cluster) is None


class TestPolicyShapes:
    def test_packed_consolidates_low_ranks(self):
        cluster = _cluster()
        policy = make_placement_policy("packed")
        load = {rank: 0 for rank in range(cluster.world_size)}
        first = policy.place(4, load, 2, cluster)
        assert first == (0, 1, 2, 3)
        for rank in first:
            load[rank] += 1
        # Packed re-uses the same GPUs while slots remain.
        second = policy.place(4, load, 2, cluster)
        assert second == (0, 1, 2, 3)

    def test_spread_balances_load(self):
        cluster = _cluster()
        policy = make_placement_policy("spread")
        load = {rank: 0 for rank in range(cluster.world_size)}
        first = policy.place(8, load, 2, cluster)
        for rank in first:
            load[rank] += 1
        second = policy.place(8, load, 2, cluster)
        assert not (set(first) & set(second))

    def test_nvlink_affine_stays_in_one_island(self):
        # dual-3090-nvlink has 4-GPU NVLink islands.
        cluster = _cluster("dual-3090-nvlink")
        policy = make_placement_policy("nvlink-affine")
        load = {rank: 0 for rank in range(cluster.world_size)}
        lease = policy.place(4, load, 2, cluster)
        interconnect = cluster.interconnect
        domains = {
            (cluster.device(rank).device_id.node,
             interconnect.nvlink_domain(cluster.device(rank).device_id))
            for rank in lease
        }
        assert len(domains) == 1

    def test_nvlink_affine_falls_back_to_node_then_spread(self):
        cluster = _cluster("dual-3090-nvlink")
        policy = make_placement_policy("nvlink-affine")
        load = {rank: 0 for rank in range(cluster.world_size)}
        # 8 GPUs exceed any 4-GPU island but fit one node.
        lease = policy.place(8, load, 2, cluster)
        nodes = {cluster.device(rank).device_id.node for rank in lease}
        assert len(nodes) == 1
        # 16 GPUs exceed any node: spread fallback must still place.
        lease = policy.place(16, load, 2, cluster)
        assert lease is not None and len(lease) == 16

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_placement_policy("random")
