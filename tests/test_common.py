"""Tests for repro.common: types, virtual time, RNG, errors."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import DeadlockError, ReproError, ResourceExhaustedError
from repro.common.rng import DeterministicRNG
from repro.common.types import (
    CollectiveKind,
    CollectiveSpec,
    DataType,
    DeviceId,
    LinkType,
    ReduceOp,
)
from repro.common.vtime import VirtualClock, gbps_bytes_per_us, us_to_ms, us_to_s


class TestDataType:
    def test_byte_sizes(self):
        assert DataType.FLOAT32.byte_size(10) == 40
        assert DataType.FLOAT16.byte_size(10) == 20
        assert DataType.INT64.byte_size(3) == 24

    @pytest.mark.parametrize("dtype", list(DataType))
    def test_all_dtypes_have_positive_width(self, dtype):
        assert dtype.nbytes > 0


class TestCollectiveSpec:
    def test_nbytes(self):
        spec = CollectiveSpec(CollectiveKind.ALL_REDUCE, count=1024)
        assert spec.nbytes == 4096

    def test_validate_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            CollectiveSpec(CollectiveKind.ALL_REDUCE, count=0).validate()

    def test_validate_rejects_negative_root(self):
        with pytest.raises(ValueError):
            CollectiveSpec(CollectiveKind.BROADCAST, count=4, root=-1).validate()

    def test_validate_passes_for_valid_spec(self):
        spec = CollectiveSpec(CollectiveKind.REDUCE, count=16, op=ReduceOp.MAX, root=2)
        assert spec.validate() is spec

    @pytest.mark.parametrize("kind,expected", [
        (CollectiveKind.ALL_REDUCE, True),
        (CollectiveKind.REDUCE_SCATTER, True),
        (CollectiveKind.REDUCE, True),
        (CollectiveKind.ALL_GATHER, False),
        (CollectiveKind.BROADCAST, False),
    ])
    def test_reduces_flag(self, kind, expected):
        assert kind.reduces is expected


class TestLinkType:
    def test_transfer_time_includes_alpha(self):
        assert LinkType.RDMA.transfer_time_us(0) == pytest.approx(LinkType.RDMA.alpha_us)

    def test_transfer_time_monotonic_in_size(self):
        small = LinkType.SHM_PIX.transfer_time_us(1 << 10)
        large = LinkType.SHM_PIX.transfer_time_us(1 << 20)
        assert large > small

    def test_faster_links_are_faster(self):
        nbytes = 4 << 20
        assert (LinkType.NVLINK.transfer_time_us(nbytes)
                < LinkType.SHM_PIX.transfer_time_us(nbytes)
                < LinkType.RDMA.transfer_time_us(nbytes))


class TestDeviceId:
    def test_str(self):
        assert str(DeviceId(1, 3)) == "node1:gpu3"

    def test_hashable_and_equal(self):
        assert DeviceId(0, 1) == DeviceId(0, 1)
        assert len({DeviceId(0, 1), DeviceId(0, 1), DeviceId(0, 2)}) == 2


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        clock.advance(5.0)
        clock.advance(2.5)
        assert clock.now == pytest.approx(7.5)

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_advance_to_never_goes_backwards(self):
        clock = VirtualClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(15.0)
        assert clock.now == 15.0

    def test_unit_conversions(self):
        assert us_to_ms(1500.0) == pytest.approx(1.5)
        assert us_to_s(2e6) == pytest.approx(2.0)
        assert gbps_bytes_per_us(10.0) == pytest.approx(1e4)


class TestDeterministicRNG:
    def test_same_seed_same_sequence(self):
        a = DeterministicRNG(42)
        b = DeterministicRNG(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_children_are_independent_of_creation_order(self):
        root1 = DeterministicRNG(7)
        root2 = DeterministicRNG(7)
        _ = root1.child("x")
        a = root1.child("target").random()
        b = root2.child("target").random()
        assert a == b

    def test_bernoulli_extremes(self):
        rng = DeterministicRNG(1)
        assert rng.bernoulli(0.0) is False
        assert rng.bernoulli(1.0) is True

    def test_permutation_is_a_permutation(self):
        rng = DeterministicRNG(3)
        perm = rng.permutation(10)
        assert sorted(perm) == list(range(10))

    @given(st.integers(min_value=0, max_value=2**32), st.integers(1, 50))
    def test_randint_in_range(self, seed, high):
        rng = DeterministicRNG(seed)
        value = rng.randint(0, high)
        assert 0 <= value <= high


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(DeadlockError, ReproError)
        assert issubclass(ResourceExhaustedError, ReproError)

    def test_deadlock_error_carries_wait_graph(self):
        error = DeadlockError("boom", wait_graph={"a": ["k"]}, blocked=["a"])
        assert error.wait_graph == {"a": ["k"]}
        assert error.blocked == ["a"]


class TestGlobalRngIsolationFixture:
    @pytest.mark.uses_global_rng
    def test_marked_tests_may_touch_global_rng(self):
        """The escape hatch: marked tests may consume the global stream (the
        autouse fixture still restores the state afterwards)."""
        import random

        before = random.getstate()
        random.random()
        assert random.getstate() != before

    def test_deterministic_rng_does_not_touch_global_state(self):
        """Library randomness is isolated: DeterministicRNG draws never move
        the module-level stream (the autouse fixture would fail this test
        loudly if they did)."""
        import random

        before = random.getstate()
        rng = DeterministicRNG(1234)
        rng.child("probe").uniform(0.0, 1.0)
        rng.randint(0, 10)
        assert random.getstate() == before
