"""Tests for topology-aware ring-vs-tree algorithm selection."""

import pytest

from repro.common.types import CollectiveKind
from repro.collectives import AlgorithmSelector
from repro.core import DfcclConfig
from repro.bench.collective_perf import measure_collective, sweep_ring_vs_tree
from repro.gpusim import build_cluster


def dual_server_selector():
    cluster = build_cluster("dual-3090")
    device_ids = [device.device_id for device in cluster.devices]
    return AlgorithmSelector(cluster.interconnect), device_ids


class TestAlgorithmSelector:
    def test_small_messages_pick_tree(self):
        selector, device_ids = dual_server_selector()
        choice = selector.choose(CollectiveKind.ALL_REDUCE, 16 << 10, 16, device_ids)
        assert choice.algorithm == "tree"
        assert choice.tree_cost_us < choice.ring_cost_us

    def test_large_messages_pick_ring(self):
        selector, device_ids = dual_server_selector()
        choice = selector.choose(CollectiveKind.ALL_REDUCE, 4 << 20, 16, device_ids)
        assert choice.algorithm == "ring"
        assert choice.ring_cost_us < choice.tree_cost_us

    def test_non_tree_kinds_always_ring(self):
        selector, device_ids = dual_server_selector()
        for kind in (CollectiveKind.ALL_GATHER, CollectiveKind.REDUCE_SCATTER,
                     CollectiveKind.SEND_RECV):
            assert selector.select(kind, 512, 16, device_ids) == "ring"

    def test_tiny_groups_always_ring(self):
        selector, device_ids = dual_server_selector()
        assert selector.select(CollectiveKind.ALL_REDUCE, 512, 2,
                               device_ids[:2]) == "ring"

    def test_resolve_passes_explicit_choices_through(self):
        selector, _ = dual_server_selector()
        assert selector.resolve("ring", CollectiveKind.ALL_REDUCE, 512, 16) == "ring"
        assert selector.resolve("tree", CollectiveKind.ALL_REDUCE, 512, 16) == "tree"
        with pytest.raises(Exception):
            selector.resolve("butterfly", CollectiveKind.ALL_REDUCE, 512, 16)

    def test_selector_without_topology_falls_back(self):
        selector = AlgorithmSelector()
        assert selector.select(CollectiveKind.ALL_REDUCE, 512, 8) in ("ring", "tree")


class TestConfigWiring:
    def test_config_validates_algorithm(self):
        DfcclConfig(algorithm="auto").validate()
        with pytest.raises(ValueError):
            DfcclConfig(algorithm="butterfly").validate()

    def test_registered_collective_resolves_auto(self):
        from repro.core import DfcclBackend

        cluster = build_cluster("dual-3090")
        dfccl = DfcclBackend(cluster, DfcclConfig(algorithm="auto"))
        ranks = list(range(16))
        dfccl.init_all_ranks(ranks)
        small = dfccl.register_all_reduce(0, count=1 << 12, ranks=ranks)
        large = dfccl.register_all_reduce(1, count=1 << 20, ranks=ranks)
        assert small.algorithm == "tree"
        assert large.algorithm == "ring"

    def test_nccl_backend_resolves_auto(self):
        from repro.ncclsim import NcclBackend
        from repro.common.types import CollectiveSpec

        cluster = build_cluster("dual-3090")
        nccl = NcclBackend(cluster, algorithm="auto")
        comm = nccl.create_communicator()
        op = comm.collective(0, CollectiveSpec(CollectiveKind.ALL_REDUCE, 1 << 12))
        assert op.algorithm == "tree"


class TestSimulatedCrossover:
    def test_tree_beats_ring_for_small_messages(self):
        """16 GPUs over two nodes: tree all-reduce wins the latency-bound
        small-message regime (<= 64 KiB), ring wins the bandwidth regime."""
        small_ring = measure_collective("nccl", "all_reduce", 64 << 10, 16,
                                        "dual-3090", iterations=1,
                                        algorithm="ring")
        small_tree = measure_collective("nccl", "all_reduce", 64 << 10, 16,
                                        "dual-3090", iterations=1,
                                        algorithm="tree")
        assert small_tree["latency_us"] < small_ring["latency_us"]

        large_ring = measure_collective("nccl", "all_reduce", 4 << 20, 16,
                                        "dual-3090", iterations=1,
                                        algorithm="ring")
        large_tree = measure_collective("nccl", "all_reduce", 4 << 20, 16,
                                        "dual-3090", iterations=1,
                                        algorithm="tree")
        assert large_ring["latency_us"] < large_tree["latency_us"]

    def test_auto_tracks_the_winner_across_the_crossover(self):
        rows = sweep_ring_vs_tree(sizes=[16 << 10, 4 << 20], iterations=1)
        for row in rows:
            assert row["auto_algorithm"] == row["winner"]
            assert row["auto_latency_us"] == pytest.approx(
                min(row["ring_latency_us"], row["tree_latency_us"]), rel=0.05)


def fat_tree_selector(num_gpus=512):
    cluster = build_cluster(f"fat-tree-{num_gpus}")
    device_ids = [device.device_id for device in cluster.devices]
    return AlgorithmSelector(cluster.interconnect), device_ids


class TestHierarchicalSelection:
    def test_fat_tree_large_messages_pick_hierarchical(self):
        """512 ranks over 64 nodes: hierarchical beats flat ring and tree at 1 MiB."""
        selector, device_ids = fat_tree_selector()
        choice = selector.choose(CollectiveKind.ALL_REDUCE, 1 << 20,
                                 len(device_ids), device_ids)
        assert choice.algorithm == "hierarchical"
        assert choice.hierarchical_cost_us < choice.tree_cost_us
        assert choice.hierarchical_cost_us < choice.ring_cost_us

    def test_fat_tree_small_messages_still_pick_tree(self):
        selector, device_ids = fat_tree_selector()
        choice = selector.choose(CollectiveKind.ALL_REDUCE, 4 << 10,
                                 len(device_ids), device_ids)
        assert choice.algorithm == "tree"
        assert choice.tree_cost_us < choice.hierarchical_cost_us

    def test_two_island_groups_exclude_hierarchical_from_auto(self):
        """Dual-server (k=2) stays on the calibrated ring/tree estimates."""
        selector, device_ids = dual_server_selector()
        choice = selector.choose(CollectiveKind.ALL_REDUCE, 1 << 20, 16, device_ids)
        assert choice.algorithm in ("ring", "tree")
        assert choice.hierarchical_cost_us == float("inf")

    def test_hierarchical_structure_requires_equal_contiguous_islands(self):
        selector, device_ids = fat_tree_selector(64)
        structure = selector.hierarchical_structure(device_ids)
        assert structure is not None
        island_size, islands = structure[0], structure[1]
        assert island_size == 8 and islands == 8
        # A node-interleaved rank order has no contiguous island
        # decomposition (node pattern 0,1,0,1,... instead of 0,0,...,1,1,...).
        interleaved = [device_ids[rank % 8 * 8 + rank // 8] for rank in range(64)]
        assert selector.hierarchical_structure(interleaved) is None

    def test_resolve_accepts_hierarchical(self):
        selector, _ = dual_server_selector()
        assert selector.resolve("hierarchical", CollectiveKind.ALL_REDUCE,
                                512, 16) == "hierarchical"

    def test_config_accepts_hierarchical(self):
        DfcclConfig(algorithm="hierarchical").validate()


class TestTreeInterPodTerm:
    """The tree all-reduce's spine re-traversal cost on two-level fabrics."""

    def test_single_level_topologies_pay_nothing(self):
        # Flat dual-server and one-pod fat-trees have no spine; the inter-pod
        # term must vanish so their calibrated predictions stay unchanged.
        for selector, device_ids in (dual_server_selector(),
                                     fat_tree_selector(32)):
            assert selector._tree_inter_pod_cost_us(1 << 20, device_ids) == 0.0

    def test_two_level_fat_tree_charges_the_spine(self):
        selector, device_ids = fat_tree_selector(512)
        extra = selector._tree_inter_pod_cost_us(1 << 20, device_ids)
        assert extra > 0.0
        with_term = selector.predicted_cost_us(
            "tree", CollectiveKind.ALL_REDUCE, 1 << 20, 512, device_ids)
        without = selector.predicted_cost_us(
            "tree", CollectiveKind.ALL_REDUCE, 1 << 20, 512,
            params=selector.link_parameters(device_ids))
        assert with_term == pytest.approx(without + extra)

    def test_term_scales_with_pod_crossings(self):
        # 512 ranks (16 pods) cross pods more often on the deepest root path
        # than 256 ranks (8 pods): the charge must grow with fabric depth.
        selector_512, ids_512 = fat_tree_selector(512)
        selector_256, ids_256 = fat_tree_selector(256)
        assert (selector_512._tree_inter_pod_cost_us(1 << 20, ids_512)
                > selector_256._tree_inter_pod_cost_us(1 << 20, ids_256))


class TestPredictedCostBreakdown:
    """The per-bucket decomposition must sum to the scalar prediction."""

    def _assert_consistent(self, selector, device_ids, algorithm, kind,
                           nbytes, group_size):
        breakdown = selector.predicted_cost_breakdown(
            algorithm, kind, nbytes, group_size, device_ids)
        total = selector.predicted_cost_us(algorithm, kind, nbytes,
                                           group_size, device_ids)
        assert set(breakdown) == {"alpha_us", "beta_us", "memory_us",
                                  "overhead_us"}
        assert sum(breakdown.values()) == pytest.approx(total, rel=1e-9)

    def test_every_algorithm_and_kind_sums(self):
        selector, device_ids = fat_tree_selector(64)
        kinds = (CollectiveKind.ALL_REDUCE, CollectiveKind.ALL_GATHER,
                 CollectiveKind.REDUCE_SCATTER, CollectiveKind.BROADCAST,
                 CollectiveKind.REDUCE, CollectiveKind.SEND_RECV)
        for algorithm in ("ring", "tree", "hierarchical"):
            for kind in kinds:
                for nbytes in (512, 1 << 20):
                    self._assert_consistent(selector, device_ids, algorithm,
                                            kind, nbytes, 64)

    def test_two_level_tree_breakdown_includes_spine_term(self):
        selector, device_ids = fat_tree_selector(512)
        self._assert_consistent(selector, device_ids, "tree",
                                CollectiveKind.ALL_REDUCE, 1 << 20, 512)

    def test_invalid_hierarchical_structure_returns_none(self):
        selector, device_ids = fat_tree_selector(64)
        interleaved = [device_ids[rank % 8 * 8 + rank // 8]
                       for rank in range(64)]
        assert selector.predicted_cost_breakdown(
            "hierarchical", CollectiveKind.ALL_REDUCE, 1 << 20, 64,
            interleaved) is None

    def test_trivial_groups_are_all_zero(self):
        selector, device_ids = dual_server_selector()
        breakdown = selector.predicted_cost_breakdown(
            "ring", CollectiveKind.ALL_REDUCE, 1 << 20, 1, device_ids[:1])
        assert sum(breakdown.values()) == 0.0
