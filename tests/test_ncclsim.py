"""Tests for the NCCL baseline, including the four basic Fig. 1 situations."""

import pytest

from repro.common.errors import DeadlockError
from repro.gpusim import HostProgram, build_cluster
from repro.gpusim.host import DeviceSynchronize
from repro.ncclsim import CudaAwareMpiModel, NcclBackend, grid_size_for
from repro.ncclsim.program import launch_collective, wait_collective


def _two_collective_cluster(max_blocks=None):
    cluster = build_cluster("single-3090", max_resident_blocks=max_blocks)
    backend = NcclBackend(cluster)
    comm = backend.create_communicator(ranks=[0, 1])
    op_a = comm.all_reduce(0, count=1024)
    op_b = comm.all_reduce(1, count=1024)
    return cluster, backend, comm, op_a, op_b


def _program(backend, comm, rank, ordered_ops, streams=None, sync_after_first=False):
    ops = []
    for index, op in enumerate(ordered_ops):
        stream = streams[index] if streams else "default"
        ops.append(launch_collective(backend, op, rank, stream=stream))
        if sync_after_first and index == 0:
            ops.append(DeviceSynchronize())
    ops += [wait_collective(op, comm.group_rank(rank)) for op in ordered_ops]
    return HostProgram(ops)


class TestGridSize:
    def test_small_buffers_one_block(self):
        assert grid_size_for(1 << 10) == 1

    def test_large_buffers_more_blocks(self):
        assert grid_size_for(32 << 20) > 1
        assert grid_size_for(1 << 30) <= 4


class TestBasicSituations:
    def test_fig1a_consistent_order_completes(self):
        cluster, backend, comm, op_a, op_b = _two_collective_cluster()
        cluster.add_hosts([
            _program(backend, comm, 0, [op_a, op_b]),
            _program(backend, comm, 1, [op_a, op_b]),
        ])
        cluster.run()
        assert op_a.fully_complete() and op_b.fully_complete()

    def test_fig1c_single_queue_disorder_deadlocks(self):
        cluster, backend, comm, op_a, op_b = _two_collective_cluster()
        cluster.add_hosts([
            _program(backend, comm, 0, [op_a, op_b]),
            _program(backend, comm, 1, [op_b, op_a]),
        ])
        with pytest.raises(DeadlockError):
            cluster.run()

    def test_fig1b_disorder_with_streams_and_resources_completes(self):
        cluster, backend, comm, op_a, op_b = _two_collective_cluster()
        cluster.add_hosts([
            _program(backend, comm, 0, [op_a, op_b], streams=["sa", "sb"]),
            _program(backend, comm, 1, [op_b, op_a], streams=["sb", "sa"]),
        ])
        cluster.run()
        assert op_a.fully_complete() and op_b.fully_complete()

    def test_fig1c_resource_depletion_deadlocks(self):
        cluster, backend, comm, op_a, op_b = _two_collective_cluster(max_blocks=1)
        cluster.add_hosts([
            _program(backend, comm, 0, [op_a, op_b], streams=["sa", "sb"]),
            _program(backend, comm, 1, [op_b, op_a], streams=["sb", "sa"]),
        ])
        with pytest.raises(DeadlockError):
            cluster.run()

    def test_fig1d_sync_related_deadlock(self):
        cluster, backend, comm, op_a, op_b = _two_collective_cluster()
        cluster.add_hosts([
            _program(backend, comm, 0, [op_a, op_b], streams=["sa", "sb"],
                     sync_after_first=True),
            _program(backend, comm, 1, [op_b, op_a], streams=["sb", "sa"],
                     sync_after_first=True),
        ])
        with pytest.raises(DeadlockError):
            cluster.run()


class TestCollectiveExecution:
    @pytest.mark.parametrize("kind,count", [
        ("all_reduce", 1 << 18), ("all_gather", 1 << 16),
        ("reduce_scatter", 1 << 18), ("broadcast", 1 << 18), ("reduce", 1 << 18),
    ])
    def test_all_kinds_complete_on_eight_gpus(self, kind, count):
        cluster = build_cluster("single-3090")
        backend = NcclBackend(cluster)
        comm = backend.create_communicator()
        op = getattr(comm, kind)(0, count)
        programs = [
            HostProgram([launch_collective(backend, op, rank),
                         wait_collective(op, rank)])
            for rank in range(8)
        ]
        cluster.add_hosts(programs)
        cluster.run()
        assert op.fully_complete()

    def test_larger_buffers_take_longer(self):
        def run(nbytes):
            cluster = build_cluster("single-3090")
            backend = NcclBackend(cluster)
            comm = backend.create_communicator()
            op = comm.all_reduce(0, count=nbytes // 4)
            cluster.add_hosts([
                HostProgram([launch_collective(backend, op, rank),
                             wait_collective(op, rank)])
                for rank in range(8)
            ])
            cluster.run()
            return op.completion_time()

        assert run(8 << 20) > run(64 << 10)

    def test_cross_node_slower_than_single_node(self):
        def run(topology, world):
            cluster = build_cluster(topology)
            backend = NcclBackend(cluster)
            comm = backend.create_communicator(ranks=list(range(world)))
            op = comm.all_reduce(0, count=(1 << 20) // 4)
            cluster.add_hosts([
                HostProgram([launch_collective(backend, op, rank),
                             wait_collective(op, comm.group_rank(rank))])
                for rank in range(world)
            ])
            cluster.run()
            return op.completion_time()

        assert run("dual-3090", 16) > run("single-3090", 8)

    def test_rank_not_in_communicator_rejected(self):
        cluster = build_cluster("single-3090")
        backend = NcclBackend(cluster)
        comm = backend.create_communicator(ranks=[0, 1])
        with pytest.raises(Exception):
            comm.group_rank(5)


class TestMpiBaseline:
    def test_nccl_beats_mpi_for_large_buffers(self):
        mpi = CudaAwareMpiModel()
        large = mpi.all_reduce_bandwidth_gbps(16 << 20, 8)
        small = mpi.all_reduce_bandwidth_gbps(4 << 10, 8)
        assert large > small  # MPI bandwidth still grows with size
        assert mpi.all_reduce_time_us(16 << 20, 8) > mpi.all_reduce_time_us(1 << 20, 8)

    def test_single_rank_is_trivial(self):
        mpi = CudaAwareMpiModel()
        assert mpi.all_reduce_time_us(1 << 20, 1) == pytest.approx(mpi.alpha_us)
