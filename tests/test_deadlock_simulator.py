"""Tests for the Sec. 2.4 deadlock simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.deadlock import (
    DeadlockSimulator,
    FreeGroupingPolicy,
    SingleQueueModel,
    SynchronizationModel,
    TABLE1_CONFIGS,
    ThreeDGroupingPolicy,
    table1_rows,
)
from repro.deadlock.dependency_graph import DependencyGraph
from repro.deadlock.grouping import GroupedWorkload
from repro.deadlock.models import make_model

pytestmark = pytest.mark.timeout(300)


class TestDependencyGraph:
    def test_no_cycle_in_dag(self):
        graph = DependencyGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        assert not graph.has_cycle()
        assert graph.find_cycle() is None

    def test_detects_simple_cycle(self):
        graph = DependencyGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        assert graph.has_cycle()
        assert set(graph.find_cycle()) == {"a", "b"}

    def test_detects_long_cycle(self):
        graph = DependencyGraph()
        nodes = ["a", "b", "c", "d"]
        for src, dst in zip(nodes, nodes[1:] + nodes[:1]):
            graph.add_edge(src, dst)
        assert graph.has_cycle()
        assert len(graph.find_cycle()) == 4

    def test_remove_node_breaks_cycle(self):
        graph = DependencyGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        graph.remove_node("a")
        assert not graph.has_cycle()

    def test_self_edges_ignored(self):
        graph = DependencyGraph()
        graph.add_edge("a", "a")
        assert not graph.has_cycle()

    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_find_cycle_consistent_with_has_cycle(self, edges):
        graph = DependencyGraph()
        for src, dst in edges:
            graph.add_edge(src, dst)
        assert graph.has_cycle() == (graph.find_cycle() is not None)


class TestGrouping:
    def test_3d_grouping_counts(self):
        policy = ThreeDGroupingPolicy(4, 4, 4, tp_collectives=10, dp_collectives=30)
        groups = policy.build_groups()
        assert policy.num_gpus == 64
        assert len(groups) == 32  # 16 TP groups + 16 DP groups
        tp_groups = [group for group in groups if group.kind == "tp"]
        assert all(len(group.gpus) == 4 for group in tp_groups)

    def test_3d_each_gpu_in_two_groups(self):
        policy = ThreeDGroupingPolicy(4, 4, 4, 10, 30)
        workload = GroupedWorkload.from_policy(policy)
        for gpu in range(policy.num_gpus):
            assert workload.overlap_degree(gpu) == 2

    def test_free_grouping_paper_case_shape(self):
        policy = FreeGroupingPolicy.paper_case(32, 64, 400, 1200)
        groups = policy.build_groups()
        sizes = sorted(len(group.gpus) for group in groups)
        assert sizes.count(3) == 28 and sizes.count(8) == 4
        counts = {group.num_collectives for group in groups}
        assert counts == {400, 1200}

    def test_free_grouping_membership_union(self):
        policy = FreeGroupingPolicy([([0, 1], 2), ([1, 2], 3)])
        workload = GroupedWorkload.from_policy(policy)
        assert len(workload.per_gpu_collectives[1]) == 5
        assert len(workload.per_gpu_collectives[0]) == 2


class TestModels:
    def test_factory(self):
        assert isinstance(make_model("single-queue"), SingleQueueModel)
        assert isinstance(make_model("synchronization"), SynchronizationModel)
        with pytest.raises(ValueError):
            make_model("bogus")

    def test_single_queue_one_executing_per_gpu(self):
        policy = FreeGroupingPolicy([([0, 1], 3)])
        simulator = DeadlockSimulator(policy, "single-queue", 0.0, 0.0, seed=0)
        result = simulator.run_round(0, skip_ordered_rounds=False)
        assert not result.deadlocked

    def test_sync_model_without_sync_never_deadlocks(self):
        """Disorder alone cannot deadlock with unlimited resources (Fig. 1(b))."""
        policy = FreeGroupingPolicy([([0, 1], 8)])
        simulator = DeadlockSimulator(policy, "synchronization",
                                      disorder_prob=0.8, sync_prob=0.0, seed=1)
        results = [simulator.run_round(index, skip_ordered_rounds=False)
                   for index in range(20)]
        assert not any(result.deadlocked for result in results)


class TestSimulator:
    def test_ordered_rounds_never_deadlock(self):
        policy = FreeGroupingPolicy([([0, 1, 2], 10)])
        simulator = DeadlockSimulator(policy, "single-queue", 0.0, 0.0, seed=0)
        estimate = simulator.estimate(rounds=5)
        assert estimate.ratio == 0.0

    def test_forced_disorder_deadlocks_single_queue(self):
        policy = FreeGroupingPolicy([([0, 1], 6)])
        simulator = DeadlockSimulator(policy, "single-queue",
                                      disorder_prob=0.5, sync_prob=0.0, seed=2)
        estimate = simulator.estimate(rounds=30)
        assert estimate.ratio > 0.5

    def test_deadlocked_round_reports_cycle(self):
        policy = FreeGroupingPolicy([([0, 1], 6)])
        simulator = DeadlockSimulator(policy, "single-queue", 0.5, 0.0, seed=3)
        deadlocked = [simulator.run_round(index) for index in range(30)]
        cycles = [result.cycle for result in deadlocked if result.deadlocked]
        assert cycles and all(cycle for cycle in cycles)

    def test_sync_plus_disorder_can_deadlock(self):
        policy = FreeGroupingPolicy([([0, 1], 20), ([0, 1], 20)])
        simulator = DeadlockSimulator(policy, "synchronization",
                                      disorder_prob=0.2, sync_prob=0.2, seed=4)
        estimate = simulator.estimate(rounds=40)
        assert estimate.ratio > 0.0

    def test_deadlock_ratio_monotonic_in_disorder(self):
        policy = FreeGroupingPolicy([([0, 1, 2, 3], 20)])
        ratios = []
        for disorder in (0.01, 0.3):
            simulator = DeadlockSimulator(policy, "single-queue", disorder, 0.0, seed=5)
            ratios.append(simulator.estimate(rounds=60).ratio)
        assert ratios[1] >= ratios[0]

    def test_reproducible_with_same_seed(self):
        policy = FreeGroupingPolicy([([0, 1], 10)])
        first = DeadlockSimulator(policy, "single-queue", 0.3, 0.0, seed=9).estimate(20)
        second = DeadlockSimulator(policy, "single-queue", 0.3, 0.0, seed=9).estimate(20)
        assert first.ratio == second.ratio


class TestTable1Configs:
    def test_all_rows_present(self):
        assert len(table1_rows()) == 18

    def test_rows_build_policies(self):
        for name in ("sq-3d-444-1e-6", "sq-free-1x8-1e-5", "sync-free-32x64-4e-5-4e-5"):
            policy = TABLE1_CONFIGS[name].build_policy()
            assert policy.num_gpus >= 8

    def test_scaling_preserves_expected_event_count(self):
        config = TABLE1_CONFIGS["sq-3d-444-1e-6"]
        scaled = config.scaled(0.1)
        original_expected = config.tp_collectives * config.disorder_prob
        scaled_expected = scaled.tp_collectives * scaled.disorder_prob
        assert scaled_expected == pytest.approx(original_expected, rel=0.3)

    def test_paper_ratios_recorded(self):
        assert TABLE1_CONFIGS["sync-free-32x64-large"].paper_ratio == pytest.approx(0.0694)
