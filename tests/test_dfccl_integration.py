"""End-to-end DFCCL tests: deadlock prevention, correctness, scheduling, lifecycle."""

import pytest

from repro.common.errors import DeadlockError
from repro.common.rng import DeterministicRNG
from repro.common.types import CollectiveSpec
from repro.core import DfcclBackend, DfcclConfig
from repro.gpusim import HostProgram, build_cluster
from repro.gpusim.host import DeviceSynchronize

# Deadlock-shaped scenarios must fail fast in CI if one genuinely hangs.
pytestmark = pytest.mark.timeout(300)


def run_dfccl(num_gpus=2, coll_sizes=(1024, 1024), orders=None, with_sync=False,
              config=None, iterations=1, max_blocks=None):
    """Run a DFCCL program with the given per-rank invocation orders."""
    cluster = build_cluster("single-3090", max_resident_blocks=max_blocks)
    backend = DfcclBackend(cluster, config)
    ranks = list(range(num_gpus))
    backend.init_all_ranks(ranks)
    for coll_id, count in enumerate(coll_sizes):
        backend.register_all_reduce(coll_id, count=count, ranks=ranks)
    programs = []
    for rank in ranks:
        ops = []
        for iteration in range(iterations):
            order = orders(rank, iteration) if orders else list(range(len(coll_sizes)))
            handles = [backend.submit(rank, coll_id) for coll_id in order]
            for index, handle in enumerate(handles):
                ops.append(handle.submit_op())
                if with_sync and index == 0:
                    ops.append(DeviceSynchronize())
            ops += [handle.wait_op() for handle in handles]
        ops.append(backend.destroy_op(rank))
        programs.append(HostProgram(ops))
    cluster.add_hosts(programs)
    final_time = cluster.run()
    return cluster, backend, final_time


class TestDeadlockPrevention:
    def test_consistent_order_completes(self):
        _, backend, _ = run_dfccl()
        assert backend.stats(0).cqes_written == 2

    def test_disordered_single_queue_case_completes(self):
        """The Fig. 1(c) single-queue scenario does not deadlock under DFCCL."""
        _, backend, _ = run_dfccl(orders=lambda rank, _: [0, 1] if rank == 0 else [1, 0])
        assert backend.stats(0).cqes_written == 2
        assert backend.stats(1).cqes_written == 2

    def test_disordered_with_resource_depletion_completes(self):
        _, backend, _ = run_dfccl(orders=lambda rank, _: [0, 1] if rank == 0 else [1, 0],
                                  max_blocks=1)
        assert backend.stats(0).cqes_written == 2

    def test_disordered_with_gpu_sync_completes(self):
        """The Fig. 1(d) synchronization scenario does not deadlock under DFCCL."""
        _, backend, _ = run_dfccl(orders=lambda rank, _: [0, 1] if rank == 0 else [1, 0],
                                  with_sync=True)
        total_quits = backend.stats(0).voluntary_quits + backend.stats(1).voluntary_quits
        assert backend.stats(0).cqes_written == 2
        assert total_quits >= 1  # voluntary quitting is what breaks the sync deadlock

    def test_preemption_happens_under_disorder(self):
        _, backend, _ = run_dfccl(orders=lambda rank, _: [0, 1] if rank == 0 else [1, 0])
        assert backend.stats(0).preemptions + backend.stats(1).preemptions > 0

    def test_eight_gpu_random_orders_complete(self):
        rng = DeterministicRNG(5)
        _, backend, _ = run_dfccl(
            num_gpus=8,
            coll_sizes=tuple(64 << index for index in range(6)),
            orders=lambda rank, it: rng.child(rank, it).permutation(6),
            iterations=2,
        )
        for rank in range(8):
            assert backend.stats(rank).cqes_written == 12


class TestLifecycle:
    def test_repeated_invocation_of_registered_collective(self):
        _, backend, _ = run_dfccl(coll_sizes=(2048,), iterations=4)
        assert backend.stats(0).cqes_written == 4

    def test_daemon_launch_and_final_exit(self):
        _, backend, _ = run_dfccl()
        context = backend.context(0)
        assert context.finally_exited
        assert not context.daemon_alive
        assert backend.stats(0).launches >= 1
        assert backend.stats(0).final_exits == 1

    def test_duplicate_registration_rejected(self):
        cluster = build_cluster("single-3090")
        backend = DfcclBackend(cluster)
        backend.register_all_reduce(0, count=64, ranks=[0, 1])
        with pytest.raises(Exception):
            backend.register_all_reduce(0, count=64, ranks=[0, 1])

    def test_all_collective_kinds_supported(self):
        cluster = build_cluster("single-3090")
        backend = DfcclBackend(cluster)
        ranks = list(range(4))
        backend.init_all_ranks(ranks)
        backend.register_all_reduce(0, count=256, ranks=ranks)
        backend.register_all_gather(1, count=256, ranks=ranks)
        backend.register_reduce_scatter(2, count=256, ranks=ranks)
        backend.register_broadcast(3, count=256, ranks=ranks, root=1)
        backend.register_reduce(4, count=256, ranks=ranks, root=2)
        programs = []
        for rank in ranks:
            handles = [backend.submit(rank, coll_id) for coll_id in range(5)]
            ops = [op for handle in handles for op in handle.ops()]
            ops.append(backend.destroy_op(rank))
            programs.append(HostProgram(ops))
        cluster.add_hosts(programs)
        cluster.run()
        assert backend.stats(0).cqes_written == 5

    def test_memory_overhead_report_scales_with_collectives(self):
        cluster = build_cluster("single-3090")
        backend = DfcclBackend(cluster)
        report_small = backend.memory_overhead_report(num_collectives=10)
        report_large = backend.memory_overhead_report(num_collectives=1000)
        assert report_large["shared_bytes_per_block"] > report_small["shared_bytes_per_block"]


class TestSchedulingBehaviour:
    def test_priority_ordering_config_runs(self):
        config = DfcclConfig(ordering="priority")
        _, backend, _ = run_dfccl(config=config,
                                  orders=lambda rank, _: [0, 1] if rank == 0 else [1, 0])
        assert backend.stats(0).cqes_written == 2

    def test_naive_policy_causes_more_preemptions_than_adaptive(self):
        def orders(rank, _):
            return [0, 1, 2, 3] if rank == 0 else [3, 2, 1, 0]

        sizes = (4096,) * 4
        _, adaptive_backend, _ = run_dfccl(coll_sizes=sizes, orders=orders,
                                           config=DfcclConfig(spin_policy="adaptive"))
        _, naive_backend, _ = run_dfccl(coll_sizes=sizes, orders=orders,
                                        config=DfcclConfig(spin_policy="naive"))
        adaptive = sum(adaptive_backend.stats(rank).preemptions for rank in range(2))
        naive = sum(naive_backend.stats(rank).preemptions for rank in range(2))
        assert naive >= adaptive

    def test_task_queue_length_samples_recorded(self):
        _, backend, _ = run_dfccl(coll_sizes=(1024, 1024, 1024))
        assert len(backend.stats(0).task_queue_length_samples) == 3

    def test_fig7_style_time_overheads_present(self):
        _, backend, _ = run_dfccl()
        stats = backend.stats(0)
        assert stats.mean_sqe_read_time_us() == pytest.approx(5.3, abs=0.1)
        assert stats.mean_cqe_write_time_us() == pytest.approx(2.0, abs=0.5)


class TestVersusNccl:
    def test_dfccl_survives_where_nccl_deadlocks(self):
        """The same disordered program deadlocks NCCL but completes under DFCCL."""
        from repro.ncclsim import NcclBackend
        from repro.ncclsim.program import launch_collective, wait_collective

        # NCCL: deadlock expected.
        cluster = build_cluster("single-3090")
        nccl = NcclBackend(cluster)
        comm = nccl.create_communicator(ranks=[0, 1])
        op_a, op_b = comm.all_reduce(0, 1024), comm.all_reduce(1, 1024)
        cluster.add_hosts([
            HostProgram([launch_collective(nccl, op_a, 0), launch_collective(nccl, op_b, 0),
                         wait_collective(op_a, 0), wait_collective(op_b, 0)]),
            HostProgram([launch_collective(nccl, op_b, 1), launch_collective(nccl, op_a, 1),
                         wait_collective(op_b, 1), wait_collective(op_a, 1)]),
        ])
        with pytest.raises(DeadlockError):
            cluster.run()

        # DFCCL: completes.
        _, backend, _ = run_dfccl(orders=lambda rank, _: [0, 1] if rank == 0 else [1, 0])
        assert backend.stats(0).cqes_written == 2
