"""Tests for DFCCL's SQ/CQ variants, context management and configuration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import QueueEmptyError, QueueFullError
from repro.core import DfcclConfig
from repro.core.context import (
    ActiveContextCache,
    CollectiveContextBuffer,
    StaticContext,
    memory_overhead_report,
)
from repro.core.queues import (
    Cqe,
    OptimizedCasCQ,
    OptimizedRingCQ,
    Sqe,
    SubmissionQueue,
    VanillaRingCQ,
    make_completion_queue,
)

CONFIG = DfcclConfig()


class TestDfcclConfig:
    def test_defaults_validate(self):
        assert DfcclConfig().validate()

    @pytest.mark.parametrize("field,value", [
        ("cq_variant", "bogus"), ("ordering", "bogus"), ("spin_policy", "bogus"),
        ("initial_spin_threshold", 0), ("spin_position_decay", 0.0),
        ("spin_success_boost", 0.5),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            DfcclConfig(**{field: value}).validate()

    def test_with_overrides(self):
        config = DfcclConfig().with_overrides(chunk_bytes=1024)
        assert config.chunk_bytes == 1024
        assert DfcclConfig().chunk_bytes != 1024


class TestSubmissionQueue:
    def test_fifo_per_consumer(self):
        sq = SubmissionQueue(capacity=8)
        sq.register_consumer("c")
        sq.push(Sqe(coll_id=1, invocation_id=0))
        sq.push(Sqe(coll_id=2, invocation_id=0))
        assert sq.pop("c").coll_id == 1
        assert sq.pop("c").coll_id == 2

    def test_pop_empty_raises(self):
        sq = SubmissionQueue(capacity=4)
        sq.register_consumer("c")
        with pytest.raises(QueueEmptyError):
            sq.pop("c")

    def test_full_queue_rejects_push(self):
        sq = SubmissionQueue(capacity=2)
        sq.register_consumer("c")
        sq.push(Sqe(coll_id=1, invocation_id=0))
        sq.push(Sqe(coll_id=2, invocation_id=0))
        with pytest.raises(QueueFullError):
            sq.push(Sqe(coll_id=3, invocation_id=0))

    def test_slot_recycled_after_all_consumers_read(self):
        sq = SubmissionQueue(capacity=1, num_consumers=2)
        sq.register_consumer("a")
        sq.register_consumer("b")
        sq.push(Sqe(coll_id=1, invocation_id=0))
        assert not sq.writable()
        sq.pop("a")
        assert not sq.writable()
        sq.pop("b")
        assert sq.writable()

    def test_pending_counts(self):
        sq = SubmissionQueue(capacity=8)
        sq.register_consumer("c")
        sq.push(Sqe(coll_id=1, invocation_id=0))
        sq.push(Sqe(coll_id=2, invocation_id=0))
        assert sq.pending("c") == 2
        sq.pop("c")
        assert sq.pending("c") == 1

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_consumer_sees_exactly_the_pushed_sequence(self, ids):
        sq = SubmissionQueue(capacity=128)
        sq.register_consumer("c")
        for coll_id in ids:
            sq.push(Sqe(coll_id=coll_id, invocation_id=0))
        popped = [sq.pop("c").coll_id for _ in ids]
        assert popped == ids


class TestCompletionQueues:
    @pytest.mark.parametrize("variant", ["vanilla", "optimized-ring", "optimized-cas"])
    def test_push_pop_roundtrip(self, variant):
        cq = make_completion_queue(variant, capacity=16)
        for index in range(10):
            cq.push(Cqe(coll_id=index, invocation_id=0))
        popped = {cq.pop().coll_id for _ in range(10)}
        assert popped == set(range(10))

    @pytest.mark.parametrize("variant", ["vanilla", "optimized-ring", "optimized-cas"])
    def test_full_and_empty_conditions(self, variant):
        cq = make_completion_queue(variant, capacity=2)
        cq.push(Cqe(1, 0))
        cq.push(Cqe(2, 0))
        with pytest.raises(QueueFullError):
            cq.push(Cqe(3, 0))
        cq.pop()
        cq.pop()
        with pytest.raises(QueueEmptyError):
            cq.pop()

    def test_write_costs_ordered_as_in_fig7c(self):
        vanilla = VanillaRingCQ().write_cost_us(CONFIG)
        optimized_ring = OptimizedRingCQ().write_cost_us(CONFIG)
        cas = OptimizedCasCQ().write_cost_us(CONFIG)
        assert vanilla > optimized_ring > cas
        assert cas == pytest.approx(2.0, abs=0.5)
        assert vanilla == pytest.approx(6.9, abs=0.5)
        assert optimized_ring == pytest.approx(4.8, abs=0.5)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            make_completion_queue("bogus")

    @given(st.lists(st.integers(0, 999), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_cas_cq_never_loses_or_duplicates(self, ids):
        cq = OptimizedCasCQ(capacity=128)
        for coll_id in ids:
            cq.push(Cqe(coll_id, 0))
        drained = sorted(cq.pop().coll_id for _ in ids)
        assert drained == sorted(ids)


class TestContextManagement:
    def _static(self, coll_id):
        return StaticContext(coll_id, "all_reduce", 8, 0, 4096, 14)

    def test_context_buffer_register_unregister(self):
        buffer = CollectiveContextBuffer(CONFIG)
        buffer.register(0, self._static(0))
        assert 0 in buffer and len(buffer) == 1
        assert buffer.allocated_bytes == CONFIG.context_bytes_per_collective
        buffer.unregister(0)
        assert 0 not in buffer and buffer.allocated_bytes == 0

    def test_cache_hit_is_free(self):
        buffer = CollectiveContextBuffer(CONFIG)
        buffer.register(0, self._static(0))
        cache = ActiveContextCache(CONFIG, buffer)
        first = cache.load(0)
        second = cache.load(0)
        assert first > 0.0
        assert second == 0.0
        assert cache.stats.cache_hits == 1

    def test_direct_mapped_eviction_saves_dirty_context(self):
        buffer = CollectiveContextBuffer(CONFIG)
        slots = CONFIG.active_context_slots
        conflicting = slots  # maps to the same slot as coll 0
        buffer.register(0, self._static(0))
        buffer.register(conflicting, self._static(conflicting))
        cache = ActiveContextCache(CONFIG, buffer)
        cache.load(0)
        cache.mark_progress(0)
        cache.load(conflicting)
        assert cache.stats.saves == 1

    def test_lazy_save_skips_unprogressed(self):
        buffer = CollectiveContextBuffer(CONFIG)
        buffer.register(0, self._static(0))
        cache = ActiveContextCache(CONFIG, buffer)
        cache.load(0)
        assert cache.save_on_preempt(0, progressed=False) == 0.0
        assert cache.stats.lazy_save_skips == 1
        assert cache.save_on_preempt(0, progressed=True) > 0.0

    def test_memory_overheads_match_sec62(self):
        """Sec. 6.2: ~13KB shared + ~4MB global per block for 1,000 collectives."""
        report = memory_overhead_report(CONFIG, num_collectives=1000)
        assert report["shared_bytes_per_block"] == pytest.approx(13 << 10, rel=0.05)
        assert report["global_bytes_per_block"] == pytest.approx(4 << 20, rel=0.05)
        assert report["global_bytes_shared"] == pytest.approx(11 << 10, rel=0.05)
