"""Elastic recovery, daemon generation turnover and communicator-pool recycling."""

import pytest

from repro.common.errors import ConfigurationError, InvalidStateError
from repro.core import CommunicatorPool, DfcclBackend, DfcclConfig
from repro.faults import FaultPlan, install_fault_plan, run_dfccl_chaos
from repro.gpusim import HostProgram, build_cluster
from repro.gpusim.host import DeviceSynchronize

pytestmark = pytest.mark.timeout(300)


def run_simple(config=None, num_gpus=2, coll_sizes=(1024, 1024), with_sync=False,
               orders=None, iterations=1):
    cluster = build_cluster("single-3090")
    backend = DfcclBackend(cluster, config)
    ranks = list(range(num_gpus))
    backend.init_all_ranks(ranks)
    for coll_id, count in enumerate(coll_sizes):
        backend.register_all_reduce(coll_id, count=count, ranks=ranks)
    programs = []
    for rank in ranks:
        ops = []
        for iteration in range(iterations):
            order = orders(rank, iteration) if orders else list(range(len(coll_sizes)))
            handles = [backend.submit(rank, coll_id) for coll_id in order]
            for index, handle in enumerate(handles):
                ops.append(handle.submit_op())
                if with_sync and index == 0:
                    ops.append(DeviceSynchronize())
            ops += [handle.wait_op() for handle in handles]
        ops.append(backend.destroy_op(rank))
        programs.append(HostProgram(ops))
    cluster.add_hosts(programs)
    final_time = cluster.run()
    return cluster, backend, final_time


class TestDaemonGenerationTurnover:
    def test_voluntary_quit_relaunches_with_new_generation(self):
        """Quit -> relaunch: the generation counter advances and work finishes."""
        _, backend, _ = run_simple(
            orders=lambda rank, _: [0, 1] if rank == 0 else [1, 0],
            with_sync=True,
        )
        context = backend.context(0)
        stats = backend.stats(0)
        assert stats.voluntary_quits >= 1
        assert stats.launches == stats.voluntary_quits + stats.final_exits
        assert context.daemon_generation == stats.launches
        assert stats.cqes_written == 2
        assert context.finally_exited

    def test_recovery_restart_bumps_generation(self):
        """A crash forces a restart: survivors relaunch with fresh executors."""
        plan = FaultPlan(name="crash").add_crash(2, at_us=80.0)
        result = run_dfccl_chaos(plan, topology="single-3090", world_size=4,
                                 num_collectives=1, nbytes=1 << 20, iterations=1)
        assert result.outcome == "completed"
        survivor_stats = [result.daemon_stats[rank]
                          for rank in result.survivor_ranks]
        assert sum(stats.recovery_restarts for stats in survivor_stats) >= 1
        for stats in survivor_stats:
            assert stats.launches >= 2

    def test_pending_entries_survive_generations(self):
        """Collectives fetched by one generation complete under a later one."""
        _, backend, _ = run_simple(
            coll_sizes=(4096, 4096, 4096),
            orders=lambda rank, _: [0, 1, 2] if rank == 0 else [2, 1, 0],
            with_sync=True,
        )
        for rank in (0, 1):
            assert backend.stats(rank).cqes_written == 3


class TestCommunicatorPoolRecycling:
    def _pool(self):
        cluster = build_cluster("single-3090")
        return cluster, CommunicatorPool(cluster.interconnect)

    def test_keys_are_job_and_device_ids(self):
        cluster, pool = self._pool()
        devices = [cluster.device(0), cluster.device(1)]
        key = pool._key(devices)
        assert key == (None, tuple(device.device_id for device in devices))
        assert pool._key(devices, job="job-a") == (
            "job-a", tuple(device.device_id for device in devices)
        )

    def test_release_then_acquire_reuses(self):
        cluster, pool = self._pool()
        devices = [cluster.device(0), cluster.device(1)]
        comm = pool.acquire(devices)
        assert pool.release(comm) is True
        again = pool.acquire(devices)
        assert again is comm
        assert pool.stats()["reused"] == 1

    def test_invalidated_communicator_is_discarded(self):
        cluster, pool = self._pool()
        devices = [cluster.device(0), cluster.device(1)]
        comm = pool.acquire(devices)
        comm.invalidate()
        assert pool.release(comm) is False
        assert pool.acquire(devices) is not comm
        assert pool.stats()["discarded"] == 1

    def test_release_all_for_evicts_spanning_comms(self):
        cluster, pool = self._pool()
        doomed = cluster.device(1)
        comm_a = pool.acquire([cluster.device(0), doomed])
        comm_b = pool.acquire([cluster.device(2), cluster.device(3)])
        pool.release(comm_a)
        pool.release(comm_b)
        dropped = pool.release_all_for([doomed])
        assert dropped == 1
        assert pool.acquire([cluster.device(2), cluster.device(3)]) is comm_b
        assert pool.acquire([cluster.device(0), doomed]) is not comm_a

    def test_unregister_recycles_communicator(self):
        cluster = build_cluster("single-3090")
        backend = DfcclBackend(cluster)
        ranks = [0, 1]
        backend.init_all_ranks(ranks)
        coll = backend.register_all_reduce(0, count=256, ranks=ranks)
        comm = coll.communicator
        backend.unregister_collective(0)
        assert backend.context(0).context_buffer.__contains__(0) is False
        recycled = backend.register_all_reduce(1, count=256, ranks=ranks)
        assert recycled.communicator is comm
        assert backend.pool.stats()["reused"] == 1

    def test_unregister_failure_invalidated_communicator_not_reused(self):
        cluster = build_cluster("single-3090")
        backend = DfcclBackend(cluster)
        ranks = [0, 1]
        backend.init_all_ranks(ranks)
        coll = backend.register_all_reduce(0, count=256, ranks=ranks)
        coll.communicator.invalidate()
        comm = coll.communicator
        backend.unregister_collective(0)
        fresh = backend.register_all_reduce(1, count=256, ranks=ranks)
        assert fresh.communicator is not comm
        assert backend.pool.stats()["discarded"] == 1

    def test_unregister_unknown_collective_raises(self):
        cluster = build_cluster("single-3090")
        backend = DfcclBackend(cluster)
        with pytest.raises(ConfigurationError):
            backend.unregister_collective(99)


class TestRecoveryMechanics:
    def test_crash_shrinks_group_and_replaces_communicator(self):
        plan = FaultPlan(name="crash").add_crash(1, at_us=80.0)
        result = run_dfccl_chaos(plan, topology="single-3090", world_size=3,
                                 num_collectives=1, nbytes=1 << 20, iterations=1)
        assert result.outcome == "completed"
        event = result.recovery["events"][0]
        assert event["failed_ranks"] == (1,)
        assert event["survivor_ranks"] == (0, 2)
        assert event["generation"] == 1
        assert event["detection_latency_us"] > 0

    def test_double_crash_shrinks_twice(self):
        plan = (FaultPlan(name="double")
                .add_crash(1, at_us=80.0)
                .add_crash(3, at_us=2600.0))
        result = run_dfccl_chaos(plan, topology="single-3090", world_size=5,
                                 num_collectives=1, nbytes=1 << 20, iterations=3,
                                 deadline_us=60_000.0)
        assert result.outcome == "completed"
        generations = [event["generation"]
                       for event in result.recovery["events"]]
        assert max(generations) == 2
        final_survivors = result.recovery["events"][-1]["survivor_ranks"]
        assert final_survivors == (0, 2, 4)

    def test_straggler_timeout_is_not_treated_as_crash(self):
        config = DfcclConfig(crash_detect_timeout_us=50.0)
        plan = FaultPlan(name="slow").add_straggler(1, at_us=10.0, factor=8.0,
                                                    duration_us=1_000.0)
        result = run_dfccl_chaos(plan, topology="single-3090", world_size=4,
                                 num_collectives=1, nbytes=1 << 20, iterations=1,
                                 config=config)
        assert result.outcome == "completed"
        assert result.recovery["recoveries"] == 0
        assert result.recovery["suspected_stragglers"] >= 1

    def test_recovery_disabled_config_spawns_no_manager(self):
        cluster = build_cluster("single-3090")
        backend = DfcclBackend(cluster, DfcclConfig(recovery_enabled=False))
        assert backend.recovery_manager is None

    def test_dead_root_broadcast_is_abandoned_not_rerooted(self):
        """A rooted collective whose root died cannot be re-formed."""
        cluster = build_cluster("single-3090")
        backend = DfcclBackend(cluster)
        ranks = [0, 1, 2]
        backend.init_all_ranks(ranks)
        # Payload large enough that the root is still sending chunks when it
        # dies (a smaller broadcast can legitimately finish from the chunks
        # already persisted in the connectors).
        coll = backend.register_broadcast(0, count=1 << 21, ranks=ranks, root=1)
        programs = []
        for rank in ranks:
            handle = backend.submit(rank, 0)
            programs.append(HostProgram(handle.ops()))
        cluster.add_hosts(programs)
        install_fault_plan(cluster,
                           FaultPlan(name="root-crash").add_crash(1, at_us=40.0))
        cluster.run(until_us=20_000.0)
        assert coll.abandoned
        assert backend.recovery_manager.stats.abandoned >= 1
        assert backend.recovery_manager.stats.recoveries == 0
        # Survivors cannot have completed a broadcast without its root.
        invocation = coll.invocation(0)
        assert not invocation.is_done(0) and not invocation.is_done(2)

    def test_completed_root_with_dead_peer_abandons_instead_of_crashing(self):
        """Root finished sending, then a non-root peer dies: the rerun set
        excludes the root, whose sends cannot be replayed — the collective is
        abandoned without the recovery path blowing up the simulation."""
        cluster = build_cluster("single-3090")
        backend = DfcclBackend(cluster)
        ranks = [0, 1, 2, 3]
        backend.init_all_ranks(ranks)
        coll = backend.register_broadcast(0, count=1 << 20, ranks=ranks, root=0)
        invocation = coll.invocation(0)
        invocation.mark_gpu_complete(0, 10.0)   # root's part is done
        cluster.device(2).fail(20.0)
        manager = backend.recovery_manager
        manager._recover_collective(coll, [2], now=30.0)  # must not raise
        assert coll.abandoned
        assert manager.stats.abandoned == 1
        assert manager.stats.recoveries == 0
        # And the scan skips an abandoned collective instead of retrying.
        backend.context(1)._inflight[invocation] = 0.0
        backend.context(1).outstanding += 1
        manager._scan(now=10_000.0)
        assert manager.stats.abandoned == 1

    def test_unregister_after_crash_recovery_succeeds(self):
        """Recovery leaves the collective unregisterable: dead-rank contexts
        are cleaned up unconditionally and the rebuilt communicator recycles."""
        cluster = build_cluster("single-3090")
        backend = DfcclBackend(cluster)
        ranks = [0, 1, 2]
        backend.init_all_ranks(ranks)
        coll = backend.register_all_reduce(0, count=1 << 18, ranks=ranks)
        programs = []
        for rank in ranks:
            handle = backend.submit(rank, 0)
            ops = handle.ops() + [backend.destroy_op(rank)]
            programs.append(HostProgram(ops))
        cluster.add_hosts(programs)
        install_fault_plan(cluster,
                           FaultPlan(name="crash").add_crash(1, at_us=30.0))
        cluster.run(until_us=60_000.0)
        assert coll.invocation(0).fully_complete()
        backend.unregister_collective(0)  # must not raise for the dead rank
        assert backend.pool.stats()["free"] >= 1

    def test_unregister_with_inflight_invocation_raises(self):
        cluster = build_cluster("single-3090")
        backend = DfcclBackend(cluster)
        ranks = [0, 1]
        backend.init_all_ranks(ranks)
        backend.register_all_reduce(0, count=256, ranks=ranks)
        handles = {rank: backend.submit(rank, 0) for rank in ranks}
        # Rank 0 submits up front (its program only waits); rank 1 submits
        # from its program as usual.
        backend.context(0).submit_invocation(handles[0], 0.0)
        cluster.add_hosts([
            HostProgram([handles[0].wait_op(), backend.destroy_op(0)]),
            HostProgram([handles[1].submit_op(), handles[1].wait_op(),
                         backend.destroy_op(1)]),
        ])
        with pytest.raises(InvalidStateError):
            backend.unregister_collective(0)
        # The rejected unregister must leave the backend fully consistent:
        # the collective is still registered everywhere and the run works.
        assert backend.collective(0) is not None
        assert 0 in backend.context(0).registered
        assert 0 in backend.context(1).registered
        cluster.run()
        backend.unregister_collective(0)
        assert backend.pool.stats()["free"] == 1
