"""Tests for the collective algorithm layer: channels, primitives, sequences."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.types import CollectiveKind, DeviceId, PrimitiveAction
from repro.common.vtime import VirtualClock
from repro.collectives import (
    Channel,
    ChunkMessage,
    Communicator,
    CostModel,
    ExecOutcome,
    PrimitiveExecutor,
    chunk_loops,
    generate_primitive_sequence,
    primitive_count,
)
from repro.gpusim.cluster import build_cluster
from repro.gpusim.interconnect import Interconnect


def make_communicator(size=4):
    cluster = build_cluster("single-3090")
    return Communicator(cluster.devices[:size], cluster.interconnect)


class TestChannel:
    def test_fifo_order(self):
        channel = Channel(DeviceId(0, 0), DeviceId(0, 1))
        for index in range(3):
            channel.push(ChunkMessage(0, index, 0, 64, ready_time_us=0.0))
        assert channel.pop(0.0).chunk_index == 0
        assert channel.pop(0.0).chunk_index == 1

    def test_capacity_limits_writes(self):
        channel = Channel(DeviceId(0, 0), DeviceId(0, 1), capacity=2)
        channel.push(ChunkMessage(0, 0, 0, 64, 0.0))
        channel.push(ChunkMessage(0, 1, 0, 64, 0.0))
        assert not channel.writable()
        with pytest.raises(Exception):
            channel.push(ChunkMessage(0, 2, 0, 64, 0.0))

    def test_readable_respects_max_wait(self):
        channel = Channel(DeviceId(0, 0), DeviceId(0, 1))
        channel.push(ChunkMessage(0, 0, 0, 64, ready_time_us=100.0))
        assert channel.readable()  # unbounded wait
        assert not channel.readable(now_us=0.0, max_wait_us=10.0)
        assert channel.readable(now_us=95.0, max_wait_us=10.0)

    def test_pop_empty_raises(self):
        channel = Channel(DeviceId(0, 0), DeviceId(0, 1))
        with pytest.raises(Exception):
            channel.pop(0.0)


class TestCommunicator:
    def test_ring_neighbours(self):
        comm = make_communicator(4)
        assert comm.ring_next(3) == 0
        assert comm.ring_prev(0) == 3

    def test_channels_are_cached(self):
        comm = make_communicator(2)
        assert comm.channel(0, 1) is comm.channel(0, 1)
        assert comm.channel(0, 1) is not comm.channel(1, 0)

    def test_reset_channels(self):
        comm = make_communicator(2)
        comm.channel(0, 1)
        comm.reset_channels()
        assert comm.channels() == {}


class TestChunkLoops:
    def test_small_payload_single_loop(self):
        assert chunk_loops(1024, 8) == [128]

    def test_large_payload_multiple_loops(self):
        loops = chunk_loops(8 * (128 << 10) * 3, 8)
        assert len(loops) == 3

    def test_broadcast_style_not_sliced(self):
        loops = chunk_loops(256 << 10, 8, per_rank_slices=False)
        assert len(loops) == 2

    def test_rejects_non_positive(self):
        with pytest.raises(Exception):
            chunk_loops(0, 8)

    @given(st.integers(1, 1 << 24), st.integers(2, 16))
    @settings(max_examples=50, deadline=None)
    def test_loops_cover_payload(self, nbytes, group_size):
        loops = chunk_loops(nbytes, group_size)
        covered = sum(size * group_size for size in loops)
        assert covered >= nbytes


class TestSequences:
    @pytest.mark.parametrize("kind,expected", [
        # Ring all-reduce: 2(n-1) communication steps = 2n-1 primitives
        # (the final step is a receive without a send), as in NCCL.
        (CollectiveKind.ALL_REDUCE, 15),
        (CollectiveKind.ALL_GATHER, 8),
        (CollectiveKind.REDUCE_SCATTER, 8),
        (CollectiveKind.BROADCAST, 1),
        (CollectiveKind.REDUCE, 1),
    ])
    def test_primitive_counts_per_loop(self, kind, expected):
        assert primitive_count(kind, 8, nbytes=1024) == expected

    def test_single_rank_collective_is_a_copy(self):
        sequence = generate_primitive_sequence(CollectiveKind.ALL_REDUCE, 0, 1, 1024)
        assert len(sequence) == 1
        assert sequence[0].action == PrimitiveAction.COPY

    def test_all_reduce_structure(self):
        sequence = generate_primitive_sequence(CollectiveKind.ALL_REDUCE, 2, 4, 1024)
        names = [primitive.name for primitive in sequence]
        assert names == ["send", "recvReduceSend", "recvReduceSend",
                         "recvReduceCopySend", "recvCopySend", "recvCopySend", "recv"]

    def test_broadcast_roles(self):
        root_seq = generate_primitive_sequence(CollectiveKind.BROADCAST, 0, 4, 1024, root=0)
        tail_seq = generate_primitive_sequence(CollectiveKind.BROADCAST, 3, 4, 1024, root=0)
        mid_seq = generate_primitive_sequence(CollectiveKind.BROADCAST, 1, 4, 1024, root=0)
        assert root_seq[0].name == "send"
        assert tail_seq[0].name == "recv"
        assert mid_seq[0].name == "recvCopySend"

    def test_reduce_roles(self):
        root_seq = generate_primitive_sequence(CollectiveKind.REDUCE, 0, 4, 1024, root=0)
        start_seq = generate_primitive_sequence(CollectiveKind.REDUCE, 1, 4, 1024, root=0)
        assert root_seq[0].name == "recvReduceCopy"
        assert start_seq[0].name == "send"

    def test_invalid_rank_rejected(self):
        with pytest.raises(Exception):
            generate_primitive_sequence(CollectiveKind.ALL_REDUCE, 9, 4, 1024)

    @given(st.sampled_from(list(CollectiveKind)), st.integers(2, 12),
           st.integers(1, 1 << 22))
    @settings(max_examples=60, deadline=None)
    def test_sequences_balanced_across_ring(self, kind, group_size, nbytes):
        """Every send in the ring has a matching recv on the next rank."""
        if kind is CollectiveKind.SEND_RECV:
            group_size = 2
        sequences = {
            rank: generate_primitive_sequence(kind, rank, group_size, nbytes)
            for rank in range(group_size)
        }
        total_sends = sum(
            1 for seq in sequences.values() for prim in seq if prim.sends
        )
        total_recvs = sum(
            1 for seq in sequences.values() for prim in seq if prim.recvs
        )
        assert total_sends == total_recvs


class TestPrimitiveExecutor:
    def _executors(self, kind=CollectiveKind.ALL_REDUCE, group_size=4, nbytes=4096):
        comm = make_communicator(group_size)
        executors = []
        for rank in range(group_size):
            sequence = generate_primitive_sequence(kind, rank, group_size, nbytes)
            executors.append(PrimitiveExecutor(0, rank, comm, sequence))
        return executors

    def test_round_robin_execution_completes(self):
        executors = self._executors()
        clocks = [VirtualClock() for _ in executors]
        for _ in range(1000):
            if all(executor.done() for executor in executors):
                break
            for executor, clock in zip(executors, clocks):
                executor.try_execute_current(clock)
        assert all(executor.done() for executor in executors)

    def test_wait_recv_reported_when_channel_empty(self):
        executors = self._executors()
        clock = VirtualClock()
        # First primitive (send) succeeds, second (recvReduceSend) must wait.
        assert executors[0].try_execute_current(clock).outcome is ExecOutcome.SUCCESS
        outcome = executors[0].try_execute_current(clock)
        assert outcome.outcome is ExecOutcome.WAIT_RECV
        assert outcome.wait_key is not None

    def test_context_save_restore(self):
        executors = self._executors()
        clock = VirtualClock()
        executors[0].try_execute_current(clock)
        saved = executors[0].save_dynamic_context()
        assert saved == {"position": 1}
        executors[0].load_dynamic_context({"position": 0})
        assert executors[0].position == 0

    def test_progress_fraction(self):
        executors = self._executors()
        assert executors[0].progress_fraction() == 0.0
        clock = VirtualClock()
        executors[0].try_execute_current(clock)
        assert 0.0 < executors[0].progress_fraction() < 1.0

    def test_all_done_outcome(self):
        comm = make_communicator(1)
        sequence = generate_primitive_sequence(CollectiveKind.ALL_REDUCE, 0, 1, 64)
        executor = PrimitiveExecutor(0, 0, comm, sequence)
        clock = VirtualClock()
        assert executor.try_execute_current(clock).outcome is ExecOutcome.SUCCESS
        assert executor.try_execute_current(clock).outcome is ExecOutcome.ALL_DONE


class TestCostModel:
    def test_primitive_time_includes_overhead(self):
        model = CostModel()
        assert model.primitive_time_us(0) >= model.primitive_overhead_us

    def test_transfer_dominates_for_slow_link(self):
        from repro.gpusim.interconnect import LinkSpec
        from repro.common.types import LinkType
        model = CostModel()
        link = LinkSpec.of(LinkType.RDMA)
        with_send = model.primitive_time_us(1 << 20, link=link, sends=True)
        without = model.primitive_time_us(1 << 20, link=None, sends=False)
        assert with_send > without
