"""Tests for the collective algorithm layer: channels, primitives, sequences."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.types import CollectiveKind, DeviceId, PrimitiveAction
from repro.common.vtime import VirtualClock
from repro.collectives import (
    Channel,
    ChunkMessage,
    Communicator,
    CostModel,
    ExecOutcome,
    PrimitiveExecutor,
    chunk_loops,
    generate_primitive_sequence,
    primitive_count,
)
from repro.gpusim.cluster import build_cluster


def make_communicator(size=4):
    cluster = build_cluster("single-3090")
    return Communicator(cluster.devices[:size], cluster.interconnect)


class TestChannel:
    def test_fifo_order(self):
        channel = Channel(DeviceId(0, 0), DeviceId(0, 1))
        for index in range(3):
            channel.push(ChunkMessage(0, index, 0, 64, ready_time_us=0.0))
        assert channel.pop(0.0).chunk_index == 0
        assert channel.pop(0.0).chunk_index == 1

    def test_capacity_limits_writes(self):
        channel = Channel(DeviceId(0, 0), DeviceId(0, 1), capacity=2)
        channel.push(ChunkMessage(0, 0, 0, 64, 0.0))
        channel.push(ChunkMessage(0, 1, 0, 64, 0.0))
        assert not channel.writable()
        with pytest.raises(Exception):
            channel.push(ChunkMessage(0, 2, 0, 64, 0.0))

    def test_readable_respects_max_wait(self):
        channel = Channel(DeviceId(0, 0), DeviceId(0, 1))
        channel.push(ChunkMessage(0, 0, 0, 64, ready_time_us=100.0))
        assert channel.readable()  # unbounded wait
        assert not channel.readable(now_us=0.0, max_wait_us=10.0)
        assert channel.readable(now_us=95.0, max_wait_us=10.0)

    def test_pop_empty_raises(self):
        channel = Channel(DeviceId(0, 0), DeviceId(0, 1))
        with pytest.raises(Exception):
            channel.pop(0.0)


class TestCommunicator:
    def test_ring_neighbours(self):
        comm = make_communicator(4)
        assert comm.ring_next(3) == 0
        assert comm.ring_prev(0) == 3

    def test_channels_are_cached(self):
        comm = make_communicator(2)
        assert comm.channel(0, 1) is comm.channel(0, 1)
        assert comm.channel(0, 1) is not comm.channel(1, 0)

    def test_reset_channels(self):
        comm = make_communicator(2)
        comm.channel(0, 1)
        comm.reset_channels()
        assert comm.channels() == {}


class TestChunkLoops:
    def test_small_payload_single_loop(self):
        assert chunk_loops(1024, 8) == [128]

    def test_large_payload_multiple_loops(self):
        loops = chunk_loops(8 * (128 << 10) * 3, 8)
        assert len(loops) == 3

    def test_broadcast_style_not_sliced(self):
        loops = chunk_loops(256 << 10, 8, per_rank_slices=False)
        assert len(loops) == 2

    def test_rejects_non_positive(self):
        with pytest.raises(Exception):
            chunk_loops(0, 8)

    @given(st.integers(1, 1 << 24), st.integers(2, 16))
    @settings(max_examples=50, deadline=None)
    def test_loops_cover_payload(self, nbytes, group_size):
        loops = chunk_loops(nbytes, group_size)
        covered = sum(size * group_size for size in loops)
        assert covered >= nbytes


class TestSequences:
    @pytest.mark.parametrize("kind,expected", [
        # Ring all-reduce: 2(n-1) communication steps = 2n-1 primitives
        # (the final step is a receive without a send), as in NCCL.
        (CollectiveKind.ALL_REDUCE, 15),
        (CollectiveKind.ALL_GATHER, 8),
        (CollectiveKind.REDUCE_SCATTER, 8),
        (CollectiveKind.BROADCAST, 1),
        (CollectiveKind.REDUCE, 1),
    ])
    def test_primitive_counts_per_loop(self, kind, expected):
        assert primitive_count(kind, 8, nbytes=1024) == expected

    def test_single_rank_collective_is_a_copy(self):
        sequence = generate_primitive_sequence(CollectiveKind.ALL_REDUCE, 0, 1, 1024)
        assert len(sequence) == 1
        assert sequence[0].action == PrimitiveAction.COPY

    def test_all_reduce_structure(self):
        sequence = generate_primitive_sequence(CollectiveKind.ALL_REDUCE, 2, 4, 1024)
        names = [primitive.name for primitive in sequence]
        assert names == ["send", "recvReduceSend", "recvReduceSend",
                         "recvReduceCopySend", "recvCopySend", "recvCopySend", "recv"]

    def test_broadcast_roles(self):
        root_seq = generate_primitive_sequence(CollectiveKind.BROADCAST, 0, 4, 1024, root=0)
        tail_seq = generate_primitive_sequence(CollectiveKind.BROADCAST, 3, 4, 1024, root=0)
        mid_seq = generate_primitive_sequence(CollectiveKind.BROADCAST, 1, 4, 1024, root=0)
        assert root_seq[0].name == "send"
        assert tail_seq[0].name == "recv"
        assert mid_seq[0].name == "recvCopySend"

    def test_reduce_roles(self):
        root_seq = generate_primitive_sequence(CollectiveKind.REDUCE, 0, 4, 1024, root=0)
        start_seq = generate_primitive_sequence(CollectiveKind.REDUCE, 1, 4, 1024, root=0)
        assert root_seq[0].name == "recvReduceCopy"
        assert start_seq[0].name == "send"

    def test_invalid_rank_rejected(self):
        with pytest.raises(Exception):
            generate_primitive_sequence(CollectiveKind.ALL_REDUCE, 9, 4, 1024)

    @given(st.sampled_from(list(CollectiveKind)), st.integers(2, 12),
           st.integers(1, 1 << 22))
    @settings(max_examples=60, deadline=None)
    def test_sequences_balanced_across_ring(self, kind, group_size, nbytes):
        """Every send in the ring has a matching recv on the next rank."""
        if kind is CollectiveKind.SEND_RECV:
            group_size = 2
        sequences = {
            rank: generate_primitive_sequence(kind, rank, group_size, nbytes)
            for rank in range(group_size)
        }
        total_sends = sum(
            1 for seq in sequences.values() for prim in seq if prim.sends
        )
        total_recvs = sum(
            1 for seq in sequences.values() for prim in seq if prim.recvs
        )
        assert total_sends == total_recvs


class TestPrimitiveExecutor:
    def _executors(self, kind=CollectiveKind.ALL_REDUCE, group_size=4, nbytes=4096):
        comm = make_communicator(group_size)
        executors = []
        for rank in range(group_size):
            sequence = generate_primitive_sequence(kind, rank, group_size, nbytes)
            executors.append(PrimitiveExecutor(0, rank, comm, sequence))
        return executors

    def test_round_robin_execution_completes(self):
        executors = self._executors()
        clocks = [VirtualClock() for _ in executors]
        for _ in range(1000):
            if all(executor.done() for executor in executors):
                break
            for executor, clock in zip(executors, clocks):
                executor.try_execute_current(clock)
        assert all(executor.done() for executor in executors)

    def test_wait_recv_reported_when_channel_empty(self):
        executors = self._executors()
        clock = VirtualClock()
        # First primitive (send) succeeds, second (recvReduceSend) must wait.
        assert executors[0].try_execute_current(clock).outcome is ExecOutcome.SUCCESS
        outcome = executors[0].try_execute_current(clock)
        assert outcome.outcome is ExecOutcome.WAIT_RECV
        assert outcome.wait_key is not None

    def test_context_save_restore(self):
        executors = self._executors()
        clock = VirtualClock()
        executors[0].try_execute_current(clock)
        saved = executors[0].save_dynamic_context()
        assert saved == {"position": 1}
        executors[0].load_dynamic_context({"position": 0})
        assert executors[0].position == 0

    def test_progress_fraction(self):
        executors = self._executors()
        assert executors[0].progress_fraction() == 0.0
        clock = VirtualClock()
        executors[0].try_execute_current(clock)
        assert 0.0 < executors[0].progress_fraction() < 1.0

    def test_all_done_outcome(self):
        comm = make_communicator(1)
        sequence = generate_primitive_sequence(CollectiveKind.ALL_REDUCE, 0, 1, 64)
        executor = PrimitiveExecutor(0, 0, comm, sequence)
        clock = VirtualClock()
        assert executor.try_execute_current(clock).outcome is ExecOutcome.SUCCESS
        assert executor.try_execute_current(clock).outcome is ExecOutcome.ALL_DONE


class TestCostModel:
    def test_primitive_time_includes_overhead(self):
        model = CostModel()
        assert model.primitive_time_us(0) >= model.primitive_overhead_us

    def test_transfer_dominates_for_slow_link(self):
        from repro.gpusim.interconnect import LinkSpec
        from repro.common.types import LinkType
        model = CostModel()
        link = LinkSpec.of(LinkType.RDMA)
        with_send = model.primitive_time_us(1 << 20, link=link, sends=True)
        without = model.primitive_time_us(1 << 20, link=None, sends=False)
        assert with_send > without


class TestTreeRelations:
    def test_binary_tree_heap_shape(self):
        from repro.collectives import binary_tree_relations
        parent, children = binary_tree_relations(0, 7)
        assert parent is None
        assert children == [1, 2]
        parent, children = binary_tree_relations(1, 7)
        assert parent == 0
        assert children == [3, 4]

    def test_mirror_tree_flips_roles(self):
        from repro.collectives import binary_tree_relations
        parent, children = binary_tree_relations(6, 7, mirror=True)
        assert parent is None  # rank n-1 is the mirror-tree root
        parent, _ = binary_tree_relations(0, 7, mirror=True)
        assert parent is not None

    def test_double_tree_interior_leaf_balance(self):
        """No rank is interior in both trees: the interior work of the two
        complementary trees lands on disjoint rank sets."""
        from repro.collectives import binary_tree_relations
        for size in (7, 8, 15, 16):
            for rank in range(size):
                _, children0 = binary_tree_relations(rank, size)
                _, children1 = binary_tree_relations(rank, size, mirror=True)
                assert not (children0 and children1)

    def test_binomial_tree_parents(self):
        from repro.collectives import binomial_tree_relations
        parent, children = binomial_tree_relations(0, 8, root=0)
        assert parent is None
        assert sorted(children) == [1, 2, 4]
        parent, _ = binomial_tree_relations(5, 8, root=0)
        assert parent == 1  # 5 = 0b101 -> clear high bit -> 1

    def test_binomial_tree_respects_root(self):
        from repro.collectives import binomial_tree_relations
        parent, _ = binomial_tree_relations(3, 8, root=3)
        assert parent is None

    def test_binomial_edges_cover_all_ranks(self):
        from repro.collectives import binomial_tree_relations
        for size in (2, 3, 5, 8, 13):
            for root in (0, 1):
                seen = set()
                for rank in range(size):
                    parent, _ = binomial_tree_relations(rank, size, root=root)
                    if parent is None:
                        seen.add(rank)
                    else:
                        seen.add(rank)
                        assert 0 <= parent < size
                assert seen == set(range(size))


class TestTreeSequences:
    def test_tree_allreduce_root_structure(self):
        sequence = generate_primitive_sequence(
            CollectiveKind.ALL_REDUCE, 0, 8, 1024, algorithm="tree")
        names = [primitive.name for primitive in sequence]
        # Small payload: single tree; the heap root reduces both children then
        # broadcasts back down.
        assert names == ["recvReduceCopy", "recvReduceCopy", "send", "send"]

    def test_tree_allreduce_leaf_structure(self):
        sequence = generate_primitive_sequence(
            CollectiveKind.ALL_REDUCE, 7, 8, 1024, algorithm="tree")
        names = [primitive.name for primitive in sequence]
        assert names == ["send", "recv"]

    def test_tree_allreduce_splits_large_payloads(self):
        from repro.collectives.sequences import TREE_SPLIT_MIN_BYTES
        small = generate_primitive_sequence(
            CollectiveKind.ALL_REDUCE, 0, 8, 1024, algorithm="tree")
        large = generate_primitive_sequence(
            CollectiveKind.ALL_REDUCE, 0, 8, TREE_SPLIT_MIN_BYTES,
            algorithm="tree", chunk_bytes=TREE_SPLIT_MIN_BYTES)
        # Above the split threshold the rank participates in both trees.
        assert len(large) > len(small)

    def test_tree_broadcast_roles(self):
        root_seq = generate_primitive_sequence(
            CollectiveKind.BROADCAST, 0, 8, 1024, algorithm="tree")
        assert all(primitive.name == "send" for primitive in root_seq)
        leaf_seq = generate_primitive_sequence(
            CollectiveKind.BROADCAST, 7, 8, 1024, algorithm="tree")
        assert [primitive.name for primitive in leaf_seq] == ["recv"]

    def test_tree_falls_back_to_ring_for_all_gather(self):
        ring = generate_primitive_sequence(
            CollectiveKind.ALL_GATHER, 2, 8, 4096, algorithm="ring")
        tree = generate_primitive_sequence(
            CollectiveKind.ALL_GATHER, 2, 8, 4096, algorithm="tree")
        assert [p.name for p in ring] == [p.name for p in tree]

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(Exception):
            generate_primitive_sequence(
                CollectiveKind.ALL_REDUCE, 0, 8, 1024, algorithm="butterfly")

    @given(st.sampled_from([CollectiveKind.ALL_REDUCE, CollectiveKind.BROADCAST,
                            CollectiveKind.REDUCE]),
           st.integers(2, 17), st.integers(1, 1 << 16), st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_tree_moves_byte_identical_totals_to_ring(self, kind, group_size,
                                                      per_rank_bytes, root):
        """Tree sequences deliver exactly the bytes the ring delivers.

        The totals of received and reduced bytes across all ranks are
        algorithm-invariant (payload chosen divisible by the group size so
        the ring's slice padding does not kick in).
        """
        nbytes = per_rank_bytes * group_size
        root = root % group_size

        def totals(algorithm):
            recv_bytes = reduce_bytes = 0
            for rank in range(group_size):
                sequence = generate_primitive_sequence(
                    kind, rank, group_size, nbytes, chunk_bytes=1 << 30,
                    root=root, algorithm=algorithm)
                for primitive in sequence:
                    if primitive.action & PrimitiveAction.RECV:
                        recv_bytes += primitive.nbytes
                    if primitive.action & PrimitiveAction.REDUCE:
                        reduce_bytes += primitive.nbytes
            return recv_bytes, reduce_bytes

        assert totals("tree") == totals("ring")

    @given(st.sampled_from([CollectiveKind.ALL_REDUCE, CollectiveKind.BROADCAST,
                            CollectiveKind.REDUCE]),
           st.integers(2, 16), st.integers(1, 1 << 19))
    @settings(max_examples=25, deadline=None)
    def test_tree_sequences_run_to_completion(self, kind, group_size, nbytes):
        """Every rank's tree sequence completes under round-robin execution
        (no deadlock or livelock among the generated primitives)."""
        cluster = build_cluster("dual-3090")
        comm = Communicator(cluster.devices[:group_size], cluster.interconnect)
        executors = []
        for rank in range(group_size):
            sequence = generate_primitive_sequence(
                kind, rank, group_size, nbytes, algorithm="tree")
            executors.append(PrimitiveExecutor(0, rank, comm, sequence))
        clocks = [VirtualClock() for _ in executors]
        for _ in range(20_000):
            if all(executor.done() for executor in executors):
                break
            for executor, clock in zip(executors, clocks):
                executor.try_execute_current(clock)
        assert all(executor.done() for executor in executors)
