"""Tests for the CPU-orchestration baselines and the workload/trainer layer."""

import pytest

from repro.common.types import CollectiveKind
from repro.orchestration import (
    BytePSOrchestrator,
    HorovodOrchestrator,
    KungFuOrchestrator,
    MegatronManualOrchestrator,
    OneFlowStaticSortOrchestrator,
    make_orchestrator,
)
from repro.workloads import (
    CollectiveItem,
    ComputeItem,
    MoeParallelPlan,
    ParallelPlan,
    gpt2_model,
    gpt_moe_model,
    resnet50_model,
    vit_model,
)
from repro.workloads.parallelism import _stage_buckets

ORDERS = {
    0: ["a", "b", "c"],
    1: ["b", "a", "c"],
    2: ["a", "c", "b"],
}


class TestOrchestrators:
    @pytest.mark.parametrize("name", ["horovod", "byteps", "kungfu", "oneflow", "megatron"])
    def test_factory_and_consistent_order(self, name):
        orchestrator = make_orchestrator(name, world_size=3)
        decision = orchestrator.coordinate(ORDERS)
        assert sorted(decision.order) == ["a", "b", "c"]

    def test_unknown_orchestrator_rejected(self):
        with pytest.raises(ValueError):
            make_orchestrator("bogus")

    def test_horovod_charges_cycle_latency(self):
        decision = HorovodOrchestrator(world_size=8).coordinate(ORDERS)
        assert decision.per_collective_delay_us > 1000.0

    def test_oneflow_static_is_cheap_at_steady_state(self):
        orchestrator = OneFlowStaticSortOrchestrator(world_size=8)
        first = orchestrator.coordinate(ORDERS, step_index=0)
        second = orchestrator.coordinate(ORDERS, step_index=1)
        assert first.one_time_delay_us > 0.0
        assert second.one_time_delay_us == 0.0
        assert second.per_collective_delay_us < 10.0

    def test_kungfu_negotiates_once_then_enforces(self):
        orchestrator = KungFuOrchestrator(world_size=3)
        first = orchestrator.coordinate(ORDERS, step_index=0)
        second = orchestrator.coordinate({0: ["a", "b", "c", "d"]}, step_index=1)
        assert first.one_time_delay_us > 0.0
        assert second.one_time_delay_us == 0.0
        assert second.order[:3] == first.order
        assert "d" in second.order

    def test_megatron_uses_hardcoded_order_when_given(self):
        orchestrator = MegatronManualOrchestrator(hardcoded_order=["c", "b", "a"])
        decision = orchestrator.coordinate(ORDERS)
        assert decision.order[:3] == ["c", "b", "a"]

    def test_byteps_cross_node_cost_grows(self):
        single = BytePSOrchestrator(world_size=8).coordinate(ORDERS)
        double = BytePSOrchestrator(world_size=16).coordinate(ORDERS)
        assert double.per_collective_delay_us >= single.per_collective_delay_us

    def test_hybrid_support_flags(self):
        assert OneFlowStaticSortOrchestrator.supports_hybrid
        assert MegatronManualOrchestrator.supports_hybrid
        assert not HorovodOrchestrator.supports_hybrid


class TestModels:
    def test_resnet50_parameter_count(self):
        model = resnet50_model()
        assert 20e6 < model.param_count < 35e6

    def test_vit_large_bigger_than_base(self):
        assert vit_model("large").param_count > vit_model("base").param_count

    def test_gpt2_has_embedding_and_head(self):
        model = gpt2_model("small")
        names = [layer.name for layer in model.layers]
        assert names[0] == "embedding" and names[-1] == "lm_head"

    def test_unknown_variants_rejected(self):
        with pytest.raises(ValueError):
            vit_model("huge")
        with pytest.raises(ValueError):
            gpt2_model("xl")

    def test_compute_time_scales_with_batch(self):
        model = resnet50_model()
        assert model.forward_time_us(64) > model.forward_time_us(32)
        assert model.backward_time_us(32) > model.forward_time_us(32)

    def test_gradient_buckets_cover_all_parameters(self):
        model = resnet50_model()
        buckets = model.gradient_buckets(8)
        assert sum(params for _, params in buckets) == model.param_count


class TestParallelPlan:
    def test_world_size_and_batch(self):
        plan = ParallelPlan(vit_model(), tp=2, dp=2, pp=2, microbatch_size=16,
                            num_microbatches=2)
        assert plan.world_size == 8
        assert plan.global_batch_size == 64

    def test_rank_coordinate_roundtrip(self):
        plan = ParallelPlan(vit_model(), tp=2, dp=2, pp=2)
        for rank in range(plan.world_size):
            pp_index, dp_index, tp_index = plan.coordinates(rank)
            assert plan.rank(pp_index, dp_index, tp_index) == rank

    def test_dp_schedule_has_gradient_allreduces(self):
        plan = ParallelPlan(resnet50_model(), dp=4, microbatch_size=32, grad_buckets=8)
        items = plan.collective_items(0)
        assert items
        assert all(item.kind.value == "all_reduce" for item in items)
        assert sum(item.count for item in items) == pytest.approx(
            resnet50_model().param_count, rel=0.01)

    def test_tp_schedule_has_activation_allreduces(self):
        plan = ParallelPlan(vit_model(), tp=4, microbatch_size=8)
        keys = {item.key[0] for item in plan.collective_items(0)}
        assert "tp-fwd" in keys and "tp-bwd" in keys

    def test_pp_schedule_has_send_recv(self):
        plan = ParallelPlan(gpt2_model(), tp=1, dp=1, pp=2, microbatch_size=4)
        kinds = {item.kind.value for item in plan.collective_items(0)}
        assert "send_recv" in kinds

    def test_group_members_generate_identical_collective_keys(self):
        plan = ParallelPlan(vit_model(), tp=2, dp=2, pp=1, microbatch_size=8,
                            grad_buckets=4)
        for item in plan.collective_items(0):
            for member in item.group_ranks:
                member_keys = {other.key for other in plan.collective_items(member)}
                assert item.key in member_keys

    def test_schedule_mixes_compute_and_collectives(self):
        plan = ParallelPlan(resnet50_model(), dp=2, microbatch_size=16, grad_buckets=4)
        schedule = plan.iteration_schedule(0)
        assert any(isinstance(item, ComputeItem) for item in schedule)
        assert any(isinstance(item, CollectiveItem) for item in schedule)

    def test_stage_buckets_subset_of_stage(self):
        model = gpt2_model()
        plan = ParallelPlan(model, pp=2)
        stage = plan.stage_layers(0)
        buckets = _stage_buckets(model, stage, 4)
        names = {layer.name for layers, _ in buckets for layer in layers}
        assert names <= {layer.name for layer in stage}

    def test_invalid_parallel_sizes_rejected(self):
        with pytest.raises(Exception):
            ParallelPlan(vit_model(), tp=0)


class TestMoeWorkload:

    def test_moe_model_has_expert_parameters(self):
        dense = gpt2_model("small")
        moe = gpt_moe_model("small", num_experts=8)
        assert moe.param_count > dense.param_count
        assert "8e" in moe.name

    def test_invalid_expert_config_rejected(self):
        with pytest.raises(Exception):
            gpt_moe_model("small", num_experts=4, top_k=5)
        with pytest.raises(Exception):
            MoeParallelPlan(gpt_moe_model(), num_experts=0)

    def test_schedule_interleaves_dispatch_and_combine(self):
        plan = MoeParallelPlan(gpt_moe_model("small"), dp=4, microbatch_size=4,
                               num_microbatches=2, grad_buckets=4)
        schedule = plan.iteration_schedule(0)
        a2a = [item for item in schedule
               if isinstance(item, CollectiveItem)
               and item.kind is CollectiveKind.ALL_TO_ALL]
        # dispatch + combine, forward and backward, per microbatch.
        assert len(a2a) == 4 * plan.num_microbatches
        phases = {item.key[0] for item in a2a}
        assert phases == {"ep-fwd-dispatch", "ep-fwd-combine",
                          "ep-bwd-dispatch", "ep-bwd-combine"}
        for item in a2a:
            assert item.group_ranks == plan.dp_group(0, 0)
            assert item.algorithm is None

    def test_dp_gradient_allreduces_carry_hierarchical_hint(self):
        plan = MoeParallelPlan(gpt_moe_model("small"), dp=4, microbatch_size=4,
                               grad_buckets=4)
        grads = [item for item in plan.iteration_schedule(0)
                 if isinstance(item, CollectiveItem)
                 and item.key[0] == "dp-grad"]
        assert grads
        assert all(item.algorithm == "hierarchical" for item in grads)

    def test_single_shard_degenerates_to_dense_schedule(self):
        moe = MoeParallelPlan(gpt_moe_model("small"), dp=1, microbatch_size=4)
        assert not any(
            isinstance(item, CollectiveItem)
            and item.kind is CollectiveKind.ALL_TO_ALL
            for item in moe.iteration_schedule(0)
        )

    def test_group_members_generate_identical_exchange_keys(self):
        plan = MoeParallelPlan(gpt_moe_model("small"), dp=2, tp=2,
                               microbatch_size=4, grad_buckets=4)
        for item in plan.collective_items(0):
            for member in item.group_ranks:
                member_keys = {other.key for other in plan.collective_items(member)}
                assert item.key in member_keys
