"""Tests for the GPU cluster substrate: engine, device, streams, memory, hosts."""

import pytest

from repro.common.errors import DeadlockError, ResourceExhaustedError
from repro.common.types import DeviceId, LinkType
from repro.gpusim import Engine, StepResult, build_cluster
from repro.gpusim.cluster import ClusterSpec, NodeSpec, dual_server_spec, mixed_32gpu_spec
from repro.gpusim.device import SleepKernel
from repro.gpusim.engine import Actor
from repro.gpusim.host import CpuCompute, DeviceSynchronize, HostProgram, LaunchKernel
from repro.gpusim.interconnect import Interconnect, LinkSpec
from repro.gpusim.memory import MemoryAccountant, PinnedHostAllocator


class _CountdownActor(Actor):
    """Does N units of work, each costing 1 us."""

    def __init__(self, name, steps):
        super().__init__(name)
        self.remaining = steps

    def step(self):
        if self.remaining == 0:
            return StepResult.done()
        self.remaining -= 1
        self.clock.advance(1.0)
        return StepResult.progress()


class _WaiterActor(Actor):
    def __init__(self, name, key):
        super().__init__(name)
        self.key = key
        self.woken = False

    def step(self):
        if not self.woken:
            self.woken = True
            return StepResult.blocked([self.key])
        return StepResult.done()


class _SignallerActor(Actor):
    def __init__(self, name, key, at_time):
        super().__init__(name)
        self.key = key
        self.at_time = at_time
        self._fired = False

    def step(self):
        if not self._fired:
            self._fired = True
            self.clock.advance(self.at_time)
            self.engine.signal(self.key, self.clock.now)
            return StepResult.progress()
        return StepResult.done()


class TestEngine:
    def test_runs_actors_to_completion(self):
        engine = Engine()
        actor = engine.add_actor(_CountdownActor("worker", 5))
        engine.run()
        assert actor.finished
        assert actor.now == pytest.approx(5.0)

    def test_smallest_clock_scheduling(self):
        engine = Engine()
        engine.add_actor(_CountdownActor("slow", 3))
        engine.add_actor(_CountdownActor("fast", 3))
        engine.run()
        times = [entry[0] for entry in engine.obs.recorder.step_events()]
        assert times and times == sorted(times)

    def test_blocked_actor_wakes_on_signal(self):
        engine = Engine()
        waiter = engine.add_actor(_WaiterActor("waiter", "ready"))
        engine.add_actor(_SignallerActor("signaller", "ready", at_time=7.0))
        engine.run()
        assert waiter.finished
        assert waiter.now >= 7.0

    def test_deadlock_detected_when_no_signal_possible(self):
        engine = Engine()
        engine.add_actor(_WaiterActor("waiter-a", "never"))
        with pytest.raises(DeadlockError):
            engine.run()

    def test_deadlock_record_mode(self):
        engine = Engine(deadlock_mode="record")
        engine.add_actor(_WaiterActor("waiter-a", "never"))
        engine.run()
        assert engine.deadlock_report is not None
        assert "waiter-a" in engine.deadlock_report.involved()

    def test_daemon_actor_does_not_keep_engine_alive(self):
        engine = Engine()

        class _Idle(Actor):
            daemon = True

            def step(self):
                return StepResult.blocked(["never-signalled"])

        engine.add_actor(_Idle("service"))
        engine.add_actor(_CountdownActor("worker", 2))
        engine.run()  # must terminate despite the forever-blocked daemon

    def test_sleeping_actor_preserves_causality(self):
        """A sleeper must not observe state written at a later virtual time."""
        engine = Engine()
        order = []

        class _Sleeper(Actor):
            def __init__(self):
                super().__init__("sleeper")
                self._slept = False

            def step(self):
                if not self._slept:
                    self._slept = True
                    return StepResult.sleep(5.0)
                order.append(("sleeper", self.now))
                return StepResult.done()

        class _Worker(Actor):
            def __init__(self):
                super().__init__("worker")
                self._count = 0

            def step(self):
                self._count += 1
                order.append(("worker", self.now))  # record the step START time
                self.clock.advance(4.0)
                if self._count == 3:
                    return StepResult.done()
                return StepResult.progress()

        engine.add_actor(_Sleeper())
        engine.add_actor(_Worker())
        engine.run()
        # No actor's step may *start* after the sleeper's wake time but be
        # scheduled before it: step-start times must be non-decreasing.
        times = [time for _, time in order]
        assert times == sorted(times)


class TestMemory:
    def test_allocate_and_free(self):
        accountant = MemoryAccountant("test", 100)
        accountant.allocate("a", 60)
        assert accountant.used_bytes == 60
        accountant.free("a")
        assert accountant.used_bytes == 0

    def test_over_allocation_raises(self):
        accountant = MemoryAccountant("test", 100)
        accountant.allocate("a", 80)
        with pytest.raises(ResourceExhaustedError):
            accountant.allocate("b", 30)

    def test_duplicate_name_rejected(self):
        accountant = MemoryAccountant("test", 100)
        accountant.allocate("a", 10)
        with pytest.raises(ValueError):
            accountant.allocate("a", 10)

    def test_peak_tracking(self):
        accountant = MemoryAccountant("test", 100)
        accountant.allocate("a", 70)
        accountant.free("a")
        accountant.allocate("b", 30)
        assert accountant.peak_bytes == 70

    def test_pinned_allocator_records_allocations(self):
        allocator = PinnedHostAllocator()
        allocator.allocate("buf", 1 << 20, time_us=3.0)
        assert allocator.accountant.used_bytes == 1 << 20
        assert allocator.allocations[0].time_us == 3.0


class TestInterconnect:
    def test_pix_vs_sys_vs_rdma(self):
        interconnect = Interconnect(pix_group_size=4)
        same_pix = interconnect.link(DeviceId(0, 0), DeviceId(0, 3))
        cross_pix = interconnect.link(DeviceId(0, 0), DeviceId(0, 5))
        cross_node = interconnect.link(DeviceId(0, 0), DeviceId(1, 0))
        assert same_pix.link_type is LinkType.SHM_PIX
        assert cross_pix.link_type is LinkType.SHM_SYS
        assert cross_node.link_type is LinkType.RDMA

    def test_loopback(self):
        interconnect = Interconnect()
        assert interconnect.link(DeviceId(0, 1), DeviceId(0, 1)).link_type is LinkType.LOOPBACK

    def test_override(self):
        interconnect = Interconnect()
        interconnect.override(DeviceId(0, 0), DeviceId(0, 1), LinkSpec.of(LinkType.NVLINK))
        assert interconnect.link(DeviceId(0, 1), DeviceId(0, 0)).link_type is LinkType.NVLINK

    def test_bottleneck_bandwidth(self):
        interconnect = Interconnect()
        devices = [DeviceId(0, 0), DeviceId(0, 5), DeviceId(1, 0)]
        assert interconnect.bottleneck_beta_gbps(devices) == LinkType.RDMA.beta_gbps


class TestCluster:
    def test_single_server_has_eight_gpus(self):
        cluster = build_cluster("single-3090")
        assert cluster.world_size == 8

    def test_dual_and_mixed_topologies(self):
        assert build_cluster("dual-3090").world_size == 16
        assert build_cluster("mixed-32").world_size == 32

    def test_custom_spec(self):
        spec = ClusterSpec(nodes=[NodeSpec("tiny", num_gpus=2)])
        cluster = build_cluster(spec)
        assert cluster.world_size == 2

    def test_unknown_topology_rejected(self):
        with pytest.raises(Exception):
            build_cluster("not-a-topology")

    def test_dual_server_spec_names(self):
        spec = dual_server_spec()
        assert len(spec.nodes) == 2
        assert mixed_32gpu_spec().total_gpus == 32


class TestDeviceAndStreams:
    def test_sleep_kernel_runs_and_frees_blocks(self):
        cluster = build_cluster("single-3090")
        device = cluster.device(0)
        program = HostProgram([
            LaunchKernel(lambda host: SleepKernel("k0", host.device, 10.0, grid_size=2)),
        ])
        cluster.add_host(0, program)
        cluster.run()
        assert device.kernel_complete_count == 1
        assert device.free_blocks == device.max_resident_blocks

    def test_same_stream_kernels_serialize(self):
        cluster = build_cluster("single-3090")
        completions = []

        def make(name, duration):
            def factory(host):
                kernel = SleepKernel(name, host.device, duration)
                original = kernel.complete

                def complete(detail="kernel complete"):
                    completions.append((name, kernel.now))
                    return original(detail)

                kernel.complete = complete
                return kernel
            return factory

        program = HostProgram([
            LaunchKernel(make("first", 50.0), stream="s"),
            LaunchKernel(make("second", 1.0), stream="s"),
        ])
        cluster.add_host(0, program)
        cluster.run()
        assert completions[0][0] == "first"
        assert completions[1][1] > completions[0][1]

    def test_device_synchronize_waits_for_kernels(self):
        cluster = build_cluster("single-3090")
        marks = {}
        program = HostProgram([
            LaunchKernel(lambda host: SleepKernel("k", host.device, 100.0)),
            DeviceSynchronize(),
            CpuCompute(1.0, "after-sync"),
        ])
        host = cluster.add_host(0, program)
        cluster.run()
        assert host.now >= 100.0

    def test_sync_blocks_later_launches(self):
        """Kernels enqueued after a device sync cannot start before it clears."""
        cluster = build_cluster("single-3090")
        device = cluster.device(0)
        second = {}

        def make_second(host):
            kernel = SleepKernel("second", host.device, 5.0)
            second["kernel"] = kernel
            return kernel

        # Host A launches a long kernel then synchronizes; host B (same GPU)
        # enqueues another kernel after the sync was issued.
        cluster.add_host(0, HostProgram([
            LaunchKernel(lambda host: SleepKernel("long", host.device, 200.0), stream="a"),
            CpuCompute(1.0),
            DeviceSynchronize(),
        ]))
        host_b = cluster.hosts["host-0"]
        cluster.run()
        assert device.sync_count == 1

    def test_cpu_compute_advances_host_clock(self):
        cluster = build_cluster("single-3090")
        host = cluster.add_host(0, HostProgram([CpuCompute(123.0)]))
        cluster.run()
        assert host.now >= 123.0


class TestHierarchicalTopology:
    def _hier(self, nvlink=2, oversub=2.0):
        from repro.gpusim.interconnect import TopologySpec
        return Interconnect(topology=TopologySpec(
            pix_group_size=4, nvlink_domain_size=nvlink,
            rdma_oversubscription=oversub))

    def test_nvlink_domain_link(self):
        interconnect = self._hier()
        link = interconnect.link(DeviceId(0, 0), DeviceId(0, 1))
        assert link.link_type is LinkType.NVLINK
        # Same PIX domain but different NVLink islands fall back to PIX.
        link = interconnect.link(DeviceId(0, 1), DeviceId(0, 2))
        assert link.link_type is LinkType.SHM_PIX

    def test_oversubscription_divides_rdma_bandwidth(self):
        interconnect = self._hier(oversub=2.0)
        link = interconnect.link(DeviceId(0, 0), DeviceId(1, 0))
        assert link.link_type is LinkType.RDMA
        assert link.beta_gbps == LinkType.RDMA.beta_gbps / 2.0
        assert link.alpha_us == LinkType.RDMA.alpha_us

    def test_flat_topology_unchanged(self):
        flat = Interconnect(pix_group_size=4)
        assert flat.link(DeviceId(0, 0), DeviceId(0, 1)).link_type is LinkType.SHM_PIX
        assert flat.link(DeviceId(0, 0), DeviceId(1, 0)).beta_gbps == \
            LinkType.RDMA.beta_gbps

    def test_bottleneck_beta_sees_oversubscription(self):
        interconnect = self._hier(oversub=4.0)
        devices = [DeviceId(0, 0), DeviceId(0, 1), DeviceId(1, 0)]
        assert interconnect.bottleneck_beta_gbps(devices) == \
            LinkType.RDMA.beta_gbps / 4.0

    def test_bottleneck_beta_single_device_is_loopback(self):
        interconnect = self._hier()
        assert interconnect.bottleneck_beta_gbps([DeviceId(0, 0)]) == \
            LinkType.LOOPBACK.beta_gbps

    def test_bottleneck_beta_respects_overrides(self):
        interconnect = Interconnect()
        interconnect.override(DeviceId(0, 0), DeviceId(0, 1),
                              LinkSpec.of(LinkType.NVLINK, beta_gbps=1.0))
        devices = [DeviceId(0, 0), DeviceId(0, 1)]
        assert interconnect.bottleneck_beta_gbps(devices) == 1.0

    def test_intra_node_chain_groups_domains(self):
        interconnect = self._hier(nvlink=2)
        devices = [DeviceId(0, 5), DeviceId(0, 0), DeviceId(0, 4), DeviceId(0, 1)]
        chain = interconnect.intra_node_chain(devices)
        assert chain == [DeviceId(0, 0), DeviceId(0, 1), DeviceId(0, 4), DeviceId(0, 5)]

    def test_intra_node_chain_rejects_multi_node(self):
        interconnect = self._hier()
        with pytest.raises(Exception):
            interconnect.intra_node_chain([DeviceId(0, 0), DeviceId(1, 0)])

    def test_inter_node_tree_edges_span_all_nodes(self):
        interconnect = self._hier()
        devices = [DeviceId(node, local) for node in range(4) for local in range(2)]
        edges = interconnect.inter_node_tree_edges(devices)
        # A tree over 4 node leaders has exactly 3 edges, all cross-node.
        assert len(edges) == 3
        reached = {0}
        for parent, child in edges:
            assert parent.node != child.node
            reached.add(child.node)
        assert reached == {0, 1, 2, 3}

    def test_topology_spec_validation(self):
        from repro.gpusim.interconnect import TopologySpec
        with pytest.raises(Exception):
            TopologySpec(pix_group_size=0).validate()
        with pytest.raises(Exception):
            TopologySpec(rdma_oversubscription=0.5).validate()

    def test_named_hierarchical_clusters(self):
        nvlink_cluster = build_cluster("dual-3090-nvlink")
        assert nvlink_cluster.interconnect.link(
            DeviceId(0, 0), DeviceId(0, 1)).link_type is LinkType.NVLINK
        fat_tree = build_cluster("fat-tree-32")
        assert fat_tree.interconnect.link(
            DeviceId(0, 0), DeviceId(1, 0)).beta_gbps == \
            LinkType.RDMA.beta_gbps / 2.0


class TestEngineHorizonCache:
    def test_now_tracks_stepped_actors(self):
        class Ticker(Actor):
            def step(self):
                self.clock.advance(5.0)
                if self.now >= 10.0:
                    return StepResult.done()
                return StepResult.progress()

        engine = Engine()
        engine.add_actor(Ticker("a"))
        engine.add_actor(Ticker("b"))
        assert engine.now == 0.0
        engine.run()
        assert engine.now == pytest.approx(10.0)

    def test_now_tracks_late_registration(self):
        engine = Engine()

        class Idle(Actor):
            def step(self):
                return StepResult.done()

        late = Idle("late", start_time_us=42.0)
        engine.add_actor(late)
        assert engine.now == pytest.approx(42.0)


class _ForeverSleeper(Actor):
    """Sleeps in bounded hops forever (killed externally in tests)."""

    daemon = True

    def step(self):
        return StepResult.sleep(self.now + 50.0)


class TestEngineEventQueue:
    def test_killed_sleepers_are_compacted(self):
        """Satellite regression: cancelled/killed actors must not linger in
        the event queue — stale entries are invalidated in place and the heap
        is compacted once they outnumber the live ones."""
        engine = Engine()
        sleepers = [engine.add_actor(_ForeverSleeper(f"s{i}")) for i in range(500)]
        worker = engine.add_actor(_CountdownActor("worker", 3))
        for sleeper in sleepers:
            assert engine.kill_actor(sleeper)
        stats = engine.queue_stats()
        assert stats["compactions"] >= 1
        assert stats["stale"] <= max(64, stats["entries"] // 2)
        # Live entries are exactly the surviving worker.
        assert stats["live"] == 1
        engine.run()
        assert worker.finished

    def test_kill_actor_is_idempotent(self):
        engine = Engine()
        actor = engine.add_actor(_ForeverSleeper("s"))
        assert engine.kill_actor(actor) is True
        assert engine.kill_actor(actor) is False

    def test_reschedule_invalidates_old_entry(self):
        """An actor has at most one live queue entry at any time."""
        engine = Engine()
        engine.add_actor(_CountdownActor("worker", 5))
        engine.run()
        stats = engine.queue_stats()
        assert stats["live"] == 0
        assert stats["ready"] == 0

    def test_add_actors_batch_registration(self):
        engine = Engine()
        actors = engine.add_actors(_CountdownActor(f"w{i}", 2) for i in range(40))
        assert len(actors) == 40
        assert engine.queue_stats()["live"] == 40
        engine.run()
        assert all(actor.finished for actor in actors)

    def test_daemon_sleeper_does_not_block_finish(self):
        engine = Engine()
        engine.add_actor(_ForeverSleeper("poller"))
        worker = engine.add_actor(_CountdownActor("worker", 2))
        engine.run()  # must terminate with only the daemon sleeper left
        assert worker.finished

    def test_signal_log_is_bounded(self):
        engine = Engine()
        for i in range(engine.SIGNAL_LOG_LIMIT * 2):
            engine.signal(("k", i))
        assert len(engine._signal_log) == engine.SIGNAL_LOG_LIMIT


class TestTwoLevelFatTree:
    def test_cross_pod_pays_spine(self):
        from repro.gpusim.interconnect import TopologySpec

        topology = TopologySpec(nodes_per_pod=2, rdma_oversubscription=2.0,
                                spine_oversubscription=2.0)
        interconnect = Interconnect(topology=topology)
        intra_pod = interconnect.link(DeviceId(0, 0), DeviceId(1, 0))
        cross_pod = interconnect.link(DeviceId(0, 0), DeviceId(2, 0))
        assert intra_pod.beta_gbps == pytest.approx(LinkType.RDMA.beta_gbps / 2.0)
        assert cross_pod.beta_gbps == pytest.approx(LinkType.RDMA.beta_gbps / 4.0)
        assert cross_pod.alpha_us == pytest.approx(
            LinkType.RDMA.alpha_us + topology.spine_alpha_extra_us)

    def test_single_level_unchanged(self):
        from repro.gpusim.interconnect import TopologySpec

        flat = Interconnect(topology=TopologySpec(rdma_oversubscription=2.0))
        link = flat.link(DeviceId(0, 0), DeviceId(5, 0))
        assert link.beta_gbps == pytest.approx(LinkType.RDMA.beta_gbps / 2.0)
        assert link.alpha_us == pytest.approx(LinkType.RDMA.alpha_us)

    def test_fat_tree_spec_scales(self):
        from repro.gpusim import fat_tree_spec

        spec = fat_tree_spec(512)
        assert spec.total_gpus == 512
        assert spec.topology.nodes_per_pod == 4
        assert spec.topology.spine_oversubscription == 2.0
        small = fat_tree_spec(32)
        # 4 nodes fit one pod: stays a single-level fabric.
        assert small.topology.nodes_per_pod == 0
        assert small.topology.spine_oversubscription == 1.0

    def test_named_fat_tree_topologies(self):
        cluster = build_cluster("fat-tree-64")
        assert cluster.world_size == 64
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            build_cluster("fat-tree-banana")

    def test_link_cache_tracks_degradations(self):
        interconnect = Interconnect()
        a, b = DeviceId(0, 0), DeviceId(1, 0)
        before = interconnect.link(a, b)
        assert interconnect.link(a, b) is before  # cached
        interconnect.degrade_link(a, b, beta_factor=4.0, alpha_add_us=7.0)
        degraded = interconnect.link(a, b)
        assert degraded.beta_gbps == pytest.approx(before.beta_gbps / 4.0)
        assert degraded.alpha_us == pytest.approx(before.alpha_us + 7.0)
        interconnect.restore_link(a, b)
        restored = interconnect.link(a, b)
        assert restored.beta_gbps == pytest.approx(before.beta_gbps)


class TestWaiterTableAlias:
    def test_waiters_by_key_is_the_live_waiter_table(self):
        """The executor fast path keys off this public alias; it must track
        blocks and signals exactly (the engine mutates in place, never
        rebinds)."""
        engine = Engine()
        waiter = engine.add_actor(_WaiterActor("w", "ding"))
        engine.add_actor(_SignallerActor("s", "ding", at_time=3.0))
        assert engine.waiters_by_key is engine._waiters
        engine.run()
        assert waiter.finished
        assert "ding" not in engine.waiters_by_key
        assert engine.waiters_by_key is engine._waiters
