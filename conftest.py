"""Pytest root configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (useful in offline environments where ``pip install -e .`` cannot
build an editable wheel), and enforces global-RNG isolation: simulation code
must draw every random number from a seeded
:class:`repro.common.rng.DeterministicRNG` (or a local ``random.Random``),
never from the module-level ``random`` functions whose hidden shared state
makes runs order-dependent and flaky.  A test that consumes the global stream
without restoring it fails loudly instead of silently flaking a later test.
"""

import os
import random
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: Fixed session seed: anything that *does* escape to the global RNG at import
#: time is at least reproducible run to run.
_SESSION_SEED = 0xDFCC1


def pytest_sessionstart(session):
    random.seed(_SESSION_SEED)


@pytest.fixture(autouse=True)
def _global_rng_isolation(request):
    """Fail tests that consume the global ``random`` stream.

    Seeded randomness belongs in ``DeterministicRNG`` / ``random.Random``
    instances; the global stream is shared, order-dependent state.  Tests
    with a legitimate need (e.g. exercising third-party code that uses the
    module-level functions) opt out with ``@pytest.mark.uses_global_rng`` —
    state is still restored afterwards so they cannot leak entropy into
    later tests.  (Hypothesis manages and restores the global state itself,
    so property tests pass this check untouched.)
    """
    state = random.getstate()
    yield
    mutated = random.getstate() != state
    if mutated:
        random.setstate(state)
        if request.node.get_closest_marker("uses_global_rng") is None:
            pytest.fail(
                "test consumed the global `random` module RNG without "
                "isolation: seed a repro.common.rng.DeterministicRNG or a "
                "local random.Random instead (or mark the test with "
                "@pytest.mark.uses_global_rng)."
            )
