"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so that
``pip install -e .`` also works in offline environments whose setuptools lacks
PEP 660 editable-wheel support (it falls back to the legacy ``develop`` path).
"""

from setuptools import setup

setup()
