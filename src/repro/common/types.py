"""Core enums and small value types shared across the library."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DataType(enum.Enum):
    """Element types supported by collectives (mirrors ``ncclDataType_t``)."""

    INT8 = ("int8", 1)
    UINT8 = ("uint8", 1)
    INT32 = ("int32", 4)
    UINT32 = ("uint32", 4)
    INT64 = ("int64", 8)
    UINT64 = ("uint64", 8)
    FLOAT16 = ("float16", 2)
    BFLOAT16 = ("bfloat16", 2)
    FLOAT32 = ("float32", 4)
    FLOAT64 = ("float64", 8)

    def __init__(self, label, nbytes):
        self.label = label
        self.nbytes = nbytes

    def byte_size(self, count):
        """Return the buffer size in bytes for ``count`` elements."""
        return self.nbytes * count


class ReduceOp(enum.Enum):
    """Reduction operators supported by reducing collectives."""

    SUM = "sum"
    PROD = "prod"
    MAX = "max"
    MIN = "min"
    AVG = "avg"


class CollectiveKind(enum.Enum):
    """The collective operations provided by both NCCL and DFCCL."""

    ALL_REDUCE = "all_reduce"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    REDUCE = "reduce"
    BROADCAST = "broadcast"
    SEND_RECV = "send_recv"
    ALL_TO_ALL = "all_to_all"

    @property
    def reduces(self):
        """Whether the collective applies a reduction operator."""
        return self in (
            CollectiveKind.ALL_REDUCE,
            CollectiveKind.REDUCE_SCATTER,
            CollectiveKind.REDUCE,
        )


class PrimitiveAction(enum.Flag):
    """Basic actions a collective primitive is fused from (Sec. 4.1)."""

    NONE = 0
    SEND = enum.auto()
    RECV = enum.auto()
    REDUCE = enum.auto()
    COPY = enum.auto()


class LinkType(enum.Enum):
    """Interconnect link classes with paper-testbed-inspired defaults.

    ``alpha_us`` is the per-message latency, ``beta_gbps`` the sustained
    bandwidth in GB/s.  The values are calibrated so that the simulated
    bandwidth/latency curves have the same shape as the paper's Fig. 8.
    """

    SHM_PIX = ("shm_pix", 1.6, 11.0)
    SHM_SYS = ("shm_sys", 2.4, 8.0)
    NVLINK = ("nvlink", 1.0, 40.0)
    RDMA = ("rdma", 5.0, 6.0)
    LOOPBACK = ("loopback", 0.2, 200.0)

    def __init__(self, label, alpha_us, beta_gbps):
        self.label = label
        self.alpha_us = alpha_us
        self.beta_gbps = beta_gbps

    def transfer_time_us(self, nbytes):
        """Return the alpha/beta cost of moving ``nbytes`` over this link."""
        return self.alpha_us + nbytes / (self.beta_gbps * 1e3)


@dataclass(frozen=True)
class DeviceId:
    """Globally unique identifier of a simulated GPU."""

    node: int
    local_rank: int

    def __str__(self):
        return f"node{self.node}:gpu{self.local_rank}"


@dataclass(frozen=True)
class CollectiveSpec:
    """Immutable description of a registered collective.

    The spec corresponds to the arguments of ``dfcclRegister*`` in the paper:
    the operation kind, element count and type, the reduction operator, the
    participating device set, the root (for rooted collectives) and an optional
    user priority.
    """

    kind: CollectiveKind
    count: int
    dtype: DataType = DataType.FLOAT32
    op: ReduceOp = ReduceOp.SUM
    root: int = 0
    priority: int = 0
    #: Optional per-collective algorithm hint ("ring" / "tree" /
    #: "hierarchical" / "auto").  ``None`` defers to the backend-level knob;
    #: validation happens at algorithm-resolution time
    #: (:meth:`repro.collectives.AlgorithmSelector.resolve`), keeping this
    #: module free of collective-layer imports.
    algorithm: str = None

    @property
    def nbytes(self):
        """Total input buffer size in bytes."""
        return self.dtype.byte_size(self.count)

    def validate(self):
        """Raise ``ValueError`` for specs that no backend could execute."""
        if self.count <= 0:
            raise ValueError(f"collective count must be positive, got {self.count}")
        if self.root < 0:
            raise ValueError(f"collective root must be non-negative, got {self.root}")
        if self.kind.reduces and self.op is None:
            raise ValueError(f"{self.kind.value} requires a reduction operator")
        return self
