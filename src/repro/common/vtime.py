"""Virtual time used throughout the simulation.

All durations are expressed in microseconds as floats.  A ``VirtualClock`` is
attached to every simulated active entity (GPU, host thread, network link
endpoint); the event engine always advances the entity with the smallest local
time, which keeps all clocks within one scheduling quantum of each other.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically non-decreasing local clock measured in microseconds.

    ``rate`` is a time-dilation factor applied to relative advances: a clock
    with rate 2.0 belongs to an entity running at half speed, so every unit of
    work costs twice the virtual time.  Absolute jumps (``advance_to``) are
    unaffected — external events such as message arrivals happen at their real
    time regardless of how slow the local entity is.  Fault injection uses the
    rate to model straggler GPUs.
    """

    __slots__ = ("now", "rate")

    def __init__(self, start_us=0.0, rate=1.0):
        #: Current local time in microseconds.  A plain attribute, not a
        #: property: the simulator reads clocks millions of times per run and
        #: descriptor dispatch was measurable at 512 ranks.  Mutate only
        #: through :meth:`advance` / :meth:`advance_to`.
        self.now = float(start_us)
        self.rate = float(rate)

    def advance(self, delta_us):
        """Advance the clock by ``delta_us`` microseconds and return the new time."""
        if delta_us < 0:
            raise ValueError(f"cannot advance clock by negative time {delta_us}")
        self.now += delta_us * self.rate
        return self.now

    def advance_to(self, timestamp_us):
        """Move the clock forward to ``timestamp_us`` if it is in the future."""
        if timestamp_us > self.now:
            self.now = timestamp_us
        return self.now

    def __repr__(self):
        return f"VirtualClock(now={self.now:.3f}us)"


def us_to_ms(us):
    """Convert microseconds to milliseconds."""
    return us / 1e3


def us_to_s(us):
    """Convert microseconds to seconds."""
    return us / 1e6


def gbps_bytes_per_us(gbps):
    """Convert GB/s to bytes per microsecond."""
    return gbps * 1e3
