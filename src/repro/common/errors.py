"""Exception hierarchy for the reproduction library."""


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The simulated cluster reached a state from which no progress is possible.

    The exception carries the wait-for information collected by the engine so
    that callers (tests, benchmarks, the deadlock study) can inspect the cycle
    that caused the hang.
    """

    def __init__(self, message, wait_graph=None, blocked=None):
        super().__init__(message)
        self.wait_graph = dict(wait_graph or {})
        self.blocked = list(blocked or [])


class ResourceExhaustedError(ReproError):
    """A bounded simulated resource (queue slot, memory, blocks) ran out."""


class QueueFullError(ResourceExhaustedError):
    """A submission or completion queue has no writable slot."""


class QueueEmptyError(ReproError):
    """A queue read was attempted while no element was available."""


class InvalidStateError(ReproError):
    """An API call was made while the object was in the wrong lifecycle state."""
