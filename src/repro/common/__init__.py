"""Shared building blocks used by every other subpackage.

This package intentionally has no dependency on the rest of :mod:`repro`
so that any module may import it without creating cycles.
"""

from repro.common.errors import (
    ConfigurationError,
    DeadlockError,
    ReproError,
    ResourceExhaustedError,
    SimulationError,
)
from repro.common.rng import DeterministicRNG
from repro.common.types import (
    CollectiveKind,
    DataType,
    LinkType,
    PrimitiveAction,
    ReduceOp,
)
from repro.common.vtime import VirtualClock

__all__ = [
    "CollectiveKind",
    "ConfigurationError",
    "DataType",
    "DeadlockError",
    "DeterministicRNG",
    "LinkType",
    "PrimitiveAction",
    "ReduceOp",
    "ReproError",
    "ResourceExhaustedError",
    "SimulationError",
    "VirtualClock",
]
