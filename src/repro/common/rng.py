"""Deterministic random number generation.

Every stochastic component of the simulation draws from a
:class:`DeterministicRNG` derived from a single experiment seed so that a run
is exactly reproducible, while sub-streams for different GPUs or rounds remain
statistically independent.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRNG:
    """A seeded random stream with named, independent child streams."""

    def __init__(self, seed=0):
        self.seed = seed
        self._random = random.Random(seed)

    def child(self, *labels):
        """Derive an independent stream identified by ``labels``.

        The child seed is a stable hash of the parent seed and the labels, so
        the same labels always yield the same stream regardless of how many
        other children were created in between.
        """
        digest = hashlib.sha256()
        digest.update(str(self.seed).encode())
        for label in labels:
            digest.update(b"\x00")
            digest.update(str(label).encode())
        child_seed = int.from_bytes(digest.digest()[:8], "big")
        return DeterministicRNG(child_seed)

    def random(self):
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def randint(self, low, high):
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def choice(self, seq):
        """Pick one element of ``seq`` uniformly."""
        return self._random.choice(seq)

    def shuffle(self, seq):
        """Shuffle ``seq`` in place and return it for convenience."""
        self._random.shuffle(seq)
        return seq

    def sample(self, seq, k):
        """Sample ``k`` distinct elements from ``seq``."""
        return self._random.sample(seq, k)

    def uniform(self, low, high):
        """Uniform float in ``[low, high)``."""
        return self._random.uniform(low, high)

    def expovariate(self, rate):
        """Exponentially distributed float with the given rate."""
        return self._random.expovariate(rate)

    def bernoulli(self, probability):
        """Return ``True`` with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def permutation(self, n):
        """Return a random permutation of ``range(n)`` as a list."""
        order = list(range(n))
        self._random.shuffle(order)
        return order

    def __repr__(self):
        return f"DeterministicRNG(seed={self.seed})"
