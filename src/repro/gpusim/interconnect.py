"""Interconnect topology and transfer cost model.

The paper's testbeds place GPUs 0-3 and 4-7 of each server in two separate PIX
domains connected through the SYS domain, and connect servers with 56 Gb/s
RDMA.  We model every GPU pair with an alpha/beta link (latency + bandwidth)
selected from the topology, which is sufficient to reproduce the shape of the
bandwidth/latency curves in Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import DeviceId, LinkType


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link with explicit alpha/beta parameters."""

    link_type: LinkType
    alpha_us: float
    beta_gbps: float

    @classmethod
    def of(cls, link_type, alpha_us=None, beta_gbps=None):
        return cls(
            link_type=link_type,
            alpha_us=link_type.alpha_us if alpha_us is None else alpha_us,
            beta_gbps=link_type.beta_gbps if beta_gbps is None else beta_gbps,
        )

    def transfer_time_us(self, nbytes):
        """Alpha/beta cost of moving ``nbytes`` across this link."""
        if nbytes <= 0:
            return self.alpha_us
        return self.alpha_us + nbytes / (self.beta_gbps * 1e3)


class Interconnect:
    """Resolves the link connecting any two simulated GPUs."""

    def __init__(self, pix_group_size=4, overrides=None):
        self.pix_group_size = pix_group_size
        self._overrides = dict(overrides or {})

    def override(self, device_a, device_b, spec):
        """Force a specific link between two devices (both directions)."""
        self._overrides[self._key(device_a, device_b)] = spec

    @staticmethod
    def _key(device_a, device_b):
        a = (device_a.node, device_a.local_rank)
        b = (device_b.node, device_b.local_rank)
        return (a, b) if a <= b else (b, a)

    def link(self, device_a, device_b):
        """Return the :class:`LinkSpec` connecting ``device_a`` and ``device_b``."""
        if not isinstance(device_a, DeviceId) or not isinstance(device_b, DeviceId):
            raise TypeError("link() expects DeviceId arguments")
        key = self._key(device_a, device_b)
        if key in self._overrides:
            return self._overrides[key]
        if device_a == device_b:
            return LinkSpec.of(LinkType.LOOPBACK)
        if device_a.node != device_b.node:
            return LinkSpec.of(LinkType.RDMA)
        same_pix = (
            device_a.local_rank // self.pix_group_size
            == device_b.local_rank // self.pix_group_size
        )
        if same_pix:
            return LinkSpec.of(LinkType.SHM_PIX)
        return LinkSpec.of(LinkType.SHM_SYS)

    def transfer_time_us(self, device_a, device_b, nbytes):
        """Time to move ``nbytes`` between the two devices."""
        return self.link(device_a, device_b).transfer_time_us(nbytes)

    def bottleneck_beta_gbps(self, devices):
        """Slowest link bandwidth among all pairs of ``devices`` (ring bound)."""
        devices = list(devices)
        if len(devices) < 2:
            return LinkType.LOOPBACK.beta_gbps
        betas = []
        for i, dev_a in enumerate(devices):
            for dev_b in devices[i + 1 :]:
                betas.append(self.link(dev_a, dev_b).beta_gbps)
        return min(betas)
