"""Interconnect topology and transfer cost model.

The paper's testbeds place GPUs 0-3 and 4-7 of each server in two separate PIX
domains connected through the SYS domain, and connect servers with 56 Gb/s
RDMA.  We model every GPU pair with an alpha/beta link (latency + bandwidth)
selected from the topology, which is sufficient to reproduce the shape of the
bandwidth/latency curves in Fig. 8.

Beyond the flat PIX/SYS model, a :class:`TopologySpec` describes a hierarchical
fabric: NVLink islands inside the PCIe domains of each node, and an RDMA
fat-tree joining the nodes whose uplinks may be oversubscribed.  The
hierarchical view also knows how to enumerate the intra-node chain order and
the inter-node tree edges that topology-aware collective algorithms traverse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.types import DeviceId, LinkType


@dataclass(frozen=True)
class TopologySpec:
    """Hierarchical fabric description of one cluster.

    ``pix_group_size`` GPUs share a PCIe PIX domain.  Independently, groups
    of ``nvlink_domain_size`` consecutive GPUs of a node are joined by NVLink
    (0 disables NVLink); an NVLink bridge bypasses the PCIe hierarchy, so an
    island may span PIX domains and NVLink wins when both apply.  Nodes are
    connected by an RDMA fat-tree whose uplinks are
    ``rdma_oversubscription``-to-1 oversubscribed, dividing the effective
    inter-node bandwidth.

    A *two-level* fat-tree additionally groups ``nodes_per_pod`` consecutive
    nodes under one leaf switch (a pod); traffic between pods crosses the
    spine layer, paying ``spine_oversubscription`` further bandwidth division
    and ``spine_alpha_extra_us`` extra per-message latency (the second switch
    hop).  ``nodes_per_pod=0`` keeps the flat single-level fabric, which is
    what every paper testbed uses; the two-level form is how the simulator
    instantiates 256/512-rank clusters.
    """

    pix_group_size: int = 4
    nvlink_domain_size: int = 0
    rdma_oversubscription: float = 1.0
    nodes_per_pod: int = 0
    spine_oversubscription: float = 1.0
    spine_alpha_extra_us: float = 2.0

    def validate(self):
        if self.pix_group_size < 1:
            raise ConfigurationError(
                f"pix_group_size must be at least 1, got {self.pix_group_size}"
            )
        if self.nvlink_domain_size < 0:
            raise ConfigurationError(
                f"nvlink_domain_size must be non-negative, got {self.nvlink_domain_size}"
            )
        if self.rdma_oversubscription < 1.0:
            raise ConfigurationError(
                f"rdma_oversubscription must be at least 1, got {self.rdma_oversubscription}"
            )
        if self.nodes_per_pod < 0:
            raise ConfigurationError(
                f"nodes_per_pod must be non-negative, got {self.nodes_per_pod}"
            )
        if self.spine_oversubscription < 1.0:
            raise ConfigurationError(
                f"spine_oversubscription must be at least 1, "
                f"got {self.spine_oversubscription}"
            )
        if self.spine_alpha_extra_us < 0.0:
            raise ConfigurationError(
                f"spine_alpha_extra_us must be non-negative, "
                f"got {self.spine_alpha_extra_us}"
            )
        return self

    @property
    def rdma_beta_gbps(self):
        """Effective per-pair intra-pod inter-node bandwidth."""
        return LinkType.RDMA.beta_gbps / self.rdma_oversubscription

    @property
    def spine_beta_gbps(self):
        """Effective per-pair cross-pod bandwidth (leaf and spine dividers)."""
        return self.rdma_beta_gbps / self.spine_oversubscription

    def pod_of(self, node_index):
        """Pod (leaf-switch) index of a node; every node when single-level."""
        if self.nodes_per_pod <= 0:
            return 0
        return node_index // self.nodes_per_pod


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link with explicit alpha/beta parameters."""

    link_type: LinkType
    alpha_us: float
    beta_gbps: float

    @classmethod
    def of(cls, link_type, alpha_us=None, beta_gbps=None):
        return cls(
            link_type=link_type,
            alpha_us=link_type.alpha_us if alpha_us is None else alpha_us,
            beta_gbps=link_type.beta_gbps if beta_gbps is None else beta_gbps,
        )

    def transfer_time_us(self, nbytes):
        """Alpha/beta cost of moving ``nbytes`` across this link."""
        if nbytes <= 0:
            return self.alpha_us
        return self.alpha_us + nbytes / (self.beta_gbps * 1e3)


def _binomial_edges(count):
    """Parent->child edges of a binomial tree over indices ``0..count-1``."""
    edges = []
    for child in range(1, count):
        parent = child ^ (1 << (child.bit_length() - 1))
        edges.append((parent, child))
    return edges


class Interconnect:
    """Resolves the link connecting any two simulated GPUs."""

    def __init__(self, pix_group_size=4, overrides=None, topology=None):
        if topology is None:
            topology = TopologySpec(pix_group_size=pix_group_size)
        self.topology = topology.validate()
        self.pix_group_size = self.topology.pix_group_size
        self._overrides = dict(overrides or {})
        self._pair_degradations = {}
        self._device_degradations = {}
        #: Resolved :class:`LinkSpec` per device pair.  Link resolution sits
        #: on the per-primitive hot path (every send consults it), so the
        #: result is cached until anything that feeds it — an override, a
        #: degradation, a restore — changes.  ``link_epoch`` counts those
        #: invalidations; downstream caches (primitive executors) compare it
        #: to drop their own derived entries.
        self._link_cache = {}
        self.link_epoch = 0

    def _invalidate_links(self):
        self._link_cache.clear()
        self.link_epoch += 1

    def override(self, device_a, device_b, spec):
        """Force a specific link between two devices (both directions)."""
        self._overrides[self._key(device_a, device_b)] = spec
        self._invalidate_links()

    # -- fault injection: degradable links ------------------------------------

    @staticmethod
    def _remove_degradation(entries_by_key, key, beta_factor, alpha_add_us):
        """Remove one degradation entry (a specific one, or the oldest)."""
        entries = entries_by_key.get(key)
        if not entries:
            return
        wanted = ((float(beta_factor), float(alpha_add_us))
                  if beta_factor is not None else entries[0])
        if wanted in entries:
            entries.remove(wanted)
        else:
            entries.pop(0)
        if not entries:
            del entries_by_key[key]

    def degrade_link(self, device_a, device_b, beta_factor=1.0, alpha_add_us=0.0):
        """Degrade the link between two devices (bandwidth / latency fault).

        ``beta_factor`` divides the bandwidth, ``alpha_add_us`` is added to
        the per-message latency.  Degradations *stack*: overlapping faults on
        the same link each contribute an entry (worst bandwidth factor wins,
        latencies add), and each ``restore_link`` removes one entry, so one
        fault ending never cancels another still in progress.  They affect
        transfers started after the call; chunks already pushed keep their
        arrival times.
        """
        if beta_factor < 1.0:
            raise ConfigurationError(
                f"beta_factor must be at least 1, got {beta_factor}"
            )
        self._pair_degradations.setdefault(self._key(device_a, device_b), []).append(
            (float(beta_factor), float(alpha_add_us))
        )
        self._invalidate_links()

    def restore_link(self, device_a, device_b, beta_factor=None, alpha_add_us=0.0):
        """Remove one degradation between two devices (that fault ended)."""
        self._remove_degradation(
            self._pair_degradations, self._key(device_a, device_b),
            beta_factor, alpha_add_us,
        )
        self._invalidate_links()

    def degrade_device_links(self, device, beta_factor=1.0, alpha_add_us=0.0):
        """Degrade every link touching one device (NIC / PCIe-root fault)."""
        if beta_factor < 1.0:
            raise ConfigurationError(
                f"beta_factor must be at least 1, got {beta_factor}"
            )
        key = (device.node, device.local_rank)
        self._device_degradations.setdefault(key, []).append(
            (float(beta_factor), float(alpha_add_us))
        )
        self._invalidate_links()

    def restore_device_links(self, device, beta_factor=None, alpha_add_us=0.0):
        self._remove_degradation(
            self._device_degradations, (device.node, device.local_rank),
            beta_factor, alpha_add_us,
        )
        self._invalidate_links()

    def _degradation_for(self, device_a, device_b):
        """Combined (beta_factor, alpha_add) of pair and endpoint degradations."""
        factor, alpha_add = 1.0, 0.0
        entries = list(self._pair_degradations.get(
            self._key(device_a, device_b), ()))
        for device in (device_a, device_b):
            entries.extend(self._device_degradations.get(
                (device.node, device.local_rank), ()))
        for entry_factor, entry_alpha in entries:
            factor = max(factor, entry_factor)
            alpha_add += entry_alpha
        return factor, alpha_add

    @property
    def degraded_links(self):
        """Number of currently active degradations (introspection)."""
        return (sum(len(entries) for entries in self._pair_degradations.values())
                + sum(len(entries) for entries in self._device_degradations.values()))

    @staticmethod
    def _key(device_a, device_b):
        a = (device_a.node, device_a.local_rank)
        b = (device_b.node, device_b.local_rank)
        return (a, b) if a <= b else (b, a)

    # -- hierarchical link resolution -----------------------------------------

    def nvlink_domain(self, device):
        """NVLink island index of a device within its node (None when disabled)."""
        if self.topology.nvlink_domain_size <= 0:
            return None
        return device.local_rank // self.topology.nvlink_domain_size

    def pix_domain(self, device):
        return device.local_rank // self.pix_group_size

    def locality(self, device_a, device_b):
        """The :class:`LinkType` class connecting two devices (before overrides)."""
        if device_a == device_b:
            return LinkType.LOOPBACK
        if device_a.node != device_b.node:
            return LinkType.RDMA
        nvl_a, nvl_b = self.nvlink_domain(device_a), self.nvlink_domain(device_b)
        if nvl_a is not None and nvl_a == nvl_b:
            return LinkType.NVLINK
        if self.pix_domain(device_a) == self.pix_domain(device_b):
            return LinkType.SHM_PIX
        return LinkType.SHM_SYS

    def link(self, device_a, device_b):
        """Return the :class:`LinkSpec` connecting ``device_a`` and ``device_b``."""
        if not isinstance(device_a, DeviceId) or not isinstance(device_b, DeviceId):
            raise TypeError("link() expects DeviceId arguments")
        key = self._key(device_a, device_b)
        cached = self._link_cache.get(key)
        if cached is not None:
            return cached
        if key in self._overrides:
            spec = self._overrides[key]
        else:
            locality = self.locality(device_a, device_b)
            if locality is LinkType.RDMA:
                topology = self.topology
                if topology.pod_of(device_a.node) != topology.pod_of(device_b.node):
                    spec = LinkSpec.of(
                        LinkType.RDMA,
                        alpha_us=LinkType.RDMA.alpha_us + topology.spine_alpha_extra_us,
                        beta_gbps=topology.spine_beta_gbps,
                    )
                else:
                    spec = LinkSpec.of(LinkType.RDMA,
                                       beta_gbps=topology.rdma_beta_gbps)
            else:
                spec = LinkSpec.of(locality)
        factor, alpha_add = self._degradation_for(device_a, device_b)
        if factor > 1.0 or alpha_add > 0.0:
            spec = LinkSpec(
                link_type=spec.link_type,
                alpha_us=spec.alpha_us + alpha_add,
                beta_gbps=spec.beta_gbps / factor,
            )
        self._link_cache[key] = spec
        return spec

    def transfer_time_us(self, device_a, device_b, nbytes):
        """Time to move ``nbytes`` between the two devices."""
        return self.link(device_a, device_b).transfer_time_us(nbytes)

    def bottleneck_beta_gbps(self, devices):
        """Slowest link bandwidth among all pairs of ``devices`` (ring bound)."""
        devices = list(devices)
        if len(devices) < 2:
            return LinkType.LOOPBACK.beta_gbps
        betas = []
        for i, dev_a in enumerate(devices):
            for dev_b in devices[i + 1 :]:
                betas.append(self.link(dev_a, dev_b).beta_gbps)
        return min(betas)

    # -- hierarchy enumeration -------------------------------------------------

    def node_groups(self, devices):
        """Devices grouped by node, each group in intra-node chain order."""
        groups = {}
        for device in devices:
            groups.setdefault(device.node, []).append(device)
        return {
            node: self.intra_node_chain(members)
            for node, members in sorted(groups.items())
        }

    def intra_node_chain(self, devices):
        """Chain traversal order of same-node devices.

        Devices in the same NVLink island are kept adjacent, islands in the
        same PIX domain are kept adjacent, so a chain walk crosses each slower
        domain boundary the minimum number of times.
        """
        devices = list(devices)
        nodes = {device.node for device in devices}
        if len(nodes) > 1:
            raise ConfigurationError(
                f"intra_node_chain expects devices of one node, got nodes {sorted(nodes)}"
            )
        return sorted(
            devices,
            key=lambda device: (
                self.pix_domain(device),
                self.nvlink_domain(device) or 0,
                device.local_rank,
            ),
        )

    def inter_node_tree_edges(self, devices):
        """Binomial-tree edges over one leader device per participating node.

        Returns ``(parent_device, child_device)`` pairs: the inter-node stage
        of a hierarchical collective forwards data along exactly these RDMA
        edges.
        """
        groups = self.node_groups(devices)
        leaders = [members[0] for members in groups.values()]
        return [
            (leaders[parent], leaders[child])
            for parent, child in _binomial_edges(len(leaders))
        ]
