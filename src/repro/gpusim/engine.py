"""Conservative discrete-event engine with wait-for-graph deadlock detection.

The engine owns a set of :class:`Actor` objects (GPUs, resident kernels, host
threads, network pollers).  Each actor has a local :class:`VirtualClock`; the
engine repeatedly steps the *runnable* actor with the smallest local time so
that all clocks stay within one quantum of each other.

An actor's ``step`` returns a :class:`StepResult`:

``PROGRESS``
    The actor did useful work and advanced its own clock.
``BLOCKED``
    The actor cannot proceed until one of the given *wait keys* is signalled
    by another actor (e.g. "a kernel on GPU 3 completed", "connector 7 has
    data").  Blocked actors are not stepped again until a signal arrives.
``SLEEP``
    The actor wants to be woken at an absolute virtual time (used for polling
    threads and voluntary-quit timers).
``DONE``
    The actor finished and is removed from scheduling.

When every live actor is blocked and none is sleeping, no signal can ever
arrive: the system is deadlocked.  The engine then either raises
:class:`DeadlockError` or records the deadlock and terminates, depending on
``deadlock_mode``.

Scheduling lives in ONE indexed event queue.  Every schedulable actor has at
most one live heap entry — ``(time, kind, seq, actor)`` where *kind* orders
sleepers before ready actors on time ties, exactly the order the old
ready/sleeping double heap produced by eagerly waking due sleepers.
Rescheduling or killing an actor invalidates its entry in place (the actor
slot is cleared) instead of leaving the old entry to be lazily skipped; when
stale entries outnumber live ones the heap is compacted, so cancelled or
killed actors can never make the queue grow without bound (fuzzing at
hundreds of ranks pops millions of entries — the queue must stay dense).
"""

from __future__ import annotations

import enum
import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.common.errors import DeadlockError, SimulationError
from repro.common.vtime import VirtualClock
from repro.obs import Observability

#: Entry kinds in the unified event queue.  Sleepers sort before ready actors
#: at equal times: the old scheduler woke every due sleeper (converting it to
#: a ready entry with a fresh sequence number) before stepping ready actors.
_KIND_SLEEP = 0
_KIND_READY = 1

#: Index of the actor slot inside a queue entry (cleared when invalidated).
_ENTRY_ACTOR = 3

#: Compaction threshold: never compact below this many stale entries (tiny
#: queues churn entries constantly and rebuilds would dominate).
_COMPACT_MIN_STALE = 64


class StepStatus(enum.Enum):
    """Outcome of a single actor step."""

    PROGRESS = "progress"
    BLOCKED = "blocked"
    SLEEP = "sleep"
    DONE = "done"


@dataclass
class StepResult:
    """Value returned by :meth:`Actor.step`."""

    status: StepStatus
    wait_keys: tuple = ()
    wake_at: float = 0.0
    detail: str = ""

    @classmethod
    def progress(cls, detail=""):
        return cls(StepStatus.PROGRESS, detail=detail)

    @classmethod
    def blocked(cls, wait_keys, detail=""):
        keys = tuple(wait_keys) if not isinstance(wait_keys, (str, tuple)) else wait_keys
        if isinstance(keys, str):
            keys = (keys,)
        if not keys:
            raise ValueError("a BLOCKED step must name at least one wait key")
        return cls(StepStatus.BLOCKED, wait_keys=tuple(keys), detail=detail)

    @classmethod
    def sleep(cls, wake_at, detail=""):
        return cls(StepStatus.SLEEP, wake_at=float(wake_at), detail=detail)

    @classmethod
    def done(cls, detail=""):
        return cls(StepStatus.DONE, detail=detail)


class Actor:
    """Base class for anything the engine schedules.

    ``daemon`` actors are service actors (GPU launch schedulers, completion
    pollers): they never keep the simulation alive, and being blocked forever
    is their normal idle state, so they are ignored by deadlock detection.
    """

    daemon = False

    def __init__(self, name, start_time_us=0.0):
        self.name = name
        self.clock = VirtualClock(start_time_us)
        self.engine = None
        self.finished = False

    @property
    def now(self):
        return self.clock.now

    def step(self):
        """Advance the actor by one quantum.  Subclasses must override."""
        raise NotImplementedError

    def on_registered(self, engine):
        """Hook invoked when the actor joins an engine."""
        self.engine = engine

    def __repr__(self):
        return f"<{type(self).__name__} {self.name} t={self.now:.2f}us>"


@dataclass
class DeadlockReport:
    """Description of a detected deadlock."""

    time_us: float
    blocked_actors: list = field(default_factory=list)
    wait_graph: dict = field(default_factory=dict)

    def involved(self):
        """Names of the actors that were blocked when the deadlock was found."""
        return [actor.name for actor in self.blocked_actors]


class Engine:
    """Smallest-local-clock-first scheduler over a set of actors."""

    #: How many recent signal keys to retain for debugging.
    SIGNAL_LOG_LIMIT = 4096

    def __init__(self, deadlock_mode="raise", max_steps=50_000_000,
                 observability=None):
        if deadlock_mode not in ("raise", "record"):
            raise ValueError(f"unknown deadlock_mode {deadlock_mode!r}")
        self.deadlock_mode = deadlock_mode
        self.max_steps = max_steps
        #: The observability hub — always present; pass
        #: ``Observability(enabled=False)`` to opt out of recording.
        self.obs = observability if observability is not None else Observability()
        #: Hot-loop alias: the flight-recorder event ring, or ``None`` when
        #: observability is disabled (one branch per step either way).
        self._event_ring = self.obs.recorder.ring if self.obs.enabled else None
        self._actors = []
        #: The unified event queue: a heap of ``[time, kind, seq, actor]``
        #: entries.  ``self._entries`` maps each schedulable actor to its one
        #: live entry; invalidation clears the entry's actor slot.
        self._queue = []
        self._entries = {}
        self._stale = 0
        self._compactions = 0
        self._ready_count = 0
        self._live_worker_count = 0
        self._blocked = {}
        self._waiters = {}
        #: Public read-only alias of the waiter table, keyed by wait key.
        #: Hot paths (the primitive executor signals once or twice per
        #: primitive) test ``key in engine.waiters_by_key`` before paying the
        #: ``signal()`` call — a signal nobody waits on is a no-op.  The
        #: engine only ever mutates this dict in place, never rebinds it, so
        #: the alias stays valid for the engine's lifetime; external code
        #: must treat it as read-only.
        self.waiters_by_key = self._waiters
        self._counter = itertools.count()
        self._steps = 0
        self._horizon = 0.0
        self.deadlock_report = None
        self._signal_log = deque(maxlen=self.SIGNAL_LOG_LIMIT)
        self._signals = 0
        if self.obs.enabled:
            registry = self.obs.metrics
            registry.gauge_fn("engine_steps", lambda: self._steps)
            registry.gauge_fn("engine_queue_entries", lambda: len(self._queue))
            registry.gauge_fn("engine_queue_live",
                              lambda: len(self._queue) - self._stale)
            registry.gauge_fn("engine_queue_stale", lambda: self._stale)
            registry.gauge_fn("engine_queue_compactions",
                              lambda: self._compactions)
            registry.gauge_fn("engine_queue_ready", lambda: self._ready_count)
            registry.gauge_fn("engine_signals", lambda: self._signals)

    # -- registration -------------------------------------------------------

    def _register(self, actor):
        """Shared registration bookkeeping of the add_actor/add_actors paths."""
        self._actors.append(actor)
        actor.on_registered(self)
        if not actor.daemon and not actor.finished:
            self._live_worker_count += 1
        self._observe_time(actor.now)

    def add_actor(self, actor):
        """Register an actor and make it runnable."""
        self._register(actor)
        self._schedule(actor, actor.now, _KIND_READY)
        return actor

    def add_actors(self, actors):
        """Batch-register many actors (one heapify instead of N sift-ups).

        Used by cluster construction: instantiating a 512-rank fat-tree
        registers hundreds of devices at once, and pushing them one by one is
        both slower and noisier in profiles than a single heapify.
        """
        actors = list(actors)
        for actor in actors:
            self._register(actor)
            # Same invariant as _schedule — one live entry per actor — with
            # the heap push deferred to the single heapify below.
            old = self._entries.get(actor)
            if old is not None:
                self._invalidate(old)
            entry = [actor.now, _KIND_READY, next(self._counter), actor]
            self._entries[actor] = entry
            self._queue.append(entry)
            self._ready_count += 1
        heapq.heapify(self._queue)
        return actors

    def actors(self):
        return list(self._actors)

    # -- event queue helpers -------------------------------------------------

    def _schedule(self, actor, time_us, kind):
        """Give ``actor`` a (new) live queue entry, invalidating any old one."""
        old = self._entries.get(actor)
        if old is not None:
            self._invalidate(old)
        entry = [time_us, kind, next(self._counter), actor]
        self._entries[actor] = entry
        heapq.heappush(self._queue, entry)
        if kind == _KIND_READY:
            self._ready_count += 1

    def _invalidate(self, entry):
        """Mark a queue entry stale in place; compact when stale dominates."""
        if entry[_ENTRY_ACTOR] is None:
            return
        if entry[1] == _KIND_READY:
            self._ready_count -= 1
        entry[_ENTRY_ACTOR] = None
        self._stale += 1
        if self._stale > _COMPACT_MIN_STALE and self._stale * 2 > len(self._queue):
            self._compact()

    def _discard_entry(self, actor):
        """Invalidate the live entry of ``actor``, if any."""
        entry = self._entries.pop(actor, None)
        if entry is not None:
            self._invalidate(entry)

    def _compact(self):
        """Rebuild the heap from live entries only."""
        self._queue = [entry for entry in self._queue
                       if entry[_ENTRY_ACTOR] is not None]
        heapq.heapify(self._queue)
        self._stale = 0
        self._compactions += 1

    def queue_stats(self):
        """Event-queue health counters (introspection / regression tests)."""
        return {
            "entries": len(self._queue),
            "live": len(self._queue) - self._stale,
            "stale": self._stale,
            "compactions": self._compactions,
            "ready": self._ready_count,
        }

    def _observe_time(self, time_us):
        """Keep the cached global horizon in sync with an observed clock."""
        if time_us > self._horizon:
            self._horizon = time_us

    def observe_time(self, time_us):
        """Public form of the horizon update, for external clock mutations
        (fault injection advances kernel clocks outside a step)."""
        self._observe_time(time_us)

    # -- signalling ----------------------------------------------------------

    def signal(self, key, time_us=None):
        """Wake every actor blocked on ``key``.

        ``time_us`` is the virtual time at which the signalled condition became
        true; woken actors have their clocks advanced to at least that time,
        modelling the spin-wait they performed while blocked.
        """
        self._signals += 1
        if self._event_ring is not None:
            self._signal_log.append(key)
        waiters = self._waiters.pop(key, None)
        if not waiters:
            return 0
        woken = 0
        for actor in waiters:
            keys = self._blocked.pop(actor, None)
            if keys is None:
                continue
            for other in keys:
                if other != key:
                    group = self._waiters.get(other)
                    if group is not None:
                        group.discard(actor)
                        if not group:
                            self._waiters.pop(other, None)
            if time_us is not None:
                actor.clock.advance_to(time_us)
                self._observe_time(actor.now)
            self._schedule(actor, actor.now, _KIND_READY)
            woken += 1
        return woken

    def _block(self, actor, keys):
        self._blocked[actor] = tuple(keys)
        for key in keys:
            self._waiters.setdefault(key, set()).add(actor)

    def wake_actor(self, actor, time_us=None):
        """Make one blocked *or sleeping* actor runnable immediately.

        ``signal`` can only reach actors parked on a wait key; an actor
        sleeping toward a deadline (a scheduler waiting for its next arrival)
        is invisible to it.  The control plane uses this to deliver live job
        submissions and scheduled preemptions: whatever state the target is
        in, it is rescheduled ready at ``max(actor.now, time_us)``.  Returns
        ``False`` when the actor is finished (nothing to wake).
        """
        if actor.finished:
            return False
        keys = self._blocked.pop(actor, None)
        if keys is not None:
            for key in keys:
                group = self._waiters.get(key)
                if group is not None:
                    group.discard(actor)
                    if not group:
                        self._waiters.pop(key, None)
        if time_us is not None:
            actor.clock.advance_to(time_us)
            self._observe_time(actor.now)
        self._schedule(actor, actor.now, _KIND_READY)
        return True

    # -- fault injection -----------------------------------------------------

    def kill_actor(self, actor, time_us=None):
        """Remove an actor from scheduling immediately (fault injection).

        The actor is marked finished, unhooked from every wait key and its
        queue entry is invalidated on the spot.  Unlike a normal DONE step,
        the actor gets no chance to clean up — this models a crash.
        """
        if actor.finished:
            return False
        actor.finished = True
        if not actor.daemon:
            self._live_worker_count -= 1
        if time_us is not None:
            actor.clock.advance_to(time_us)
            self._observe_time(actor.now)
        if self.obs.enabled:
            self.obs.metrics.counter("engine_actors_killed").inc()
            self.obs.recorder.record_event(actor.now, "fault",
                                           f"killed:{actor.name}")
        self._discard_entry(actor)
        keys = self._blocked.pop(actor, ())
        for key in keys:
            group = self._waiters.get(key)
            if group is not None:
                group.discard(actor)
                if not group:
                    self._waiters.pop(key, None)
        return True

    # -- main loop -----------------------------------------------------------

    @property
    def now(self):
        """Largest local time reached by any actor (the global horizon).

        Cached incrementally: the engine observes every clock advance it
        mediates (steps, signals, sleeper wake-ups), so reading ``now`` is
        O(1) instead of a scan over all actors on every access.
        """
        return self._horizon

    def _live_actors(self):
        return [actor for actor in self._actors if not actor.finished]

    def _live_workers(self):
        """Live non-daemon actors; when none remain the simulation is over."""
        return [
            actor for actor in self._actors if not actor.finished and not actor.daemon
        ]

    def run(self, until_us=None):
        """Run until no live actors remain, a deadline, or a deadlock.

        Returns the final global virtual time.
        """
        while True:
            self._steps += 1
            if self._steps > self.max_steps:
                raise SimulationError(
                    f"engine exceeded {self.max_steps} steps; "
                    "likely a livelock in a simulated component"
                )

            if until_us is not None and self._horizon >= until_us:
                return self._horizon

            actor = self._pop_runnable()
            if actor is None:
                if self._handle_stall():
                    continue
                return self._horizon

            result = actor.step()
            self._observe_time(actor.now)
            ring = self._event_ring
            if ring is not None:
                # The flight recorder's entire hot-path cost: one bounded
                # deque append per step.
                ring.append((actor.now, actor.name, result.status.value,
                             result.detail))

            status = result.status
            if status is StepStatus.PROGRESS:
                self._schedule(actor, actor.now, _KIND_READY)
            elif status is StepStatus.BLOCKED:
                self._block(actor, result.wait_keys)
            elif status is StepStatus.SLEEP:
                self._schedule(actor, max(result.wake_at, actor.now), _KIND_SLEEP)
            elif status is StepStatus.DONE:
                actor.finished = True
                if not actor.daemon:
                    self._live_worker_count -= 1
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown step status {result.status}")

    def _pop_runnable(self):
        """Pop the next actor to step, respecting virtual-time causality.

        Ready and sleeping actors share the event queue, merged by timestamp
        (sleepers first on ties): a sleeper whose wake time precedes the
        earliest ready actor's clock is woken first, so no actor ever
        observes state produced "in its future".
        """
        queue = self._queue
        entries = self._entries
        while queue:
            entry = queue[0]
            actor = entry[_ENTRY_ACTOR]
            if actor is None:
                heapq.heappop(queue)
                self._stale -= 1
                continue
            if actor.finished:
                # Defensive: every finish path invalidates the entry, but an
                # actor finished behind the engine's back must not be stepped.
                heapq.heappop(queue)
                if entries.get(actor) is entry:
                    del entries[actor]
                if entry[1] == _KIND_READY:
                    self._ready_count -= 1
                continue
            if entry[1] == _KIND_READY:
                heapq.heappop(queue)
                del entries[actor]
                self._ready_count -= 1
                return actor
            # The earliest event is a sleeper wake-up.
            if self._ready_count == 0 and self._live_worker_count <= 0 \
                    and not self._live_workers():
                # Only daemon sleepers remain; let the caller finish.
                return None
            heapq.heappop(queue)
            del entries[actor]
            actor.clock.advance_to(entry[0])
            self._observe_time(actor.now)
            self._schedule(actor, actor.now, _KIND_READY)
        return None

    def _handle_stall(self):
        """Called when the event queue ran dry.

        Returns ``True`` when progress is still possible, ``False`` when the
        simulation has genuinely finished, and raises or records a deadlock
        when live actors remain but none can ever run.
        """
        workers = self._live_workers()
        if not workers:
            return False

        blocked = [actor for actor in workers if actor in self._blocked]
        if blocked:
            report = DeadlockReport(
                time_us=self.now,
                blocked_actors=blocked,
                wait_graph={actor.name: list(self._blocked[actor]) for actor in blocked},
            )
            self.deadlock_report = report
            if self.obs.enabled:
                self.obs.metrics.counter("engine_deadlocks").inc()
                self.obs.auto_dump("deadlock", context={
                    "time_us": report.time_us,
                    "blocked_actors": report.involved(),
                    "wait_graph": {name: [repr(key) for key in keys]
                                   for name, keys in
                                   report.wait_graph.items()},
                })
            if self.deadlock_mode == "raise":
                raise DeadlockError(
                    f"deadlock at t={self.now:.2f}us: "
                    f"{len(blocked)} actors blocked with no possible signal",
                    wait_graph=report.wait_graph,
                    blocked=report.involved(),
                )
            return False

        # Live actors exist but none is ready, blocked or sleeping: they were
        # all left unscheduled, which indicates an engine bug.
        raise SimulationError("live actors exist but none is schedulable")

    # -- introspection --------------------------------------------------------

    @property
    def step_count(self):
        return self._steps

    def blocked_actor_names(self):
        return [actor.name for actor in self._blocked]
