"""Conservative discrete-event engine with wait-for-graph deadlock detection.

The engine owns a set of :class:`Actor` objects (GPUs, resident kernels, host
threads, network pollers).  Each actor has a local :class:`VirtualClock`; the
engine repeatedly steps the *runnable* actor with the smallest local time so
that all clocks stay within one quantum of each other.

An actor's ``step`` returns a :class:`StepResult`:

``PROGRESS``
    The actor did useful work and advanced its own clock.
``BLOCKED``
    The actor cannot proceed until one of the given *wait keys* is signalled
    by another actor (e.g. "a kernel on GPU 3 completed", "connector 7 has
    data").  Blocked actors are not stepped again until a signal arrives.
``SLEEP``
    The actor wants to be woken at an absolute virtual time (used for polling
    threads and voluntary-quit timers).
``DONE``
    The actor finished and is removed from scheduling.

When every live actor is blocked and none is sleeping, no signal can ever
arrive: the system is deadlocked.  The engine then either raises
:class:`DeadlockError` or records the deadlock and terminates, depending on
``deadlock_mode``.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field

from repro.common.errors import DeadlockError, SimulationError
from repro.common.vtime import VirtualClock


class StepStatus(enum.Enum):
    """Outcome of a single actor step."""

    PROGRESS = "progress"
    BLOCKED = "blocked"
    SLEEP = "sleep"
    DONE = "done"


@dataclass
class StepResult:
    """Value returned by :meth:`Actor.step`."""

    status: StepStatus
    wait_keys: tuple = ()
    wake_at: float = 0.0
    detail: str = ""

    @classmethod
    def progress(cls, detail=""):
        return cls(StepStatus.PROGRESS, detail=detail)

    @classmethod
    def blocked(cls, wait_keys, detail=""):
        keys = tuple(wait_keys) if not isinstance(wait_keys, (str, tuple)) else wait_keys
        if isinstance(keys, str):
            keys = (keys,)
        if not keys:
            raise ValueError("a BLOCKED step must name at least one wait key")
        return cls(StepStatus.BLOCKED, wait_keys=tuple(keys), detail=detail)

    @classmethod
    def sleep(cls, wake_at, detail=""):
        return cls(StepStatus.SLEEP, wake_at=float(wake_at), detail=detail)

    @classmethod
    def done(cls, detail=""):
        return cls(StepStatus.DONE, detail=detail)


class Actor:
    """Base class for anything the engine schedules.

    ``daemon`` actors are service actors (GPU launch schedulers, completion
    pollers): they never keep the simulation alive, and being blocked forever
    is their normal idle state, so they are ignored by deadlock detection.
    """

    daemon = False

    def __init__(self, name, start_time_us=0.0):
        self.name = name
        self.clock = VirtualClock(start_time_us)
        self.engine = None
        self.finished = False

    @property
    def now(self):
        return self.clock.now

    def step(self):
        """Advance the actor by one quantum.  Subclasses must override."""
        raise NotImplementedError

    def on_registered(self, engine):
        """Hook invoked when the actor joins an engine."""
        self.engine = engine

    def __repr__(self):
        return f"<{type(self).__name__} {self.name} t={self.now:.2f}us>"


@dataclass
class DeadlockReport:
    """Description of a detected deadlock."""

    time_us: float
    blocked_actors: list = field(default_factory=list)
    wait_graph: dict = field(default_factory=dict)

    def involved(self):
        """Names of the actors that were blocked when the deadlock was found."""
        return [actor.name for actor in self.blocked_actors]


class Engine:
    """Smallest-local-clock-first scheduler over a set of actors."""

    def __init__(self, deadlock_mode="raise", max_steps=50_000_000, trace=None):
        if deadlock_mode not in ("raise", "record"):
            raise ValueError(f"unknown deadlock_mode {deadlock_mode!r}")
        self.deadlock_mode = deadlock_mode
        self.max_steps = max_steps
        self.trace = trace
        self._actors = []
        self._ready = []
        self._sleeping = []
        self._blocked = {}
        self._waiters = {}
        self._counter = itertools.count()
        self._steps = 0
        self._horizon = 0.0
        self.deadlock_report = None
        self._signal_log = []

    # -- registration -------------------------------------------------------

    def add_actor(self, actor):
        """Register an actor and make it runnable."""
        self._actors.append(actor)
        actor.on_registered(self)
        self._observe_time(actor.now)
        self._push_ready(actor)
        return actor

    def actors(self):
        return list(self._actors)

    # -- ready queue helpers -------------------------------------------------

    def _push_ready(self, actor):
        heapq.heappush(self._ready, (actor.now, next(self._counter), actor))

    def _push_sleeping(self, actor, wake_at):
        heapq.heappush(self._sleeping, (wake_at, next(self._counter), actor))

    def _observe_time(self, time_us):
        """Keep the cached global horizon in sync with an observed clock."""
        if time_us > self._horizon:
            self._horizon = time_us

    def observe_time(self, time_us):
        """Public form of the horizon update, for external clock mutations
        (fault injection advances kernel clocks outside a step)."""
        self._observe_time(time_us)

    # -- signalling ----------------------------------------------------------

    def signal(self, key, time_us=None):
        """Wake every actor blocked on ``key``.

        ``time_us`` is the virtual time at which the signalled condition became
        true; woken actors have their clocks advanced to at least that time,
        modelling the spin-wait they performed while blocked.
        """
        self._signal_log.append(key)
        waiters = self._waiters.pop(key, None)
        if not waiters:
            return 0
        woken = 0
        for actor in waiters:
            keys = self._blocked.pop(actor, None)
            if keys is None:
                continue
            for other in keys:
                if other != key:
                    group = self._waiters.get(other)
                    if group is not None:
                        group.discard(actor)
                        if not group:
                            self._waiters.pop(other, None)
            if time_us is not None:
                actor.clock.advance_to(time_us)
                self._observe_time(actor.now)
            self._push_ready(actor)
            woken += 1
        return woken

    def _block(self, actor, keys):
        self._blocked[actor] = tuple(keys)
        for key in keys:
            self._waiters.setdefault(key, set()).add(actor)

    # -- fault injection -----------------------------------------------------

    def kill_actor(self, actor, time_us=None):
        """Remove an actor from scheduling immediately (fault injection).

        The actor is marked finished and unhooked from every wait key; stale
        ready/sleep heap entries are skipped lazily.  Unlike a normal DONE
        step, the actor gets no chance to clean up — this models a crash.
        """
        if actor.finished:
            return False
        actor.finished = True
        if time_us is not None:
            actor.clock.advance_to(time_us)
            self._observe_time(actor.now)
        keys = self._blocked.pop(actor, ())
        for key in keys:
            group = self._waiters.get(key)
            if group is not None:
                group.discard(actor)
                if not group:
                    self._waiters.pop(key, None)
        return True

    # -- main loop -----------------------------------------------------------

    @property
    def now(self):
        """Largest local time reached by any actor (the global horizon).

        Cached incrementally: the engine observes every clock advance it
        mediates (steps, signals, sleeper wake-ups), so reading ``now`` is
        O(1) instead of a scan over all actors on every access.
        """
        return self._horizon

    def _live_actors(self):
        return [actor for actor in self._actors if not actor.finished]

    def _live_workers(self):
        """Live non-daemon actors; when none remain the simulation is over."""
        return [
            actor for actor in self._actors if not actor.finished and not actor.daemon
        ]

    def _wake_due_sleepers(self, horizon):
        woken = False
        while self._sleeping and self._sleeping[0][0] <= horizon:
            wake_at, _, actor = heapq.heappop(self._sleeping)
            if actor.finished:
                continue
            actor.clock.advance_to(wake_at)
            self._observe_time(actor.now)
            self._push_ready(actor)
            woken = True
        return woken

    def run(self, until_us=None):
        """Run until no live actors remain, a deadline, or a deadlock.

        Returns the final global virtual time.
        """
        while True:
            self._steps += 1
            if self._steps > self.max_steps:
                raise SimulationError(
                    f"engine exceeded {self.max_steps} steps; "
                    "likely a livelock in a simulated component"
                )

            if until_us is not None and self.now >= until_us:
                return self.now

            actor = self._pop_runnable()
            if actor is None:
                if self._handle_stall():
                    continue
                return self.now

            result = actor.step()
            self._observe_time(actor.now)
            if self.trace is not None:
                self.trace.append((actor.now, actor.name, result.status.value, result.detail))

            if result.status is StepStatus.PROGRESS:
                self._push_ready(actor)
            elif result.status is StepStatus.BLOCKED:
                self._block(actor, result.wait_keys)
            elif result.status is StepStatus.SLEEP:
                self._push_sleeping(actor, max(result.wake_at, actor.now))
            elif result.status is StepStatus.DONE:
                actor.finished = True
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown step status {result.status}")

    def _pop_runnable(self):
        """Pop the next actor to step, respecting virtual-time causality.

        Sleeping actors are merged with the ready queue by timestamp: a
        sleeper whose wake time precedes the earliest ready actor's clock is
        woken first, so no actor ever observes state produced "in its future".
        """
        while True:
            # Drop stale ready entries.
            while self._ready and (
                self._ready[0][2].finished or self._ready[0][2] in self._blocked
            ):
                heapq.heappop(self._ready)
            while self._sleeping and self._sleeping[0][2].finished:
                heapq.heappop(self._sleeping)

            next_ready_time = self._ready[0][0] if self._ready else None
            next_wake_time = self._sleeping[0][0] if self._sleeping else None

            if next_wake_time is not None and (
                next_ready_time is None or next_wake_time <= next_ready_time
            ):
                if next_ready_time is None and next_wake_time is not None \
                        and not self._ready and not self._live_workers():
                    # Only daemon sleepers remain; let the caller finish.
                    return None
                wake_at, _, actor = heapq.heappop(self._sleeping)
                actor.clock.advance_to(wake_at)
                self._observe_time(actor.now)
                self._push_ready(actor)
                continue

            if self._ready:
                _, _, actor = heapq.heappop(self._ready)
                return actor
            return None

    def _handle_stall(self):
        """Called when the ready queue is empty.

        Returns ``True`` when progress is still possible (a sleeper was woken),
        ``False`` when the simulation has genuinely finished, and raises or
        records a deadlock when live actors remain but none can ever run.
        """
        workers = self._live_workers()
        if not workers:
            return False

        if self._sleeping:
            # Jump virtual time forward to the earliest sleeper.
            wake_at = self._sleeping[0][0]
            self._wake_due_sleepers(wake_at)
            return True

        blocked = [actor for actor in workers if actor in self._blocked]
        if blocked:
            report = DeadlockReport(
                time_us=self.now,
                blocked_actors=blocked,
                wait_graph={actor.name: list(self._blocked[actor]) for actor in blocked},
            )
            self.deadlock_report = report
            if self.deadlock_mode == "raise":
                raise DeadlockError(
                    f"deadlock at t={self.now:.2f}us: "
                    f"{len(blocked)} actors blocked with no possible signal",
                    wait_graph=report.wait_graph,
                    blocked=report.involved(),
                )
            return False

        # Live actors exist but none is ready, blocked or sleeping: they were
        # all left unscheduled, which indicates an engine bug.
        raise SimulationError("live actors exist but none is schedulable")

    # -- introspection --------------------------------------------------------

    @property
    def step_count(self):
        return self._steps

    def blocked_actor_names(self):
        return [actor.name for actor in self._blocked]
