"""Discrete-event simulation of a multi-node GPU cluster.

This package is the hardware substrate that replaces the paper's physical
testbed.  It models the pieces of the CUDA execution model that matter for
collective deadlocks and collective performance:

* GPUs with a bounded number of resident blocks (mutual exclusion over SMs),
* CUDA streams with in-order launch semantics,
* explicit (``device_synchronize``) and implicit (pinned-memory allocation,
  default-stream work) GPU synchronization,
* an alpha/beta interconnect cost model with PIX / SYS / RDMA domains,
* host threads that drive the GPUs like a rank process would.

Everything runs under a conservative smallest-clock-first event engine which
also performs deadlock detection over the wait-for graph.
"""

from repro.gpusim.engine import Actor, Engine, StepResult, StepStatus
from repro.gpusim.device import GpuDevice, KernelActor, SmInterferenceModel
from repro.gpusim.cluster import (
    Cluster,
    ClusterSpec,
    NodeSpec,
    build_cluster,
    fat_tree_spec,
    multi_node_spec,
)
from repro.gpusim.host import HostProgram, HostThread
from repro.gpusim.interconnect import Interconnect, LinkSpec, TopologySpec
from repro.gpusim.memory import MemoryAccountant, PinnedHostAllocator
from repro.gpusim.stream import Stream

__all__ = [
    "Actor",
    "Cluster",
    "ClusterSpec",
    "Engine",
    "GpuDevice",
    "HostProgram",
    "HostThread",
    "Interconnect",
    "KernelActor",
    "LinkSpec",
    "MemoryAccountant",
    "NodeSpec",
    "PinnedHostAllocator",
    "SmInterferenceModel",
    "StepResult",
    "StepStatus",
    "Stream",
    "TopologySpec",
    "build_cluster",
    "fat_tree_spec",
    "multi_node_spec",
]
