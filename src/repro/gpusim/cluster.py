"""Cluster construction: nodes, GPUs, interconnect, host threads.

`build_cluster` assembles the two testbeds used throughout the paper's
evaluation (the 3080ti-server and the 3090-server, each with eight GPUs split
over two PIX domains, plus the four-server 32-GPU RDMA cluster of Fig. 8(c)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.types import DeviceId
from repro.gpusim.device import GpuDevice
from repro.gpusim.engine import Engine
from repro.gpusim.host import HostThread
from repro.gpusim.interconnect import Interconnect, TopologySpec
from repro.gpusim.memory import GpuMemoryModel, PinnedHostAllocator


@dataclass(frozen=True)
class NodeSpec:
    """One server in the cluster."""

    name: str
    num_gpus: int = 8
    gpu_memory_bytes: int = 12 << 30
    max_resident_blocks: int = 32


@dataclass
class ClusterSpec:
    """A whole cluster; order of ``nodes`` defines node indices.

    ``topology`` optionally carries a hierarchical fabric description
    (NVLink islands, fat-tree oversubscription); when absent a flat
    PIX/SYS/RDMA fabric with ``pix_group_size`` is assumed.
    """

    nodes: list = field(default_factory=list)
    pix_group_size: int = 4
    topology: TopologySpec = None

    @property
    def total_gpus(self):
        return sum(node.num_gpus for node in self.nodes)


#: Paper testbeds (Table 2).
SERVER_3080TI = NodeSpec(name="3080ti-server", num_gpus=8, gpu_memory_bytes=12 << 30)
SERVER_3090 = NodeSpec(name="3090-server", num_gpus=8, gpu_memory_bytes=24 << 30)


def single_server_spec(kind="3090", num_gpus=8):
    """Spec for one eight-GPU server of the given model."""
    base = SERVER_3090 if kind == "3090" else SERVER_3080TI
    return ClusterSpec(nodes=[NodeSpec(base.name, num_gpus, base.gpu_memory_bytes)])


def dual_server_spec(kind="3090", num_gpus_per_node=8):
    """Two identical servers connected by RDMA (Figs. 12(c,d), 13(b))."""
    base = SERVER_3090 if kind == "3090" else SERVER_3080TI
    return ClusterSpec(
        nodes=[
            NodeSpec(f"{base.name}-{i}", num_gpus_per_node, base.gpu_memory_bytes)
            for i in range(2)
        ]
    )


def mixed_32gpu_spec():
    """The 2×3080ti + 2×3090 32-GPU cluster used for Fig. 8(c)."""
    nodes = [NodeSpec(f"3080ti-server-{i}", 8, 12 << 30) for i in range(2)]
    nodes += [NodeSpec(f"3090-server-{i}", 8, 24 << 30) for i in range(2)]
    return ClusterSpec(nodes=nodes)


def dual_server_nvlink_spec(num_gpus_per_node=8, nvlink_domain_size=4):
    """Two NVLink-equipped servers: 4-GPU NVLink islands inside PIX domains."""
    spec = dual_server_spec("3090", num_gpus_per_node)
    spec.topology = TopologySpec(
        pix_group_size=spec.pix_group_size, nvlink_domain_size=nvlink_domain_size
    )
    return spec


def fat_tree_32gpu_spec(oversubscription=2.0):
    """The 32-GPU cluster behind a 2:1 oversubscribed RDMA fat-tree."""
    spec = mixed_32gpu_spec()
    spec.topology = TopologySpec(
        pix_group_size=spec.pix_group_size, rdma_oversubscription=oversubscription
    )
    return spec


def multi_node_spec(num_gpus, gpus_per_node=8, gpu_memory_bytes=24 << 30,
                    name_prefix="3090-server"):
    """A homogeneous N-GPU cluster built from identical servers."""
    if num_gpus < 1:
        raise ConfigurationError(f"a cluster needs at least 1 GPU, got {num_gpus}")
    if gpus_per_node < 1 or num_gpus % gpus_per_node:
        raise ConfigurationError(
            f"num_gpus {num_gpus} must be a positive multiple of "
            f"gpus_per_node {gpus_per_node}"
        )
    return ClusterSpec(nodes=[
        NodeSpec(f"{name_prefix}-{i}", gpus_per_node, gpu_memory_bytes)
        for i in range(num_gpus // gpus_per_node)
    ])


def fat_tree_spec(num_gpus, gpus_per_node=8, nodes_per_pod=4,
                  oversubscription=2.0, spine_oversubscription=2.0,
                  nvlink_domain_size=0):
    """An N-GPU cluster behind a (possibly two-level) RDMA fat-tree.

    Nodes are grouped ``nodes_per_pod`` per leaf switch; with more than one
    pod the spec becomes a genuine two-level fat-tree whose cross-pod traffic
    pays the spine's extra hop and oversubscription.  NVLink stays disabled
    by default, matching every other testbed (only ``dual-3090-nvlink`` has
    islands), so scaling sweeps across ``fat-tree-<N>`` points vary only the
    fabric size — pass ``nvlink_domain_size=4`` for NVLink-equipped nodes.
    This is the batched construction path used to instantiate the
    256/512-rank scale testbeds: one spec, one engine, devices registered in
    a single batch.
    """
    spec = multi_node_spec(num_gpus, gpus_per_node)
    num_nodes = len(spec.nodes)
    two_level = nodes_per_pod > 0 and num_nodes > nodes_per_pod
    spec.topology = TopologySpec(
        pix_group_size=spec.pix_group_size,
        nvlink_domain_size=nvlink_domain_size,
        rdma_oversubscription=oversubscription,
        nodes_per_pod=nodes_per_pod if two_level else 0,
        spine_oversubscription=spine_oversubscription if two_level else 1.0,
    )
    return spec


class Cluster:
    """A simulated multi-node GPU cluster plus its event engine."""

    def __init__(self, spec, engine=None, max_resident_blocks=None, interference=None):
        if not spec.nodes:
            raise ConfigurationError("a cluster needs at least one node")
        self.spec = spec
        self.engine = engine or Engine()
        self.interconnect = Interconnect(
            pix_group_size=spec.pix_group_size, topology=spec.topology
        )
        self.devices = []
        self._devices_by_id = {}
        self._pinned = {}
        self.hosts = {}
        #: Construction knobs, kept so :meth:`add_node` builds growth nodes
        #: with the same overrides as the original ones.
        self._max_resident_blocks = max_resident_blocks
        self._interference = interference

        for node_index, node in enumerate(spec.nodes):
            self._build_node(node_index, node)
        # Batch registration: a 512-rank fat-tree registers every device in
        # one heapify instead of one sift-up per GPU.
        self.engine.add_actors(self.devices)

    def _build_node(self, node_index, node, time_us=None):
        """Instantiate one node's devices (without engine registration)."""
        self._pinned[node_index] = PinnedHostAllocator()
        added = []
        for local_rank in range(node.num_gpus):
            device_id = DeviceId(node=node_index, local_rank=local_rank)
            device = GpuDevice(
                device_id,
                max_resident_blocks=(
                    self._max_resident_blocks
                    if self._max_resident_blocks is not None
                    else node.max_resident_blocks
                ),
                memory=GpuMemoryModel(global_bytes=node.gpu_memory_bytes),
                interference=self._interference,
            )
            if time_us is not None:
                device.clock.advance_to(time_us)
            self.devices.append(device)
            self._devices_by_id[device_id] = device
            added.append(device)
        return added

    # -- lookups --------------------------------------------------------------

    @property
    def world_size(self):
        return len(self.devices)

    def device(self, rank):
        """Return the device with global rank ``rank`` (row-major over nodes)."""
        return self.devices[rank]

    def device_by_id(self, device_id):
        return self._devices_by_id[device_id]

    def rank_of(self, device):
        return self.devices.index(device)

    def pinned_allocator(self, node_index):
        return self._pinned[node_index]

    def failed_devices(self):
        return [device for device in self.devices if device.failed]

    def hosts_for_device(self, device):
        """Host threads (rank processes) bound to one GPU."""
        return [host for host in self.hosts.values() if host.device is device]

    # -- fault injection --------------------------------------------------------

    def fail_rank(self, rank, time_us):
        """Crash one rank: the GPU and every host process driving it die.

        Returns the killed kernel and host actors.  Everything else — peer
        kernels blocked on the dead rank's connectors, pending collectives —
        is deliberately left in place: observing how the rest of the system
        copes is the point of injecting the fault.
        """
        device = self.device(rank)
        killed = device.fail(time_us)
        for host in self.hosts_for_device(device):
            if self.engine.kill_actor(host, time_us):
                killed.append(host)
        return killed

    # -- host threads ----------------------------------------------------------

    def add_host(self, rank, program=None, name=None, start_time_us=None):
        """Create the host thread (rank process) driving GPU ``rank``.

        ``start_time_us`` starts the process mid-simulation (a job placed by
        the multi-tenant scheduler): the host's clock begins at that virtual
        time so none of its work appears to happen in the past.
        """
        device = self.device(rank)
        host_name = name or f"host-{rank}"
        if host_name in self.hosts:
            raise ConfigurationError(f"host {host_name} already exists")
        host = HostThread(host_name, device, self, program=program)
        if start_time_us is not None:
            host.clock.advance_to(start_time_us)
        self.hosts[host_name] = host
        self.engine.add_actor(host)
        return host

    def add_hosts(self, programs):
        """Create one host per rank from a list of programs (index = rank)."""
        return [self.add_host(rank, program) for rank, program in enumerate(programs)]

    # -- elastic growth ----------------------------------------------------------

    def add_node(self, node=None, time_us=None):
        """Append one server to a live cluster (elastic world growth).

        The new node's GPUs take the next global ranks (row-major ordering
        over nodes is preserved, so existing ranks are stable) and join the
        interconnect through the same arithmetic domain derivation as the
        original devices.  ``time_us`` starts the new devices mid-simulation
        so none of their work appears to happen in the past.  Returns the
        added devices.
        """
        if node is None:
            template = self.spec.nodes[-1]
            node = NodeSpec(
                name=f"{template.name}-grow{len(self.spec.nodes)}",
                num_gpus=template.num_gpus,
                gpu_memory_bytes=template.gpu_memory_bytes,
                max_resident_blocks=template.max_resident_blocks,
            )
        node_index = len(self.spec.nodes)
        self.spec.nodes.append(node)
        added = self._build_node(node_index, node, time_us=time_us)
        self.engine.add_actors(added)
        return added

    # -- running ----------------------------------------------------------------

    @property
    def obs(self):
        """The engine's observability hub (metrics / tracer / recorder)."""
        return self.engine.obs

    def run(self, until_us=None):
        """Run the engine; returns the final virtual time."""
        return self.engine.run(until_us=until_us)


def build_cluster(
    topology="single-3090",
    deadlock_mode="raise",
    max_resident_blocks=None,
    max_steps=50_000_000,
    interference=None,
    observability=None,
):
    """Build one of the named paper testbeds.

    ``topology`` is one of ``single-3090``, ``single-3080ti``, ``dual-3090``,
    ``dual-3090-nvlink``, ``mixed-32``, ``fat-tree-32``, or the generic
    ``fat-tree-<N>`` for any multiple of eight GPUs (``fat-tree-64`` …
    ``fat-tree-512``; more than four nodes become a two-level fat-tree with
    four-node pods); alternatively pass a :class:`ClusterSpec` directly.
    """
    if isinstance(topology, ClusterSpec):
        spec = topology
    elif topology == "single-3090":
        spec = single_server_spec("3090")
    elif topology == "single-3080ti":
        spec = single_server_spec("3080ti")
    elif topology == "dual-3090":
        spec = dual_server_spec("3090")
    elif topology == "dual-3090-nvlink":
        spec = dual_server_nvlink_spec()
    elif topology == "mixed-32":
        spec = mixed_32gpu_spec()
    elif topology == "fat-tree-32":
        spec = fat_tree_32gpu_spec()
    elif isinstance(topology, str) and topology.startswith("fat-tree-"):
        suffix = topology[len("fat-tree-"):]
        if not suffix.isdigit():
            raise ConfigurationError(f"unknown cluster topology {topology!r}")
        spec = fat_tree_spec(int(suffix))
    else:
        raise ConfigurationError(f"unknown cluster topology {topology!r}")
    engine = Engine(deadlock_mode=deadlock_mode, max_steps=max_steps,
                    observability=observability)
    return Cluster(spec, engine=engine, max_resident_blocks=max_resident_blocks,
                   interference=interference)
