"""Host (CPU) threads driving the simulated GPUs.

A :class:`HostThread` is the simulated rank process: it executes a
:class:`HostProgram`, a sequence of host operations such as launching a
kernel, synchronizing the device, allocating pinned memory (which triggers an
implicit synchronization), burning CPU time, or waiting for a completion
callback.  Host programs may be plain lists of ops or generator functions, so
backends can build them dynamically at run time.
"""

from __future__ import annotations

from repro.common.errors import InvalidStateError
from repro.gpusim.engine import Actor, StepResult


class HostOp:
    """Base class of everything a host program can execute.

    ``poll(host)`` is called repeatedly until it returns a non-``None``
    :class:`StepResult` whose status is not BLOCKED/SLEEP, at which point the
    program moves to the next op.  Returning ``None`` is shorthand for a
    PROGRESS result with the default CPU cost.
    """

    #: Default CPU cost of executing a non-blocking host op.
    DEFAULT_COST_US = 0.5

    def poll(self, host):
        raise NotImplementedError

    def label(self):
        return type(self).__name__


class LaunchKernel(HostOp):
    """Enqueue a kernel onto a stream of the host's GPU."""

    #: CPU-side cost of a kernel launch (driver call).
    CPU_LAUNCH_COST_US = 2.0

    def __init__(self, kernel_factory, stream="default"):
        self.kernel_factory = kernel_factory
        self.stream = stream

    def poll(self, host):
        kernel = self.kernel_factory(host)
        host.clock.advance(self.CPU_LAUNCH_COST_US)
        host.device.enqueue_kernel(kernel, self.stream, host.now)
        return StepResult.progress(f"launched {kernel.name}")


class DeviceSynchronize(HostOp):
    """Explicit GPU synchronization (``cudaDeviceSynchronize``)."""

    def __init__(self, implicit=False):
        self.implicit = implicit
        self._barrier = None

    def poll(self, host):
        if self._barrier is None:
            host.clock.advance(1.0)
            self._barrier = host.device.issue_sync(host.now, implicit=self.implicit)
        if self._barrier.cleared:
            barrier, self._barrier = self._barrier, None
            kind = "implicit" if barrier.implicit else "explicit"
            return StepResult.progress(f"{kind} sync cleared")
        return StepResult.blocked([self._barrier.wait_key], "device synchronize")


class AllocPinnedMemory(HostOp):
    """Allocate page-locked host memory, triggering an implicit GPU sync."""

    def __init__(self, name, nbytes):
        self.name = name
        self.nbytes = nbytes
        self._sync = DeviceSynchronize(implicit=True)
        self._allocated = False

    def poll(self, host):
        result = self._sync.poll(host)
        if result.status.value == "blocked":
            return result
        if not self._allocated:
            self._allocated = True
            allocator = host.cluster.pinned_allocator(host.device.device_id.node)
            allocator.allocate(f"{host.name}:{self.name}", self.nbytes, host.now)
            host.clock.advance(allocator.ALLOC_COST_US)
        return StepResult.progress(f"pinned alloc {self.name}")


class CpuCompute(HostOp):
    """Burn CPU time (model for the framework's Python/C++ work)."""

    def __init__(self, duration_us, label="cpu"):
        self.duration_us = duration_us
        self._label = label
        self._started = False

    def poll(self, host):
        if not self._started:
            self._started = True
            return StepResult.sleep(host.now + self.duration_us, self._label)
        return StepResult.progress(self._label)

    def label(self):
        return self._label


class WaitForSignal(HostOp):
    """Block until an engine key is signalled (or a predicate becomes true)."""

    def __init__(self, key, predicate=None, detail="wait"):
        self.key = key
        self.predicate = predicate
        self.detail = detail

    def poll(self, host):
        if self.predicate is not None and self.predicate():
            return StepResult.progress(self.detail)
        if self.predicate is None and host.consume_signal(self.key):
            return StepResult.progress(self.detail)
        return StepResult.blocked([self.key], self.detail)


class CallHook(HostOp):
    """Run an arbitrary callable (used by the DFCCL/NCCL CPU-side APIs)."""

    def __init__(self, fn, cost_us=None, detail="hook"):
        self.fn = fn
        self.cost_us = self.DEFAULT_COST_US if cost_us is None else cost_us
        self.detail = detail

    def poll(self, host):
        self.fn(host)
        host.clock.advance(self.cost_us)
        return StepResult.progress(self.detail)


class HostProgram:
    """A sequence of host ops, given as a list or as a generator function."""

    def __init__(self, ops):
        self._ops = ops

    def iterator(self, host):
        if callable(self._ops):
            return iter(self._ops(host))
        return iter(list(self._ops))


class HostThread(Actor):
    """The simulated rank process bound to one GPU."""

    def __init__(self, name, device, cluster, program=None):
        super().__init__(name)
        self.device = device
        self.cluster = cluster
        self._program = program or HostProgram([])
        self._iterator = None
        self._current_op = None
        self._received_signals = set()
        self.executed_ops = 0

    def set_program(self, program):
        if self._iterator is not None:
            raise InvalidStateError(f"host {self.name} already started its program")
        self._program = program

    def deliver_signal(self, key):
        """Record a locally delivered signal for :class:`WaitForSignal` ops."""
        self._received_signals.add(key)

    def consume_signal(self, key):
        if key in self._received_signals:
            self._received_signals.discard(key)
            return True
        return False

    def step(self):
        if self._iterator is None:
            self._iterator = self._program.iterator(self)
        if self._current_op is None:
            try:
                self._current_op = next(self._iterator)
            except StopIteration:
                return StepResult.done("host program finished")
        result = self._current_op.poll(self)
        if result is None:
            self.clock.advance(HostOp.DEFAULT_COST_US)
            result = StepResult.progress(self._current_op.label())
        if result.status.value in ("progress", "done"):
            if result.status.value == "done":
                # Ops never end the whole program; treat as progress.
                result = StepResult.progress(result.detail)
            self._current_op = None
            self.executed_ops += 1
        return result
