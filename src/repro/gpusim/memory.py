"""Memory accounting for the simulated GPUs and the host.

The paper reports DFCCL's workload-independent *memory* overheads (Sec. 6.2):
shared memory per block for the task queue and active context slots, and
global memory for the collective context buffer.  This module provides the
bookkeeping used to reproduce those numbers, plus a pinned (page-locked) host
memory allocator whose allocations trigger implicit GPU synchronization —
one of the deadlock ingredients of Sec. 2.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ResourceExhaustedError


@dataclass
class MemoryRegion:
    """A named allocation inside a memory space."""

    name: str
    nbytes: int


class MemoryAccountant:
    """Tracks named allocations against a fixed capacity.

    Used for three spaces per GPU: per-block shared memory, device global
    memory, and (shared per node) page-locked host memory.
    """

    def __init__(self, label, capacity_bytes):
        self.label = label
        self.capacity_bytes = int(capacity_bytes)
        self._regions = {}
        self._used = 0
        self.peak_bytes = 0

    @property
    def used_bytes(self):
        return self._used

    @property
    def free_bytes(self):
        return self.capacity_bytes - self._used

    def allocate(self, name, nbytes):
        """Allocate ``nbytes`` under ``name``; raise when capacity is exceeded."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"allocation size must be non-negative, got {nbytes}")
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated in {self.label}")
        if self._used + nbytes > self.capacity_bytes:
            raise ResourceExhaustedError(
                f"{self.label}: cannot allocate {nbytes}B for {name!r} "
                f"({self.free_bytes}B free of {self.capacity_bytes}B)"
            )
        region = MemoryRegion(name, nbytes)
        self._regions[name] = region
        self._used += nbytes
        self.peak_bytes = max(self.peak_bytes, self._used)
        return region

    def free(self, name):
        """Release the region called ``name``."""
        region = self._regions.pop(name, None)
        if region is None:
            raise KeyError(f"region {name!r} is not allocated in {self.label}")
        self._used -= region.nbytes
        return region

    def usage_report(self):
        """Return a mapping of region name to size, for overhead reports."""
        return {name: region.nbytes for name, region in self._regions.items()}

    def __contains__(self, name):
        return name in self._regions


@dataclass
class PinnedAllocation:
    """Handle returned by :class:`PinnedHostAllocator`."""

    name: str
    nbytes: int
    time_us: float


class PinnedHostAllocator:
    """Page-locked host memory allocator.

    Allocating pinned memory on a real system issues CPU-initiated GPU memory
    operations that behave like implicit GPU synchronization (PyTorch issue
    #31095 discussed in Sec. 2.2).  The allocator therefore records, for each
    allocation, which GPU the caller was bound to so the host thread can issue
    the corresponding implicit synchronization.
    """

    #: Cost of a pinned allocation in host time (independent of the implicit
    #: synchronization it triggers).
    ALLOC_COST_US = 8.0

    def __init__(self, capacity_bytes=64 << 30):
        self.accountant = MemoryAccountant("pinned-host", capacity_bytes)
        self.allocations = []

    def allocate(self, name, nbytes, time_us=0.0):
        self.accountant.allocate(name, nbytes)
        allocation = PinnedAllocation(name, int(nbytes), time_us)
        self.allocations.append(allocation)
        return allocation

    def free(self, name):
        self.accountant.free(name)


@dataclass
class GpuMemoryModel:
    """The memory spaces of one simulated GPU."""

    shared_per_block_bytes: int = 100 << 10
    global_bytes: int = 12 << 30

    shared: dict = field(default_factory=dict)
    global_mem: MemoryAccountant = None

    def __post_init__(self):
        if self.global_mem is None:
            self.global_mem = MemoryAccountant("gpu-global", self.global_bytes)

    def shared_for_block(self, block_index):
        """Return (creating on demand) the shared-memory accountant of a block."""
        accountant = self.shared.get(block_index)
        if accountant is None:
            accountant = MemoryAccountant(
                f"gpu-shared-block{block_index}", self.shared_per_block_bytes
            )
            self.shared[block_index] = accountant
        return accountant
