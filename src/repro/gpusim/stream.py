"""CUDA stream model.

A stream is a FIFO of work items.  The head item of a stream may start only
when (a) the GPU has enough free block slots for the kernel and (b) no GPU
synchronization barrier issued *before* the item is still pending.  These two
rules are exactly the "single queue" and "GPU synchronization" ingredients of
the basic deadlock situations in Fig. 1 of the paper.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class StreamItem:
    """One entry in a stream's FIFO."""

    kernel: object
    sequence: int
    enqueue_time_us: float
    launched: bool = False


class Stream:
    """An in-order launch queue bound to one GPU."""

    def __init__(self, name, device, is_default=False):
        self.name = name
        self.device = device
        self.is_default = is_default
        self._items = deque()
        self.launched_count = 0
        self.completed_count = 0
        #: Kernels from this stream currently resident on the GPU.  CUDA
        #: serializes kernels within a stream, so the next item may only
        #: launch when this drops to zero.
        self.active = 0

    def enqueue(self, kernel, sequence, time_us):
        """Append a kernel to the stream; it will launch in FIFO order."""
        item = StreamItem(kernel=kernel, sequence=sequence, enqueue_time_us=time_us)
        self._items.append(item)
        return item

    def head(self):
        """Return the oldest not-yet-launched item, or ``None``."""
        while self._items and self._items[0].launched:
            self._items.popleft()
        return self._items[0] if self._items else None

    def pop_head(self):
        """Mark the head as launched and remove it."""
        item = self.head()
        if item is None:
            raise LookupError(f"stream {self.name} has no pending item")
        item.launched = True
        self._items.popleft()
        self.launched_count += 1
        return item

    def drop_pending(self):
        """Discard every not-yet-launched item (the device failed)."""
        dropped = [item for item in self._items if not item.launched]
        self._items = deque(item for item in self._items if item.launched)
        return dropped

    @property
    def pending(self):
        """Number of enqueued-but-not-launched kernels."""
        return sum(1 for item in self._items if not item.launched)

    def pending_items(self):
        return [item for item in self._items if not item.launched]

    def __len__(self):
        return len(self._items)

    def __repr__(self):
        return f"<Stream {self.name} pending={self.pending}>"


@dataclass
class SyncBarrier:
    """A device-wide synchronization point.

    ``outstanding`` holds the kernels that were enqueued or resident when the
    barrier was issued; the barrier clears once all of them completed.  Work
    enqueued after ``sequence`` may not launch while the barrier is pending —
    this is the resource dependency the paper attributes to GPU
    synchronization (Sec. 2.3).
    """

    barrier_id: int
    sequence: int
    issue_time_us: float
    outstanding: set = field(default_factory=set)
    implicit: bool = False
    cleared: bool = False

    def on_kernel_complete(self, kernel):
        self.outstanding.discard(kernel)
        if not self.outstanding:
            self.cleared = True
        return self.cleared

    @property
    def wait_key(self):
        return ("sync-barrier", self.barrier_id)
