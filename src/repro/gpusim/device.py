"""The simulated GPU: block resources, streams, synchronization, kernel launch.

A :class:`GpuDevice` is itself an engine actor.  Its step examines every
stream, launching the head kernel whenever enough block slots are free and no
earlier synchronization barrier is pending.  Resident kernels are actors of
their own (subclasses of :class:`KernelActor`); when one completes the device
reclaims its blocks, updates synchronization barriers and re-evaluates launch
opportunities.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.common.errors import ConfigurationError, InvalidStateError
from repro.gpusim.engine import Actor, StepResult
from repro.gpusim.memory import GpuMemoryModel
from repro.gpusim.stream import Stream, SyncBarrier


@dataclass(frozen=True)
class SmInterferenceModel:
    """SM contention between co-resident kernels of *different* tenants.

    A GPU shared by several jobs runs each resident kernel slower: the SM
    scheduler time-slices warps across tenants, and cache/memory-bandwidth
    pressure grows with occupancy.  The model dilates every resident kernel's
    virtual clock by ``1 + slope * (tenants - 1) * occupancy`` (capped), where
    occupancy is the fraction of block slots in use.  Kernels of a single
    tenant — including DFCCL's one shared daemon kernel per GPU — are never
    dilated, which is precisely the daemon-kernel model's multi-tenant
    advantage.
    """

    slope: float = 0.6
    cap: float = 4.0

    def validate(self):
        if self.slope < 0.0:
            raise ConfigurationError(f"interference slope must be >= 0, got {self.slope}")
        if self.cap < 1.0:
            raise ConfigurationError(f"interference cap must be >= 1, got {self.cap}")
        return self

    def factor(self, num_tenants, occupied_blocks, max_blocks):
        """Dilation factor for the current residency mix (>= 1)."""
        if num_tenants <= 1 or max_blocks <= 0:
            return 1.0
        occupancy = min(1.0, occupied_blocks / max_blocks)
        return min(self.cap, 1.0 + self.slope * (num_tenants - 1) * occupancy)


class KernelActor(Actor):
    """Base class for kernels resident on a simulated GPU.

    Subclasses implement :meth:`run_step`, returning a :class:`StepResult`
    exactly as a normal actor would; the base class handles residency
    bookkeeping and completion notification.
    """

    #: Owning tenant (job id) for SM-contention accounting; ``None`` groups
    #: the kernel with every other untagged kernel of its device.
    tenant = None

    def __init__(self, name, device, grid_size=1, block_size=256):
        super().__init__(name)
        self.device = device
        self.grid_size = grid_size
        self.block_size = block_size
        self.launched = False
        self.completed = False
        self.launch_time_us = None
        self.complete_time_us = None

    # -- lifecycle -----------------------------------------------------------

    def on_launch(self, time_us):
        """Called by the device when the kernel becomes resident."""
        self.launched = True
        self.launch_time_us = time_us
        self.clock.advance_to(time_us)
        self.clock.rate = self.device.effective_kernel_rate()

    def complete(self, detail="kernel complete"):
        """Mark the kernel finished and notify the device.  Returns DONE."""
        if self.completed:
            raise InvalidStateError(f"kernel {self.name} completed twice")
        self.completed = True
        self.complete_time_us = self.now
        self.device.on_kernel_complete(self)
        return StepResult.done(detail)

    def step(self):
        if not self.launched:
            raise InvalidStateError(f"kernel {self.name} stepped before launch")
        return self.run_step()

    def run_step(self):
        raise NotImplementedError

    @property
    def completion_key(self):
        return ("kernel-done", self.name)


class SleepKernel(KernelActor):
    """A kernel that occupies its blocks for a fixed duration (compute stand-in).

    The sleep advances in bounded slices so that mid-flight rate changes —
    straggler slowdowns, multi-tenant SM interference — dilate the remaining
    work instead of being skipped over in one jump.
    """

    #: Maximum un-dilated work per engine step.
    SLICE_US = 50.0

    def __init__(self, name, device, duration_us, grid_size=1, block_size=256):
        super().__init__(name, device, grid_size, block_size)
        self.duration_us = duration_us
        self._remaining_us = float(duration_us)

    def run_step(self):
        if self._remaining_us > 0:
            slice_us = min(self._remaining_us, self.SLICE_US)
            self._remaining_us -= slice_us
            self.clock.advance(slice_us)
            return StepResult.progress("compute")
        return self.complete()


class GpuDevice(Actor):
    """One simulated GPU."""

    #: The device's launch scheduler is a service actor: it idles blocked on
    #: its work key and must not keep the simulation alive.
    daemon = True

    #: Host→device kernel launch overhead, charged on the device timeline.
    LAUNCH_OVERHEAD_US = 4.0
    #: Cost of one device-side scheduling pass.
    SCHED_PASS_US = 0.2

    def __init__(
        self,
        device_id,
        max_resident_blocks=32,
        memory=None,
        launch_overhead_us=None,
        interference=None,
    ):
        super().__init__(f"gpu-{device_id}")
        self.device_id = device_id
        self.max_resident_blocks = max_resident_blocks
        self.free_blocks = max_resident_blocks
        self.memory = memory or GpuMemoryModel()
        self.launch_overhead_us = (
            self.LAUNCH_OVERHEAD_US if launch_overhead_us is None else launch_overhead_us
        )
        #: Optional :class:`SmInterferenceModel`; ``None`` disables dilation
        #: (tenant accounting stays on either way).
        self.interference = interference.validate() if interference is not None else None
        self._interference_factor = 1.0

        self.streams = {}
        self.default_stream = self.get_stream("default", is_default=True)
        self.resident = set()
        self.barriers = []
        self._sequence = itertools.count()
        self._barrier_ids = itertools.count()

        # Fault state (driven by repro.faults).
        self.failed = False
        self.fail_time_us = None
        self.slowdown_factor = 1.0

        # Statistics used by experiments.
        self.launch_count = 0
        self.sync_count = 0
        self.kernel_complete_count = 0
        #: Multi-tenant contention statistics: the most distinct tenants ever
        #: co-resident, and how often a launchable stream head was deferred
        #: solely because another tenant held its block slots.
        self.peak_resident_tenants = 0
        self.cross_tenant_block_waits = 0

    # -- wait keys -----------------------------------------------------------

    @property
    def work_key(self):
        """Signalled whenever the device may be able to launch something."""
        return ("gpu-work", str(self.device_id))

    @property
    def idle_key(self):
        """Signalled whenever the device becomes completely idle."""
        return ("gpu-idle", str(self.device_id))

    @property
    def failed_key(self):
        """Signalled once when the device fails (crash detection hook)."""
        return ("gpu-failed", str(self.device_id))

    # -- fault injection -------------------------------------------------------

    def fail(self, time_us):
        """Crash the device: every resident kernel dies where it stands.

        Kernels are removed from engine scheduling without completion
        callbacks — their blocks are never reclaimed and their peers never
        receive another chunk, exactly as when a real rank process dies.
        Queued (not yet launched) kernels are dropped with the device.
        """
        if self.failed:
            return []
        self.failed = True
        self.fail_time_us = time_us
        killed = []
        for kernel in list(self.resident):
            if self.engine is not None:
                self.engine.kill_actor(kernel, time_us)
            killed.append(kernel)
        for stream in self.streams.values():
            stream.drop_pending()
        if self.engine is not None:
            self.engine.kill_actor(self, time_us)
            self.engine.signal(self.failed_key, time_us)
        return killed

    def set_slowdown(self, factor, time_us=None):
        """Dilate the device's virtual time by ``factor`` (straggler model).

        Applies to the device clock and every resident kernel; kernels
        launched later inherit the factor at launch.
        """
        if factor < 1.0:
            raise InvalidStateError(f"slowdown factor must be >= 1, got {factor}")
        self.slowdown_factor = float(factor)
        self.clock.rate = self.slowdown_factor
        rate = self.effective_kernel_rate()
        for kernel in self.resident:
            kernel.clock.rate = rate
        return self.slowdown_factor

    def stall_resident(self, duration_us, time_us=None):
        """Freeze every resident kernel for ``duration_us`` (transient stall).

        The stall is an externally-timed event anchored at ``time_us`` (the
        fault time; each kernel's possibly-lagging local clock otherwise):
        kernels resume no earlier than stall start + duration, with no
        rate dilation.  A kernel already past that point is unaffected.
        """
        stalled = []
        for kernel in self.resident:
            start = kernel.now if time_us is None else max(kernel.now, time_us)
            kernel.clock.advance_to(start + duration_us)
            if self.engine is not None:
                self.engine.observe_time(kernel.now)
            stalled.append(kernel)
        return stalled

    # -- multi-tenant SM accounting -------------------------------------------

    def resident_tenants(self):
        """Distinct tenants with at least one resident kernel."""
        return {kernel.tenant for kernel in self.resident}

    def tenant_blocks(self):
        """Block slots held per tenant, e.g. ``{None: 2, "job-a": 4}``."""
        held = {}
        for kernel in self.resident:
            held[kernel.tenant] = held.get(kernel.tenant, 0) + kernel.grid_size
        return held

    def effective_kernel_rate(self):
        """Clock-rate dilation applied to resident kernels (slowdown x contention)."""
        return self.slowdown_factor * self._interference_factor

    def _update_contention(self):
        """Recompute interference after a residency change and re-rate kernels."""
        tenants = self.resident_tenants()
        self.peak_resident_tenants = max(self.peak_resident_tenants, len(tenants))
        if self.interference is None:
            return
        factor = self.interference.factor(
            len(tenants),
            self.max_resident_blocks - self.free_blocks,
            self.max_resident_blocks,
        )
        if factor != self._interference_factor:
            self._interference_factor = factor
            rate = self.effective_kernel_rate()
            for kernel in self.resident:
                kernel.clock.rate = rate

    # -- streams --------------------------------------------------------------

    def get_stream(self, name, is_default=False):
        """Return (creating if needed) the stream called ``name``."""
        stream = self.streams.get(name)
        if stream is None:
            stream = Stream(name, self, is_default=is_default)
            self.streams[name] = stream
        return stream

    def next_sequence(self):
        """Monotonic sequence number ordering enqueues and synchronizations."""
        return next(self._sequence)

    # -- host-visible operations ----------------------------------------------

    def enqueue_kernel(self, kernel, stream_name="default", time_us=0.0):
        """Enqueue ``kernel`` on a stream (host side of a kernel launch)."""
        if self.failed:
            raise InvalidStateError(
                f"cannot enqueue {kernel.name}: device {self.name} has failed"
            )
        stream = self.get_stream(stream_name)
        sequence = self.next_sequence()
        item = stream.enqueue(kernel, sequence, time_us)
        self._notify_work(time_us)
        return item

    def issue_sync(self, time_us, implicit=False):
        """Issue a device synchronization (explicit or implicit).

        Returns the :class:`SyncBarrier`; the caller blocks on its
        ``wait_key`` until the barrier clears.
        """
        sequence = self.next_sequence()
        outstanding = set(self.resident)
        for stream in self.streams.values():
            for item in stream.pending_items():
                if item.sequence < sequence:
                    outstanding.add(item.kernel)
        barrier = SyncBarrier(
            barrier_id=next(self._barrier_ids),
            sequence=sequence,
            issue_time_us=time_us,
            outstanding=outstanding,
            implicit=implicit,
        )
        self.sync_count += 1
        if not barrier.outstanding:
            barrier.cleared = True
        else:
            self.barriers.append(barrier)
        self._notify_work(time_us)
        return barrier

    # -- device scheduling ----------------------------------------------------

    def _earliest_pending_barrier_sequence(self):
        pending = [barrier.sequence for barrier in self.barriers if not barrier.cleared]
        return min(pending) if pending else None

    def _launchable_item(self):
        """Find a stream head that can launch now, or ``None``."""
        barrier_seq = self._earliest_pending_barrier_sequence()
        for stream in self.streams.values():
            if stream.active:
                # In-order stream semantics: earlier kernel still executing.
                continue
            item = stream.head()
            if item is None:
                continue
            kernel = item.kernel
            if barrier_seq is not None and item.sequence > barrier_seq:
                continue
            if kernel.grid_size > self.free_blocks:
                # Head kernel fits no free SM slots.  When reclaiming the
                # blocks other tenants hold would let it launch, the wait is
                # cross-job contention — the condition under which
                # dedicated-kernel baselines deadlock across jobs — so make
                # it observable.  A kernel that would not fit even then is
                # self-blocked and not counted.
                other_tenant_blocks = sum(
                    blocks for tenant, blocks in self.tenant_blocks().items()
                    if tenant != kernel.tenant
                )
                if other_tenant_blocks > 0 and \
                        kernel.grid_size <= self.free_blocks + other_tenant_blocks:
                    self.cross_tenant_block_waits += 1
                continue
            return stream, item
        return None

    def step(self):
        launchable = self._launchable_item()
        if launchable is None:
            return StepResult.blocked([self.work_key], "no launchable kernel")
        stream, item = launchable
        stream.pop_head()
        kernel = item.kernel
        kernel.stream = stream
        stream.active += 1
        self.free_blocks -= kernel.grid_size
        self.resident.add(kernel)
        self.launch_count += 1
        self.clock.advance(self.launch_overhead_us)
        self._update_contention()
        kernel.on_launch(self.now)
        self.engine.add_actor(kernel)
        self.clock.advance(self.SCHED_PASS_US)
        return StepResult.progress(f"launched {kernel.name} on {stream.name}")

    # -- completion handling --------------------------------------------------

    def on_kernel_complete(self, kernel):
        """Reclaim resources and update barriers when a kernel finishes."""
        if kernel not in self.resident:
            raise InvalidStateError(
                f"kernel {kernel.name} completed but was not resident on {self.name}"
            )
        self.resident.discard(kernel)
        self.free_blocks += kernel.grid_size
        self.kernel_complete_count += 1
        self._update_contention()
        stream = getattr(kernel, "stream", None)
        if stream is not None:
            stream.active -= 1
            stream.completed_count += 1

        cleared = []
        for barrier in self.barriers:
            if not barrier.cleared and barrier.on_kernel_complete(kernel):
                cleared.append(barrier)
        self.barriers = [barrier for barrier in self.barriers if not barrier.cleared]

        if self.engine is not None:
            self.engine.signal(kernel.completion_key, kernel.now)
            for barrier in cleared:
                self.engine.signal(barrier.wait_key, kernel.now)
            self.engine.signal(self.work_key, kernel.now)
            if not self.resident and not self.has_pending_work():
                self.engine.signal(self.idle_key, kernel.now)

    def _notify_work(self, time_us):
        if self.engine is not None:
            self.engine.signal(self.work_key, time_us)

    # -- introspection --------------------------------------------------------

    def has_pending_work(self):
        return any(stream.pending for stream in self.streams.values())

    def is_idle(self):
        return not self.resident and not self.has_pending_work()

    def resident_kernel_names(self):
        return sorted(kernel.name for kernel in self.resident)
