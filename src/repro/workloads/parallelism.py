"""Parallelism planning: per-rank, per-iteration schedules of compute and collectives.

A :class:`ParallelPlan` maps a model onto a (tp, dp, pp) grid of ranks and
generates, for every rank, the schedule of one training iteration: compute
phases interleaved with the collective operations of that rank's TP group, DP
group and PP neighbours.  Schedules use stable collective *keys* so that all
ranks of a group generate exactly the same collectives — the invocation order,
however, is up to the backend (DFCCL tolerates any order; NCCL baselines rely
on the schedule being consistent plus their orchestration method).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError
from repro.common.types import CollectiveKind


@dataclass(frozen=True)
class ComputeItem:
    """A GPU/CPU compute phase of the given duration."""

    duration_us: float
    label: str = "compute"


@dataclass(frozen=True)
class CollectiveItem:
    """One collective operation of the iteration schedule."""

    key: tuple
    kind: CollectiveKind
    count: int
    group_ranks: tuple
    priority: int = 0
    #: Optional per-collective schedule hint, carried into
    #: :attr:`CollectiveSpec.algorithm` (``None`` = backend default).
    algorithm: str = None

    @property
    def nbytes(self):
        return self.count * 4


class ParallelPlan:
    """Maps a model onto tp × dp × pp ranks and emits per-rank schedules."""

    def __init__(self, model, tp=1, dp=1, pp=1, microbatch_size=32, num_microbatches=1,
                 grad_buckets=12, base_rank=0):
        if tp < 1 or dp < 1 or pp < 1:
            raise ConfigurationError("tp, dp and pp must all be at least 1")
        self.model = model
        self.tp = tp
        self.dp = dp
        self.pp = pp
        self.microbatch_size = microbatch_size
        self.num_microbatches = num_microbatches
        self.grad_buckets = grad_buckets
        self.base_rank = base_rank

    # -- rank geometry ------------------------------------------------------------------

    @property
    def world_size(self):
        return self.tp * self.dp * self.pp

    @property
    def global_batch_size(self):
        return self.microbatch_size * self.num_microbatches * self.dp

    def ranks(self):
        """Global ranks the plan occupies, in job-local order.

        Plain plans occupy a contiguous block starting at ``base_rank``;
        multi-tenant rank-mapped views override this with the leased device
        set, which need not be contiguous.
        """
        return [self.base_rank + local for local in range(self.world_size)]

    def rank(self, pp_index, dp_index, tp_index):
        return self.base_rank + (pp_index * self.dp + dp_index) * self.tp + tp_index

    def coordinates(self, rank):
        local = rank - self.base_rank
        tp_index = local % self.tp
        dp_index = (local // self.tp) % self.dp
        pp_index = local // (self.tp * self.dp)
        return pp_index, dp_index, tp_index

    def tp_group(self, pp_index, dp_index):
        return tuple(self.rank(pp_index, dp_index, t) for t in range(self.tp))

    def dp_group(self, pp_index, tp_index):
        return tuple(self.rank(pp_index, d, tp_index) for d in range(self.dp))

    def stage_layers(self, pp_index):
        """Contiguous slice of model layers owned by pipeline stage ``pp_index``."""
        layers = self.model.layers
        per_stage = max(1, math.ceil(len(layers) / self.pp))
        start = pp_index * per_stage
        return layers[start:start + per_stage]

    # -- schedule generation ----------------------------------------------------------------

    def iteration_schedule(self, rank):
        """The schedule of one training iteration for ``rank``."""
        pp_index, dp_index, tp_index = self.coordinates(rank)
        stage = self.stage_layers(pp_index)
        schedule = []

        activation_count = max(
            1, int(self.microbatch_size * max(layer.activation_count for layer in stage))
        ) if stage else self.microbatch_size
        activation_count = min(activation_count, 8 << 20)

        for microbatch in range(self.num_microbatches):
            # Receive activations from the previous pipeline stage.
            if self.pp > 1 and pp_index > 0:
                peer = self.rank(pp_index - 1, dp_index, tp_index)
                schedule.append(CollectiveItem(
                    key=("pp-fwd", pp_index, dp_index, tp_index, microbatch),
                    kind=CollectiveKind.SEND_RECV,
                    count=activation_count,
                    group_ranks=(peer, rank),
                ))
            # Forward compute of this stage (divided across the TP group).
            fwd = self.model.forward_time_us(self.microbatch_size, stage) / self.tp
            schedule.append(ComputeItem(fwd, f"fwd-mb{microbatch}"))
            # TP all-reduce of the stage output activations (forward).
            if self.tp > 1:
                schedule.append(CollectiveItem(
                    key=("tp-fwd", pp_index, dp_index, microbatch),
                    kind=CollectiveKind.ALL_REDUCE,
                    count=min(activation_count, 4 << 20),
                    group_ranks=self.tp_group(pp_index, dp_index),
                ))
            # Send activations to the next stage.
            if self.pp > 1 and pp_index < self.pp - 1:
                peer = self.rank(pp_index + 1, dp_index, tp_index)
                schedule.append(CollectiveItem(
                    key=("pp-fwd", pp_index + 1, dp_index, tp_index, microbatch),
                    kind=CollectiveKind.SEND_RECV,
                    count=activation_count,
                    group_ranks=(rank, peer),
                ))

        for microbatch in range(self.num_microbatches):
            # Backward pass with bucketed gradient all-reduces in the DP group.
            buckets = _stage_buckets(self.model, stage, self.grad_buckets)
            # Receive output gradients from the next stage.
            if self.pp > 1 and pp_index < self.pp - 1:
                peer = self.rank(pp_index + 1, dp_index, tp_index)
                schedule.append(CollectiveItem(
                    key=("pp-bwd", pp_index, dp_index, tp_index, microbatch),
                    kind=CollectiveKind.SEND_RECV,
                    count=activation_count,
                    group_ranks=(peer, rank),
                ))
            for bucket_index, (bucket_layers, bucket_params) in enumerate(buckets):
                bwd = self.model.backward_time_us(self.microbatch_size, bucket_layers)
                schedule.append(ComputeItem(bwd / self.tp, f"bwd-mb{microbatch}-b{bucket_index}"))
                if self.tp > 1:
                    schedule.append(CollectiveItem(
                        key=("tp-bwd", pp_index, dp_index, microbatch, bucket_index),
                        kind=CollectiveKind.ALL_REDUCE,
                        count=min(activation_count, 4 << 20),
                        group_ranks=self.tp_group(pp_index, dp_index),
                    ))
                if self.dp > 1 and microbatch == self.num_microbatches - 1:
                    schedule.append(CollectiveItem(
                        key=("dp-grad", pp_index, tp_index, bucket_index),
                        kind=CollectiveKind.ALL_REDUCE,
                        count=max(1, bucket_params // self.tp),
                        group_ranks=self.dp_group(pp_index, tp_index),
                        priority=bucket_index,
                    ))
            # Send input gradients to the previous stage.
            if self.pp > 1 and pp_index > 0:
                peer = self.rank(pp_index - 1, dp_index, tp_index)
                schedule.append(CollectiveItem(
                    key=("pp-bwd", pp_index - 1, dp_index, tp_index, microbatch),
                    kind=CollectiveKind.SEND_RECV,
                    count=activation_count,
                    group_ranks=(rank, peer),
                ))

        # Optimizer step.
        optimizer = 0.05 * self.model.forward_time_us(self.microbatch_size, stage) / self.tp
        schedule.append(ComputeItem(optimizer, "optimizer"))
        return schedule

    def all_schedules(self):
        """Schedules for every rank in the plan, keyed by global rank."""
        return {
            self.base_rank + local: self.iteration_schedule(self.base_rank + local)
            for local in range(self.world_size)
        }

    def collective_items(self, rank):
        return [item for item in self.iteration_schedule(rank)
                if isinstance(item, CollectiveItem)]

    def unique_collectives(self):
        """All distinct collective items across ranks, keyed by their schedule key."""
        unique = {}
        for rank in range(self.base_rank, self.base_rank + self.world_size):
            for item in self.collective_items(rank):
                unique.setdefault(item.key, item)
        return unique


class MoeParallelPlan(ParallelPlan):
    """A :class:`ParallelPlan` for mixture-of-experts models.

    Experts are sharded across the data-parallel group (DeepSpeed-MoE-style
    ``ep_size == dp``): every microbatch adds a token *dispatch* all-to-all
    before expert compute and a *combine* all-to-all after it, in forward and
    mirrored in backward.  Data-parallel gradient all-reduces carry
    ``dp_algorithm`` (default ``"hierarchical"``) as their per-collective
    schedule hint — on multi-node clusters the two-level schedule keeps the
    bucketed gradient traffic mostly on intra-island links while the
    all-to-alls cross them.
    """

    def __init__(self, model, num_experts=8, top_k=2, capacity_factor=1.25,
                 dp_algorithm="hierarchical", **kwargs):
        super().__init__(model, **kwargs)
        if num_experts < 1 or not 1 <= top_k <= num_experts:
            raise ConfigurationError(
                f"need 1 <= top_k <= num_experts, got top_k={top_k} "
                f"num_experts={num_experts}"
            )
        self.num_experts = num_experts
        self.top_k = top_k
        self.capacity_factor = capacity_factor
        self.dp_algorithm = dp_algorithm

    def expert_tokens(self, activation_count):
        """Per-rank all-to-all element count of one dispatch/combine."""
        routed = activation_count * self.top_k * self.capacity_factor
        return max(1, min(int(routed), 4 << 20))

    def _expert_exchange(self, phase, pp_index, dp_index, tp_index, microbatch,
                         count):
        """The dispatch + combine all-to-all pair of one expert invocation."""
        group = self.dp_group(pp_index, tp_index)
        return [
            CollectiveItem(
                key=(f"ep-{phase}-{direction}", pp_index, tp_index, microbatch),
                kind=CollectiveKind.ALL_TO_ALL,
                count=count,
                group_ranks=group,
            )
            for direction in ("dispatch", "combine")
        ]

    def iteration_schedule(self, rank):
        """The dense schedule plus expert-parallel all-to-all exchanges.

        With ``dp == 1`` there is a single expert shard and no exchange; the
        schedule degenerates to the dense plan with hinted gradient
        all-reduces (of which there are then none either).
        """
        pp_index, dp_index, tp_index = self.coordinates(rank)
        stage = self.stage_layers(pp_index)
        activation_count = max(
            1, int(self.microbatch_size * max(layer.activation_count for layer in stage))
        ) if stage else self.microbatch_size
        tokens = self.expert_tokens(min(activation_count, 8 << 20))

        schedule = []
        for item in super().iteration_schedule(rank):
            if isinstance(item, CollectiveItem) and item.key[0] == "dp-grad":
                item = replace(item, algorithm=self.dp_algorithm)
            schedule.append(item)
            if self.dp < 2 or not isinstance(item, ComputeItem):
                continue
            label = item.label
            if label.startswith("fwd-mb"):
                microbatch = int(label[len("fwd-mb"):])
                schedule.extend(self._expert_exchange(
                    "fwd", pp_index, dp_index, tp_index, microbatch, tokens))
            elif label.startswith("bwd-mb") and label.endswith("-b0"):
                microbatch = int(label[len("bwd-mb"):-len("-b0")])
                schedule.extend(self._expert_exchange(
                    "bwd", pp_index, dp_index, tp_index, microbatch, tokens))
        return schedule


def _stage_buckets(model, stage_layers, grad_buckets):
    """Gradient buckets restricted to the layers of one pipeline stage."""
    if not stage_layers:
        return []
    temp = model.gradient_buckets(grad_buckets)
    stage_set = {layer.name for layer in stage_layers}
    buckets = []
    for layers, _ in temp:
        chosen = [layer for layer in layers if layer.name in stage_set]
        if chosen:
            buckets.append((chosen, sum(layer.param_count for layer in chosen)))
    return buckets
