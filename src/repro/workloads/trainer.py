"""The training-loop driver.

``TrainingRun`` builds one host program per rank from the parallel plan and
the chosen backend, runs the simulated cluster, and reports per-iteration
times and throughput (samples per second), matching how the paper presents
Figs. 10, 12 and 13.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.gpusim.host import CallHook, HostProgram


@dataclass
class TrainingResult:
    """Measured outcome of one training run."""

    backend: str
    iterations: int
    global_batch_size: int
    iteration_times_us: list = field(default_factory=list)
    per_rank_times_us: dict = field(default_factory=dict)
    total_time_us: float = 0.0

    @property
    def mean_iteration_time_us(self):
        if not self.iteration_times_us:
            return 0.0
        return statistics.fmean(self.iteration_times_us)

    @property
    def mean_iteration_time_ms(self):
        return self.mean_iteration_time_us / 1e3

    @property
    def throughput_samples_per_s(self):
        mean = self.mean_iteration_time_us
        if mean <= 0:
            return 0.0
        return self.global_batch_size / (mean / 1e6)

    def iteration_time_cv(self):
        """Coefficient of variation of per-iteration time (Sec. 6.4.3)."""
        if len(self.iteration_times_us) < 2:
            return 0.0
        mean = statistics.fmean(self.iteration_times_us)
        if mean == 0:
            return 0.0
        return statistics.pstdev(self.iteration_times_us) / mean

    def cumulative_mean_throughput(self):
        """Running mean throughput per iteration (how Fig. 12 reports curves)."""
        series = []
        total = 0.0
        for index, duration in enumerate(self.iteration_times_us, start=1):
            total += duration
            series.append(self.global_batch_size * index / (total / 1e6))
        return series


class TrainingRun:
    """Run ``iterations`` training iterations of ``plan`` on ``backend``."""

    def __init__(self, cluster, plan, backend, iterations=5, warmup=1):
        if iterations <= warmup:
            raise ConfigurationError("iterations must exceed warmup")
        self.cluster = cluster
        self.plan = plan
        self.backend = backend
        self.iterations = iterations
        self.warmup = warmup
        self._start_times = {}
        self._end_times = {}

    def _record(self, store, rank, iteration):
        def hook(host):
            store[(rank, iteration)] = host.now
        return CallHook(hook, cost_us=0.0, detail=f"mark iter {iteration}")

    def build_programs(self):
        """Prepare the backend and build one host program per rank."""
        self.backend.prepare(self.plan)
        programs = {}
        for local in range(self.plan.world_size):
            rank = self.plan.base_rank + local
            schedule = self.plan.iteration_schedule(rank)
            ops = []
            for iteration in range(self.iterations):
                ops.append(self._record(self._start_times, rank, iteration))
                ops.extend(self.backend.iteration_ops(rank, schedule, iteration))
                ops.append(self._record(self._end_times, rank, iteration))
            ops.extend(self.backend.finalize_ops(rank))
            programs[rank] = HostProgram(ops)
        return programs

    def run(self):
        """Execute the run and return a :class:`TrainingResult`."""
        programs = self.build_programs()
        for rank, program in programs.items():
            self.cluster.add_host(rank, program, name=f"trainer-rank{rank}")
        total = self.cluster.run()

        ranks = [self.plan.base_rank + local for local in range(self.plan.world_size)]
        iteration_times = []
        per_rank = {rank: [] for rank in ranks}
        for iteration in range(self.iterations):
            durations = []
            for rank in ranks:
                start = self._start_times.get((rank, iteration))
                end = self._end_times.get((rank, iteration))
                if start is None or end is None:
                    raise ConfigurationError(
                        f"iteration {iteration} on rank {rank} was not recorded"
                    )
                per_rank[rank].append(end - start)
                durations.append(end - start)
            iteration_times.append(max(durations))

        measured = iteration_times[self.warmup:]
        return TrainingResult(
            backend=self.backend.name,
            iterations=self.iterations - self.warmup,
            global_batch_size=self.plan.global_batch_size,
            iteration_times_us=measured,
            per_rank_times_us=per_rank,
            total_time_us=total,
        )
