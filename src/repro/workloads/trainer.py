"""The training-loop driver.

``TrainingRun`` builds one host program per rank from the parallel plan and
the chosen backend, runs the simulated cluster, and reports per-iteration
times and throughput (samples per second), matching how the paper presents
Figs. 10, 12 and 13.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.gpusim.host import CallHook, HostProgram


@dataclass
class TrainingResult:
    """Measured outcome of one training run."""

    backend: str
    iterations: int
    global_batch_size: int
    iteration_times_us: list = field(default_factory=list)
    per_rank_times_us: dict = field(default_factory=dict)
    total_time_us: float = 0.0

    @property
    def mean_iteration_time_us(self):
        if not self.iteration_times_us:
            return 0.0
        return statistics.fmean(self.iteration_times_us)

    @property
    def mean_iteration_time_ms(self):
        return self.mean_iteration_time_us / 1e3

    @property
    def throughput_samples_per_s(self):
        mean = self.mean_iteration_time_us
        if mean <= 0:
            return 0.0
        return self.global_batch_size / (mean / 1e6)

    def iteration_time_cv(self):
        """Coefficient of variation of per-iteration time (Sec. 6.4.3)."""
        if len(self.iteration_times_us) < 2:
            return 0.0
        mean = statistics.fmean(self.iteration_times_us)
        if mean == 0:
            return 0.0
        return statistics.pstdev(self.iteration_times_us) / mean

    def cumulative_mean_throughput(self):
        """Running mean throughput per iteration (how Fig. 12 reports curves)."""
        series = []
        total = 0.0
        for index, duration in enumerate(self.iteration_times_us, start=1):
            total += duration
            series.append(self.global_batch_size * index / (total / 1e6))
        return series


class TrainingRun:
    """Run ``iterations`` training iterations of ``plan`` on ``backend``.

    ``run()`` drives a dedicated cluster to completion.  Multi-tenant callers
    instead ``install()`` the run's host programs mid-simulation (the shared
    cluster is run by the scheduler) and ``collect()`` the result afterwards;
    ``on_rank_complete`` lets them observe per-rank completion times without
    owning the engine loop.
    """

    def __init__(self, cluster, plan, backend, iterations=5, warmup=1,
                 on_rank_complete=None):
        if iterations <= warmup:
            raise ConfigurationError("iterations must exceed warmup")
        self.cluster = cluster
        self.plan = plan
        self.backend = backend
        self.iterations = iterations
        self.warmup = warmup
        self.on_rank_complete = on_rank_complete
        self._start_times = {}
        self._end_times = {}

    def _record(self, store, rank, iteration):
        def hook(host):
            store[(rank, iteration)] = host.now
        return CallHook(hook, cost_us=0.0, detail=f"mark iter {iteration}")

    def _rank_done(self, rank):
        def hook(host):
            self.on_rank_complete(rank, host.now)
        return CallHook(hook, cost_us=0.0, detail=f"rank {rank} done")

    def build_programs(self):
        """Prepare the backend and build one host program per rank."""
        self.backend.prepare(self.plan)
        # Plans are normally iteration-invariant and their schedule is built
        # once per rank; a plan that varies per iteration (e.g. the jittered
        # multi-tenant view drawing fresh launch skew) opts in via the
        # ``iteration_variant`` attribute.
        iteration_variant = getattr(self.plan, "iteration_variant", False)
        programs = {}
        for rank in self.plan.ranks():
            ops = []
            schedule = None if iteration_variant else self.plan.iteration_schedule(rank)
            for iteration in range(self.iterations):
                if iteration_variant:
                    schedule = self.plan.iteration_schedule(rank)
                ops.append(self._record(self._start_times, rank, iteration))
                ops.extend(self.backend.iteration_ops(rank, schedule, iteration))
                ops.append(self._record(self._end_times, rank, iteration))
            ops.extend(self.backend.finalize_ops(rank))
            if self.on_rank_complete is not None:
                ops.append(self._rank_done(rank))
            programs[rank] = HostProgram(ops)
        return programs

    def install(self, name_prefix="trainer", start_time_us=None):
        """Add one host per rank to the cluster without running the engine.

        Returns the created hosts.  ``start_time_us`` starts the rank
        processes mid-simulation (jobs placed by the multi-tenant scheduler).
        """
        programs = self.build_programs()
        return [
            self.cluster.add_host(rank, program, name=f"{name_prefix}-rank{rank}",
                                  start_time_us=start_time_us)
            for rank, program in programs.items()
        ]

    def completed_iterations(self):
        """Leading iterations every rank fully recorded (checkpoint boundary).

        The multi-tenant control plane checkpoints a preempted job at this
        boundary: iterations where some rank had not yet recorded its end
        mark are re-run on resume (their collectives are aborted at
        eviction), so no partial iteration is ever credited.
        """
        ranks = list(self.plan.ranks())
        completed = 0
        for iteration in range(self.iterations):
            if all((rank, iteration) in self._end_times for rank in ranks):
                completed += 1
            else:
                break
        return completed

    def collect(self, total_time_us, partial=False):
        """Assemble the :class:`TrainingResult` from the recorded marks.

        With ``partial=True`` ranks or iterations that never recorded (a rank
        lost to a crash, a job cut off at the deadline) are skipped instead of
        raising, and iteration times cover the ranks that did report.
        """
        ranks = list(self.plan.ranks())
        iteration_times = []
        per_rank = {rank: [] for rank in ranks}
        for iteration in range(self.iterations):
            durations = []
            for rank in ranks:
                start = self._start_times.get((rank, iteration))
                end = self._end_times.get((rank, iteration))
                if start is None or end is None:
                    if partial:
                        continue
                    raise ConfigurationError(
                        f"iteration {iteration} on rank {rank} was not recorded"
                    )
                per_rank[rank].append(end - start)
                durations.append(end - start)
            if durations:
                iteration_times.append(max(durations))

        measured = iteration_times[self.warmup:]
        return TrainingResult(
            backend=self.backend.name,
            iterations=len(measured),
            global_batch_size=self.plan.global_batch_size,
            iteration_times_us=measured,
            per_rank_times_us=per_rank,
            total_time_us=total_time_us,
        )

    def run(self):
        """Execute the run on a dedicated cluster and return the result."""
        self.install()
        total = self.cluster.run()
        return self.collect(total)
