"""DNN training workload models and the training-loop driver.

The evaluation of the paper trains ResNet50 (data parallelism), ViT (data,
tensor and 3D-hybrid parallelism) and GPT-2 (3D-hybrid parallelism).  This
package models those workloads at the granularity that matters for collective
scheduling: per-iteration compute phases interleaved with collective
operations, derived from layer-level parameter and activation sizes, and a
parallelism planner that produces each rank's per-iteration schedule for DP,
TP, PP and 3D-hybrid configurations.  The trainer then drives either the
DFCCL backend or the NCCL backend (with one of the CPU-orchestration
baselines) over the simulated cluster and reports training throughput.
"""

from repro.workloads.models import (
    LayerSpec,
    ModelSpec,
    gpt2_model,
    gpt_moe_model,
    resnet50_model,
    vit_model,
)
from repro.workloads.parallelism import (
    CollectiveItem,
    ComputeItem,
    MoeParallelPlan,
    ParallelPlan,
)
from repro.workloads.backends import GroupTrainingBackend
from repro.workloads.trainer import TrainingResult, TrainingRun

__all__ = [
    "CollectiveItem",
    "ComputeItem",
    "GroupTrainingBackend",
    "LayerSpec",
    "ModelSpec",
    "MoeParallelPlan",
    "ParallelPlan",
    "TrainingResult",
    "TrainingRun",
    "gpt2_model",
    "gpt_moe_model",
    "resnet50_model",
    "vit_model",
]
