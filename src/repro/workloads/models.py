"""Layer-level DNN model descriptions.

Only the quantities that influence collective communication matter here: how
many parameters each layer holds (gradient all-reduce volume), how large the
activations are (TP all-reduce and PP send/recv volume), and how long the
forward/backward compute of a layer takes on one GPU (to interleave the
collectives realistically).  Compute times are derived from a per-GPU
throughput constant calibrated against the iteration times the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class LayerSpec:
    """One layer (or layer group) of a model."""

    name: str
    param_count: int
    activation_count: int
    flops_per_sample: float

    @property
    def param_bytes(self):
        return self.param_count * 4


@dataclass
class ModelSpec:
    """A model as a list of layers plus global metadata."""

    name: str
    layers: list = field(default_factory=list)
    #: Effective per-GPU compute throughput in FLOP/s used to turn layer FLOPs
    #: into compute time (calibrated to the paper's measured throughput).
    gpu_flops: float = 18e12

    @property
    def param_count(self):
        return sum(layer.param_count for layer in self.layers)

    @property
    def param_bytes(self):
        return self.param_count * 4

    def forward_time_us(self, batch_size, layers=None):
        """Forward compute time of ``layers`` (default: all) for one microbatch."""
        layers = self.layers if layers is None else layers
        flops = sum(layer.flops_per_sample for layer in layers) * batch_size
        return flops / self.gpu_flops * 1e6

    def backward_time_us(self, batch_size, layers=None):
        """Backward compute is roughly 2x the forward FLOPs."""
        return 2.0 * self.forward_time_us(batch_size, layers)

    def gradient_buckets(self, num_buckets):
        """Split layers into contiguous gradient buckets (last layers first).

        Returns a list of (layer_list, param_count) in backward order, the
        order in which data-parallel gradient all-reduces are issued.
        """
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        layers = list(reversed(self.layers))
        per_bucket = max(1, math.ceil(len(layers) / num_buckets))
        buckets = []
        for start in range(0, len(layers), per_bucket):
            chunk = layers[start:start + per_bucket]
            buckets.append((chunk, sum(layer.param_count for layer in chunk)))
        return buckets


def resnet50_model():
    """ResNet50: ~25.6M parameters across 16 residual-block groups plus stem/fc."""
    layers = [LayerSpec("stem", 9_408 + 64, 802_816, 0.24e9)]
    # (blocks, params per block, activation, flops) per stage, roughly matching
    # the standard ResNet50 breakdown.
    stages = [
        (3, 215_808, 802_816, 0.68e9),
        (4, 1_219_584 // 4 + 280_064, 401_408, 0.85e9),
        (6, 7_098_368 // 6, 200_704, 0.98e9),
        (3, 14_964_736 // 3, 100_352, 1.12e9),
    ]
    for stage_index, (blocks, params, activation, flops) in enumerate(stages):
        for block in range(blocks):
            layers.append(
                LayerSpec(f"stage{stage_index}_block{block}", params, activation, flops)
            )
    layers.append(LayerSpec("fc", 2_048 * 1000 + 1000, 1000, 0.004e9))
    return ModelSpec("resnet50", layers)


def vit_model(variant="base"):
    """Vision Transformer: ViT-Base (12 layers, d=768) or ViT-Large (24, d=1024)."""
    if variant == "base":
        depth, hidden, seq = 12, 768, 197
    elif variant == "large":
        depth, hidden, seq = 24, 1024, 197
    else:
        raise ValueError(f"unknown ViT variant {variant!r}")
    layers = [LayerSpec("patch_embed", 768 * hidden // 768 * 16 * 16 * 3, seq * hidden,
                        0.1e9)]
    per_layer_params = 12 * hidden * hidden
    per_layer_flops = 24 * seq * hidden * hidden
    for index in range(depth):
        layers.append(
            LayerSpec(f"encoder{index}", per_layer_params, seq * hidden, per_layer_flops)
        )
    layers.append(LayerSpec("head", hidden * 1000, 1000, hidden * 1000 * 2))
    return ModelSpec(f"vit-{variant}", layers)


def gpt2_model(variant="small"):
    """GPT-2: small (12 layers, d=768) or medium (24 layers, d=1024)."""
    if variant == "small":
        depth, hidden, seq, vocab = 12, 768, 1024, 50_257
    elif variant == "medium":
        depth, hidden, seq, vocab = 24, 1024, 1024, 50_257
    else:
        raise ValueError(f"unknown GPT-2 variant {variant!r}")
    layers = [LayerSpec("embedding", vocab * hidden, seq * hidden, 0.2e9)]
    per_layer_params = 12 * hidden * hidden
    per_layer_flops = 24 * seq * hidden * hidden
    for index in range(depth):
        layers.append(
            LayerSpec(f"decoder{index}", per_layer_params, seq * hidden, per_layer_flops)
        )
    layers.append(LayerSpec("lm_head", vocab * hidden, seq * vocab, 2 * seq * vocab * hidden))
    return ModelSpec(f"gpt2-{variant}", layers)


def gpt_moe_model(variant="small", num_experts=8, top_k=2):
    """GPT with mixture-of-experts FFNs (Switch/GShard-style decoder stack).

    Every decoder layer keeps the dense attention block (``4·h²`` parameters)
    but replaces the FFN with ``num_experts`` experts of ``8·h²`` parameters
    each, of which every token activates ``top_k`` — so parameters scale with
    the expert count while per-sample FLOPs only scale with ``top_k``.  The
    expert-parallel all-to-all traffic this implies is added by
    :class:`~repro.workloads.parallelism.MoeParallelPlan`, which shards the
    experts across the data-parallel group.
    """
    if variant == "small":
        depth, hidden, seq, vocab = 12, 768, 1024, 50_257
    elif variant == "medium":
        depth, hidden, seq, vocab = 24, 1024, 1024, 50_257
    else:
        raise ValueError(f"unknown GPT-MoE variant {variant!r}")
    if num_experts < 1 or not 1 <= top_k <= num_experts:
        raise ValueError(
            f"need 1 <= top_k <= num_experts, got top_k={top_k} "
            f"num_experts={num_experts}"
        )
    layers = [LayerSpec("embedding", vocab * hidden, seq * hidden, 0.2e9)]
    attention_params = 4 * hidden * hidden
    expert_params = 8 * hidden * hidden
    attention_flops = 8 * seq * hidden * hidden
    active_expert_flops = top_k * 16 * seq * hidden * hidden
    for index in range(depth):
        layers.append(LayerSpec(
            f"moe_decoder{index}",
            attention_params + num_experts * expert_params,
            seq * hidden,
            attention_flops + active_expert_flops,
        ))
    layers.append(LayerSpec("lm_head", vocab * hidden, seq * vocab,
                            2 * seq * vocab * hidden))
    return ModelSpec(f"gpt-moe-{variant}-{num_experts}e", layers)
