"""Training backends: DFCCL, and NCCL under a CPU-orchestration baseline.

A training backend turns one rank's iteration schedule (compute phases and
collective items) into host ops for the simulated rank process.  The DFCCL
backend registers every distinct collective once and then just submits
invocations — in whatever order the schedule produces them.  The NCCL backend
launches one dedicated kernel per collective call and charges the coordination
overhead of the selected orchestration baseline.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.core import DfcclBackend
from repro.gpusim.host import CpuCompute
from repro.ncclsim import NcclBackend
from repro.ncclsim.program import launch_collective, wait_collective
from repro.workloads.parallelism import CollectiveItem, ComputeItem


class DfcclTrainingBackend:
    """Drive training collectives through DFCCL."""

    name = "dfccl"

    def __init__(self, cluster, config=None, shuffle_submissions=False, rng=None):
        self.cluster = cluster
        self.dfccl = DfcclBackend(cluster, config)
        self.shuffle_submissions = shuffle_submissions
        self.rng = rng
        self._coll_ids = {}
        self._next_coll_id = 0

    def prepare(self, plan):
        """Register every distinct collective of the plan exactly once."""
        ranks = list(range(plan.base_rank, plan.base_rank + plan.world_size))
        self.dfccl.init_all_ranks(ranks)
        for key, item in sorted(plan.unique_collectives().items(), key=lambda kv: kv[0]):
            coll_id = self._next_coll_id
            self._next_coll_id += 1
            self._coll_ids[key] = coll_id
            self.dfccl.register_collective(
                coll_id,
                _spec_for(item),
                ranks=list(item.group_ranks),
                priority=item.priority,
                name=f"{item.kind.value}:{key}",
            )

    def coll_id(self, key):
        return self._coll_ids[key]

    def iteration_ops(self, rank, schedule, iteration):
        """Host ops executing one iteration of ``schedule`` on ``rank``."""
        ops = []
        handles = []
        collective_items = [item for item in schedule if isinstance(item, CollectiveItem)]
        submit_order = {item.key: index for index, item in enumerate(collective_items)}
        if self.shuffle_submissions and self.rng is not None:
            shuffled = self.rng.child("iter", iteration, rank).shuffle(list(collective_items))
            submit_order = {item.key: index for index, item in enumerate(shuffled)}
        for item in schedule:
            if isinstance(item, ComputeItem):
                ops.append(CpuCompute(item.duration_us, item.label))
            elif isinstance(item, CollectiveItem):
                handle = self.dfccl.submit(rank, self._coll_ids[item.key])
                handles.append((submit_order[item.key], handle))
                ops.append(handle.submit_op())
            else:  # pragma: no cover - defensive
                raise ConfigurationError(f"unknown schedule item {item!r}")
        for _, handle in sorted(handles, key=lambda pair: pair[0]):
            ops.append(handle.wait_op())
        return ops

    def finalize_ops(self, rank):
        return [self.dfccl.destroy_op(rank)]

    def stats(self, rank):
        return self.dfccl.stats(rank)


class NcclTrainingBackend:
    """Drive training collectives through NCCL plus a CPU-orchestration baseline."""

    def __init__(self, cluster, orchestrator, chunk_bytes=None):
        self.cluster = cluster
        self.orchestrator = orchestrator
        self.nccl = NcclBackend(cluster, chunk_bytes=chunk_bytes)
        self._comms = {}
        self._decisions = {}
        self._plan = None

    @property
    def name(self):
        return f"nccl+{self.orchestrator.name}"

    def prepare(self, plan):
        self._plan = plan

    def _comm_for(self, group_ranks):
        comm = self._comms.get(group_ranks)
        if comm is None:
            comm = self.nccl.create_communicator(ranks=list(group_ranks))
            self._comms[group_ranks] = comm
        return comm

    def _decision(self, iteration):
        decision = self._decisions.get(iteration)
        if decision is None:
            per_rank_orders = {
                rank: [item.key for item in self._plan.collective_items(rank)]
                for rank in range(self._plan.base_rank,
                                  self._plan.base_rank + self._plan.world_size)
            }
            decision = self.orchestrator.coordinate(per_rank_orders, step_index=iteration)
            self._decisions[iteration] = decision
        return decision

    def iteration_ops(self, rank, schedule, iteration):
        decision = self._decision(iteration)
        ops = []
        startup_delay = decision.per_step_delay_us
        if iteration == 0:
            startup_delay += decision.one_time_delay_us
        if startup_delay > 0:
            ops.append(CpuCompute(startup_delay, f"{self.orchestrator.name}-coordination"))

        waits = []
        for item in schedule:
            if isinstance(item, ComputeItem):
                ops.append(CpuCompute(item.duration_us, item.label))
            elif isinstance(item, CollectiveItem):
                if decision.per_collective_delay_us > 0:
                    ops.append(CpuCompute(decision.per_collective_delay_us,
                                          f"{self.orchestrator.name}-negotiate"))
                comm = self._comm_for(item.group_ranks)
                op = comm.collective((item.key, iteration), _spec_for(item))
                group_rank = item.group_ranks.index(rank)
                ops.append(launch_collective(self.nccl, op, rank, stream="comm"))
                waits.append((op, group_rank))
            else:  # pragma: no cover - defensive
                raise ConfigurationError(f"unknown schedule item {item!r}")
        for op, group_rank in waits:
            ops.append(wait_collective(op, group_rank))
        return ops

    def finalize_ops(self, rank):
        return []

    def stats(self, rank):
        return None


def _spec_for(item):
    """Translate a schedule collective item into a CollectiveSpec."""
    from repro.common.types import CollectiveSpec

    root = 0
    return CollectiveSpec(
        kind=item.kind,
        count=max(1, item.count),
        root=root,
        priority=item.priority,
    )
