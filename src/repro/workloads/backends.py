"""Training backends: DFCCL, and NCCL under a CPU-orchestration baseline.

A training backend turns one rank's iteration schedule (compute phases and
collective items) into host ops for the simulated rank process.  The DFCCL
backend registers every distinct collective once and then just submits
invocations — in whatever order the schedule produces them.  The NCCL backend
launches one dedicated kernel per collective call and charges the coordination
overhead of the selected orchestration baseline.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError, InvalidStateError
from repro.core import DfcclBackend
from repro.gpusim.host import CpuCompute
from repro.ncclsim import NcclBackend
from repro.ncclsim.program import launch_collective, wait_collective
from repro.workloads.parallelism import CollectiveItem, ComputeItem


class DfcclTrainingBackend:
    """Drive training collectives through DFCCL.

    By default the backend owns a private :class:`DfcclBackend`.  Under the
    multi-tenant scheduler every job passes the *shared* ``dfccl`` instance
    (one daemon kernel per GPU serves all co-located jobs) plus a
    ``namespace`` — its job id — which prefixes collective ids and namespaces
    the communicator pool, so concurrent jobs never collide on either.
    """

    name = "dfccl"

    def __init__(self, cluster, config=None, shuffle_submissions=False, rng=None,
                 dfccl=None, namespace=None):
        self.cluster = cluster
        self.dfccl = dfccl if dfccl is not None else DfcclBackend(cluster, config)
        #: Whether finalize should destroy the rank contexts: only when this
        #: backend created them — a shared backend outlives any one job.
        self.owns_backend = dfccl is None
        self.namespace = namespace
        self.shuffle_submissions = shuffle_submissions
        self.rng = rng
        self._coll_ids = {}
        self._next_coll_id = 0

    def _full_coll_id(self, local_id):
        return local_id if self.namespace is None else (self.namespace, local_id)

    def prepare(self, plan):
        """Register every distinct collective of the plan exactly once."""
        ranks = list(plan.ranks())
        self.dfccl.init_all_ranks(ranks)
        for key, item in sorted(plan.unique_collectives().items(), key=lambda kv: kv[0]):
            coll_id = self._full_coll_id(self._next_coll_id)
            self._next_coll_id += 1
            self._coll_ids[key] = coll_id
            self.dfccl.register_collective(
                coll_id,
                _spec_for(item),
                ranks=list(item.group_ranks),
                priority=item.priority,
                name=f"{item.kind.value}:{key}",
                job=self.namespace,
            )

    def coll_id(self, key):
        return self._coll_ids[key]

    def iteration_ops(self, rank, schedule, iteration):
        """Host ops executing one iteration of ``schedule`` on ``rank``."""
        ops = []
        handles = []
        collective_items = [item for item in schedule if isinstance(item, CollectiveItem)]
        submit_order = {item.key: index for index, item in enumerate(collective_items)}
        if self.shuffle_submissions and self.rng is not None:
            shuffled = self.rng.child("iter", iteration, rank).shuffle(list(collective_items))
            submit_order = {item.key: index for index, item in enumerate(shuffled)}
        for item in schedule:
            if isinstance(item, ComputeItem):
                ops.append(CpuCompute(item.duration_us, item.label))
            elif isinstance(item, CollectiveItem):
                handle = self.dfccl.submit(rank, self._coll_ids[item.key])
                handles.append((submit_order[item.key], handle))
                ops.append(handle.submit_op())
            else:  # pragma: no cover - defensive
                raise ConfigurationError(f"unknown schedule item {item!r}")
        for _, handle in sorted(handles, key=lambda pair: pair[0]):
            ops.append(handle.wait_op())
        return ops

    def finalize_ops(self, rank):
        if not self.owns_backend:
            # The shared backend's rank contexts serve other jobs; the
            # daemon kernels quit voluntarily once every job drained.
            return []
        return [self.dfccl.destroy_op(rank)]

    def unregister_all(self):
        """Unregister every collective this backend registered (job teardown).

        Recycles the job's communicators into the shared pool.  Collectives
        with an invocation still in flight (e.g. abandoned by recovery) are
        left registered; returns the number actually unregistered.
        """
        released = 0
        for coll_id in list(self._coll_ids.values()):
            try:
                self.dfccl.unregister_collective(coll_id)
            except (ConfigurationError, InvalidStateError):
                continue
            released += 1
        return released

    def stats(self, rank):
        return self.dfccl.stats(rank)


class NcclTrainingBackend:
    """Drive training collectives through NCCL plus a CPU-orchestration baseline.

    ``tenant`` tags this job's dedicated kernels for the multi-tenant SM
    accounting and gives the job its own device streams, modelling separate
    rank processes sharing a GPU.
    """

    def __init__(self, cluster, orchestrator, chunk_bytes=None, nccl=None,
                 tenant=None):
        self.cluster = cluster
        self.orchestrator = orchestrator
        self.nccl = nccl if nccl is not None else NcclBackend(cluster, chunk_bytes=chunk_bytes)
        self.tenant = tenant
        self.stream = "comm" if tenant is None else f"comm-{tenant}"
        self._comms = {}
        self._decisions = {}
        self._plan = None

    @property
    def name(self):
        return f"nccl+{self.orchestrator.name}"

    def prepare(self, plan):
        self._plan = plan

    def _comm_for(self, group_ranks):
        comm = self._comms.get(group_ranks)
        if comm is None:
            comm = self.nccl.create_communicator(ranks=list(group_ranks))
            self._comms[group_ranks] = comm
        return comm

    def _decision(self, iteration):
        decision = self._decisions.get(iteration)
        if decision is None:
            per_rank_orders = {
                rank: [item.key for item in self._plan.collective_items(rank)]
                for rank in self._plan.ranks()
            }
            decision = self.orchestrator.coordinate(per_rank_orders, step_index=iteration)
            self._decisions[iteration] = decision
        return decision

    def iteration_ops(self, rank, schedule, iteration):
        decision = self._decision(iteration)
        ops = []
        startup_delay = decision.per_step_delay_us
        if iteration == 0:
            startup_delay += decision.one_time_delay_us
        if startup_delay > 0:
            ops.append(CpuCompute(startup_delay, f"{self.orchestrator.name}-coordination"))

        waits = []
        for item in schedule:
            if isinstance(item, ComputeItem):
                ops.append(CpuCompute(item.duration_us, item.label))
            elif isinstance(item, CollectiveItem):
                if decision.per_collective_delay_us > 0:
                    ops.append(CpuCompute(decision.per_collective_delay_us,
                                          f"{self.orchestrator.name}-negotiate"))
                comm = self._comm_for(item.group_ranks)
                op = comm.collective((item.key, iteration), _spec_for(item))
                group_rank = item.group_ranks.index(rank)
                ops.append(launch_collective(self.nccl, op, rank,
                                             stream=self.stream, tenant=self.tenant))
                waits.append((op, group_rank))
            else:  # pragma: no cover - defensive
                raise ConfigurationError(f"unknown schedule item {item!r}")
        for op, group_rank in waits:
            ops.append(wait_collective(op, group_rank))
        return ops

    def finalize_ops(self, rank):
        return []

    def stats(self, rank):
        return None


def _spec_for(item):
    """Translate a schedule collective item into a CollectiveSpec."""
    from repro.common.types import CollectiveSpec

    root = 0
    return CollectiveSpec(
        kind=item.kind,
        count=max(1, item.count),
        root=root,
        priority=item.priority,
    )
