"""The backend-agnostic training backend.

:class:`GroupTrainingBackend` turns one rank's iteration schedule (compute
phases and collective items) into host ops for the simulated rank process by
driving any :class:`repro.api.CollectiveBackend` through one
:class:`~repro.api.ProcessGroup` per collective group.  Every distinct
schedule collective becomes one logical group collective (keyed by the
schedule item key); repeated iterations become successive invocations, so the
same codepath covers DFCCL's register-once/submit-many flow and the NCCL
baseline's kernel-per-call flow.

Backends that need CPU-side coordination to be safe (the dedicated-kernel
baseline) contribute an *orchestrator* via
:meth:`~repro.api.CollectiveBackend.orchestrator_for`; its negotiated order
and per-step delays are charged exactly as the paper's baselines do.  DFCCL
contributes none — deadlock freedom is the backend's job.
"""

from __future__ import annotations

from repro.api import make_backend
from repro.api.backend import resolve_orchestrator
from repro.common.errors import ConfigurationError
from repro.gpusim.host import CpuCompute
from repro.workloads.parallelism import CollectiveItem, ComputeItem


class GroupTrainingBackend:
    """Drive training collectives through any ``repro.api`` backend.

    ``backend`` is a :class:`~repro.api.CollectiveBackend` instance or a
    registered backend name (extra ``knobs`` go to :func:`make_backend`).
    ``orchestrator`` is ``"auto"`` (ask the backend), ``None`` (no CPU
    coordination), an orchestrator name, or an instance.

    ``shuffle_submissions`` randomizes the completion-wait order per
    iteration (with ``rng``), modelling frameworks that consume collective
    results out of order.
    """

    def __init__(self, cluster, backend="dfccl", orchestrator="auto",
                 shuffle_submissions=False, rng=None, **knobs):
        self.cluster = cluster
        self.backend = (make_backend(backend, cluster, **knobs)
                        if isinstance(backend, str) else backend)
        self._orchestrator_spec = orchestrator
        self.orchestrator = None
        self.shuffle_submissions = shuffle_submissions
        self.rng = rng
        self._groups = {}
        self._decisions = {}
        self._plan = None

    @property
    def name(self):
        if self.orchestrator is None:
            return self.backend.name
        return f"{self.backend.name}+{self.orchestrator.name}"

    # -- preparation ------------------------------------------------------------

    def _resolve_orchestrator(self, world_size):
        spec = self._orchestrator_spec
        if spec == "auto":
            return self.backend.orchestrator_for(world_size)
        return resolve_orchestrator(spec, world_size)

    def _group_for(self, group_ranks):
        group = self._groups.get(group_ranks)
        if group is None:
            group = self.backend.new_group(list(group_ranks))
            self._groups[group_ranks] = group
        return group

    def prepare(self, plan):
        """Declare every distinct collective of the plan exactly once.

        Declaration order is the sorted schedule-key order, which keeps
        backend-side id assignment (and hence communicator acquisition)
        deterministic across runs.
        """
        self._plan = plan
        self.orchestrator = self._resolve_orchestrator(plan.world_size)
        for key, item in sorted(plan.unique_collectives().items(), key=lambda kv: kv[0]):
            self._group_for(item.group_ranks).ensure_collective(
                _spec_for(item), key=key
            )

    # -- per-iteration program construction ----------------------------------------

    def _decision(self, iteration):
        decision = self._decisions.get(iteration)
        if decision is None:
            per_rank_orders = {
                rank: [item.key for item in self._plan.collective_items(rank)]
                for rank in self._plan.ranks()
            }
            decision = self.orchestrator.coordinate(per_rank_orders, step_index=iteration)
            self._decisions[iteration] = decision
        return decision

    def iteration_ops(self, rank, schedule, iteration):
        """Host ops executing one iteration of ``schedule`` on ``rank``."""
        ops = []
        decision = None
        if self.orchestrator is not None:
            decision = self._decision(iteration)
            startup_delay = decision.per_step_delay_us
            if iteration == 0:
                startup_delay += decision.one_time_delay_us
            if startup_delay > 0:
                ops.append(CpuCompute(startup_delay,
                                      f"{self.orchestrator.name}-coordination"))

        collective_items = [item for item in schedule if isinstance(item, CollectiveItem)]
        submit_order = {item.key: index for index, item in enumerate(collective_items)}
        if self.shuffle_submissions and self.rng is not None:
            shuffled = self.rng.child("iter", iteration, rank).shuffle(list(collective_items))
            submit_order = {item.key: index for index, item in enumerate(shuffled)}

        works = []
        for item in schedule:
            if isinstance(item, ComputeItem):
                ops.append(CpuCompute(item.duration_us, item.label))
            elif isinstance(item, CollectiveItem):
                if decision is not None and decision.per_collective_delay_us > 0:
                    ops.append(CpuCompute(decision.per_collective_delay_us,
                                          f"{self.orchestrator.name}-negotiate"))
                group = self._group_for(item.group_ranks)
                work = group.collective(rank, _spec_for(item), key=item.key)
                works.append((submit_order[item.key], work))
                ops.append(work.submit_op())
            else:  # pragma: no cover - defensive
                raise ConfigurationError(f"unknown schedule item {item!r}")
        for _, work in sorted(works, key=lambda pair: pair[0]):
            ops.append(work.wait_op())
        return ops

    # -- lifecycle ------------------------------------------------------------------

    def finalize_ops(self, rank):
        return self.backend.finalize_ops(rank)

    def unregister_all(self):
        """Unregister every collective this backend declared (job teardown)."""
        return self.backend.unregister_all()

    def stats(self, rank):
        return self.backend.stats(rank)


def _spec_for(item):
    """Translate a schedule collective item into a CollectiveSpec."""
    from repro.common.types import CollectiveSpec

    root = 0
    return CollectiveSpec(
        kind=item.kind,
        count=max(1, item.count),
        root=root,
        priority=item.priority,
        algorithm=getattr(item, "algorithm", None),
    )
