"""The control plane: a continuously running scheduler service.

:class:`ControlPlane` extends the multi-tenant :class:`ClusterScheduler`
from a batch admitter into a *service*:

* **live submission** — jobs may be submitted while the engine runs (from a
  scheduled action or a host hook); the service actor is woken through
  :meth:`~repro.gpusim.engine.Engine.wake_actor` whatever state it parked in;
* **admission control** — per-tenant quotas reject jobs that could never run
  within their tenant's GPU budget and cap each tenant's concurrently leased
  GPUs at placement time;
* **priority preemption with checkpoint/restore** — a queued job of higher
  effective priority may evict lower-priority running jobs; the victim is
  checkpointed at its last fully-completed iteration boundary (in-flight
  collective parts are aborted out of the daemon queues), requeued, and
  later resumed running only its remaining iterations.  Preemption requires
  a backend that can quiesce an evicted job — the dedicated-kernel baseline
  cannot abort its in-flight kernels, so over it the control plane degrades
  to non-preemptive scheduling (exactly the property the paper's comparison
  turns on);
* **starvation aging** — a queued job's effective priority rises with its
  waiting time, so high-priority churn cannot starve low-priority tenants;
* **elastic growth and rejoin** — :meth:`grow_cluster` adds a node to the
  live cluster mid-run and immediately places queued work on it; a running
  job that loses a leased rank is checkpoint-evicted and requeued at full
  size (the *rejoin* path — the scheduler-level inverse of recovery's group
  shrink);
* **migration** — :meth:`migrate` checkpoints a running job and re-places it,
  preferring devices outside its old lease.

Determinism: everything external — submissions, migrations, growth — enters
through the :meth:`schedule` action queue, ordered by ``(time, sequence)``,
so equal seeds replay identical histories.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.errors import ConfigurationError, InvalidStateError
from repro.controlplane.checkpoint import JobCheckpoint, collective_fingerprints
from repro.gpusim.engine import StepResult
from repro.multijob.jobs import JobRecord, JobState
from repro.multijob.placement import DeviceLease
from repro.multijob.scheduler import ClusterScheduler


class ControlPlane(ClusterScheduler):
    """Scheduler-as-a-service: preemption, checkpoint/restore, elasticity."""

    def __init__(self, cluster, runner, policy="packed", tenants_per_gpu=2,
                 name="control-plane", preemption=True,
                 max_preemptions_per_job=3, starvation_boost_us=None,
                 quotas=None, rejoin=True):
        super().__init__(cluster, runner, policy=policy,
                         tenants_per_gpu=tenants_per_gpu, name=name)
        #: Preemption needs a backend able to quiesce an evicted job.
        self.preemption = preemption and getattr(
            runner, "supports_preemption", False)
        self.max_preemptions_per_job = max_preemptions_per_job
        self.starvation_boost_us = starvation_boost_us
        #: Tenant -> max concurrently leased GPUs (absent tenants: unlimited).
        self.quotas = dict(quotas or {})
        self.rejoin_enabled = rejoin
        self._actions = []       # (time_us, seq, callable) sorted
        self._action_seq = 0
        self._in_step = False
        self.migrations = 0
        self.rejoins = 0
        self.grow_events = 0

    def on_registered(self, engine):
        super().on_registered(engine)
        if engine.obs.enabled:
            engine.obs.metrics.gauge_fn(
                "jobs_running",  # refresh over the base registration
                lambda: sum(1 for record in self.jobs.values()
                            if record.state is JobState.RUNNING))

    # -- the action queue --------------------------------------------------------

    def schedule(self, time_us, action):
        """Run ``action(control_plane, now)`` at virtual time ``time_us``.

        The deterministic entry point for everything external: live
        submissions, migrations, cluster growth.  Actions at equal times run
        in scheduling order.  Returns ``self`` for chaining.
        """
        self._action_seq += 1
        self._actions.append((float(time_us), self._action_seq, action))
        self._actions.sort(key=lambda entry: entry[:2])
        if self._started and self.engine is not None and not self._in_step:
            self.engine.wake_actor(self)
        return self

    def _run_due_actions(self, now):
        ran = 0
        while self._actions and self._actions[0][0] <= now:
            _, _, action = self._actions.pop(0)
            action(self, now)
            ran += 1
        return ran

    # -- live admission ----------------------------------------------------------

    def submit(self, spec):
        """Admit one job spec — before the run *or live, mid-simulation*.

        A live submission's arrival time is clamped forward to ``now`` (the
        service cannot admit into the past) and the service actor is woken
        out of whatever sleep or block it parked in.
        """
        if not self._started:
            return super().submit(spec)
        spec.validate()
        if spec.job_id in self.jobs or any(
            pending.job_id == spec.job_id for pending in self._pending_arrivals
        ):
            raise ConfigurationError(f"job id {spec.job_id!r} already submitted")
        if spec.world_size > self.cluster.world_size:
            raise ConfigurationError(
                f"job {spec.job_id} wants {spec.world_size} GPUs but the "
                f"cluster has {self.cluster.world_size}"
            )
        now = self.now
        if spec.arrival_time_us < now:
            spec = replace(spec, arrival_time_us=now)
        self._pending_arrivals.append(spec)
        self._pending_arrivals.sort(key=lambda pending: (pending.arrival_time_us,
                                                         pending.job_id))
        if self.engine is not None and not self._in_step:
            self.engine.wake_actor(self)
        return spec

    def _admit_due(self, now):
        """Admit due arrivals, rejecting jobs no quota could ever satisfy."""
        while self._pending_arrivals and \
                self._pending_arrivals[0].arrival_time_us <= now:
            spec = self._pending_arrivals.pop(0)
            record = JobRecord(spec=spec)
            self.jobs[spec.job_id] = record
            self.events.append((spec.arrival_time_us, "arrive", spec.job_id))
            obs = self._obs()
            if obs is not None:
                obs.tracer.event(f"arrive:{spec.job_id}", "job",
                                 spec.arrival_time_us,
                                 attrs={"world_size": spec.world_size,
                                        "tenant": spec.tenant})
            quota = self.quotas.get(spec.tenant)
            if quota is not None and spec.world_size > quota:
                record.state = JobState.REJECTED
                self.events.append((now, "reject", spec.job_id))
                if obs is not None:
                    obs.metrics.counter("jobs_rejected").inc()
                    obs.tracer.event(f"reject:{spec.job_id}", "job", now,
                                     attrs={"tenant": spec.tenant,
                                            "quota": quota})

    # -- priority, quota and placement --------------------------------------------

    def _effective_priority(self, record, now):
        """Spec priority plus starvation aging (one level per boost period)."""
        priority = record.spec.priority
        if self.starvation_boost_us:
            waited = max(0.0, now - record.spec.arrival_time_us)
            priority += int(waited / self.starvation_boost_us)
        return priority

    def _queued_records(self, now=None):
        def order(record):
            priority = (record.spec.priority if now is None
                        else self._effective_priority(record, now))
            return (-priority, record.spec.arrival_time_us, record.job_id)
        return sorted((record for record in self.jobs.values()
                       if record.state is JobState.QUEUED), key=order)

    def _tenant_leased(self, tenant):
        return sum(len(record.lease.ranks) for record in self.jobs.values()
                   if record.state is JobState.RUNNING
                   and record.spec.tenant == tenant)

    def _within_quota(self, record):
        quota = self.quotas.get(record.spec.tenant)
        if quota is None:
            return True
        return self._tenant_leased(record.spec.tenant) + \
            record.spec.world_size <= quota

    def _try_place_queued(self, now):
        """Placement pass: backfill first, then preempt for what still waits."""
        placed = 0
        for record in self._queued_records(now):
            if not self._within_quota(record):
                continue
            ranks = self.policy.place(
                record.spec.world_size, self._effective_load(),
                self.tenants_per_gpu, self.cluster,
            )
            if ranks is None and self.preemption:
                ranks = self._place_with_preemption(record, now)
            if ranks is None:
                continue
            self._grant(record, ranks, now)
            placed += 1
        return placed

    def _place_with_preemption(self, record, now):
        """Evict lower-priority running jobs to make room for ``record``.

        Victims are simulated on a hypothetical load map first — nothing is
        evicted unless the eviction set provably fits the job — then evicted
        youngest-start first (least sunk work), lowest priority first.
        """
        wanted = self._effective_priority(record, now)
        candidates = sorted(
            (victim for victim in self.jobs.values()
             if victim.state is JobState.RUNNING
             and victim.preemptions < self.max_preemptions_per_job
             and not self._about_to_finish(victim)
             and self._effective_priority(victim, now) < wanted),
            key=lambda victim: (self._effective_priority(victim, now),
                                -victim.lease.granted_at_us,
                                victim.job_id),
        )
        if not candidates:
            return None
        hypothetical = self._effective_load()
        chosen = []
        fits = None
        for victim in candidates:
            for rank in victim.lease.ranks:
                if not self.cluster.device(rank).failed:
                    hypothetical[rank] -= 1
            chosen.append(victim)
            fits = self.policy.place(
                record.spec.world_size, hypothetical,
                self.tenants_per_gpu, self.cluster,
            )
            if fits is not None:
                break
        if fits is None:
            return None
        for victim in chosen:
            self._preempt(victim, now, reason=f"preempted-by:{record.job_id}")
        return self.policy.place(
            record.spec.world_size, self._effective_load(),
            self.tenants_per_gpu, self.cluster,
        )

    def _about_to_finish(self, record):
        """True when every iteration already ran and only the completion
        hooks are pending (at this same virtual instant).  Evicting such a
        job would record a preemption for capacity its finish is about to
        release anyway."""
        run = self.runner.runs.get(record.job_id)
        if run is None:
            return False
        return record.completed_iterations + run.completed_iterations() \
            >= record.spec.iterations

    def _maybe_finish(self, record, time_us):
        super()._maybe_finish(record, time_us)
        if record.state is JobState.COMPLETED:
            # Normal completion confirms every spec iteration ran — keep the
            # cumulative counter truthful for resumed jobs too.
            record.completed_iterations = record.spec.iterations

    # -- checkpoint / restore ------------------------------------------------------

    def _preempt(self, record, now, reason):
        """Checkpoint-evict a running job; requeue it (or finish it outright)."""
        if record.state is not JobState.RUNNING:
            raise InvalidStateError(
                f"cannot preempt job {record.job_id} in state {record.state.value}"
            )
        run = self.runner.runs.get(record.job_id)
        fingerprints = ()
        if run is not None:
            fingerprints = collective_fingerprints(
                run.backend.backend, getattr(run.plan, "local_rank", None))
        completed, aborted = self.runner.preempt(record, now)
        record.completed_iterations += completed
        record.checkpoint = JobCheckpoint(
            job_id=record.job_id,
            epoch=record.epoch,
            completed_iterations=record.completed_iterations,
            taken_at_us=now,
            reason=reason,
            aborted_parts=aborted,
            fingerprints=fingerprints,
        )
        for rank in record.lease.ranks:
            self.load[rank] -= 1
        record.lease = None
        record.ranks_done = {}
        record.preemptions += 1
        record.epoch += 1
        self.events.append((now, f"preempt:{reason}", record.job_id))
        obs = self._obs()
        if obs is not None:
            obs.metrics.counter("jobs_preempted").inc()
            span = self._job_spans.pop(record.job_id, None)
            if span is not None:
                obs.tracer.end(span, now, state="preempted", reason=reason)
        if record.completed_iterations >= record.spec.iterations:
            # Eviction landed exactly on the final boundary: every iteration
            # is checkpointed, so the job is complete without a resume.
            record.state = JobState.COMPLETED
            record.finish_time_us = now
            self.runner.release_job(record.job_id)
            self.events.append((now, "finish", record.job_id))
        else:
            record.state = JobState.QUEUED
        return record.checkpoint

    def _grant(self, record, ranks, now):
        """Lease ``ranks`` to the job — a first placement or a resume."""
        resumed = record.epoch > 0
        record.lease = DeviceLease(record.job_id, tuple(ranks), now)
        if record.start_time_us is None:
            record.start_time_us = now
        record.state = JobState.RUNNING
        for rank in ranks:
            self.load[rank] += 1
        self.events.append((now, "resume" if resumed else "place",
                            record.job_id))
        obs = self._obs()
        if obs is not None:
            if resumed:
                obs.metrics.counter("jobs_resumed").inc()
            else:
                # Queueing delay is arrival-to-*first*-placement; a resume
                # is service interruption, not queueing.
                obs.metrics.histogram("jobs_queueing_delay_us").observe(
                    max(0.0, now - record.spec.arrival_time_us))
            self._job_spans[record.job_id] = obs.tracer.begin(
                f"job:{record.job_id}", "job", now,
                track="lifecycle", job=record.job_id,
                attrs={"ranks": list(ranks),
                       "priority": record.spec.priority,
                       "epoch": record.epoch})

        def on_rank_complete(rank, time_us, job_id=record.job_id,
                             epoch=record.epoch):
            current = self.jobs[job_id]
            if current.epoch != epoch or current.state is not JobState.RUNNING:
                return  # stale hook from an evicted epoch's rank process
            self.on_rank_done(job_id, rank, time_us)

        self.runner.launch(record, now, on_rank_complete)

    # -- migration -----------------------------------------------------------------

    def migrate(self, job_id, time_us=None):
        """Checkpoint a running job and re-place it, avoiding its old ranks.

        When capacity outside the old lease exists the job moves; otherwise
        it re-enters the queue like any preempted job.  Returns the record.
        """
        record = self.jobs[job_id]
        if record.state is not JobState.RUNNING:
            raise InvalidStateError(
                f"cannot migrate job {job_id} in state {record.state.value}"
            )
        if not self.preemption:
            raise InvalidStateError(
                "migration needs a preemption-capable (quiesce) backend"
            )
        now = self.now if time_us is None else time_us
        old_ranks = tuple(record.lease.ranks)
        self._preempt(record, now, reason="migrate")
        self.migrations += 1
        obs = self._obs()
        if obs is not None:
            obs.metrics.counter("jobs_migrated").inc()
        if record.state is JobState.QUEUED:
            masked = self._effective_load()
            for rank in old_ranks:
                masked[rank] = self.tenants_per_gpu
            ranks = self.policy.place(record.spec.world_size, masked,
                                      self.tenants_per_gpu, self.cluster)
            if ranks is not None:
                self._grant(record, ranks, now)
            else:
                self._try_place_queued(now)
        return record

    # -- elastic growth and rejoin ---------------------------------------------------

    def grow_cluster(self, node=None, time_us=None):
        """Add a node to the live cluster and place queued work on it."""
        now = self.now if time_us is None else time_us
        added = self.cluster.add_node(node, time_us=now)
        for device in added:
            self.load[self.cluster.rank_of(device)] = 0
        self.grow_events += 1
        self.events.append((now, "grow", self.cluster.spec.nodes[-1].name))
        obs = self._obs()
        if obs is not None:
            obs.metrics.counter("cluster_grow_events").inc()
            obs.tracer.event("cluster-grow", "controlplane", now,
                             attrs={"devices": [d.name for d in added],
                                    "world_size": self.cluster.world_size})
        self._try_place_queued(now)
        return added

    def _reap_failed_ranks(self, now):
        """Rejoin path first: a running job that lost a leased rank is
        checkpoint-evicted and requeued at *full* size, so its next placement
        re-forms the whole group on healthy devices (the scheduler-level
        inverse of recovery's shrink).  Jobs past their preemption budget
        fall through to the base reaper and finish degraded."""
        if self.rejoin_enabled and self.preemption:
            for record in list(self.jobs.values()):
                if record.state is not JobState.RUNNING:
                    continue
                if record.preemptions >= self.max_preemptions_per_job:
                    continue
                if any(self.cluster.device(rank).failed
                       for rank in record.lease.ranks):
                    self._preempt(record, now, reason="rejoin")
                    self.rejoins += 1
                    obs = self._obs()
                    if obs is not None:
                        obs.metrics.counter("jobs_rejoined").inc()
        super()._reap_failed_ranks(now)

    # -- engine protocol -----------------------------------------------------------

    def step(self):
        self._started = True
        self._in_step = True
        try:
            now = self.now
            self._run_due_actions(now)
            self._admit_due(now)
            self._reap_failed_ranks(now)
            self._try_place_queued(now)
        finally:
            self._in_step = False

        if not self._pending_arrivals and not self._actions and all(
            record.terminal for record in self.jobs.values()
        ):
            return StepResult.done("control plane drained")

        wake_times = []
        if self._pending_arrivals:
            wake_times.append(self._pending_arrivals[0].arrival_time_us)
        if self._actions:
            wake_times.append(self._actions[0][0])
        if wake_times:
            return StepResult.sleep(min(wake_times),
                                    "awaiting next arrival or action")
        return StepResult.blocked([self.wake_key], "jobs running; queue parked")

    # -- reporting -----------------------------------------------------------------

    def summary(self, total_time_us=None):
        """Base scheduler summary plus the control-plane counters.

        ``starved`` counts jobs that ended unfinished *without ever being
        placed* — the service's headline no-starvation claim is
        ``starved == 0`` over a saturating stream.  Rejected jobs are an
        admission-policy outcome, not starvation, and are excluded from the
        never-placed count.
        """
        data = super().summary(total_time_us)
        records = list(self.jobs.values())
        rejected = sum(1 for record in records
                       if record.state is JobState.REJECTED)
        data["never_placed"] = max(0, data["never_placed"] - rejected)
        data.update({
            "rejected": rejected,
            "preemptions": sum(record.preemptions for record in records),
            "preempted_jobs": sum(1 for record in records
                                  if record.preemptions > 0),
            "resumed_jobs": sum(1 for record in records if record.epoch > 1
                                or (record.epoch == 1
                                    and record.lease is not None)),
            "migrations": self.migrations,
            "rejoins": self.rejoins,
            "grow_events": self.grow_events,
            "starved": sum(1 for record in records
                           if record.state is JobState.UNFINISHED
                           and record.start_time_us is None),
        })
        return data


def install_control_plane(cluster, runner, specs=(), policy="packed",
                          tenants_per_gpu=2, **kwargs):
    """Create a control plane, admit ``specs`` and register it."""
    service = ControlPlane(cluster, runner, policy=policy,
                           tenants_per_gpu=tenants_per_gpu, **kwargs)
    service.submit_all(specs)
    cluster.engine.add_actor(service)
    return service
