"""Control plane: scheduler-as-a-service over the multi-tenant cluster.

Builds on :mod:`repro.multijob` — live job submission, per-tenant admission
control, priority preemption with checkpoint/restore, elastic cluster growth
and rank rejoin, and job migration.  See ``docs/controlplane.md``.
"""

from repro.controlplane.checkpoint import JobCheckpoint, collective_fingerprints
from repro.controlplane.service import ControlPlane, install_control_plane

__all__ = [
    "ControlPlane",
    "JobCheckpoint",
    "collective_fingerprints",
    "install_control_plane",
]
