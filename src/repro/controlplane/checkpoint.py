"""Job checkpoints: what the control plane saves when it evicts a job.

A preempted (or migrated, or rejoin-evicted) job is checkpointed at its last
*iteration boundary* every rank fully recorded — partial iterations are never
credited, their collective parts are aborted at eviction and re-run on
resume.  The :class:`JobCheckpoint` carries the cumulative progress plus a
fingerprint of the epoch's collective state, so tests (and the elastic
fuzzer) can assert that a resumed job re-forms exactly the groups it had and
completes byte-identical reductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class JobCheckpoint:
    """Durable state of one evicted job (everything resume needs)."""

    job_id: str
    #: Placement epoch the checkpoint closed (0 = the job's first placement).
    epoch: int
    #: Cumulative fully-completed iterations across every epoch so far; the
    #: resumed run executes ``spec.iterations - completed_iterations``.
    completed_iterations: int
    taken_at_us: float
    #: Why the job was evicted: ``"preempted-by:<job>"``, ``"migrate"`` or
    #: ``"rejoin"`` (a leased rank died).
    reason: str
    #: Collective parts aborted out of the daemon queues at eviction.
    aborted_parts: int = 0
    #: Sorted :func:`collective_fingerprints` of the epoch's registrations.
    fingerprints: tuple = field(default=())

    def describe(self):
        """Plain-dict form (JSON-safe, used by bench reports and the fuzzer)."""
        return {
            "job_id": self.job_id,
            "epoch": self.epoch,
            "completed_iterations": self.completed_iterations,
            "taken_at_us": self.taken_at_us,
            "reason": self.reason,
            "aborted_parts": self.aborted_parts,
            "fingerprints": [list(entry) for entry in self.fingerprints],
        }


def collective_fingerprints(view, to_local=None):
    """Fingerprint a backend view's registered collectives.

    Returns a sorted tuple of ``(name, kind, members, invocations,
    complete)`` entries — one per distinct registration — where ``members``
    are the participating ranks (mapped through ``to_local`` when the caller
    plans in job-local rank space) and ``complete`` counts fully-completed
    invocations.  Two runs of the same job that reach the same iteration
    boundary produce identical fingerprints, which is what the elastic
    fuzzer's determinism check leans on.
    """
    entries = []
    seen = set()
    for coll in getattr(view, "_collectives", {}).values():
        if id(coll) in seen:
            continue
        seen.add(id(coll))
        members = []
        for rank in coll.active_ranks():
            global_rank = coll.global_ranks[rank]
            members.append(to_local(global_rank) if to_local is not None
                           else global_rank)
        entries.append((
            coll.name,
            coll.spec.kind.value,
            tuple(sorted(members)),
            len(coll.invocations),
            sum(1 for invocation in coll.invocations
                if invocation.fully_complete()),
        ))
    return tuple(sorted(entries))
