"""Unified observability: spans, metrics, flight recorder, calibration.

One :class:`Observability` hub per engine (``engine.obs``) composes:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters / gauges /
  histograms plus lazy gauge callbacks, exported as JSON or Prometheus text;
* :class:`~repro.obs.spans.SpanTracer` — structured spans for collective
  invocations, recovery episodes and job lifecycles;
* :class:`~repro.obs.recorder.FlightRecorder` — always-on bounded rings of
  recent step events and spans, auto-dumped on deadlock, recovery and fuzzer
  failure;
* the calibration log behind the ``selector_calibration`` report
  (predicted-vs-measured cost per algorithm/size/topology).

See ``docs/observability.md`` for the span model and the metric-name
contract, and :mod:`repro.obs.report` for the CLI front-end.
"""

from repro.obs.analysis import (
    AnalysisLog,
    analyze_run,
    critical_path_flows,
    render_analysis,
)
from repro.obs.links import (
    link_rows,
    link_utilization_timeline,
    record_link_metrics,
)
from repro.obs.metrics import (
    METRIC_NAMES,
    MetricsRegistry,
    declare_metric,
)
from repro.obs.observability import Observability
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import Span, SpanTracer
from repro.obs.trace import chrome_trace_events, write_chrome_trace

__all__ = [
    "METRIC_NAMES",
    "AnalysisLog",
    "MetricsRegistry",
    "Observability",
    "FlightRecorder",
    "Span",
    "SpanTracer",
    "analyze_run",
    "chrome_trace_events",
    "critical_path_flows",
    "declare_metric",
    "link_rows",
    "link_utilization_timeline",
    "record_link_metrics",
    "render_analysis",
    "write_chrome_trace",
]
