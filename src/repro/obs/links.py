"""Per-link traffic aggregation: bytes, messages, alpha-beta busy time.

Channels count pushes and bytes inline (two integer adds on the executor
fast path); everything else here is derived analytically at aggregation
time — per-link busy is ``alpha * messages + bytes / (beta * 1e3)`` using
the interconnect link each channel rides on — so the hot path never touches
a dict of per-link accumulators.

Backends call :func:`record_link_metrics` from ``diagnostics()``, which
folds the rows into labeled ``link_*`` gauges on the metrics registry.
"""


def link_rows(communicators):
    """Aggregate per-(src, dst)-device traffic across communicators.

    Returns rows sorted by device pair.  A channel seen through multiple
    communicator views is counted once.
    """
    totals = {}
    seen = set()
    for communicator in communicators:
        for (src_rank, dst_rank), channel in communicator.channels().items():
            if id(channel) in seen:
                continue
            seen.add(id(channel))
            link = communicator.link(src_rank, dst_rank)
            busy_us = (link.alpha_us * channel.pushed_count
                       + channel.bytes_pushed / (link.beta_gbps * 1e3))
            key = (str(channel.src_device), str(channel.dst_device))
            row = totals.get(key)
            if row is None:
                row = totals[key] = {"src": key[0], "dst": key[1],
                                     "bytes": 0, "messages": 0,
                                     "busy_us": 0.0}
            row["bytes"] += channel.bytes_pushed
            row["messages"] += channel.pushed_count
            row["busy_us"] += busy_us
    return [totals[key] for key in sorted(totals)]


def record_link_metrics(metrics, communicators):
    """Fold :func:`link_rows` into labeled gauges; returns the rows."""
    rows = link_rows(communicators)
    for row in rows:
        labels = {"src": row["src"], "dst": row["dst"]}
        metrics.gauge("link_bytes_total", labels).set(row["bytes"])
        metrics.gauge("link_messages_total", labels).set(row["messages"])
        metrics.gauge("link_busy_us", labels).set(row["busy_us"])
    return rows
