"""Per-link traffic aggregation: bytes, messages, alpha-beta busy time.

Channels count pushes and bytes inline (two integer adds on the executor
fast path); everything else here is derived analytically at aggregation
time — per-link busy is ``alpha * messages + bytes / (beta * 1e3)`` using
the interconnect link each channel rides on — so the hot path never touches
a dict of per-link accumulators.

Backends call :func:`record_link_metrics` from ``diagnostics()``, which
folds the rows into labeled ``link_*`` gauges on the metrics registry.
"""


def link_rows(communicators):
    """Aggregate per-(src, dst)-device traffic across communicators.

    Returns rows sorted by device pair.  A channel seen through multiple
    communicator views is counted once.
    """
    totals = {}
    seen = set()
    for communicator in communicators:
        for (src_rank, dst_rank), channel in communicator.channels().items():
            if id(channel) in seen:
                continue
            seen.add(id(channel))
            link = communicator.link(src_rank, dst_rank)
            busy_us = (link.alpha_us * channel.pushed_count
                       + channel.bytes_pushed / (link.beta_gbps * 1e3))
            key = (str(channel.src_device), str(channel.dst_device))
            row = totals.get(key)
            if row is None:
                row = totals[key] = {"src": key[0], "dst": key[1],
                                     "bytes": 0, "messages": 0,
                                     "busy_us": 0.0}
            row["bytes"] += channel.bytes_pushed
            row["messages"] += channel.pushed_count
            row["busy_us"] += busy_us
    return [totals[key] for key in sorted(totals)]


def link_utilization_timeline(obs, window_us=None, max_windows=64):
    """Windowed per-link utilization from a run's time-attribution traces.

    Lifetime totals (:func:`link_rows`) hide congestion transients; this
    buckets every traced send by its completion time into fixed windows and
    reports per-(src, dst) bytes, messages, alpha-beta busy time and the
    busy/window utilization ratio.  Requires ``obs.enable_analysis()`` to
    have been active during the run (returns an empty timeline otherwise).
    ``window_us`` defaults to the run span divided into ``max_windows``.
    """
    analysis = getattr(obs, "analysis", None)
    events = []
    horizon = 0.0
    for record in (analysis.records if analysis is not None else ()):
        executor = record.executor
        communicator = executor.communicator
        primitives = executor.primitives
        trace = record.trace
        for index in range(len(trace) // 3):
            primitive = primitives[index]
            if not primitive.sends or primitive.send_peer is None:
                continue
            peer = primitive.send_peer
            link = communicator.link(executor.group_rank, peer)
            wire_us = (link.alpha_us
                       + primitive.nbytes / (link.beta_gbps * 1e3))
            end = trace[3 * index + 1]
            horizon = end if end > horizon else horizon
            events.append((end,
                           str(communicator.device_id(executor.group_rank)),
                           str(communicator.device_id(peer)),
                           primitive.nbytes, wire_us))
    if not events:
        return {"window_us": float(window_us or 0), "links": []}
    if window_us is None:
        window_us = max(1.0, horizon / max_windows)
    per_link = {}
    for end, src, dst, nbytes, wire_us in events:
        slot = int(end / window_us)
        windows = per_link.setdefault((src, dst), {})
        bucket = windows.get(slot)
        if bucket is None:
            bucket = windows[slot] = {"start_us": slot * window_us,
                                      "end_us": (slot + 1) * window_us,
                                      "bytes": 0, "messages": 0,
                                      "busy_us": 0.0}
        bucket["bytes"] += nbytes
        bucket["messages"] += 1
        bucket["busy_us"] += wire_us
    links = []
    for (src, dst) in sorted(per_link):
        windows = [per_link[(src, dst)][slot]
                   for slot in sorted(per_link[(src, dst)])]
        for bucket in windows:
            bucket["utilization"] = bucket["busy_us"] / window_us
        links.append({"src": src, "dst": dst, "windows": windows})
    return {"window_us": float(window_us), "links": links}


def record_link_metrics(metrics, communicators):
    """Fold :func:`link_rows` into labeled gauges; returns the rows."""
    rows = link_rows(communicators)
    for row in rows:
        labels = {"src": row["src"], "dst": row["dst"]}
        metrics.gauge("link_bytes_total", labels).set(row["bytes"])
        metrics.gauge("link_messages_total", labels).set(row["messages"])
        metrics.gauge("link_busy_us", labels).set(row["busy_us"])
    return rows
