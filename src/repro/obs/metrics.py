"""Metrics registry: counters, gauges, histograms, and lazy gauge callbacks.

One registry instance lives on every :class:`~repro.obs.Observability` (and
therefore on every engine).  Design constraints, in order:

* **hot-path cost is zero unless a metric is touched** — most engine-level
  values (step counts, queue stats, pool stats, daemon stats) are registered
  as *gauge functions*: callables pulled only when :meth:`MetricsRegistry.
  snapshot` runs, so the simulation loop pays nothing for them;
* **names are a contract** — every metric name is declared through
  :func:`declare_metric` into :data:`METRIC_NAMES`, and ``tests/test_docs.py``
  asserts each declared name appears in ``docs/observability.md``;
* **two export formats** — :meth:`MetricsRegistry.snapshot` returns a flat
  JSON-safe dict, :meth:`MetricsRegistry.to_prometheus_text` renders the
  Prometheus text exposition format.

Labels are plain dicts; a labeled instrument is keyed by its full name,
``name{k="v",...}`` with keys sorted, which doubles as the snapshot key.
"""

from bisect import bisect_left

#: Registered metric names -> {"kind", "help"}.  Populated at import time by
#: the :func:`declare_metric` calls below; the docs contract iterates this.
METRIC_NAMES = {}


def declare_metric(name, kind, help_text):
    """Declare a metric name (the docs-contract registry). Returns ``name``."""
    METRIC_NAMES[name] = {"kind": kind, "help": help_text}
    return name


# --- engine ----------------------------------------------------------------
declare_metric("engine_steps", "gauge", "Actor steps executed by the engine")
declare_metric("engine_queue_entries", "gauge",
               "Entries in the indexed event queue (live + stale)")
declare_metric("engine_queue_live", "gauge",
               "Live entries in the indexed event queue")
declare_metric("engine_queue_stale", "gauge",
               "Invalidated-in-place queue entries awaiting compaction")
declare_metric("engine_queue_compactions", "gauge",
               "Times the event queue dropped its stale entries")
declare_metric("engine_queue_ready", "gauge",
               "Actors currently runnable at the head of the queue")
declare_metric("engine_signals", "gauge", "Wait-key signals delivered")
declare_metric("engine_deadlocks", "counter",
               "Engine-level deadlocks detected (wait-for cycles)")
declare_metric("engine_actors_killed", "counter",
               "Actors removed by fault injection (Engine.kill_actor)")

# --- flight recorder -------------------------------------------------------
declare_metric("flight_recorder_events", "gauge",
               "Step/marker events currently held in the bounded ring")
declare_metric("flight_recorder_spans", "gauge",
               "Completed spans currently held in the bounded ring")
declare_metric("flight_recorder_dumps", "gauge",
               "Flight-recorder dumps taken (deadlock / recovery / fuzzer)")

# --- collectives -----------------------------------------------------------
declare_metric("collective_invocations", "counter",
               "Collective invocations that fully completed")
declare_metric("collective_aborts", "counter",
               "Per-rank collective aborts (communicator-abort semantics)")
declare_metric("collective_latency_us", "histogram",
               "Submit-to-complete latency per collective invocation, "
               "labeled by backend and algorithm")

# --- interconnect links ----------------------------------------------------
declare_metric("link_bytes_total", "gauge",
               "Bytes pushed over a channel, labeled src/dst device")
declare_metric("link_messages_total", "gauge",
               "Messages pushed over a channel, labeled src/dst device")
declare_metric("link_busy_us", "gauge",
               "Alpha-beta busy-time estimate per link, labeled src/dst")

# --- communicator pool -----------------------------------------------------
declare_metric("pool_hits", "gauge", "CommunicatorPool reuse hits")
declare_metric("pool_misses", "gauge", "CommunicatorPool misses (fresh build)")
declare_metric("pool_created", "gauge", "Communicators ever created by the pool")
declare_metric("pool_reused", "gauge", "Communicators recycled by the pool")
declare_metric("pool_active", "gauge", "Communicators currently checked out")
declare_metric("pool_discarded", "gauge",
               "Communicators discarded (failure-invalidated or evicted)")
declare_metric("pool_free", "gauge",
               "Communicators currently pooled awaiting reuse")
declare_metric("pool_double_releases", "gauge",
               "Rejected re-releases of an already-pooled communicator")

# --- daemon kernels --------------------------------------------------------
declare_metric("daemon_launches", "gauge", "Daemon kernel launches (all GPUs)")
declare_metric("daemon_preemptions", "gauge",
               "Daemon burst-loop preemptions (all GPUs)")
declare_metric("daemon_voluntary_quits", "gauge",
               "Daemon voluntary quits on empty queues (all GPUs)")
declare_metric("daemon_spin_polls", "gauge",
               "Daemon spin polls while waiting for work (all GPUs)")
declare_metric("daemon_primitives_executed", "gauge",
               "Collective primitives executed by daemon kernels (all GPUs)")

# --- recovery --------------------------------------------------------------
declare_metric("recovery_episodes", "counter",
               "Completed recovery episodes (shrink + rerun)")
declare_metric("recovery_abandoned", "counter",
               "Collectives abandoned as unrecoverable (e.g. dead root)")
declare_metric("recovery_invocations_rerun", "counter",
               "Invocations replayed by recovery episodes")
declare_metric("recovery_rejoins", "counter",
               "Shrunken collectives re-grown onto replacement devices")

# --- time attribution ------------------------------------------------------
declare_metric("collective_critical_path_us", "histogram",
               "Critical-path work time (measured minus queueing) per "
               "analyzed collective invocation")

# --- multi-tenant scheduler ------------------------------------------------
declare_metric("jobs_admitted", "gauge", "Jobs admitted by the scheduler")
declare_metric("jobs_running", "gauge", "Jobs currently placed and running")
declare_metric("jobs_completed", "gauge", "Jobs that reached a terminal state")
declare_metric("jobs_queueing_delay_us", "histogram",
               "Arrival-to-placement delay per job (the scheduler share of "
               "the queueing attribution bucket)")

# --- control plane ---------------------------------------------------------
declare_metric("jobs_preempted", "counter",
               "Jobs checkpointed and evicted by priority preemption")
declare_metric("jobs_resumed", "counter",
               "Preempted jobs re-placed and resumed from checkpoint")
declare_metric("jobs_migrated", "counter",
               "Jobs checkpointed and moved to a different placement")
declare_metric("jobs_rejoined", "counter",
               "Running jobs evicted after losing a leased rank and requeued "
               "at full size (elastic rejoin)")
declare_metric("jobs_rejected", "counter",
               "Jobs refused at admission (tenant quota exceeded)")
declare_metric("cluster_grow_events", "counter",
               "Nodes added to the live cluster by elastic growth")

# --- mpi backend -----------------------------------------------------------
declare_metric("mpi_host_staged_ops", "gauge",
               "Host-staged collective ops created by the MPI backend")
declare_metric("mpi_rendezvous_completed", "gauge",
               "MPI host-staged ops whose rendezvous fully completed")
declare_metric("mpi_rendezvous_pending", "gauge",
               "MPI host-staged ops still waiting on member ranks")


def _full_name(name, labels):
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic counter."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


class Gauge:
    """Point-in-time value, explicitly set."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value


class Histogram:
    """Power-of-four bucketed histogram (1us .. ~68s spans 19 buckets)."""

    __slots__ = ("count", "total", "min", "max", "bucket_counts")

    #: Upper bounds (inclusive, ``le``) of the finite buckets.
    BOUNDS = tuple(float(1 << shift) for shift in range(0, 37, 2))

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.bucket_counts = [0] * (len(self.BOUNDS) + 1)

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.bucket_counts[bisect_left(self.BOUNDS, value)] += 1

    def snapshot(self):
        """JSON-safe dict with cumulative (Prometheus-style) buckets."""
        buckets = []
        cumulative = 0
        for bound, bucket in zip(self.BOUNDS, self.bucket_counts):
            cumulative += bucket
            if cumulative:  # elide the empty low tail
                buckets.append([bound, cumulative])
        buckets.append(["+Inf", self.count])
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max, "buckets": buckets}


class MetricsRegistry:
    """Named instruments plus lazy gauge callbacks, with two exporters."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._gauge_fns = {}

    # -- instrument accessors (create on first touch) -----------------------

    def counter(self, name, labels=None):
        key = _full_name(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name, labels=None):
        key = _full_name(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name, labels=None):
        key = _full_name(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    def gauge_fn(self, name, fn, labels=None):
        """Register a callable evaluated only at snapshot time.

        This is the zero-hot-path-cost path: engine/pool/daemon/scheduler
        state is *pulled* when someone asks, never pushed per step.
        """
        self._gauge_fns[_full_name(name, labels)] = fn

    # -- exporters ----------------------------------------------------------

    def snapshot(self):
        """Flat JSON-safe dict: full metric name -> number (or hist dict)."""
        snap = {}
        for key, counter in self._counters.items():
            snap[key] = counter.value
        for key, gauge in self._gauges.items():
            snap[key] = gauge.value
        for key, fn in self._gauge_fns.items():
            snap[key] = fn()
        for key, histogram in self._histograms.items():
            snap[key] = histogram.snapshot()
        return snap

    def to_prometheus_text(self):
        """Prometheus text exposition format (one sample per line)."""
        lines = []
        emitted = set()

        def meta(full_name):
            base = full_name.split("{", 1)[0]
            if base not in emitted and base in METRIC_NAMES:
                emitted.add(base)
                info = METRIC_NAMES[base]
                lines.append(f"# HELP {base} {info['help']}")
                lines.append(f"# TYPE {base} {info['kind']}")

        scalars = {}
        for key, counter in self._counters.items():
            scalars[key] = counter.value
        for key, gauge in self._gauges.items():
            scalars[key] = gauge.value
        for key, fn in self._gauge_fns.items():
            scalars[key] = fn()
        for key in sorted(scalars):
            meta(key)
            lines.append(f"{key} {scalars[key]}")
        for key in sorted(self._histograms):
            meta(key)
            histogram = self._histograms[key]
            base, _, labels = key.partition("{")
            labels = labels[:-1] if labels else ""
            cumulative = 0
            for bound, bucket in zip(histogram.BOUNDS,
                                     histogram.bucket_counts):
                cumulative += bucket
                inner = f'{labels},le="{bound:g}"' if labels else f'le="{bound:g}"'
                lines.append(f"{base}_bucket{{{inner}}} {cumulative}")
            inner = f'{labels},le="+Inf"' if labels else 'le="+Inf"'
            lines.append(f"{base}_bucket{{{inner}}} {histogram.count}")
            suffix = f"{{{labels}}}" if labels else ""
            lines.append(f"{base}_sum{suffix} {histogram.total}")
            lines.append(f"{base}_count{suffix} {histogram.count}")
        return "\n".join(lines) + "\n"
