"""Chrome trace-event export rebuilt on the observability layer.

Successor to ``repro.core.profiler.chrome_trace_events`` (which consumed the
unbounded ``Engine(trace=[...])`` list and is now a deprecation shim): this
exporter reads an :class:`~repro.obs.Observability` and emits

* **pid 0** — the engine: one thread row per actor, sliced from the flight
  recorder's step events (same visual as the legacy exporter, now bounded);
  instant markers (kills, abandons, job arrivals) as "i" events;
* **pid 1** — spans with no job attribution (single-tenant collectives,
  recovery episodes), one thread row per span track;
* **pid 2+** — one process group per job, so multi-tenant runs show each
  tenant's per-rank collective tracks side by side;
* a counter track ("C" events) per span process charting in-flight
  collectives over time.

Timestamps are virtual microseconds throughout, which is the unit the
trace-event format expects.
"""

import json


def _actor_slices(steps, events, pid, first_tid):
    """Per-actor "X" slices from raw step records, legacy-exporter style."""
    by_actor = {}
    for time_us, actor, status, detail in steps:
        by_actor.setdefault(actor, []).append((float(time_us), status, detail))
    tids = {}
    for tid, (actor, records) in enumerate(sorted(by_actor.items()),
                                           start=first_tid):
        tids[actor] = tid
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": actor}})
        previous = records[0][0]
        for index, (time_us, status, detail) in enumerate(records):
            start = previous if index > 0 else time_us
            events.append({
                "name": detail or status, "cat": status, "ph": "X",
                "ts": start, "dur": max(0.0, time_us - start),
                "pid": pid, "tid": tid, "args": {"status": status},
            })
            previous = time_us
    return tids


def _span_events(spans, events, pid):
    """Span "X" rows (one thread per track) plus an in-flight counter.

    Returns the track -> tid map so flow events can target the rows."""
    tracks = sorted({span.track or "spans" for span in spans}, key=str)
    tids = {track: tid for tid, track in enumerate(tracks, start=1)}
    for track, tid in tids.items():
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": str(track)}})
    deltas = []
    for span in spans:
        end = span.end_us if span.end_us is not None else span.start_us
        args = dict(span.attrs) if span.attrs else {}
        if span.end_us is None:
            args["open"] = True
        events.append({
            "name": span.name, "cat": span.category, "ph": "X",
            "ts": span.start_us, "dur": max(0.0, end - span.start_us),
            "pid": pid, "tid": tids[span.track or "spans"], "args": args,
        })
        if span.category == "collective" and span.end_us is not None:
            deltas.append((span.start_us, 1))
            deltas.append((span.end_us, -1))
    inflight = 0
    for ts, delta in sorted(deltas):
        inflight += delta
        events.append({"name": "inflight_collectives", "ph": "C", "ts": ts,
                       "pid": pid, "tid": 0,
                       "args": {"collectives": inflight}})
    return tids


def _flow_events(flows, events, track_maps):
    """Matched send->recv arrows: paired "s"/"f" flow events.

    Each flow dict names a (job, track, ts) source and destination (the shape
    :func:`repro.obs.analysis.critical_path_flows` produces).  Flows whose
    track has no span row (e.g. evicted from the bounded ring) are skipped —
    the exporter stays valid with any subset of flows, including none.
    """
    for flow in flows:
        pid, tids = track_maps.get(flow.get("job"), (None, None))
        if tids is None:
            continue
        tid_from = tids.get(flow["from_track"])
        tid_to = tids.get(flow["to_track"])
        if tid_from is None or tid_to is None:
            continue
        name = flow.get("name", "flow")
        category = flow.get("category", "flow")
        flow_id = flow["id"]
        events.append({"name": name, "cat": category, "ph": "s",
                       "id": flow_id, "pid": pid, "tid": tid_from,
                       "ts": flow["ts_from"]})
        events.append({"name": name, "cat": category, "ph": "f", "bp": "e",
                       "id": flow_id, "pid": pid, "tid": tid_to,
                       "ts": flow["ts_to"]})


def chrome_trace_events(obs, process_name="repro-engine", flows=None):
    """Convert an observability hub's recorded state to trace-event objects.

    ``flows`` (optional) is a list of flow specs — see
    :func:`repro.obs.analysis.critical_path_flows` — rendered as arrows
    between the span rows they name.  The output is a valid trace with or
    without them.
    """
    recorder = obs.recorder
    events = [{"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
               "args": {"name": process_name}}]
    _actor_slices(recorder.step_events(), events, pid=0, first_tid=1)
    for marker in recorder.marker_events():
        _, time_us, category, name, attrs = marker
        events.append({"name": name, "cat": category, "ph": "i",
                       "ts": float(time_us), "pid": 0, "tid": 0, "s": "g",
                       "args": dict(attrs) if attrs else {}})

    spans = list(recorder.spans) + obs.tracer.open_spans()
    jobless = [span for span in spans if span.job is None]
    jobs = sorted({span.job for span in spans if span.job is not None},
                  key=str)
    track_maps = {}
    if jobless:
        events.append({"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                       "args": {"name": "collectives"}})
        track_maps[None] = (1, _span_events(jobless, events, pid=1))
    for pid, job in enumerate(jobs, start=2):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": f"job:{job}"}})
        track_maps[job] = (pid, _span_events(
            [span for span in spans if span.job == job], events, pid=pid))
    if flows:
        _flow_events(flows, events, track_maps)
    return events


def write_chrome_trace(obs, path, process_name="repro-engine", flows=None):
    """Write an observability trace as a ``chrome://tracing`` JSON file.

    Returns the number of events written.  ``path`` may be a filesystem path
    or an open text file.
    """
    events = chrome_trace_events(obs, process_name=process_name, flows=flows)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    if hasattr(path, "write"):
        json.dump(document, path)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
    return len(events)
