"""The per-engine observability hub: metrics + tracer + flight recorder.

Every :class:`~repro.gpusim.engine.Engine` owns one
:class:`Observability` (pass ``observability=Observability(enabled=False)``
to opt out, as the overhead benchmark's control arm does).  Instrumentation
sites throughout the tree reach it as ``engine.obs`` / ``cluster.obs`` and
guard on ``obs.enabled`` — a disabled hub still exposes the full object
graph so call sites need no branching beyond that one check.

The hub also owns the **calibration log**: every completed collective
contributes a (predicted cost, measured virtual time) sample, and
:meth:`Observability.calibration_report` aggregates cost-model error per
(backend, algorithm, kind, size, group size) — the data behind the
``selector_calibration`` section of ``BENCH_scale.json``.
"""

from collections import deque
from statistics import fmean

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import (
    DEFAULT_EVENT_CAPACITY,
    DEFAULT_SPAN_CAPACITY,
    FlightRecorder,
)
from repro.obs.spans import SpanTracer

#: Auto-dumps retained per run (deadlocks / recoveries / fuzzer failures).
MAX_DUMPS = 8

#: Calibration samples retained (bounded like everything else here).
MAX_CALIBRATION_SAMPLES = 4096


class Observability:
    def __init__(self, enabled=True,
                 event_capacity=DEFAULT_EVENT_CAPACITY,
                 span_capacity=DEFAULT_SPAN_CAPACITY):
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.recorder = FlightRecorder(event_capacity, span_capacity)
        self.tracer = SpanTracer(self.recorder)
        self.calibration = deque(maxlen=MAX_CALIBRATION_SAMPLES)
        self.dumps = []
        self.last_dump = None
        #: Time-attribution log (:class:`~repro.obs.analysis.AnalysisLog`),
        #: ``None`` until :meth:`enable_analysis` opts a run in.  Kept off by
        #: default: attribution traces every executed primitive, which the
        #: <10% overhead gate does not budget for.
        self.analysis = None
        if enabled:
            registry = self.metrics
            registry.gauge_fn("flight_recorder_events",
                              lambda: len(self.recorder.ring))
            registry.gauge_fn("flight_recorder_spans",
                              lambda: len(self.recorder.spans))
            registry.gauge_fn("flight_recorder_dumps",
                              lambda: len(self.dumps))

    # -- time attribution ---------------------------------------------------

    def enable_analysis(self):
        """Opt this run into critical-path time attribution.

        Must be called before collectives execute: executors built afterwards
        get per-primitive traces, registered with ``self.analysis``.  Returns
        the :class:`~repro.obs.analysis.AnalysisLog`.
        """
        if self.analysis is None:
            from repro.obs.analysis import AnalysisLog

            self.analysis = AnalysisLog()
        return self.analysis

    # -- collectives --------------------------------------------------------

    def record_collective(self, backend, algorithm, kind, nbytes, group_size,
                          measured_us, predicted_us=None,
                          predicted_breakdown=None):
        """A collective invocation fully completed: histogram + calibration."""
        self.metrics.counter("collective_invocations").inc()
        self.metrics.histogram(
            "collective_latency_us",
            labels={"backend": backend, "algorithm": algorithm},
        ).observe(measured_us)
        if predicted_us is not None:
            self.calibration.append({
                "backend": backend, "algorithm": algorithm, "kind": kind,
                "nbytes": nbytes, "group_size": group_size,
                "predicted_us": predicted_us, "measured_us": measured_us,
                "predicted_breakdown": predicted_breakdown,
            })

    def calibration_report(self):
        """Aggregate predicted-vs-measured per (backend, algo, kind, size).

        When time attribution ran (:meth:`enable_analysis` +
        :func:`repro.obs.analysis.analyze_run`), each cell additionally
        carries the mean *measured* bucket decomposition, the cost model's
        *predicted* decomposition, and ``mispredicted_bucket`` — the bucket
        with the largest absolute predicted-vs-measured gap, i.e. which term
        of the cost model the error lives in.
        """
        measured_buckets = {}
        if self.analysis is not None and self.analysis.results:
            for inv in self.analysis.results.get("invocations") or ():
                key = (inv["backend"], inv["algorithm"], inv["kind"],
                       inv["nbytes"], inv["group_size"])
                measured_buckets.setdefault(key, []).append(inv["buckets"])
        groups = {}
        for sample in self.calibration:
            key = (sample["backend"], sample["algorithm"], sample["kind"],
                   sample["nbytes"], sample["group_size"])
            groups.setdefault(key, []).append(sample)
        rows = []
        for key in sorted(groups):
            samples = groups[key]
            predicted = fmean(s["predicted_us"] for s in samples)
            measured = fmean(s["measured_us"] for s in samples)
            row = {
                "backend": key[0], "algorithm": key[1], "kind": key[2],
                "nbytes": key[3], "group_size": key[4],
                "samples": len(samples),
                "predicted_cost_us": predicted,
                "measured_cost_us": measured,
                "relative_error": ((measured - predicted) / measured
                                   if measured else None),
            }
            buckets = measured_buckets.get(key)
            if buckets:
                mean_measured = {
                    name: fmean(b[name] for b in buckets)
                    for name in buckets[0]
                }
                breakdowns = [s["predicted_breakdown"] for s in samples
                              if s.get("predicted_breakdown")]
                mean_predicted = {}
                if breakdowns:
                    for name in breakdowns[0]:
                        mean_predicted[name] = fmean(
                            b.get(name, 0.0) for b in breakdowns)
                gaps = {
                    name: mean_measured[name] - mean_predicted.get(name, 0.0)
                    for name in mean_measured if name != "residual_us"
                }
                worst = max(gaps, key=lambda name: abs(gaps[name]))
                row["measured_buckets"] = mean_measured
                row["predicted_buckets"] = mean_predicted
                row["mispredicted_bucket"] = worst
                row["mispredicted_gap_us"] = gaps[worst]
            rows.append(row)
        return rows

    # -- flight-recorder dumps ----------------------------------------------

    def dump(self, reason, context=None):
        """Serialize the recorder's current state (no side effects)."""
        return self.recorder.dump(
            reason,
            open_spans=self.tracer.open_spans(),
            context=context,
            metrics=self.metrics.snapshot(),
        )

    def auto_dump(self, reason, context=None):
        """Take a dump and retain it (deadlock / recovery / fuzzer hooks)."""
        dumped = self.dump(reason, context=context)
        self.last_dump = dumped
        self.dumps.append(dumped)
        del self.dumps[:-MAX_DUMPS]
        return dumped
