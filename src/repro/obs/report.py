"""Run-summary CLI: ``python -m repro.obs.report``.

Runs a small traced workload (an all-reduce over a configurable rank count
and backend) and renders what the observability layer collected: the metrics
snapshot, span counts by category, the predicted-vs-measured calibration
table, and any flight-recorder dumps.  ``--json`` / ``--prometheus`` write
the machine-readable exports alongside.

``render_summary`` is also usable directly against any
:class:`~repro.obs.Observability` (e.g. from a bench driver or a test).
"""

import argparse
import json
from collections import Counter as TallyCounter


def render_summary(obs, title="repro run summary"):
    """Human-readable multi-line summary of one observability hub."""
    lines = [title, "=" * len(title), "", "metrics:"]
    snapshot = obs.metrics.snapshot()
    for key in sorted(snapshot):
        value = snapshot[key]
        if isinstance(value, dict):
            count = value["count"]
            mean = value["sum"] / count if count else 0.0
            lines.append(f"  {key}: count={count} mean={mean:.1f}us "
                         f"max={value['max']:.1f}us")
        else:
            lines.append(f"  {key}: {value:g}")
    categories = TallyCounter(span.category for span in obs.recorder.spans)
    lines += ["", "spans:"]
    for category in sorted(categories):
        lines.append(f"  {category}: {categories[category]}")
    if not categories:
        lines.append("  (none recorded)")
    calibration = obs.calibration_report()
    lines += ["", "selector calibration (predicted vs measured):"]
    if calibration:
        for row in calibration:
            error = row["relative_error"]
            error_text = f"{error:+.0%}" if error is not None else "n/a"
            lines.append(
                f"  {row['backend']}/{row['algorithm']} {row['kind']} "
                f"{row['nbytes']}B x{row['group_size']}: "
                f"predicted {row['predicted_cost_us']:.0f}us, "
                f"measured {row['measured_cost_us']:.0f}us ({error_text})")
    else:
        lines.append("  (no samples)")
    lines += ["", f"flight-recorder dumps: {len(obs.dumps)}"]
    for dumped in obs.dumps:
        lines.append(f"  - {dumped['reason']}")
    return "\n".join(lines)


def demo_run(ranks=8, backend="dfccl", nbytes=1 << 20, iterations=2,
             topology=None, analyze=False):
    """Run a traced all-reduce workload; returns (cluster, backend).

    ``analyze=True`` opts the run into critical-path time attribution
    (``obs.enable_analysis()`` before any collective executes).
    """
    from repro.api import make_backend, wait_all
    from repro.gpusim import HostProgram, build_cluster
    from repro.testing import topology_for_world

    cluster = build_cluster(topology or topology_for_world(ranks))
    if analyze:
        cluster.engine.obs.enable_analysis()
    backend_obj = make_backend(backend, cluster)
    group = backend_obj.new_group(list(range(ranks)))
    programs = []
    for rank in group.ranks:
        works = [group.all_reduce(rank, nbytes // 4, key=f"ar{i}")
                 for i in range(iterations)]
        ops = [work.submit_op() for work in works] + wait_all(works)
        ops.extend(backend_obj.finalize_ops(rank))
        programs.append(HostProgram(ops))
    cluster.add_hosts(programs)
    cluster.run()
    backend_obj.diagnostics()  # folds link metrics into the registry
    return cluster, backend_obj


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Run a traced all-reduce and render the run summary.")
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--backend", default="dfccl")
    parser.add_argument("--nbytes", type=int, default=1 << 20)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--topology", default=None)
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write metrics + calibration as JSON")
    parser.add_argument("--prometheus", dest="prom_path", default=None,
                        help="write the Prometheus text exposition")
    parser.add_argument("--analyze", action="store_true",
                        help="critical-path time attribution: per-bucket "
                             "table per invocation; exits 1 if any "
                             "decomposition misses conservation by >1%%")
    parser.add_argument("--trace", dest="trace_path", default=None,
                        help="write a chrome trace (with critical-path flow "
                             "arrows under --analyze)")
    args = parser.parse_args(argv)

    cluster, backend_obj = demo_run(
        ranks=args.ranks, backend=args.backend, nbytes=args.nbytes,
        iterations=args.iterations, topology=args.topology,
        analyze=args.analyze)
    obs = cluster.engine.obs
    title = (f"{args.backend} all-reduce x{args.iterations} "
             f"({args.ranks} ranks, {args.nbytes} bytes)")
    print(render_summary(obs, title=title))
    conserved = True
    flows = None
    if args.analyze:
        from repro.obs.analysis import (
            analyze_run,
            critical_path_flows,
            render_analysis,
        )
        from repro.obs.links import link_utilization_timeline

        results = analyze_run(obs)
        print()
        print(render_analysis(results))
        timeline = link_utilization_timeline(obs)
        busiest = max(
            (window["utilization"], link["src"], link["dst"])
            for link in timeline["links"] for window in link["windows"]
        ) if timeline["links"] else None
        if busiest is not None:
            print(f"\nlink timeline: {len(timeline['links'])} links in "
                  f"{timeline['window_us']:.0f}us windows; busiest "
                  f"{busiest[1]}->{busiest[2]} at {busiest[0]:.2f} "
                  "utilization")
        flows = critical_path_flows(results)
        conserved = all(inv["conservation_error"] <= 0.01
                        for inv in results["invocations"])
        if not conserved:
            print("\nCONSERVATION VIOLATED: attributed buckets stray >1% "
                  "from measured virtual time")
    if args.trace_path:
        from repro.obs.trace import write_chrome_trace

        count = write_chrome_trace(obs, args.trace_path, flows=flows)
        print(f"\nwrote {args.trace_path} ({count} events)")
    if args.json_path:
        document = {"metrics": obs.metrics.snapshot(),
                    "calibration": obs.calibration_report()}
        if args.analyze:
            document["analysis"] = obs.analysis.results
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True, default=str)
        print(f"\nwrote {args.json_path}")
    if args.prom_path:
        with open(args.prom_path, "w", encoding="utf-8") as handle:
            handle.write(obs.metrics.to_prometheus_text())
        print(f"wrote {args.prom_path}")
    return 0 if conserved else 1


if __name__ == "__main__":
    raise SystemExit(main())
