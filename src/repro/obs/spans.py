"""Structured spans: named intervals on named tracks, grouped by job.

A :class:`Span` is the unit every instrumentation hook emits: collective
invocations (submit -> complete per rank), recovery episodes, and job
lifecycles.  Spans are deliberately tiny (slotted, no timestamps taken —
virtual time is passed in by the caller) because the DFCCL hot path creates
one per rank per invocation.

Two emission styles:

* ``begin()`` / ``end()`` for intervals whose end is observed later (the
  span stays in the tracer's *open* set meanwhile, so a flight-recorder dump
  taken mid-flight still shows it);
* ``record()`` for intervals reconstructed after the fact (the NCCL and MPI
  backends learn start and end together at completion time).
"""


class Span:
    """One named interval. ``track`` picks the row in the chrome trace;
    ``job`` picks the process group; ``attrs`` is an open dict."""

    __slots__ = ("name", "category", "start_us", "end_us", "track", "job",
                 "attrs")

    def __init__(self, name, category, start_us, track=None, job=None,
                 attrs=None):
        self.name = name
        self.category = category
        self.start_us = start_us
        self.end_us = None
        self.track = track
        self.job = job
        self.attrs = attrs

    @property
    def duration_us(self):
        if self.end_us is None:
            return None
        return self.end_us - self.start_us

    def to_dict(self):
        return {
            "name": self.name,
            "category": self.category,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "track": self.track,
            "job": self.job,
            "attrs": dict(self.attrs) if self.attrs else {},
        }

    def __repr__(self):
        state = f"..{self.end_us}" if self.end_us is not None else "..open"
        return (f"Span({self.name!r}, {self.category!r}, "
                f"{self.start_us}{state}, track={self.track!r})")


class SpanTracer:
    """Creates spans and hands the finished ones to the flight recorder."""

    def __init__(self, recorder):
        self._recorder = recorder
        self._open = set()

    def begin(self, name, category, start_us, track=None, job=None,
              attrs=None):
        span = Span(name, category, start_us, track=track, job=job,
                    attrs=attrs)
        self._open.add(span)
        return span

    def end(self, span, end_us, **extra_attrs):
        span.end_us = end_us
        if extra_attrs:
            if span.attrs is None:
                span.attrs = extra_attrs
            else:
                span.attrs.update(extra_attrs)
        self._open.discard(span)
        self._recorder.record_span(span)
        return span

    def record(self, name, category, start_us, end_us, track=None, job=None,
               attrs=None):
        """One-shot: emit an already-finished interval."""
        span = Span(name, category, start_us, track=track, job=job,
                    attrs=attrs)
        span.end_us = end_us
        self._recorder.record_span(span)
        return span

    def event(self, name, category, time_us, attrs=None):
        """Instant marker (no duration) into the flight-recorder ring."""
        self._recorder.record_event(time_us, category, name, attrs)

    def open_spans(self):
        """Spans begun but not yet ended (included in dumps)."""
        return list(self._open)
