"""Critical-path and time-attribution engine over the span layer.

PR 7 made the system *emit* telemetry; this module *explains* it.  When
:meth:`~repro.obs.observability.Observability.enable_analysis` is called
before a run, every :class:`~repro.collectives.primitives.PrimitiveExecutor`
built afterwards gets a flat execution trace (``(start, end, busy)`` per
executed primitive) and is registered here together with its collective
identity.  After the run, :func:`analyze_run` reconstructs the cross-rank
causal DAG:

* **nodes** are executed primitives (one per trace triple);
* **local edges** follow each rank's serial primitive order;
* **cross-rank edges** follow matched send→recv pairs, recovered by FIFO
  order per channel — the k-th push into a channel is consumed by the k-th
  pop, across every invocation sharing that channel.

The *critical path* of an invocation is the backward walk from its
latest-ending primitive, at each step following whichever predecessor bound
the start of real work (the local predecessor or the matched sender).
Elapsed virtual time then telescopes **exactly** into attributed buckets:

``queueing_us``
    Time a rank's part was submitted (or a predecessor was finished) but no
    primitive was executing: daemon scheduling, spin backoff, channel
    backpressure, and waits on earlier invocations.
``alpha_us`` / ``beta_us``
    Per-message link latency and byte/bandwidth time of on-path sends.
``memory_us``
    Device-local reduce/copy time when it dominates (or no send).
``overhead_us``
    The cost model's fixed per-primitive control overhead.
``contention_us``
    Dilation of on-path work beyond the modeled busy time — the clock-rate
    (SM contention / slowdown-injection) factor.  Signed: a clock running
    *faster* than modeled shows up negative rather than silently vanishing.
``completion_us``
    Last primitive end → completion signal (CQE write, callbacks).
``residual_us``
    ``measured - sum(everything above)``; ~0 by construction, kept as the
    conservation check the CI obs-smoke job gates at 1%.

Straggler skew is reported separately (it is a *property of ranks*, not a
slice of the critical path): per-rank completion z-scores with the slowest
rank named.  Tier splits (``local`` NVLink/PCIe vs ``intra_pod`` RDMA vs
cross-pod ``spine``) break the on-path wire time down by fabric level.

Everything here is duck-typed against the executor/communicator surface;
nothing imports the collectives package, so ``obs`` stays a leaf layer.
"""

from array import array
from math import sqrt

#: The summing buckets of one decomposition, in render order.
BUCKET_NAMES = ("queueing_us", "alpha_us", "beta_us", "memory_us",
                "overhead_us", "contention_us", "completion_us",
                "residual_us")

#: Fabric tiers the on-path wire time (alpha + beta) is split across.
TIER_NAMES = ("local_us", "intra_pod_us", "spine_us")


class ExecutionRecord:
    """One attached executor: its trace plus the collective identity."""

    __slots__ = ("backend", "coll_name", "invocation_key", "owner",
                 "group_rank", "track", "job", "executor", "trace",
                 "algorithm", "kind", "nbytes")

    def __init__(self, backend, coll_name, invocation_key, owner, group_rank,
                 track, job, executor, trace, algorithm, kind, nbytes):
        self.backend = backend
        self.coll_name = coll_name
        self.invocation_key = invocation_key
        self.owner = owner
        self.group_rank = group_rank
        self.track = track
        self.job = job
        self.executor = executor
        self.trace = trace
        self.algorithm = algorithm
        self.kind = kind
        self.nbytes = nbytes


class AnalysisLog:
    """Registry of traced executors for one run (``obs.analysis``)."""

    def __init__(self):
        self.records = []
        #: Filled by :func:`analyze_run`; consumed by ``calibration_report``.
        self.results = None

    def attach(self, executor, backend, coll_name, invocation_key, owner,
               group_rank, track, job=None, algorithm=None, kind=None,
               nbytes=0):
        """Give ``executor`` a trace and remember where it came from."""
        trace = array("d")
        executor.trace = trace
        record = ExecutionRecord(backend, coll_name, invocation_key, owner,
                                 group_rank, track, job, executor, trace,
                                 algorithm, kind, nbytes)
        self.records.append(record)
        return record


# -- causal DAG reconstruction ----------------------------------------------


def _match_channels(records):
    """FIFO-match sends to recvs: ``(id(record), prim_idx) -> sender``.

    Channels are matched globally across invocations — DFCCL invocations of
    one collective share channels, and workloads keep several iterations in
    flight, so per-invocation matching would misattribute pipelined data.
    Per-channel push order is push time (each sender's clock is serial) and
    pop order is pop time, so sorting each side by time recovers FIFO order.
    """
    pushes = {}
    pops = {}
    for record in records:
        executor = record.executor
        primitives = executor.primitives
        trace = record.trace
        for index in range(len(trace) // 3):
            primitive = primitives[index]
            if primitive.recvs and primitive.recv_peer is not None:
                channel = executor._recv_channel(primitive)
                pops.setdefault(id(channel), []).append(
                    (trace[3 * index], record, index))
            if primitive.sends and primitive.send_peer is not None:
                channel = executor._send_channel(primitive)
                pushes.setdefault(id(channel), []).append(
                    (trace[3 * index + 1], record, index))
    arrivals = {}
    for channel_key, pop_list in pops.items():
        push_list = pushes.get(channel_key)
        if not push_list:
            continue
        push_list.sort(key=lambda entry: entry[0])
        pop_list.sort(key=lambda entry: entry[0])
        for pop_entry, push_entry in zip(pop_list, push_list):
            _, pop_record, pop_index = pop_entry
            push_end, push_record, push_index = push_entry
            arrivals[(id(pop_record), pop_index)] = (
                push_end, push_record, push_index)
    return arrivals


def _recv_wait_us(record, index, t0, arrivals):
    entry = arrivals.get((id(record), index))
    if entry is None:
        return 0.0
    return max(0.0, entry[0] - t0)


def _walk_critical_path(last_node, arrivals, member=None):
    """Backward walk from ``last_node``; returns (path, cross-rank edges).

    At each node the binding predecessor is whichever of {local previous
    primitive, matched sender} finished later; ``member`` (when given)
    restricts sender-edge traversal to records of the same invocation — a
    binding send from an *earlier* invocation ends the walk there, and the
    wait for it is charged to queueing at the origin.
    """
    path = []
    edges = []
    record, index = last_node
    while True:
        path.append((record, index))
        trace = record.trace
        local_end = trace[3 * (index - 1) + 1] if index > 0 else None
        sender = arrivals.get((id(record), index))
        if sender is not None and member is not None \
                and not member(sender[1]):
            sender = None
        if sender is not None and (local_end is None
                                   or sender[0] >= local_end):
            send_end, send_record, send_index = sender
            edges.append({
                "from_record": send_record, "from_index": send_index,
                "to_record": record, "to_index": index,
                "send_end_us": send_end,
            })
            record, index = send_record, send_index
        elif local_end is not None:
            index -= 1
        else:
            break
    path.reverse()
    edges.reverse()
    return path, edges


# -- bucket decomposition ----------------------------------------------------


def _tier_of(executor, peer):
    """Fabric tier of the (rank -> peer) link within one communicator."""
    communicator = executor.communicator
    link = communicator.link(executor.group_rank, peer)
    if link.link_type.name != "RDMA":
        return "local_us"
    topology = getattr(communicator.interconnect, "topology", None)
    if topology is None:
        return "intra_pod_us"
    src = communicator.device_id(executor.group_rank)
    dst = communicator.device_id(peer)
    if topology.pod_of(src.node) != topology.pod_of(dst.node):
        return "spine_us"
    return "intra_pod_us"


def _split_busy(executor, primitive, busy):
    """Split one primitive's modeled busy time into cost-model terms.

    Mirrors ``CostModel.primitive_time_us``: fixed overhead plus the max of
    the send transfer (alpha + bytes/beta) and the local memory traffic —
    attribution follows whichever term dominated.  Allocates ``busy``
    exactly (the leftovers land in ``memory_us``).
    """
    model = executor.cost_model
    overhead = min(model.primitive_overhead_us, busy)
    rest = busy - overhead
    alpha = beta = 0.0
    if rest > 0.0 and primitive.sends and primitive.send_peer is not None:
        link = executor.communicator.link(executor.group_rank,
                                          primitive.send_peer)
        alpha_time = link.alpha_us
        beta_time = primitive.nbytes / (link.beta_gbps * 1e3)
        local = (model.local_copy_time_us(primitive.nbytes)
                 if primitive.touches_memory else 0.0)
        if alpha_time + beta_time >= local:
            alpha = min(rest, alpha_time)
            beta = min(rest - alpha, beta_time)
    memory = rest - alpha - beta
    return overhead, alpha, beta, memory


def _straggler_section(completes, track_of):
    """Per-rank completion z-scores; names the slowest rank."""
    if not completes:
        return None
    ranks = sorted(completes)
    times = [completes[rank] for rank in ranks]
    mean = sum(times) / len(times)
    variance = sum((value - mean) ** 2 for value in times) / len(times)
    std = sqrt(variance)
    slowest = max(ranks, key=lambda rank: completes[rank])
    return {
        "slowest_rank": track_of(slowest),
        "slowest_group_rank": slowest,
        "completion_z": ((completes[slowest] - mean) / std) if std else 0.0,
        "skew_us": completes[slowest] - mean,
        "mean_completion_us": mean,
        "completion_std_us": std,
    }


def _owner_times(owner):
    """(submit, complete) time dicts of one invocation, either backend shape.

    DFCCL invocations expose ``submit_times`` / ``complete_times`` directly;
    NCCL ops expose per-rank kernels (launch time) and ``_complete_ranks``.
    """
    submit_times = getattr(owner, "submit_times", None)
    if submit_times is not None:
        return dict(submit_times), dict(owner.complete_times)
    completes = dict(getattr(owner, "_complete_ranks", None) or {})
    submits = {}
    for rank, kernel in (getattr(owner, "_kernels", None) or {}).items():
        launch = getattr(kernel, "launch_time_us", None)
        if launch is not None:
            submits[rank] = launch
    return submits, completes


def _analyze_group(records, arrivals, member, start_floor, end_ceiling,
                   completes, track_of):
    """Shared decomposition: walk the path, telescope time into buckets."""
    last = None
    for record in records:
        count = len(record.trace) // 3
        if count == 0:
            continue
        end = record.trace[3 * (count - 1) + 1]
        if last is None or end > last[2]:
            last = (record, count - 1, end)
    if last is None:
        return None
    path, edges = _walk_critical_path((last[0], last[1]), arrivals,
                                      member=member)
    buckets = dict.fromkeys(BUCKET_NAMES, 0.0)
    tiers = dict.fromkeys(TIER_NAMES, 0.0)
    link_wire = {}
    previous_end = start_floor
    for record, index in path:
        executor = record.executor
        primitive = executor.primitives[index]
        trace = record.trace
        t0 = trace[3 * index]
        end = trace[3 * index + 1]
        busy = trace[3 * index + 2]
        wait = _recv_wait_us(record, index, t0, arrivals)
        # Segment identity: end - previous_end == queue + dilated work.  The
        # wait term collapses to zero when the matched sender *is* the
        # predecessor (its time was counted upstream); a wait on anything
        # else (earlier invocation, backpressure) is genuine queueing.
        buckets["queueing_us"] += (t0 + wait) - previous_end
        dilated = end - t0 - wait
        overhead, alpha, beta, memory = _split_busy(executor, primitive, busy)
        buckets["overhead_us"] += overhead
        buckets["alpha_us"] += alpha
        buckets["beta_us"] += beta
        buckets["memory_us"] += memory
        buckets["contention_us"] += dilated - busy
        wire = alpha + beta
        if wire > 0.0:
            peer = primitive.send_peer
            tiers[_tier_of(executor, peer)] += wire
            communicator = executor.communicator
            pair = (str(communicator.device_id(executor.group_rank)),
                    str(communicator.device_id(peer)))
            link_wire[pair] = link_wire.get(pair, 0.0) + wire
        previous_end = end
    buckets["completion_us"] = end_ceiling - last[2]
    measured = end_ceiling - start_floor
    accounted = sum(buckets.values())
    buckets["residual_us"] = measured - accounted
    slowest_link = (max(link_wire, key=link_wire.get) if link_wire else None)
    straggler = _straggler_section(completes, track_of)
    flow_edges = []
    for edge in edges:
        to_record, to_index = edge["to_record"], edge["to_index"]
        recv_t0 = to_record.trace[3 * to_index]
        flow_edges.append({
            "from_track": edge["from_record"].track,
            "to_track": to_record.track,
            "job": to_record.job,
            "ts_from": edge["send_end_us"],
            "ts_to": max(recv_t0, edge["send_end_us"]),
            "nbytes": to_record.executor.primitives[to_index].nbytes,
        })
    path_work_us = measured - buckets["queueing_us"] - buckets["residual_us"]
    return {
        "measured_us": measured,
        "buckets": buckets,
        "conservation_error": (abs(buckets["residual_us"]) / measured
                               if measured else 0.0),
        "tiers": tiers,
        "critical_path": {
            "nodes": len(path),
            "cross_rank_edges": len(edges),
            "path_time_us": path_work_us,
            "last_rank": last[0].track,
            "slowest_rank": (straggler["slowest_rank"] if straggler
                             else last[0].track),
            "slowest_link": (f"{slowest_link[0]}->{slowest_link[1]}"
                             if slowest_link else None),
            "edges": flow_edges,
        },
        "straggler": straggler,
    }


def analyze_run(obs):
    """Decompose every traced invocation plus the run as a whole.

    Returns ``{"invocations": [...], "run": {...}}`` (plain dicts throughout)
    and stores it at ``obs.analysis.results`` for ``calibration_report`` to
    fold bucket-level feedback into its cells.
    """
    analysis = obs.analysis
    if analysis is None:
        raise ValueError("analysis not enabled: call obs.enable_analysis() "
                         "before the run")
    records = [record for record in analysis.records
               if len(record.trace) >= 3]
    arrivals = _match_channels(records)

    groups = {}
    for record in records:
        groups.setdefault(record.invocation_key, []).append(record)

    invocations = []
    run_submits = []
    run_completes = []
    for key in sorted(groups, key=str):
        group = groups[key]
        submits, completes = _owner_times(group[0].owner)
        if not submits or not completes:
            continue
        run_submits.append(min(submits.values()))
        run_completes.append(max(completes.values()))
        tracks = {record.group_rank: record.track for record in group}

        def track_of(rank, tracks=tracks):
            return tracks.get(rank, f"rank{rank}")

        result = _analyze_group(
            group, arrivals,
            member=lambda rec, key=key: rec.invocation_key == key,
            start_floor=min(submits.values()),
            end_ceiling=max(completes.values()),
            completes=completes, track_of=track_of)
        if result is None:
            continue
        sample = group[0]
        # Group size as the calibration log records it: the ranks whose
        # completion the invocation expects (post-shrink), not the count of
        # traced executors.
        expected = getattr(sample.owner, "expected_ranks", None)
        group_size = (len(expected()) if callable(expected)
                      else getattr(sample.owner, "group_size", len(group)))
        result.update({
            "invocation": list(key) if isinstance(key, tuple) else key,
            "collective": sample.coll_name,
            "backend": sample.backend,
            "algorithm": sample.algorithm,
            "kind": sample.kind,
            "nbytes": sample.nbytes,
            "group_size": group_size,
        })
        invocations.append(result)

    run_result = None
    if invocations and records:
        final_completes = {}
        final_tracks = {}
        for record in records:
            submits, completes = _owner_times(record.owner)
            for rank, value in completes.items():
                slot = (record.invocation_key[0]
                        if isinstance(record.invocation_key, tuple)
                        else record.invocation_key, rank)
                if value > final_completes.get(slot, float("-inf")):
                    final_completes[slot] = value
                    final_tracks[slot] = record.track
        # Collapse to per-track latest completion for the straggler view.
        by_track = {}
        for slot, value in final_completes.items():
            track = final_tracks[slot]
            by_track[track] = max(by_track.get(track, float("-inf")), value)
        run_result = _analyze_group(
            records, arrivals, member=None,
            start_floor=min(run_submits),
            end_ceiling=max(run_completes),
            completes=by_track, track_of=lambda track: track)

    results = {"invocations": invocations, "run": run_result}
    analysis.results = results
    if obs.enabled and invocations:
        histogram = obs.metrics.histogram("collective_critical_path_us")
        for invocation in invocations:
            histogram.observe(invocation["critical_path"]["path_time_us"])
    return results


def critical_path_flows(results):
    """Chrome-trace flow specs (send→recv arrows) along every critical path.

    Feed the returned list to
    :func:`repro.obs.trace.chrome_trace_events`'s ``flows`` parameter.
    """
    flows = []
    flow_id = 0
    sources = list(results.get("invocations") or ())
    run_result = results.get("run")
    if run_result is not None:
        sources.append(dict(run_result, invocation="run"))
    seen = set()
    for result in sources:
        for edge in result["critical_path"]["edges"]:
            key = (edge["from_track"], edge["to_track"],
                   edge["ts_from"], edge["ts_to"])
            if key in seen:
                continue
            seen.add(key)
            flows.append({
                "id": flow_id,
                "name": "critical-path",
                "category": "critical-path",
                "job": edge["job"],
                "from_track": edge["from_track"],
                "to_track": edge["to_track"],
                "ts_from": edge["ts_from"],
                "ts_to": edge["ts_to"],
            })
            flow_id += 1
    return flows


def render_analysis(results, title="time attribution"):
    """Human-readable per-invocation bucket table plus the critical path."""
    lines = [title, "=" * len(title)]
    for result in results.get("invocations") or ():
        path = result["critical_path"]
        lines.append("")
        lines.append(f"{result['collective']} #{result['invocation']}"
                     f" [{result['backend']}/{result['algorithm']}"
                     f" {result['kind']} {result['nbytes']}B"
                     f" x{result['group_size']}]:"
                     f" measured {result['measured_us']:.1f}us")
        buckets = result["buckets"]
        for name in BUCKET_NAMES:
            value = buckets[name]
            share = value / result["measured_us"] if result["measured_us"] else 0.0
            lines.append(f"  {name:<15} {value:>12.2f}us  {share:>6.1%}")
        tiers = result["tiers"]
        tier_text = ", ".join(f"{name[:-3]}={tiers[name]:.1f}us"
                              for name in TIER_NAMES)
        lines.append(f"  wire tiers: {tier_text}")
        lines.append(f"  critical path: {path['nodes']} primitives,"
                     f" {path['cross_rank_edges']} cross-rank hops,"
                     f" slowest rank {path['slowest_rank']},"
                     f" slowest link {path['slowest_link']}")
        straggler = result["straggler"]
        if straggler:
            lines.append(f"  straggler: {straggler['slowest_rank']}"
                         f" z={straggler['completion_z']:.2f}"
                         f" skew={straggler['skew_us']:.1f}us")
        lines.append(f"  conservation error:"
                     f" {result['conservation_error']:.3%}")
    run_result = results.get("run")
    if run_result is not None:
        lines.append("")
        lines.append(f"run: measured {run_result['measured_us']:.1f}us, "
                     "buckets "
                     + ", ".join(f"{name}={run_result['buckets'][name]:.1f}"
                                 for name in BUCKET_NAMES))
    if not results.get("invocations"):
        lines.append("(no traced invocations)")
    return "\n".join(lines)
