"""Bounded flight recorder: always-on, cheap enough to never turn off.

Two independent rings, so a flood of engine step events can never evict the
(much rarer, much more valuable) spans:

* ``ring`` — raw events.  The engine appends its 4-tuple step records
  ``(time_us, actor, status, detail)`` directly (one ``deque.append`` per
  step, the entire hot-path cost of the recorder); instant markers arrive as
  5-tuples ``("event", time_us, category, name, attrs)`` via
  :meth:`record_event`.
* ``spans`` — completed :class:`~repro.obs.spans.Span` objects.

``dump()`` serializes both rings plus whatever context the trigger site
passes (a deadlock wait graph, a recovery event, a fuzzer divergence) into a
plain JSON-safe dict.
"""

from collections import deque

DEFAULT_EVENT_CAPACITY = 4096
DEFAULT_SPAN_CAPACITY = 2048


class FlightRecorder:
    def __init__(self, event_capacity=DEFAULT_EVENT_CAPACITY,
                 span_capacity=DEFAULT_SPAN_CAPACITY):
        self.event_capacity = event_capacity
        self.span_capacity = span_capacity
        self.ring = deque(maxlen=event_capacity)
        self.spans = deque(maxlen=span_capacity)

    def record_event(self, time_us, category, name, attrs=None):
        self.ring.append(("event", time_us, category, name, attrs))

    def record_span(self, span):
        self.spans.append(span)

    def step_events(self):
        """The engine's raw ``(time, actor, status, detail)`` step records."""
        return [event for event in self.ring if len(event) == 4]

    def marker_events(self):
        return [event for event in self.ring if len(event) == 5]

    def serialized_events(self):
        out = []
        for event in self.ring:
            if len(event) == 4:
                time_us, actor, status, detail = event
                out.append({"type": "step", "time_us": time_us,
                            "actor": actor, "status": status,
                            "detail": detail})
            else:
                _, time_us, category, name, attrs = event
                out.append({"type": "event", "time_us": time_us,
                            "category": category, "name": name,
                            "attrs": attrs})
        return out

    def dump(self, reason, open_spans=(), context=None, metrics=None):
        """Plain-data snapshot of everything the recorder holds right now."""
        return {
            "reason": reason,
            "events": self.serialized_events(),
            "spans": [span.to_dict() for span in self.spans],
            "open_spans": [span.to_dict() for span in open_spans],
            "context": context or {},
            "metrics": metrics or {},
        }
