"""Per-job backend contexts on the shared cluster.

A placed job becomes a :class:`~repro.workloads.trainer.TrainingRun` whose
plan is *rank-mapped*: the job plans in its own local rank space (0..n-1) and
a :class:`RankMappedPlan` view translates every schedule onto the leased
global ranks, which need not be contiguous.

One :class:`ClusterJobRunner` serves every backend through ``repro.api``:
the runner holds a single shared :class:`~repro.api.CollectiveBackend` and
hands each placed job a :meth:`~repro.api.CollectiveBackend.job_view` of it.
What that means is backend-defined, mirroring the paper's comparison:

* under ``"dfccl"`` one daemon kernel per GPU serves every co-located
  tenant, with collective ids namespaced by job and communicators pooled per
  ``(job, device set)``;
* under ``"nccl"`` each job launches dedicated per-collective kernels on
  per-job streams (plus its CPU orchestrator).  Co-located jobs' dedicated
  kernels contend for SM block slots, which is what lets the baseline
  deadlock *across* jobs.

Every runner applies a small seeded per-rank *launch jitter* modelling
dataloader and framework skew between rank processes — the disorder that
interleaves co-located jobs' kernel launches differently on different GPUs.
"""

from __future__ import annotations

from dataclasses import replace

from repro.api import CollectiveBackend, make_backend
from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.workloads.backends import GroupTrainingBackend
from repro.workloads.parallelism import CollectiveItem, ComputeItem
from repro.workloads.trainer import TrainingRun


class RankMappedPlan:
    """View of a job-local :class:`ParallelPlan` on leased global ranks."""

    def __init__(self, plan, rank_map):
        if plan.base_rank != 0:
            raise ConfigurationError("rank-mapped plans must be built with base_rank=0")
        if len(rank_map) != plan.world_size:
            raise ConfigurationError(
                f"lease has {len(rank_map)} ranks but the plan needs {plan.world_size}"
            )
        if len(set(rank_map)) != len(rank_map):
            raise ConfigurationError(f"lease ranks must be distinct, got {rank_map}")
        self.plan = plan
        self.rank_map = list(rank_map)
        self._to_local = {global_rank: local
                          for local, global_rank in enumerate(self.rank_map)}

    # -- delegated geometry ----------------------------------------------------

    @property
    def world_size(self):
        return self.plan.world_size

    @property
    def global_batch_size(self):
        return self.plan.global_batch_size

    def ranks(self):
        return list(self.rank_map)

    def local_rank(self, global_rank):
        return self._to_local[global_rank]

    # -- schedule translation --------------------------------------------------

    def _map_item(self, item):
        if isinstance(item, CollectiveItem):
            return replace(
                item,
                group_ranks=tuple(self.rank_map[local] for local in item.group_ranks),
            )
        return item

    def iteration_schedule(self, global_rank):
        local = self._to_local[global_rank]
        return [self._map_item(item) for item in self.plan.iteration_schedule(local)]

    def collective_items(self, global_rank):
        return [item for item in self.iteration_schedule(global_rank)
                if isinstance(item, CollectiveItem)]

    def unique_collectives(self):
        return {key: self._map_item(item)
                for key, item in self.plan.unique_collectives().items()}


class _JitteredPlan:
    """Wrap a plan so every rank's iteration starts with seeded launch skew.

    Real rank processes of one job never hit their collective launches at
    exactly the same instant (dataloader, Python overhead, interrupts); the
    skew is what interleaves co-located jobs differently on different GPUs.
    """

    #: Tells TrainingRun to re-derive the schedule each iteration.
    iteration_variant = True

    def __init__(self, inner, job_id, jitter_us, seed):
        self._inner = inner
        self._job_id = job_id
        self._jitter_us = jitter_us
        self._rng = DeterministicRNG(seed).child("launch-jitter", job_id)
        self._calls = {}

    def __getattr__(self, attribute):
        return getattr(self._inner, attribute)

    def iteration_schedule(self, global_rank):
        schedule = list(self._inner.iteration_schedule(global_rank))
        if self._jitter_us > 0:
            # Fresh skew per (rank, call): each iteration of each rank drifts
            # independently, exactly like real dataloader timing.
            call = self._calls.get(global_rank, 0)
            self._calls[global_rank] = call + 1
            skew = self._rng.child(global_rank, call).uniform(0.0, self._jitter_us)
            schedule.insert(0, ComputeItem(skew, "launch-jitter"))
        return schedule


class ClusterJobRunner:
    """Builds and installs placed jobs' host programs over one shared backend.

    ``backend`` is a registered ``repro.api`` backend name (extra ``knobs``
    go to :func:`make_backend`) or an already-built
    :class:`~repro.api.CollectiveBackend`.  ``orchestrator_factory``
    optionally maps a :class:`JobSpec` to the CPU orchestrator its training
    loop charges; by default each job view's backend decides (DFCCL: none,
    NCCL: Megatron-style manual orchestration).
    """

    def __init__(self, cluster, backend="dfccl", launch_jitter_us=25.0, seed=0,
                 orchestrator_factory=None, **knobs):
        self.cluster = cluster
        self.backend = (make_backend(backend, cluster, **knobs)
                        if not isinstance(backend, CollectiveBackend) else backend)
        self.backend_flavor = self.backend.name
        self.launch_jitter_us = launch_jitter_us
        self.seed = seed
        self.orchestrator_factory = orchestrator_factory
        self.runs = {}
        self.hosts = {}

    def __getattr__(self, attribute):
        # Legacy accessors (``runner.dfccl`` / ``runner.nccl``) resolve to
        # the adapter's underlying engine.
        backend = self.__dict__.get("backend")
        if backend is None:
            raise AttributeError(attribute)
        return getattr(backend, attribute)

    def _training_backend(self, record):
        view = self.backend.job_view(record.spec.job_id)
        orchestrator = ("auto" if self.orchestrator_factory is None
                        else self.orchestrator_factory(record.spec))
        return GroupTrainingBackend(self.cluster, view, orchestrator=orchestrator)

    def launch(self, record, time_us, on_rank_complete):
        """Install the job's rank processes; returns the TrainingRun.

        A record resumed after preemption (``record.epoch > 0``) runs only
        its remaining iterations (checkpointed-complete ones are not re-run)
        with warmup already spent, under epoch-suffixed host names so the
        fresh rank processes never collide with the evicted epoch's.
        """
        spec = record.spec
        remaining = spec.iterations - record.completed_iterations
        if record.epoch > 0 or remaining != spec.iterations:
            run_spec = replace(spec, iterations=remaining, warmup=0)
        else:
            run_spec = spec
        mapped = RankMappedPlan(run_spec.build_plan(), record.lease.ranks)
        plan = _JitteredPlan(mapped, spec.job_id, self.launch_jitter_us, self.seed)
        run = TrainingRun(
            self.cluster, plan, self._training_backend(record),
            iterations=run_spec.iterations, warmup=run_spec.warmup,
            on_rank_complete=on_rank_complete,
        )
        prefix = (spec.job_id if record.epoch == 0
                  else f"{spec.job_id}~e{record.epoch}")
        self.hosts[spec.job_id] = run.install(name_prefix=prefix,
                                              start_time_us=time_us)
        self.runs[spec.job_id] = run
        return run

    def preempt(self, record, time_us):
        """Checkpoint and evict a placed job's rank processes mid-run.

        Kills the job's host actors (their in-flight collective parts are
        aborted through the job view's ``quiesce``, so the shared daemon
        kernels drop the orphaned task entries), unregisters the epoch's
        collectives, and reports the checkpoint boundary: how many leading
        iterations every rank fully completed this epoch.  The job's
        communicator-pool namespace is deliberately *not* evicted — a resume
        on the same device set reuses the pooled communicators (visible as
        ``pool_hits``).  Returns ``(completed_iterations, aborted_parts)``.
        """
        run = self.runs.pop(record.job_id, None)
        if run is None:
            raise ConfigurationError(
                f"job {record.job_id} has no installed run to preempt"
            )
        completed = run.completed_iterations()
        for host in self.hosts.pop(record.job_id, []):
            self.cluster.engine.kill_actor(host, time_us)
            self.cluster.hosts.pop(host.name, None)
        view = run.backend.backend
        quiesce = getattr(view, "quiesce", None)
        aborted = quiesce(time_us) if quiesce is not None else 0
        run.backend.unregister_all()
        return completed, aborted

    @property
    def supports_preemption(self):
        """Whether this runner's backend can quiesce an evicted job.

        The dedicated-kernel baseline cannot: its in-flight kernels hold
        their SM blocks until completion and have no abort path — exactly
        the property the paper's comparison turns on — so the control plane
        degrades to non-preemptive scheduling over it.
        """
        return hasattr(self.backend, "quiesce")

    def release(self, record):
        """Tear down the finished job's backend state.

        Unregisters the job's collectives and then drops its backend-side
        namespace (under DFCCL: the pool entries keyed by the unique job id,
        which no later tenant can ever reuse), keeping the shared backend
        bounded over a long churn stream.
        """
        run = self.runs.get(record.job_id)
        if run is None:
            return 0
        released = run.backend.unregister_all()
        self.backend.release_job(record.spec.job_id)
        return released

    def collect(self, record, total_time_us):
        """Fill ``record.result`` once the simulation stopped."""
        run = self.runs.get(record.job_id)
        if run is None:
            return None
        record.result = run.collect(total_time_us, partial=True)
        return record.result


def make_job_runner(flavor, cluster, **kwargs):
    """Factory: any registered ``repro.api`` backend name."""
    return ClusterJobRunner(cluster, flavor, **kwargs)
