"""Multi-tenant job scheduling (``repro.multijob``).

The paper's failure mode — dedicated collective kernels holding SM resources
while waiting on peers — compounds when *multiple jobs* share GPUs: one job's
resident kernels can fence another job's kernels out of the SM slots they
need to unblock the first job's peers, a hold-and-wait cycle that spans job
boundaries.  This package turns the simulated cluster into a shared one:

* :mod:`repro.multijob.jobs` — the :class:`JobSpec` admission schema and
  per-job lifecycle records with JCT / queueing-delay / goodput / SLO
  metrics;
* :mod:`repro.multijob.arrivals` — seeded open-loop arrival generation with
  Zipf-distributed tenant demand;
* :mod:`repro.multijob.placement` — ``packed`` / ``spread`` /
  ``nvlink-affine`` device-lease policies;
* :mod:`repro.multijob.scheduler` — the :class:`ClusterScheduler` actor:
  admission, backfilling placement, lease recycling, failure reaping;
* :mod:`repro.multijob.runtime` — per-job backend contexts: one shared
  DFCCL daemon per GPU across all tenants, or dedicated NCCL kernels per
  job that contend for SM block slots.

The matching experiments live in :mod:`repro.bench.multijob_experiments`.
"""

from repro.multijob.arrivals import estimate_standalone_us, generate_jobs, zipf_weights
from repro.multijob.jobs import MODEL_FACTORIES, JobRecord, JobSpec, JobState
from repro.multijob.placement import (
    PLACEMENT_POLICIES,
    DeviceLease,
    NvlinkAffinePolicy,
    PackedPolicy,
    PlacementPolicy,
    SpreadPolicy,
    make_placement_policy,
)
from repro.multijob.runtime import ClusterJobRunner, RankMappedPlan, make_job_runner
from repro.multijob.scheduler import ClusterScheduler, install_scheduler

__all__ = [
    "MODEL_FACTORIES",
    "PLACEMENT_POLICIES",
    "ClusterJobRunner",
    "ClusterScheduler",
    "DeviceLease",
    "JobRecord",
    "JobSpec",
    "JobState",
    "NvlinkAffinePolicy",
    "PackedPolicy",
    "PlacementPolicy",
    "RankMappedPlan",
    "SpreadPolicy",
    "estimate_standalone_us",
    "generate_jobs",
    "install_scheduler",
    "make_job_runner",
    "make_placement_policy",
    "zipf_weights",
]
