"""Open-loop arrival generation: seeded, Zipf-sized tenant demand.

Production multi-tenant clusters see heavy-tailed job sizes — most tenants
ask for one or two GPUs, a few ask for many — and open-loop (Poisson-ish)
arrivals that do not wait for earlier jobs to finish.  The generator draws
both from a :class:`~repro.common.rng.DeterministicRNG`, so equal seeds give
byte-identical workloads; experiments sweep the seed to report distributions
(deadlock ratios, JCT percentiles) rather than single runs.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.multijob.jobs import MODEL_FACTORIES, JobSpec

#: Default world-size classes a tenant may request (Zipf-weighted: small
#: common, large rare).
DEFAULT_SIZE_CLASSES = (2, 4, 8)


def zipf_weights(count, exponent=1.2):
    """Unnormalized Zipf weights ``1/k^s`` for ranks ``1..count``."""
    if count < 1:
        raise ConfigurationError("zipf_weights needs at least one class")
    return [1.0 / (rank ** exponent) for rank in range(1, count + 1)]


def _draw_weighted(rng, items, weights):
    total = sum(weights)
    point = rng.uniform(0.0, total)
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if point <= cumulative:
            return item
    return items[-1]


def _parallelism_for(world_size, rng):
    """Split a world size into (tp, dp, pp); larger jobs may go hybrid."""
    if world_size >= 8 and rng.bernoulli(0.5):
        return 2, world_size // 4, 2
    if world_size >= 4 and rng.bernoulli(0.4):
        return 2, world_size // 2, 1
    return 1, world_size, 1


def estimate_standalone_us(spec):
    """Rough isolated runtime: compute-bound estimate used to derive SLOs.

    Forward + backward (2x forward) + optimizer per iteration, divided across
    the TP group, plus a flat per-iteration communication allowance.  This is
    intentionally a *loose* analytic bound — SLO attainment measures how far
    contention and queueing stretch jobs beyond a no-sharing expectation.
    """
    model = MODEL_FACTORIES[spec.model]()
    per_micro = model.forward_time_us(spec.microbatch_size) * 3.05 / spec.tp
    comm_allowance_us = 400.0 * spec.world_size
    return spec.iterations * (per_micro * spec.num_microbatches + comm_allowance_us)


def generate_jobs(seed, num_jobs=6, mean_interarrival_us=1_500.0,
                  size_classes=DEFAULT_SIZE_CLASSES, zipf_exponent=1.2,
                  models=("resnet50", "vit", "gpt2-small"),
                  iterations_range=(2, 3), priority_levels=3,
                  slo_stretch=6.0, name_prefix="job", tenants=None):
    """Draw an open-loop stream of :class:`JobSpec` records.

    Interarrival gaps are exponential with the given mean (open loop: the
    stream never waits for completions); world sizes follow a Zipf law over
    ``size_classes``; models, parallelism splits, iteration counts and
    priorities come from independent child streams.  ``slo_stretch`` sets
    each job's SLO to ``stretch x`` its analytic standalone estimate;
    ``None`` disables SLOs.  ``tenants`` optionally names billing accounts
    jobs are drawn over (uniformly, from a dedicated child stream — passing
    it never perturbs the other draws).
    """
    if num_jobs < 1:
        raise ConfigurationError("need at least one job")
    for model in models:
        if model not in MODEL_FACTORIES:
            raise ConfigurationError(f"unknown model {model!r}")
    rng = DeterministicRNG(seed).child("multijob-arrivals", num_jobs)
    size_stream = rng.child("sizes")
    gap_stream = rng.child("gaps")
    model_stream = rng.child("models")
    shape_stream = rng.child("shapes")
    tenant_stream = rng.child("tenants") if tenants else None
    weights = zipf_weights(len(size_classes), zipf_exponent)

    specs = []
    arrival = 0.0
    for index in range(num_jobs):
        if index > 0:
            arrival += gap_stream.expovariate(1.0 / mean_interarrival_us)
        world = _draw_weighted(size_stream, list(size_classes), weights)
        tp, dp, pp = _parallelism_for(world, shape_stream)
        iterations = shape_stream.randint(*iterations_range)
        spec = JobSpec(
            job_id=f"{name_prefix}-{index}",
            model=model_stream.choice(list(models)),
            tp=tp, dp=dp, pp=pp,
            iterations=iterations,
            priority=shape_stream.randint(0, priority_levels - 1),
            arrival_time_us=arrival,
            tenant=(tenant_stream.choice(list(tenants))
                    if tenant_stream is not None else None),
        )
        if slo_stretch is not None:
            spec = replace(spec, slo_us=slo_stretch * estimate_standalone_us(spec))
        specs.append(spec.validate())
    return specs
