"""Placement policies: which GPUs a job leases from the shared cluster.

A placement policy maps a job's world size onto a set of GPU *slots*: every
GPU hosts at most ``tenants_per_gpu`` concurrent jobs (the SM block budget is
shared by whoever is resident; the slot cap is the scheduler-level admission
knob on top of it).  Policies are pure functions of the current load map, so
placements are deterministic given the same arrival sequence — a property the
test suite checks explicitly.

``packed``
    Consolidate: fill the lowest-indexed GPUs first, co-locating jobs on as
    few devices as possible.  Maximizes headroom for future large jobs, and
    maximizes cross-job SM contention — the regime where dedicated-kernel
    baselines deadlock across jobs.
``spread``
    Balance: lease the least-loaded GPUs, minimizing co-location (and hence
    interference) while it lasts.
``nvlink-affine``
    Locality first: fit the whole job inside one NVLink island if possible,
    else inside one node, else fall back to ``spread``.  Keeps a job's ring
    off the slow inter-domain links at the cost of more co-location.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class DeviceLease:
    """A granted placement: one global rank per job-local rank."""

    job_id: str
    ranks: tuple
    granted_at_us: float

    def __len__(self):
        return len(self.ranks)


class PlacementPolicy:
    """Base class; subclasses order candidate GPU slots."""

    name = "base"

    def place(self, world_size, load, capacity, cluster):
        """Return ``world_size`` global ranks to lease, or ``None``.

        ``load`` maps global rank -> number of jobs currently leasing it;
        ``capacity`` is the per-GPU tenant cap.  The default implementation
        takes the first ``world_size`` candidates in :meth:`order`'s ranking.
        """
        candidates = [rank for rank in sorted(load) if load[rank] < capacity]
        if len(candidates) < world_size:
            return None
        ordered = self.order(candidates, load, cluster)
        return tuple(ordered[:world_size])

    def order(self, candidates, load, cluster):
        raise NotImplementedError


class PackedPolicy(PlacementPolicy):
    """Consolidate onto the lowest-indexed GPUs with free slots."""

    name = "packed"

    def order(self, candidates, load, cluster):
        return sorted(candidates)


class SpreadPolicy(PlacementPolicy):
    """Least-loaded GPUs first; rank index breaks ties deterministically."""

    name = "spread"

    def order(self, candidates, load, cluster):
        return sorted(candidates, key=lambda rank: (load[rank], rank))


class NvlinkAffinePolicy(PlacementPolicy):
    """Fit the job inside one NVLink island, else one node, else spread."""

    name = "nvlink-affine"

    def _domain_of(self, cluster, rank):
        device = cluster.device(rank).device_id
        interconnect = cluster.interconnect
        nvlink = interconnect.nvlink_domain(device)
        if nvlink is not None:
            return ("nvlink", device.node, nvlink)
        return ("pix", device.node, interconnect.pix_domain(device))

    def place(self, world_size, load, capacity, cluster):
        candidates = [rank for rank in sorted(load) if load[rank] < capacity]
        if len(candidates) < world_size:
            return None

        def pick_within(groups):
            """Least-loaded group that fits the whole job, or None."""
            fitting = [
                (sum(load[rank] for rank in members), key, members)
                for key, members in sorted(groups.items())
                if len(members) >= world_size
            ]
            if not fitting:
                return None
            _, _, members = min(fitting, key=lambda item: (item[0], item[1]))
            ordered = sorted(members, key=lambda rank: (load[rank], rank))
            return tuple(ordered[:world_size])

        domains = {}
        nodes = {}
        for rank in candidates:
            domains.setdefault(self._domain_of(cluster, rank), []).append(rank)
            nodes.setdefault(cluster.device(rank).device_id.node, []).append(rank)

        placement = pick_within(domains)
        if placement is None:
            placement = pick_within(nodes)
        if placement is None:
            ordered = sorted(candidates, key=lambda rank: (load[rank], rank))
            placement = tuple(ordered[:world_size])
        return placement


PLACEMENT_POLICIES = {
    policy.name: policy for policy in (PackedPolicy, SpreadPolicy, NvlinkAffinePolicy)
}


def make_placement_policy(policy):
    """Resolve a policy instance from a name (or pass an instance through)."""
    if isinstance(policy, PlacementPolicy):
        return policy
    cls = PLACEMENT_POLICIES.get(policy)
    if cls is None:
        raise ConfigurationError(
            f"unknown placement policy {policy!r}; choose from {sorted(PLACEMENT_POLICIES)}"
        )
    return cls()
