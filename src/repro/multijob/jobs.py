"""Job specifications and per-job lifecycle records.

A :class:`JobSpec` is the unit of admission to the multi-tenant cluster: a
model, a (tp, dp, pp) parallelism grid, a priority, an arrival time and an
optional SLO.  The scheduler turns an admitted spec into a :class:`JobRecord`
tracking the lease, the lifecycle timestamps, and the metrics an operator
reads off a multi-tenant cluster — queueing delay, job completion time (JCT),
goodput and SLO attainment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.workloads.models import gpt2_model, resnet50_model, vit_model
from repro.workloads.parallelism import ParallelPlan

#: Models a tenant may request, by name (the JobSpec schema's ``model`` field).
MODEL_FACTORIES = {
    "resnet50": resnet50_model,
    "vit": vit_model,
    "gpt2-small": lambda: gpt2_model("small"),
}


class JobState(enum.Enum):
    """Lifecycle of a job on the shared cluster."""

    QUEUED = "queued"          # admitted, waiting for a device lease
    RUNNING = "running"        # leased and executing
    COMPLETED = "completed"    # every rank finished
    DEGRADED = "degraded"      # survivors finished after losing leased ranks
    UNFINISHED = "unfinished"  # still incomplete at collection (deadlock/stuck)
    REJECTED = "rejected"      # refused at admission (e.g. over tenant quota)


@dataclass(frozen=True)
class JobSpec:
    """One tenant's training job (the documented multi-tenant schema)."""

    job_id: str
    model: str = "resnet50"
    tp: int = 1
    dp: int = 2
    pp: int = 1
    iterations: int = 2
    warmup: int = 0
    microbatch_size: int = 32
    num_microbatches: int = 1
    grad_buckets: int = 2
    priority: int = 0
    arrival_time_us: float = 0.0
    slo_us: float = None
    #: Tenant (billing account) the job belongs to; ``None`` is the default
    #: tenant.  The control plane's per-tenant quotas key off this.
    tenant: str = None

    @property
    def world_size(self):
        return self.tp * self.dp * self.pp

    def validate(self):
        if not self.job_id:
            raise ConfigurationError("a job needs a non-empty job_id")
        if self.model not in MODEL_FACTORIES:
            raise ConfigurationError(
                f"unknown model {self.model!r}; choose from {sorted(MODEL_FACTORIES)}"
            )
        if self.tp < 1 or self.dp < 1 or self.pp < 1:
            raise ConfigurationError("tp, dp and pp must all be at least 1")
        if self.iterations <= self.warmup:
            raise ConfigurationError("iterations must exceed warmup")
        if self.arrival_time_us < 0:
            raise ConfigurationError(
                f"arrival time must be non-negative, got {self.arrival_time_us}"
            )
        if self.slo_us is not None and self.slo_us <= 0:
            raise ConfigurationError(f"slo_us must be positive, got {self.slo_us}")
        return self

    @property
    def total_samples(self):
        """Samples the job processes over its measured iterations."""
        return self.microbatch_size * self.num_microbatches * self.dp * self.iterations

    def build_plan(self):
        """The job-local :class:`ParallelPlan` (ranks 0..world_size-1)."""
        model = MODEL_FACTORIES[self.model]()
        return ParallelPlan(
            model,
            tp=self.tp, dp=self.dp, pp=self.pp,
            microbatch_size=self.microbatch_size,
            num_microbatches=self.num_microbatches,
            grad_buckets=self.grad_buckets,
            base_rank=0,
        )

    def describe(self):
        """Plain-dict form (the documented JobSpec schema)."""
        return {
            "job_id": self.job_id,
            "model": self.model,
            "tp": self.tp, "dp": self.dp, "pp": self.pp,
            "world_size": self.world_size,
            "iterations": self.iterations,
            "priority": self.priority,
            "arrival_time_us": self.arrival_time_us,
            "slo_us": self.slo_us,
            "tenant": self.tenant,
        }


@dataclass
class JobRecord:
    """Mutable per-job state the scheduler maintains."""

    spec: JobSpec
    state: JobState = JobState.QUEUED
    lease: object = None                     # DeviceLease once placed
    start_time_us: float = None              # first lease grant time
    finish_time_us: float = None
    ranks_done: dict = field(default_factory=dict)   # global rank -> time_us
    result: object = None                    # TrainingResult once collected
    # -- control-plane state (preemption / checkpoint-restore / migration) -----
    preemptions: int = 0                     # times evicted mid-run
    epoch: int = 0                           # placements so far (0 = fresh)
    completed_iterations: int = 0            # cumulative across epochs
    checkpoint: object = None                # JobCheckpoint while evicted

    # -- metrics ---------------------------------------------------------------

    @property
    def job_id(self):
        return self.spec.job_id

    @property
    def finished(self):
        return self.state in (JobState.COMPLETED, JobState.DEGRADED)

    @property
    def terminal(self):
        return self.finished or self.state in (JobState.UNFINISHED,
                                               JobState.REJECTED)

    @property
    def queueing_delay_us(self):
        if self.start_time_us is None:
            return None
        return self.start_time_us - self.spec.arrival_time_us

    @property
    def jct_us(self):
        """Job completion time: arrival to last rank completion."""
        if self.finish_time_us is None:
            return None
        return self.finish_time_us - self.spec.arrival_time_us

    @property
    def service_time_us(self):
        if self.start_time_us is None or self.finish_time_us is None:
            return None
        return self.finish_time_us - self.start_time_us

    @property
    def samples_processed(self):
        """Samples actually pushed through, discounting ranks lost to crashes.

        A degraded job's crashed ranks stopped contributing; crediting the
        full ``total_samples`` would inflate goodput for exactly the jobs a
        churn experiment is about.  The surviving-rank fraction is an
        estimate (exact per-rank sample accounting is below the fidelity of
        the compute model) but it is conservative and monotone in the loss.
        """
        if not self.finished:
            return 0
        if self.state is JobState.COMPLETED or self.lease is None:
            return self.spec.total_samples
        fraction = len(self.ranks_done) / max(1, len(self.lease.ranks))
        return int(self.spec.total_samples * fraction)

    @property
    def goodput_samples_per_s(self):
        """Samples per second over the whole arrival-to-completion span."""
        jct = self.jct_us
        if not jct or not self.finished:
            return 0.0
        return self.samples_processed / (jct / 1e6)

    @property
    def slo_attained(self):
        """Whether the job finished within its SLO (None when no SLO set).

        Rejected jobs are not evaluated: admission control refused them by
        policy, so they never had an SLO window to attain.
        """
        if self.spec.slo_us is None or self.state is JobState.REJECTED:
            return None
        return self.finished and self.jct_us is not None \
            and self.jct_us <= self.spec.slo_us

    def row(self):
        """One metrics row (the shape ``bench.multijob_experiments`` reports)."""
        return {
            "job": self.job_id,
            "model": self.spec.model,
            "world_size": self.spec.world_size,
            "priority": self.spec.priority,
            "tenant": self.spec.tenant,
            "state": self.state.value,
            "arrival_us": self.spec.arrival_time_us,
            "queueing_delay_us": self.queueing_delay_us,
            "jct_us": self.jct_us,
            "goodput_samples_per_s": self.goodput_samples_per_s,
            "slo_attained": self.slo_attained,
            "leased_ranks": tuple(self.lease.ranks) if self.lease else (),
            "preemptions": self.preemptions,
            "epoch": self.epoch,
        }
