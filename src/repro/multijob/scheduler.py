"""The multi-tenant cluster scheduler.

:class:`ClusterScheduler` is an engine actor that admits :class:`JobSpec`
streams, leases device sets through a placement policy, launches each placed
job's rank processes through a job runner, and frees the lease when the job's
last (surviving) rank finishes — immediately retrying queued jobs on the
freed capacity.

Scheduling discipline: queued jobs are served in (priority desc, arrival,
job id) order with *backfill* — a job that does not fit is skipped, and a
smaller later job may start first.  Leases are never preempted.

The scheduler is a *worker* actor (not a daemon): it keeps the simulation
alive across arrival gaps, and when every running job's rank processes are
blocked — the cross-job SM-contention deadlock the dedicated-kernel baseline
is susceptible to — the scheduler itself is merely blocked on its wake key,
so the engine's deadlock detector fires exactly as it should.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError, InvalidStateError
from repro.gpusim.engine import Actor, StepResult
from repro.multijob.jobs import JobRecord, JobState
from repro.multijob.placement import DeviceLease, make_placement_policy


class _FailureWatch(Actor):
    """Service actor delivering device failures to the scheduler promptly.

    The scheduler actor is either sleeping toward the next arrival or blocked
    on its wake key; a crash that eliminates a running job's last outstanding
    rank would otherwise go unreaped until the next wake, inflating the job's
    JCT and delaying lease reuse.  The watch blocks on every live device's
    ``failed_key``, reaps synchronously when one fires, and signals the
    scheduler's wake key.
    """

    daemon = True

    def __init__(self, scheduler):
        super().__init__(f"{scheduler.name}-failure-watch")
        self.scheduler = scheduler
        self._seen = set()

    def step(self):
        cluster = self.scheduler.cluster
        newly_failed = [device for device in cluster.devices
                        if device.failed and device.name not in self._seen]
        if newly_failed:
            for device in newly_failed:
                self._seen.add(device.name)
            self.scheduler._reap_failed_ranks(self.now)
            if self.engine is not None:
                self.engine.signal(self.scheduler.wake_key, self.now)
        keys = [device.failed_key for device in cluster.devices
                if not device.failed]
        if not keys:
            return StepResult.done("every device has failed")
        return StepResult.blocked(keys, "watching for device failures")


class ClusterScheduler(Actor):
    """Leases GPUs of one shared cluster to an open-loop stream of jobs."""

    def __init__(self, cluster, runner, policy="packed", tenants_per_gpu=2,
                 name="cluster-scheduler"):
        super().__init__(name)
        if tenants_per_gpu < 1:
            raise ConfigurationError(
                f"tenants_per_gpu must be at least 1, got {tenants_per_gpu}"
            )
        self.cluster = cluster
        self.runner = runner
        self.policy = make_placement_policy(policy)
        self.tenants_per_gpu = tenants_per_gpu
        self.jobs = {}
        self.load = {rank: 0 for rank in range(cluster.world_size)}
        self._pending_arrivals = []      # JobSpecs sorted by arrival time
        self._started = False
        # Event log: (time_us, event, job_id) for trace inspection.
        self.events = []
        #: Open job-lifecycle spans (placement -> finish), by job id.
        self._job_spans = {}

    def on_registered(self, engine):
        super().on_registered(engine)
        engine.add_actor(_FailureWatch(self))
        if engine.obs.enabled:
            registry = engine.obs.metrics
            registry.gauge_fn("jobs_admitted", lambda: len(self.jobs))
            registry.gauge_fn("jobs_running",
                              lambda: sum(1 for r in self.jobs.values()
                                          if r.state is JobState.RUNNING))
            registry.gauge_fn("jobs_completed",
                              lambda: sum(1 for r in self.jobs.values()
                                          if r.terminal))

    def _obs(self):
        obs = self.cluster.engine.obs
        return obs if obs.enabled else None

    # -- wait keys -------------------------------------------------------------

    @property
    def wake_key(self):
        """Signalled on job completion so a blocked scheduler re-evaluates."""
        return ("multijob-wake", self.name)

    # -- admission -------------------------------------------------------------

    def submit(self, spec):
        """Admit one job spec (before the engine runs)."""
        if self._started:
            raise InvalidStateError(
                "submit() is for pre-run admission; arrivals are replayed by time"
            )
        spec.validate()
        if spec.job_id in self.jobs or any(
            pending.job_id == spec.job_id for pending in self._pending_arrivals
        ):
            raise ConfigurationError(f"job id {spec.job_id!r} already submitted")
        if spec.world_size > self.cluster.world_size:
            raise ConfigurationError(
                f"job {spec.job_id} wants {spec.world_size} GPUs but the cluster "
                f"has {self.cluster.world_size}"
            )
        self._pending_arrivals.append(spec)
        self._pending_arrivals.sort(key=lambda pending: (pending.arrival_time_us,
                                                         pending.job_id))
        return spec

    def submit_all(self, specs):
        for spec in specs:
            self.submit(spec)
        return self

    # -- engine protocol -------------------------------------------------------

    def step(self):
        self._started = True
        self._admit_due(self.now)
        self._reap_failed_ranks(self.now)
        self._try_place_queued(self.now)

        if not self._pending_arrivals and all(
            record.terminal for record in self.jobs.values()
        ):
            return StepResult.done("all jobs finished")

        if self._pending_arrivals:
            # _admit_due already drained everything at or before now, so the
            # head arrival is strictly in the future.
            next_arrival = self._pending_arrivals[0].arrival_time_us
            return StepResult.sleep(next_arrival, "awaiting next job arrival")

        # No arrivals left: park until a completion (or the failure watch)
        # signals the wake key.  If every running job is wedged this block
        # participates in the engine's deadlock detection.
        return StepResult.blocked([self.wake_key], "jobs running; queue parked")

    # -- admission / placement internals --------------------------------------

    def _admit_due(self, now):
        while self._pending_arrivals and \
                self._pending_arrivals[0].arrival_time_us <= now:
            spec = self._pending_arrivals.pop(0)
            record = JobRecord(spec=spec)
            self.jobs[spec.job_id] = record
            self.events.append((spec.arrival_time_us, "arrive", spec.job_id))
            obs = self._obs()
            if obs is not None:
                obs.tracer.event(f"arrive:{spec.job_id}", "job",
                                 spec.arrival_time_us,
                                 attrs={"world_size": spec.world_size})

    def _queued_records(self):
        return sorted(
            (record for record in self.jobs.values()
             if record.state is JobState.QUEUED),
            key=lambda record: (-record.spec.priority,
                                record.spec.arrival_time_us,
                                record.job_id),
        )

    def _effective_load(self):
        """Load map with failed devices reported as full (never placeable)."""
        return {
            rank: (self.tenants_per_gpu if self.cluster.device(rank).failed
                   else self.load[rank])
            for rank in self.load
        }

    def _try_place_queued(self, now):
        """Backfilling placement pass over the queue; returns jobs placed."""
        placed = 0
        for record in self._queued_records():
            ranks = self.policy.place(
                record.spec.world_size, self._effective_load(),
                self.tenants_per_gpu, self.cluster,
            )
            if ranks is None:
                continue
            self._grant(record, ranks, now)
            placed += 1
        return placed

    def _grant(self, record, ranks, now):
        record.lease = DeviceLease(record.job_id, tuple(ranks), now)
        record.start_time_us = now
        record.state = JobState.RUNNING
        for rank in ranks:
            self.load[rank] += 1
        self.events.append((now, "place", record.job_id))
        obs = self._obs()
        if obs is not None:
            obs.metrics.histogram("jobs_queueing_delay_us").observe(
                max(0.0, now - record.spec.arrival_time_us))
            self._job_spans[record.job_id] = obs.tracer.begin(
                f"job:{record.job_id}", "job", now,
                track="lifecycle", job=record.job_id,
                attrs={"ranks": list(ranks),
                       "priority": record.spec.priority})

        def on_rank_complete(rank, time_us, job_id=record.job_id):
            self.on_rank_done(job_id, rank, time_us)

        self.runner.launch(record, now, on_rank_complete)

    # -- completion ------------------------------------------------------------

    def on_rank_done(self, job_id, rank, time_us):
        """Hook run by each rank process's final host op."""
        record = self.jobs[job_id]
        record.ranks_done[rank] = time_us
        self._maybe_finish(record, time_us)

    def _outstanding_ranks(self, record):
        """Leased ranks still owed a completion, ignoring failed devices."""
        return [rank for rank in record.lease.ranks
                if rank not in record.ranks_done
                and not self.cluster.device(rank).failed]

    def _maybe_finish(self, record, time_us):
        if record.state is not JobState.RUNNING:
            return
        if self._outstanding_ranks(record):
            return
        lost = [rank for rank in record.lease.ranks
                if rank not in record.ranks_done]
        record.state = JobState.DEGRADED if lost else JobState.COMPLETED
        record.finish_time_us = time_us
        for rank in record.lease.ranks:
            self.load[rank] -= 1
        # Recycle the job's backend state (pooled communicators etc.).
        self.runner.release(record)
        self.events.append((time_us, "finish", record.job_id))
        obs = self._obs()
        if obs is not None:
            span = self._job_spans.pop(record.job_id, None)
            if span is not None:
                obs.tracer.end(span, time_us, state=record.state.value)
        # Freed capacity: place queued work immediately, then wake the
        # scheduler actor so it can notice overall completion.
        self._try_place_queued(time_us)
        if self.engine is not None:
            self.engine.signal(self.wake_key, time_us)

    def _reap_failed_ranks(self, now):
        """Re-check running jobs whose leased devices died (fault churn).

        A crash can land *after* every surviving rank already finished, in
        which case no further completion hook will ever fire for the job.
        """
        for record in self.jobs.values():
            if record.state is JobState.RUNNING:
                self._maybe_finish(record, now)

    # -- collection ------------------------------------------------------------

    def finalize(self, total_time_us):
        """Mark never-finished jobs, collect per-job results, return records.

        Call after ``engine.run()`` returns (completion, deadline or recorded
        deadlock).  Arrivals the run never reached (a deadline cut before
        their arrival time) are admitted as unfinished/never-placed records,
        so summary denominators always cover the whole submitted stream.
        """
        while self._pending_arrivals:
            spec = self._pending_arrivals.pop(0)
            self.jobs[spec.job_id] = JobRecord(spec=spec)
        for record in self.jobs.values():
            if not record.terminal:
                record.state = JobState.UNFINISHED
            if record.lease is not None:
                self.runner.collect(record, total_time_us)
        return sorted(self.jobs.values(), key=lambda record: record.job_id)

    # -- metrics ---------------------------------------------------------------

    def job_rows(self):
        return [record.row() for record in
                sorted(self.jobs.values(), key=lambda record: record.job_id)]

    def summary(self, total_time_us=None):
        """Aggregate multi-tenant metrics over every admitted job."""
        records = list(self.jobs.values())
        finished = [record for record in records if record.finished]
        unfinished = [record for record in records if not record.finished]
        # Unfinished jobs split into never-placed (queued to the end: the
        # cluster lacked capacity) and placed-but-stuck (wedged, or cut off
        # by the caller's deadline).  Whether "stuck" means *deadlocked* is
        # the engine's call — the bench layer gates on the deadlock report.
        placed_unfinished = [record for record in unfinished
                             if record.lease is not None]
        jcts = [record.jct_us for record in finished if record.jct_us is not None]
        queueing = [record.queueing_delay_us for record in records
                    if record.queueing_delay_us is not None]
        slo_evaluated = [record for record in records
                         if record.slo_attained is not None]
        completed_samples = sum(record.samples_processed for record in finished)
        makespan = total_time_us
        if makespan is None:
            makespan = max((record.finish_time_us for record in finished),
                           default=0.0)
        return {
            "jobs": len(records),
            "completed": len(finished),
            "degraded": sum(1 for record in finished
                            if record.state is JobState.DEGRADED),
            "unfinished": len(unfinished),
            "never_placed": len(unfinished) - len(placed_unfinished),
            "stuck_ratio": (len(placed_unfinished) / len(records)) if records else 0.0,
            "mean_jct_us": (sum(jcts) / len(jcts)) if jcts else None,
            "max_jct_us": max(jcts) if jcts else None,
            "mean_queueing_delay_us": (sum(queueing) / len(queueing))
                                      if queueing else None,
            "aggregate_goodput_samples_per_s": (
                completed_samples / (makespan / 1e6) if makespan else 0.0
            ),
            "slo_attainment": (
                sum(1 for record in slo_evaluated if record.slo_attained)
                / len(slo_evaluated) if slo_evaluated else None
            ),
        }


def install_scheduler(cluster, runner, specs, policy="packed", tenants_per_gpu=2):
    """Create a scheduler, admit ``specs`` and register it with the engine."""
    scheduler = ClusterScheduler(cluster, runner, policy=policy,
                                 tenants_per_gpu=tenants_per_gpu)
    scheduler.submit_all(specs)
    cluster.engine.add_actor(scheduler)
    return scheduler
