"""Horovod-style dynamic centralized coordination.

Horovod's background coordinator runs a negotiation cycle: every rank reports
which tensors are ready, the coordinator intersects the readiness bitmaps and
broadcasts the list of collectives that may start, in a globally consistent
order.  A tensor therefore waits, on average, half a cycle before it can be
negotiated, plus the gather/broadcast round trip — this is the coordination
overhead that keeps Horovod's ResNet50 throughput ~20% below DFCCL's in
Fig. 10.
"""

from __future__ import annotations

from repro.orchestration.base import Orchestrator, OrchestratorDecision


class HorovodOrchestrator(Orchestrator):
    """Dynamic central coordinator (gather readiness, broadcast order)."""

    name = "horovod"
    supports_hybrid = False

    #: Horovod's default coordination cycle time (5 ms).
    CYCLE_TIME_US = 5_000.0
    #: Collectives negotiated per cycle (response batching).  Gradient tensors
    #: of ResNet-class models are typically announced one negotiation round
    #: apart, so each pays roughly half a cycle of latency.
    COLLECTIVES_PER_CYCLE = 1

    def __init__(self, world_size=8, network_rtt_us=50.0, cycle_time_us=None):
        super().__init__(world_size, network_rtt_us)
        self.cycle_time_us = cycle_time_us or self.CYCLE_TIME_US

    def coordinate(self, per_rank_orders, step_index=0):
        self.steps_coordinated += 1
        order = self._common_order(per_rank_orders)
        # Each negotiation: wait for the next cycle boundary (half a cycle on
        # average), then a gather from every rank and a broadcast back.
        gather_broadcast = 2 * self.network_rtt_us + self.world_size * 2.0
        per_collective = (
            self.cycle_time_us / 2.0 + gather_broadcast
        ) / self.COLLECTIVES_PER_CYCLE
        return OrchestratorDecision(
            order=order,
            per_collective_delay_us=per_collective,
            per_step_delay_us=self.cycle_time_us / 2.0,
            notes="dynamic centralized coordination",
        )
