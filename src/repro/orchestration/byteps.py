"""BytePS-style centralized coordination among intra-node GPUs.

BytePS requires centralized coordination prior to invoking collectives among
the GPUs of one node: a node-local server process sequences the push/pull
operations.  Coordination stays on the local PCIe/QPI fabric, so the per
collective delay is smaller than Horovod's network-wide cycle but still paid
for every collective.
"""

from __future__ import annotations

from repro.orchestration.base import Orchestrator, OrchestratorDecision


class BytePSOrchestrator(Orchestrator):
    """Per-node centralized sequencing of collectives."""

    name = "byteps"
    supports_hybrid = False

    #: Node-local coordination latency per collective (us).
    LOCAL_COORDINATION_US = 120.0

    def __init__(self, world_size=8, network_rtt_us=50.0, gpus_per_node=8):
        super().__init__(world_size, network_rtt_us)
        self.gpus_per_node = gpus_per_node

    def coordinate(self, per_rank_orders, step_index=0):
        self.steps_coordinated += 1
        order = self._common_order(per_rank_orders)
        num_nodes = max(1, self.world_size // self.gpus_per_node)
        cross_node = (num_nodes - 1) * self.network_rtt_us
        return OrchestratorDecision(
            order=order,
            per_collective_delay_us=self.LOCAL_COORDINATION_US + cross_node,
            per_step_delay_us=0.0,
            notes="intra-node centralized coordination",
        )
