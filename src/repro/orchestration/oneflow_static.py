"""OneFlow-style static sorting.

OneFlow's compiler constructs the task graph of every GPU ahead of time and
sorts collectives by the graph's topological order; at run time every GPU
simply initiates collectives following its pre-sorted sequence.  There is no
runtime negotiation, so the steady-state overhead is essentially zero — which
is why statically-sorted NCCL is the strongest baseline in Fig. 10 and the
reference DFCCL is compared against in Fig. 12.
"""

from __future__ import annotations

from repro.orchestration.base import Orchestrator, OrchestratorDecision


class OneFlowStaticSortOrchestrator(Orchestrator):
    """Compile-time topological sorting of collectives."""

    name = "oneflow-static"
    supports_hybrid = True

    #: One-time compilation cost charged before the first step (us).
    COMPILE_COST_US = 20_000.0
    #: Tiny per-collective runtime dispatch cost (us).
    DISPATCH_COST_US = 2.0

    def coordinate(self, per_rank_orders, step_index=0):
        self.steps_coordinated += 1
        # The topological order of the compiled task graph: collectives sorted
        # by their (deterministic) keys, which encode graph position.
        keys = set()
        for order in per_rank_orders.values():
            keys.update(order)
        order = sorted(keys)
        one_time = self.COMPILE_COST_US if step_index == 0 else 0.0
        return OrchestratorDecision(
            order=order,
            per_collective_delay_us=self.DISPATCH_COST_US,
            one_time_delay_us=one_time,
            notes="static topological sorting",
        )
