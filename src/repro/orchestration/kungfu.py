"""KungFu-style first-step negotiation with decentralized enforcement.

KungFu determines the predominant collective calling order during the first
training step via gather and broadcast operations; afterwards decentralized
schedulers on every rank enforce that order.  The one-time negotiation is
expensive, the steady-state enforcement adds a small per-collective check, and
collectives that arrive out of the negotiated order must wait for their turn.
"""

from __future__ import annotations

from repro.orchestration.base import Orchestrator, OrchestratorDecision


class KungFuOrchestrator(Orchestrator):
    """Order negotiated in step 0, then enforced locally on every rank."""

    name = "kungfu"
    supports_hybrid = False

    #: Per-collective cost of waiting for the decentralized schedulers to agree
    #: that it is this collective's turn in the enforced order (us).
    ENFORCEMENT_CHECK_US = 2_100.0
    #: One-time negotiation cost per collective in the first step (us).
    NEGOTIATION_PER_COLLECTIVE_US = 400.0

    def __init__(self, world_size=8, network_rtt_us=50.0):
        super().__init__(world_size, network_rtt_us)
        self._negotiated_order = None

    def coordinate(self, per_rank_orders, step_index=0):
        self.steps_coordinated += 1
        if self._negotiated_order is None:
            # First step: gather every rank's order, pick the predominant one.
            self._negotiated_order = self._common_order(per_rank_orders)
            one_time = (
                len(self._negotiated_order) * self.NEGOTIATION_PER_COLLECTIVE_US
                + 2 * self.network_rtt_us * self.world_size
            )
            return OrchestratorDecision(
                order=list(self._negotiated_order),
                per_collective_delay_us=self.ENFORCEMENT_CHECK_US,
                one_time_delay_us=one_time,
                notes="first-step negotiation",
            )
        # Steady state: enforce the already-negotiated order.  Collectives not
        # present in the negotiated order (e.g. newly appearing ones) are
        # appended, mirroring KungFu's fallback behaviour.
        order = list(self._negotiated_order)
        known = set(order)
        for rank in sorted(per_rank_orders):
            for key in per_rank_orders[rank]:
                if key not in known:
                    known.add(key)
                    order.append(key)
        return OrchestratorDecision(
            order=order,
            per_collective_delay_us=self.ENFORCEMENT_CHECK_US,
            notes="decentralized enforcement",
        )
