"""Common interface of the CPU-orchestration baselines."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OrchestratorDecision:
    """The enforced consistent order plus the coordination cost of reaching it."""

    order: list
    per_collective_delay_us: float = 0.0
    per_step_delay_us: float = 0.0
    one_time_delay_us: float = 0.0
    notes: str = ""


class Orchestrator:
    """Base class: derive the enforced order from the ranks' desired orders.

    ``coordinate`` receives a mapping ``rank -> list of collective keys`` (the
    order in which each rank *wants* to invoke its collectives during one
    step) and returns an :class:`OrchestratorDecision` with a single order
    that every rank will follow, plus the coordination overheads charged for
    achieving it.
    """

    name = "base"
    #: Whether the method can orchestrate 3D-hybrid (PP-containing) schedules.
    supports_hybrid = False

    def __init__(self, world_size=8, network_rtt_us=50.0):
        self.world_size = world_size
        self.network_rtt_us = network_rtt_us
        self.steps_coordinated = 0

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _common_order(per_rank_orders, reference_rank=None):
        """A canonical order containing every key exactly once.

        Keys are taken in the order of the reference rank (defaults to the
        lowest rank), followed by keys only other ranks have, in rank order.
        """
        if not per_rank_orders:
            return []
        if reference_rank is None:
            reference_rank = min(per_rank_orders)
        seen = set()
        order = []
        for key in per_rank_orders[reference_rank]:
            if key not in seen:
                seen.add(key)
                order.append(key)
        for rank in sorted(per_rank_orders):
            for key in per_rank_orders[rank]:
                if key not in seen:
                    seen.add(key)
                    order.append(key)
        return order

    def coordinate(self, per_rank_orders, step_index=0):
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} world={self.world_size}>"
