"""CPU-orchestration baselines (Sec. 2.5).

Existing systems prevent circular collective dependency by forcing every GPU
to invoke collectives in a consistent order, using extra CPU coordination:

* **Horovod** — a dynamic central coordinator gathers readiness from every
  rank each cycle and broadcasts the agreed execution order;
* **BytePS** — centralized coordination among intra-node GPUs before invoking
  collectives;
* **KungFu** — the predominant calling order is negotiated during the first
  training step, then decentralized schedulers enforce it;
* **OneFlow** — the compiler statically sorts collectives by the task graph's
  topological order, so no runtime negotiation is needed;
* **Megatron-LM manual hardcoding** — engineers hand-arrange the collectives
  of every group for 3D-hybrid parallelism.

Each baseline exposes the enforced order plus the per-collective and per-step
coordination overheads it adds, which is what differentiates their training
throughput from DFCCL's in Figs. 10, 12 and 13.
"""

from repro.orchestration.base import Orchestrator, OrchestratorDecision
from repro.orchestration.horovod import HorovodOrchestrator
from repro.orchestration.byteps import BytePSOrchestrator
from repro.orchestration.kungfu import KungFuOrchestrator
from repro.orchestration.oneflow_static import OneFlowStaticSortOrchestrator
from repro.orchestration.megatron_manual import MegatronManualOrchestrator

__all__ = [
    "BytePSOrchestrator",
    "HorovodOrchestrator",
    "KungFuOrchestrator",
    "MegatronManualOrchestrator",
    "OneFlowStaticSortOrchestrator",
    "Orchestrator",
    "OrchestratorDecision",
]


def make_orchestrator(name, **kwargs):
    """Factory over the five baselines by name."""
    registry = {
        "horovod": HorovodOrchestrator,
        "byteps": BytePSOrchestrator,
        "kungfu": KungFuOrchestrator,
        "oneflow": OneFlowStaticSortOrchestrator,
        "oneflow-static": OneFlowStaticSortOrchestrator,
        "megatron": MegatronManualOrchestrator,
        "megatron-manual": MegatronManualOrchestrator,
    }
    try:
        return registry[name](**kwargs)
    except KeyError:
        raise ValueError(f"unknown orchestrator {name!r}") from None
