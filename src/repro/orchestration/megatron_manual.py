"""Megatron-LM-style manual collective orchestration.

When pipeline parallelism is combined with other parallel techniques, the only
practical existing approach is manual hardcoding: engineers arrange each GPU's
collectives for its TP, DP and PP groups by hand so that all GPUs follow a
consistent global order.  Runtime overhead is negligible, but the arrangement
is tied to the specific hybrid-parallel configuration — changing the plan
means re-deriving and re-verifying the order by hand.
"""

from __future__ import annotations

from repro.orchestration.base import Orchestrator, OrchestratorDecision


class MegatronManualOrchestrator(Orchestrator):
    """Hand-written consistent order for 3D-hybrid parallelism."""

    name = "megatron-manual"
    supports_hybrid = True

    #: Per-collective dispatch cost of the hardcoded schedule (us).
    DISPATCH_COST_US = 3.0

    def __init__(self, world_size=8, network_rtt_us=50.0, hardcoded_order=None):
        super().__init__(world_size, network_rtt_us)
        self.hardcoded_order = list(hardcoded_order) if hardcoded_order else None

    def coordinate(self, per_rank_orders, step_index=0):
        self.steps_coordinated += 1
        if self.hardcoded_order is not None:
            order = list(self.hardcoded_order)
            known = set(order)
            for rank in sorted(per_rank_orders):
                for key in per_rank_orders[rank]:
                    if key not in known:
                        known.add(key)
                        order.append(key)
        else:
            # The hand-derived order groups TP collectives before DP collectives
            # stage by stage, which a sorted key encoding reproduces.
            keys = set()
            for rank_order in per_rank_orders.values():
                keys.update(rank_order)
            order = sorted(keys)
        return OrchestratorDecision(
            order=order,
            per_collective_delay_us=self.DISPATCH_COST_US,
            notes="manually hardcoded order",
        )
