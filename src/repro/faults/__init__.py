"""Fault injection and chaos scenarios (``repro.faults``).

The paper's evaluation exercises healthy clusters; this package adds the
degraded-resource conditions real deployments see — stragglers, link flaps,
transient kernel stalls, rank crashes — as first-class, reproducible events
in the discrete-event engine:

* :mod:`repro.faults.plan` — the :class:`FaultPlan` schema: composable,
  seeded schedules of :class:`FaultEvent` records;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` service actor
  that replays a plan into a cluster;
* :mod:`repro.faults.scenarios` — chaos runners driving DFCCL and the NCCL
  baseline through identical plans, including the headline rank-crash
  comparison (baseline deadlocks with a wait-for cycle through the dead rank;
  DFCCL detects the crash by CQE timeout, shrinks the group and completes).

The matching recovery machinery lives in :mod:`repro.core.recovery`.
"""

from repro.faults.injector import FaultInjector, install_fault_plan
from repro.faults.plan import FAULT_KINDS, AtomicAction, FaultEvent, FaultPlan
from repro.faults.scenarios import (
    ChaosResult,
    chaos_rank_crash_comparison,
    contribution_values,
    run_chaos,
    run_dfccl_chaos,
    run_nccl_chaos,
)

__all__ = [
    "AtomicAction",
    "ChaosResult",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "chaos_rank_crash_comparison",
    "contribution_values",
    "install_fault_plan",
    "run_chaos",
    "run_dfccl_chaos",
    "run_nccl_chaos",
]
