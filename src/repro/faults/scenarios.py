"""Chaos scenarios: every backend driven through the same fault plan.

One runner, :func:`run_chaos`, builds a fresh cluster, obtains the requested
backend from the ``repro.api`` registry, installs a :class:`FaultInjector`
for the given plan and drives the same ProcessGroup workload — there is no
per-backend program construction left.  What survives differs by backend:

* the baseline's dedicated kernels block unboundedly on dead peers, so a rank
  crash turns into an engine-level deadlock whose wait-for cycle
  :func:`repro.deadlock.fault_scenarios.analyze_fault_deadlock` extracts;
* DFCCL's daemon kernels preempt instead of blocking, the recovery manager
  detects the crash via CQE timeout, shrinks the group, and the surviving
  ranks complete every remaining collective — with byte-identical reduction
  results, checked through per-rank reduction fingerprints recomputed from
  each work's :meth:`~repro.api.Work.completion_info` member set.

:func:`run_dfccl_chaos` and :func:`run_nccl_chaos` remain as thin
parameterizations of :func:`run_chaos`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import make_backend, wait_all
from repro.common.rng import DeterministicRNG
from repro.core import DfcclConfig
from repro.common.types import CollectiveKind, CollectiveSpec
from repro.deadlock.fault_scenarios import analyze_fault_deadlock
from repro.faults.injector import install_fault_plan
from repro.faults.plan import FaultPlan
from repro.gpusim import HostProgram, build_cluster

#: Default virtual-time deadline: a run not finished by then is stuck.
DEFAULT_DEADLINE_US = 120_000.0


@dataclass
class ChaosResult:
    """Outcome of one backend run under one fault plan."""

    backend: str
    plan: dict
    outcome: str                      # "completed" | "stuck" | "deadlock"
    time_us: float = 0.0
    crashed_ranks: tuple = ()
    survivor_ranks: tuple = ()
    expected_per_survivor: int = 0
    completions: dict = field(default_factory=dict)   # rank -> [records]
    recovery: dict = field(default_factory=dict)
    analysis: object = None
    injected: list = field(default_factory=list)

    @property
    def deadlocked(self):
        return self.outcome == "deadlock"

    def min_survivor_completions(self):
        if not self.survivor_ranks:
            return 0
        return min(len(self.completions.get(rank, ()))
                   for rank in self.survivor_ranks)

    def reduction_fingerprints(self):
        """Per-invocation reduction results, grouped across survivors.

        Returns ``{(coll_id, index): {rank: (signature, reduced_sum)}}``.
        Ranks sharing a signature (same recovery generation and participant
        set) must hold byte-identical sums; a survivor whose part completed
        *before* a crash legitimately keeps the pre-crash full-group result,
        which the signature's generation field makes distinguishable.
        """
        grouped = {}
        for rank, records in self.completions.items():
            for record in records:
                key = (record["coll_id"], record["index"])
                grouped.setdefault(key, {})[rank] = (
                    record["signature"], record["reduced"]
                )
        return grouped

    def fingerprints_consistent(self):
        """True when every rank pair sharing a signature agrees on the sum."""
        for per_rank in self.reduction_fingerprints().values():
            by_signature = {}
            for signature, reduced in per_rank.values():
                by_signature.setdefault(signature, set()).add(reduced)
            if any(len(values) > 1 for values in by_signature.values()):
                return False
        return True


def contribution_values(ranks, seed):
    """Deterministic per-rank integer contributions to the reductions."""
    rng = DeterministicRNG(seed)
    return {rank: rng.child("contribution", rank).randint(1, 1 << 20)
            for rank in ranks}


def _survivors(ranks, plan):
    crashed = set(plan.crash_ranks())
    return tuple(rank for rank in ranks if rank not in crashed)


# -- the backend-agnostic runner -------------------------------------------------------


def run_chaos(backend, plan, topology="dual-3090-nvlink", world_size=16,
              num_collectives=3, nbytes=1 << 20, iterations=2,
              deadline_us=DEFAULT_DEADLINE_US, seed=17, label=None, **knobs):
    """Run the shared all-reduce chaos workload through any registered backend.

    ``knobs`` go to :func:`repro.api.make_backend` (e.g. ``config=`` for
    DFCCL recovery settings).  Each completed work's reduction is recomputed
    from the member set its rank *actually* communicated over
    (:meth:`~repro.api.Work.completion_info`), so the result records double
    as byte-identical-reduction checks on every backend.
    """
    cluster = build_cluster(topology, deadlock_mode="record")
    if world_size > cluster.world_size:
        raise ValueError(f"topology {topology} has only {cluster.world_size} GPUs")
    ranks = list(range(world_size))
    api_backend = make_backend(backend, cluster, **knobs)
    group = api_backend.new_group(ranks)
    count = max(1, nbytes // 4)
    spec = CollectiveSpec(CollectiveKind.ALL_REDUCE, count)
    # Declare in key order so backend-side id assignment stays deterministic.
    for coll_id in range(num_collectives):
        group.ensure_collective(spec, key=coll_id)

    injector = install_fault_plan(cluster, plan)
    contributions = contribution_values(ranks, seed)

    works_by_rank = {rank: [] for rank in ranks}
    programs = []
    for rank in ranks:
        ops = []
        for _ in range(iterations):
            works = [group.all_reduce(rank, count, key=coll_id)
                     for coll_id in range(num_collectives)]
            works_by_rank[rank].extend(works)
            ops.extend(work.submit_op() for work in works)
            ops.extend(wait_all(works))
        ops.extend(api_backend.finalize_ops(rank))
        programs.append(HostProgram(ops))
    cluster.add_hosts(programs)

    final_time = cluster.run(until_us=deadline_us)

    completions = {rank: [] for rank in ranks}
    for rank, works in works_by_rank.items():
        for work in works:
            if not work.done:
                continue
            info = work.completion_info()
            completions[rank].append({
                "coll_id": work.key,
                "index": work.index,
                "signature": info.signature,
                "reduced": sum(contributions[member]
                               for member in info.member_ranks),
                "time_us": info.time_us,
            })

    survivors = _survivors(ranks, plan)
    expected = num_collectives * iterations
    report = cluster.engine.deadlock_report
    if report is not None:
        outcome = "deadlock"
    elif all(len(completions[rank]) >= expected for rank in survivors):
        outcome = "completed"
    else:
        outcome = "stuck"

    diagnostics = api_backend.diagnostics()
    result = ChaosResult(
        backend=label or api_backend.name,
        plan=plan.describe(),
        outcome=outcome,
        time_us=final_time,
        crashed_ranks=tuple(plan.crash_ranks()),
        survivor_ranks=survivors,
        expected_per_survivor=expected,
        completions=completions,
        recovery=diagnostics.get("recovery", {}),
        analysis=analyze_fault_deadlock(report, cluster),
        injected=list(injector.applied),
    )
    if "daemon_stats" in diagnostics:
        result.daemon_stats = diagnostics["daemon_stats"]
    return result


# -- backend parameterizations ---------------------------------------------------------


def run_dfccl_chaos(plan, topology="dual-3090-nvlink", world_size=16,
                    num_collectives=3, nbytes=1 << 20, iterations=2,
                    config=None, recovery=True, deadline_us=DEFAULT_DEADLINE_US,
                    seed=17):
    """Run the chaos workload through DFCCL (optionally without recovery)."""
    base = config or DfcclConfig()
    return run_chaos(
        "dfccl", plan, topology, world_size, num_collectives, nbytes, iterations,
        deadline_us=deadline_us, seed=seed,
        label="dfccl" if recovery else "dfccl-no-recovery",
        config=base.with_overrides(recovery_enabled=recovery),
    )


def run_nccl_chaos(plan, topology="dual-3090-nvlink", world_size=16,
                   num_collectives=3, nbytes=1 << 20, iterations=2,
                   deadline_us=DEFAULT_DEADLINE_US, seed=17):
    """Run the same workload through the dedicated-kernel baseline."""
    return run_chaos("nccl", plan, topology, world_size, num_collectives,
                     nbytes, iterations, deadline_us=deadline_us, seed=seed)


# -- the headline comparison -----------------------------------------------------------


def chaos_rank_crash_comparison(topology="dual-3090-nvlink", world_size=16,
                                crash_rank=None, crash_at_us=120.0,
                                nbytes=1 << 20, num_collectives=2, iterations=2,
                                seed=17, config=None,
                                deadline_us=DEFAULT_DEADLINE_US):
    """Rank crash mid-all-reduce: the baseline wedges, DFCCL shrinks and finishes.

    Returns ``{"plan", "nccl", "dfccl"}`` where the NCCL result carries the
    wait-for-cycle analysis and the DFCCL result carries recovery events and
    per-rank reduction fingerprints.
    """
    victim = crash_rank if crash_rank is not None else world_size // 2
    plan = FaultPlan(name="rank-crash-mid-allreduce").add_crash(victim, crash_at_us)
    nccl = run_nccl_chaos(plan, topology, world_size, num_collectives, nbytes,
                          iterations, deadline_us=deadline_us, seed=seed)
    dfccl = run_dfccl_chaos(plan, topology, world_size, num_collectives, nbytes,
                            iterations, config=config, recovery=True,
                            deadline_us=deadline_us, seed=seed)
    return {"plan": plan.describe(), "nccl": nccl, "dfccl": dfccl}
