"""Chaos scenarios: both backends driven through the same fault plan.

Every runner builds a fresh cluster, installs a :class:`FaultInjector` for the
given plan, runs the same collective workload through DFCCL or the NCCL-style
baseline, and reports what survived:

* the baseline's dedicated kernels block unboundedly on dead peers, so a rank
  crash turns into an engine-level deadlock whose wait-for cycle
  :func:`repro.deadlock.fault_scenarios.analyze_fault_deadlock` extracts;
* DFCCL's daemon kernels preempt instead of blocking, the recovery manager
  detects the crash via CQE timeout, shrinks the group, and the surviving
  ranks complete every remaining collective — with byte-identical reduction
  results, which the scenario checks through per-rank reduction fingerprints
  computed independently in each rank's completion callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.rng import DeterministicRNG
from repro.core import DfcclBackend, DfcclConfig
from repro.deadlock.fault_scenarios import analyze_fault_deadlock
from repro.faults.injector import install_fault_plan
from repro.faults.plan import FaultPlan
from repro.gpusim import HostProgram, build_cluster
from repro.ncclsim import NcclBackend
from repro.ncclsim.program import launch_collective, wait_collective

#: Default virtual-time deadline: a run not finished by then is stuck.
DEFAULT_DEADLINE_US = 120_000.0


@dataclass
class ChaosResult:
    """Outcome of one backend run under one fault plan."""

    backend: str
    plan: dict
    outcome: str                      # "completed" | "stuck" | "deadlock"
    time_us: float = 0.0
    crashed_ranks: tuple = ()
    survivor_ranks: tuple = ()
    expected_per_survivor: int = 0
    completions: dict = field(default_factory=dict)   # rank -> [records]
    recovery: dict = field(default_factory=dict)
    analysis: object = None
    injected: list = field(default_factory=list)

    @property
    def deadlocked(self):
        return self.outcome == "deadlock"

    def min_survivor_completions(self):
        if not self.survivor_ranks:
            return 0
        return min(len(self.completions.get(rank, ()))
                   for rank in self.survivor_ranks)

    def reduction_fingerprints(self):
        """Per-invocation reduction results, grouped across survivors.

        Returns ``{(coll_id, index): {rank: (signature, reduced_sum)}}``.
        Ranks sharing a signature (same recovery generation and participant
        set) must hold byte-identical sums; a survivor whose callback fired
        *before* a crash legitimately keeps the pre-crash full-group result,
        which the signature's generation field makes distinguishable.
        """
        grouped = {}
        for rank, records in self.completions.items():
            for record in records:
                key = (record["coll_id"], record["index"])
                grouped.setdefault(key, {})[rank] = (
                    record["signature"], record["reduced"]
                )
        return grouped

    def fingerprints_consistent(self):
        """True when every rank pair sharing a signature agrees on the sum."""
        for per_rank in self.reduction_fingerprints().values():
            by_signature = {}
            for signature, reduced in per_rank.values():
                by_signature.setdefault(signature, set()).add(reduced)
            if any(len(values) > 1 for values in by_signature.values()):
                return False
        return True


def contribution_values(ranks, seed):
    """Deterministic per-rank integer contributions to the reductions."""
    rng = DeterministicRNG(seed)
    return {rank: rng.child("contribution", rank).randint(1, 1 << 20)
            for rank in ranks}


def _survivors(ranks, plan):
    crashed = set(plan.crash_ranks())
    return tuple(rank for rank in ranks if rank not in crashed)


# -- DFCCL under chaos ---------------------------------------------------------------


def run_dfccl_chaos(plan, topology="dual-3090-nvlink", world_size=16,
                    num_collectives=3, nbytes=1 << 20, iterations=2,
                    config=None, recovery=True, deadline_us=DEFAULT_DEADLINE_US,
                    seed=17):
    """Run a DFCCL all-reduce workload with ``plan`` injected.

    Each surviving rank's completion callback independently recomputes the
    reduction over the invocation's participant set, so the result records
    double as byte-identical-reduction checks.
    """
    cluster = build_cluster(topology, deadlock_mode="record")
    base = config or DfcclConfig()
    backend = DfcclBackend(cluster, base.with_overrides(recovery_enabled=recovery))
    ranks = list(range(world_size))
    if world_size > cluster.world_size:
        raise ValueError(f"topology {topology} has only {cluster.world_size} GPUs")
    backend.init_all_ranks(ranks)
    for coll_id in range(num_collectives):
        backend.register_all_reduce(coll_id, count=max(1, nbytes // 4), ranks=ranks)

    injector = install_fault_plan(cluster, plan)
    contributions = contribution_values(ranks, seed)
    completions = {rank: [] for rank in ranks}

    def make_callback(global_rank):
        def callback(invocation):
            group_rank = invocation.coll.global_ranks.index(global_rank)
            # The signature this rank's GPU part actually completed under —
            # a survivor that finished before a crash keeps the pre-crash
            # full-group identity even though its callback fires later.
            signature = invocation.completion_signatures.get(
                group_rank, invocation.participant_signature()
            )
            # The reduction is recomputed from the member set of the
            # communicator this rank *actually* communicated over — per-rank
            # ground truth, so a rank left running a stale pre-recovery
            # executor would report a different sum than its signature group.
            executor = invocation.executor_if_cached(group_rank)
            if executor is not None:
                members = [cluster.rank_of(device)
                           for device in executor.communicator.devices]
            else:
                members = [invocation.coll.global_ranks[rank]
                           for rank in signature[1]]
            completions[global_rank].append({
                "coll_id": invocation.coll_id,
                "index": invocation.index,
                "signature": signature,
                "reduced": sum(contributions[rank] for rank in members),
                "time_us": invocation.complete_times.get(group_rank),
            })
        return callback

    programs = []
    for rank in ranks:
        ops = []
        for _ in range(iterations):
            handles = [backend.submit(rank, coll_id, callback=make_callback(rank))
                       for coll_id in range(num_collectives)]
            ops.extend(handle.submit_op() for handle in handles)
            ops.extend(handle.wait_op() for handle in handles)
        ops.append(backend.destroy_op(rank))
        programs.append(HostProgram(ops))
    cluster.add_hosts(programs)

    final_time = cluster.run(until_us=deadline_us)

    survivors = _survivors(ranks, plan)
    expected = num_collectives * iterations
    done = all(len(completions[rank]) >= expected for rank in survivors)
    manager = backend.recovery_manager
    recovery_summary = {}
    if manager is not None:
        stats = manager.stats
        recovery_summary = {
            "recoveries": stats.recoveries,
            "invocations_rerun": stats.invocations_rerun,
            "suspected_stragglers": stats.suspected_stragglers,
            "abandoned": stats.abandoned,
            "events": [
                {
                    "time_us": event.time_us,
                    "coll_id": event.coll_id,
                    "failed_ranks": event.failed_ranks,
                    "survivor_ranks": event.survivor_ranks,
                    "detection_latency_us": event.detection_latency_us,
                    "generation": event.generation,
                }
                for event in stats.events
            ],
        }
    result = ChaosResult(
        backend="dfccl" if recovery else "dfccl-no-recovery",
        plan=plan.describe(),
        outcome="completed" if done else "stuck",
        time_us=final_time,
        crashed_ranks=tuple(plan.crash_ranks()),
        survivor_ranks=survivors,
        expected_per_survivor=expected,
        completions=completions,
        recovery=recovery_summary,
        injected=list(injector.applied),
    )
    result.daemon_stats = backend.all_stats()
    return result


# -- NCCL baseline under chaos ----------------------------------------------------------


def run_nccl_chaos(plan, topology="dual-3090-nvlink", world_size=16,
                   num_collectives=3, nbytes=1 << 20, iterations=2,
                   deadline_us=DEFAULT_DEADLINE_US):
    """Run the same workload through the dedicated-kernel baseline."""
    cluster = build_cluster(topology, deadlock_mode="record")
    nccl = NcclBackend(cluster)
    ranks = list(range(world_size))
    if world_size > cluster.world_size:
        raise ValueError(f"topology {topology} has only {cluster.world_size} GPUs")
    comm = nccl.create_communicator(ranks=ranks)
    count = max(1, nbytes // 4)
    ops_by_iter = [
        [comm.all_reduce(iteration * num_collectives + coll_id, count)
         for coll_id in range(num_collectives)]
        for iteration in range(iterations)
    ]

    injector = install_fault_plan(cluster, plan)

    programs = []
    for rank in ranks:
        ops = []
        for iteration_ops in ops_by_iter:
            for op in iteration_ops:
                ops.append(launch_collective(nccl, op, rank))
            for op in iteration_ops:
                ops.append(wait_collective(op, comm.group_rank(rank)))
        programs.append(HostProgram(ops))
    cluster.add_hosts(programs)

    final_time = cluster.run(until_us=deadline_us)
    report = cluster.engine.deadlock_report
    analysis = analyze_fault_deadlock(report, cluster)

    completions = {
        rank: [
            {"coll_id": op.op_id, "index": 0,
             "signature": (0, tuple(sorted(range(op.group_size)))),
             "reduced": None}
            for iteration_ops in ops_by_iter for op in iteration_ops
            if op.is_complete(comm.group_rank(rank))
        ]
        for rank in ranks
    }
    survivors = _survivors(ranks, plan)
    expected = num_collectives * iterations
    if report is not None:
        outcome = "deadlock"
    elif all(len(completions[rank]) >= expected for rank in survivors):
        outcome = "completed"
    else:
        outcome = "stuck"
    return ChaosResult(
        backend="nccl",
        plan=plan.describe(),
        outcome=outcome,
        time_us=final_time,
        crashed_ranks=tuple(plan.crash_ranks()),
        survivor_ranks=survivors,
        expected_per_survivor=expected,
        completions=completions,
        analysis=analysis,
        injected=list(injector.applied),
    )


# -- the headline comparison -----------------------------------------------------------


def chaos_rank_crash_comparison(topology="dual-3090-nvlink", world_size=16,
                                crash_rank=None, crash_at_us=120.0,
                                nbytes=1 << 20, num_collectives=2, iterations=2,
                                seed=17, config=None,
                                deadline_us=DEFAULT_DEADLINE_US):
    """Rank crash mid-all-reduce: the baseline wedges, DFCCL shrinks and finishes.

    Returns ``{"plan", "nccl", "dfccl"}`` where the NCCL result carries the
    wait-for-cycle analysis and the DFCCL result carries recovery events and
    per-rank reduction fingerprints.
    """
    victim = crash_rank if crash_rank is not None else world_size // 2
    plan = FaultPlan(name="rank-crash-mid-allreduce").add_crash(victim, crash_at_us)
    nccl = run_nccl_chaos(plan, topology, world_size, num_collectives, nbytes,
                          iterations, deadline_us=deadline_us)
    dfccl = run_dfccl_chaos(plan, topology, world_size, num_collectives, nbytes,
                            iterations, config=config, recovery=True,
                            deadline_us=deadline_us, seed=seed)
    return {"plan": plan.describe(), "nccl": nccl, "dfccl": dfccl}
