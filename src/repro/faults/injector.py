"""The fault injector: replays a :class:`FaultPlan` into the event engine.

The injector is a service actor (``daemon = True``): it sleeps until the next
scheduled fault, applies it to the cluster, and finishes after the last one.
Because the engine only jumps virtual time to the earliest sleeper when every
worker is blocked, faults interleave with normal execution exactly as wall
clock faults would — including firing *while* collectives are mid-flight.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.gpusim.engine import Actor, StepResult


class FaultInjector(Actor):
    """Applies a fault plan's timeline to one simulated cluster."""

    daemon = True

    def __init__(self, cluster, plan, name=None):
        super().__init__(name or f"fault-injector-{plan.name}")
        self.cluster = cluster
        self.plan = plan.validate()
        self._timeline = plan.timeline()
        self._cursor = 0
        #: Active slowdown factors per rank: overlapping stragglers stack
        #: (the worst factor wins) and one ending never cancels another.
        self._active_slowdowns = {}
        #: ``(time_us, action, event)`` records of everything applied.
        self.applied = []

    # -- engine protocol -------------------------------------------------------

    def step(self):
        if self._cursor >= len(self._timeline):
            return StepResult.done("fault plan exhausted")
        action = self._timeline[self._cursor]
        if action.time_us > self.now:
            return StepResult.sleep(action.time_us, f"armed {action.action}")
        self._cursor += 1
        detail = self._apply(action)
        return StepResult.progress(detail)

    # -- fault application -----------------------------------------------------

    def _device_id(self, rank):
        return self.cluster.device(rank).device_id

    def _apply(self, action):
        event = action.event
        now = max(self.now, action.time_us)
        if action.action == "crash":
            killed = self.cluster.fail_rank(event.rank, now)
            detail = f"crashed rank {event.rank} ({len(killed)} actors killed)"
        elif action.action == "slowdown":
            factors = self._active_slowdowns.setdefault(event.rank, [])
            factors.append(event.factor)
            self.cluster.device(event.rank).set_slowdown(max(factors), now)
            detail = f"slowed rank {event.rank} by {event.factor:g}x"
        elif action.action == "restore_speed":
            factors = self._active_slowdowns.get(event.rank, [])
            if event.factor in factors:
                factors.remove(event.factor)
            self.cluster.device(event.rank).set_slowdown(
                max(factors) if factors else 1.0, now
            )
            detail = f"restored rank {event.rank} speed"
        elif action.action == "degrade":
            rank_a, rank_b = event.link
            self.cluster.interconnect.degrade_link(
                self._device_id(rank_a), self._device_id(rank_b),
                beta_factor=event.factor, alpha_add_us=event.alpha_add_us,
            )
            detail = f"degraded link {rank_a}<->{rank_b} ({event.factor:g}x)"
        elif action.action == "restore_link":
            rank_a, rank_b = event.link
            self.cluster.interconnect.restore_link(
                self._device_id(rank_a), self._device_id(rank_b),
                beta_factor=event.factor, alpha_add_us=event.alpha_add_us,
            )
            detail = f"restored link {rank_a}<->{rank_b}"
        elif action.action == "stall":
            device = self.cluster.device(event.rank)
            if not device.failed:
                stalled = device.stall_resident(event.duration_us, now)
                detail = (f"stalled {len(stalled)} kernels on rank "
                          f"{event.rank} for {event.duration_us:g}us")
            else:
                detail = f"stall skipped: rank {event.rank} already failed"
        else:  # pragma: no cover - timeline() only emits the kinds above
            raise ConfigurationError(f"unknown fault action {action.action!r}")
        self.applied.append((now, action.action, event))
        return detail

    # -- introspection ---------------------------------------------------------

    @property
    def remaining(self):
        return len(self._timeline) - self._cursor

    def applied_kinds(self):
        return [action for _, action, _ in self.applied]


def install_fault_plan(cluster, plan, name=None):
    """Create a :class:`FaultInjector` for ``plan`` and register it."""
    injector = FaultInjector(cluster, plan, name=name)
    cluster.engine.add_actor(injector)
    return injector
