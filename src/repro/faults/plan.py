"""Fault plans: composable, seeded schedules of failure events.

A :class:`FaultPlan` is a declarative schedule of :class:`FaultEvent` records.
Each event names a *kind*, a virtual time, a target (a rank or a rank pair)
and kind-specific parameters:

``rank_crash``
    The GPU and its rank process die at ``time_us``; resident kernels are
    killed where they stand and never release their resources.
``gpu_slowdown``
    A straggler: the rank's virtual time is dilated by ``factor`` for
    ``duration_us`` (``None`` = until the end of the run).
``link_degrade``
    The link between ``link=(rank_a, rank_b)`` loses bandwidth
    (divided by ``factor``) and gains latency (``alpha_add_us``) for
    ``duration_us``.
``link_flap``
    Sugar for a severe transient ``link_degrade`` (default 100x bandwidth
    loss + 500 us latency) — the link "goes away" briefly and comes back.
``kernel_stall``
    Every kernel resident on the rank freezes for ``duration_us`` once
    (driver hiccup / ECC scrub model).

Plans are built fluently (``FaultPlan("x").add_crash(3, at_us=200)``) or drawn
from a seeded distribution (:meth:`FaultPlan.random`) so chaos experiments are
exactly reproducible.  The :class:`repro.faults.injector.FaultInjector` turns
a plan into engine events.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG

#: Event kinds with a duration that expands into an apply/revert pair.
TRANSIENT_KINDS = ("gpu_slowdown", "link_degrade", "link_flap")

FAULT_KINDS = ("rank_crash", "gpu_slowdown", "link_degrade", "link_flap",
               "kernel_stall")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    kind: str
    time_us: float
    rank: int = None
    link: tuple = None
    duration_us: float = None
    factor: float = 1.0
    alpha_add_us: float = 0.0

    def validate(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(f"unknown fault kind {self.kind!r}")
        if self.time_us < 0:
            raise ConfigurationError(f"fault time must be non-negative, got {self.time_us}")
        if self.kind in ("rank_crash", "gpu_slowdown", "kernel_stall"):
            if self.rank is None or self.rank < 0:
                raise ConfigurationError(f"{self.kind} needs a non-negative rank")
        if self.kind in ("link_degrade", "link_flap"):
            if (not self.link or len(self.link) != 2
                    or self.link[0] == self.link[1]):
                raise ConfigurationError(
                    f"{self.kind} needs a (rank_a, rank_b) pair of distinct ranks"
                )
        if self.factor < 1.0:
            raise ConfigurationError(f"fault factor must be >= 1, got {self.factor}")
        if self.duration_us is not None and self.duration_us <= 0:
            raise ConfigurationError(
                f"fault duration must be positive, got {self.duration_us}"
            )
        if self.kind == "kernel_stall" and self.duration_us is None:
            raise ConfigurationError("kernel_stall needs a duration")
        return self

    def describe(self):
        """Plain-dict form of the event (the documented plan schema)."""
        record = {"kind": self.kind, "time_us": self.time_us}
        if self.rank is not None:
            record["rank"] = self.rank
        if self.link is not None:
            record["link"] = tuple(self.link)
        if self.duration_us is not None:
            record["duration_us"] = self.duration_us
        if self.factor != 1.0:
            record["factor"] = self.factor
        if self.alpha_add_us:
            record["alpha_add_us"] = self.alpha_add_us
        return record


@dataclass(frozen=True)
class AtomicAction:
    """One instantaneous action the injector applies (expanded from events)."""

    time_us: float
    action: str            # "crash" | "slowdown" | "restore_speed" |
    #                        "degrade" | "restore_link" | "stall"
    event: FaultEvent


@dataclass
class FaultPlan:
    """A named, ordered collection of fault events."""

    name: str = "fault-plan"
    events: list = field(default_factory=list)
    seed: int = None

    # -- fluent builders -------------------------------------------------------

    def add(self, event):
        self.events.append(event.validate())
        return self

    def add_crash(self, rank, at_us):
        return self.add(FaultEvent("rank_crash", at_us, rank=rank))

    def add_straggler(self, rank, at_us, factor=4.0, duration_us=None):
        return self.add(FaultEvent("gpu_slowdown", at_us, rank=rank,
                                   factor=factor, duration_us=duration_us))

    def add_link_degradation(self, rank_a, rank_b, at_us, factor=8.0,
                             alpha_add_us=0.0, duration_us=None):
        return self.add(FaultEvent("link_degrade", at_us, link=(rank_a, rank_b),
                                   factor=factor, alpha_add_us=alpha_add_us,
                                   duration_us=duration_us))

    def add_link_flap(self, rank_a, rank_b, at_us, duration_us=200.0,
                      factor=100.0, alpha_add_us=500.0):
        return self.add(FaultEvent("link_flap", at_us, link=(rank_a, rank_b),
                                   factor=factor, alpha_add_us=alpha_add_us,
                                   duration_us=duration_us))

    def add_kernel_stall(self, rank, at_us, duration_us=100.0):
        return self.add(FaultEvent("kernel_stall", at_us, rank=rank,
                                   duration_us=duration_us))

    # -- derived views ---------------------------------------------------------

    def validate(self):
        for event in self.events:
            event.validate()
        return self

    def crash_ranks(self):
        return sorted({event.rank for event in self.events
                       if event.kind == "rank_crash"})

    def describe(self):
        """The plan as plain data (name, seed, event schema records)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "events": [event.describe() for event in self.events],
        }

    def timeline(self):
        """Expand events into time-ordered :class:`AtomicAction` records."""
        actions = []
        for event in self.events:
            event.validate()
            if event.kind == "rank_crash":
                actions.append(AtomicAction(event.time_us, "crash", event))
            elif event.kind == "gpu_slowdown":
                actions.append(AtomicAction(event.time_us, "slowdown", event))
                if event.duration_us is not None:
                    actions.append(AtomicAction(
                        event.time_us + event.duration_us, "restore_speed", event
                    ))
            elif event.kind in ("link_degrade", "link_flap"):
                actions.append(AtomicAction(event.time_us, "degrade", event))
                if event.duration_us is not None:
                    actions.append(AtomicAction(
                        event.time_us + event.duration_us, "restore_link", event
                    ))
            elif event.kind == "kernel_stall":
                actions.append(AtomicAction(event.time_us, "stall", event))
        actions.sort(key=lambda action: action.time_us)
        return actions

    def shifted(self, delta_us):
        """A copy of the plan with every event delayed by ``delta_us``."""
        shifted = FaultPlan(name=self.name, seed=self.seed)
        for event in self.events:
            shifted.add(replace(event, time_us=event.time_us + delta_us))
        return shifted

    # -- seeded generation -----------------------------------------------------

    @classmethod
    def random(cls, seed, world_size, horizon_us, expected_crashes=0.5,
               expected_stragglers=1.0, expected_flaps=1.0,
               expected_stalls=1.0, name=None, protect_ranks=()):
        """Draw a reproducible chaos schedule from a seeded distribution.

        ``expected_*`` are mean event counts over the horizon; actual counts
        are drawn from the same deterministic stream, so equal seeds give
        byte-identical plans.  ``protect_ranks`` are never crashed (a chaos
        experiment usually keeps rank 0 alive to observe completion).
        """
        if world_size < 2:
            raise ConfigurationError("a chaos plan needs at least two ranks")
        rng = DeterministicRNG(seed).child("fault-plan", world_size, horizon_us)
        plan = cls(name=name or f"random-s{seed}", seed=seed)

        def draw_count(stream, expected):
            # Poisson-ish small-count draw from a geometric series; exact
            # distribution does not matter, determinism and the mean do.
            count = 0
            while stream.bernoulli(expected / (expected + 1.0)) and count < 8:
                count += 1
            return count

        crash_stream = rng.child("crash")
        crashable = [rank for rank in range(world_size)
                     if rank not in set(protect_ranks)]
        for index in range(draw_count(crash_stream, expected_crashes)):
            if not crashable:
                break
            rank = crash_stream.choice(crashable)
            crashable.remove(rank)
            plan.add_crash(rank, at_us=crash_stream.uniform(0.1, 0.9) * horizon_us)

        straggler_stream = rng.child("straggler")
        for index in range(draw_count(straggler_stream, expected_stragglers)):
            plan.add_straggler(
                straggler_stream.randint(0, world_size - 1),
                at_us=straggler_stream.uniform(0.0, 0.8) * horizon_us,
                factor=straggler_stream.uniform(2.0, 8.0),
                duration_us=straggler_stream.uniform(0.05, 0.3) * horizon_us,
            )

        flap_stream = rng.child("flap")
        for index in range(draw_count(flap_stream, expected_flaps)):
            rank_a = flap_stream.randint(0, world_size - 1)
            rank_b = (rank_a + flap_stream.randint(1, world_size - 1)) % world_size
            plan.add_link_flap(
                rank_a, rank_b,
                at_us=flap_stream.uniform(0.0, 0.8) * horizon_us,
                duration_us=flap_stream.uniform(0.02, 0.15) * horizon_us,
            )

        stall_stream = rng.child("stall")
        for index in range(draw_count(stall_stream, expected_stalls)):
            plan.add_kernel_stall(
                stall_stream.randint(0, world_size - 1),
                at_us=stall_stream.uniform(0.0, 0.9) * horizon_us,
                duration_us=stall_stream.uniform(20.0, 200.0),
            )
        return plan

    def __len__(self):
        return len(self.events)

    def __repr__(self):
        return f"<FaultPlan {self.name!r} events={len(self.events)}>"
