"""Host-program helpers for driving the NCCL baseline."""

from __future__ import annotations

from repro.gpusim.host import LaunchKernel, WaitForSignal


def launch_collective(backend, op, global_rank, stream="default", tenant=None):
    """Host op that launches ``global_rank``'s kernel for collective ``op``.

    ``tenant`` tags the kernel with its owning job (multi-tenant clusters).
    """
    return LaunchKernel(
        lambda host: backend.make_kernel(op, global_rank, host, tenant=tenant),
        stream=stream,
    )


def wait_collective(op, group_rank=None):
    """Host op waiting for ``op`` to complete.

    With ``group_rank`` it waits for that rank's part only (like
    ``cudaStreamSynchronize`` on the collective's stream); without it the op
    waits until every rank finished.
    """
    if group_rank is None:
        return WaitForSignal(
            op.global_completion_key,
            predicate=op.fully_complete,
            detail=f"wait {op.name} (all ranks)",
        )
    return WaitForSignal(
        op.completion_key(group_rank),
        predicate=lambda: op.is_complete(group_rank),
        detail=f"wait {op.name} rank {group_rank}",
    )
