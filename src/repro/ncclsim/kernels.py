"""The dedicated NCCL collective kernel.

Each kernel executes one rank's primitive sequence of one collective.  When a
primitive cannot progress (its connector is not readable/writable) the kernel
blocks while *holding all of its blocks* — the hold-and-wait condition — and
there is no bound on how long it waits — the no-preemption condition.
"""

from __future__ import annotations

from repro.collectives.primitives import ExecOutcome
from repro.gpusim.device import KernelActor
from repro.gpusim.engine import StepResult


def grid_size_for(nbytes, max_blocks=4):
    """Blocks assigned to a collective kernel, growing with the payload.

    Mirrors NCCL's behaviour of using more channels (hence more blocks) for
    larger buffers, bounded by a small maximum.
    """
    blocks = 1 + nbytes // (4 << 20)
    return int(max(1, min(max_blocks, blocks)))


class NcclCollectiveKernel(KernelActor):
    """A resident kernel running one collective part to completion."""

    #: Number of primitives attempted per engine step (keeps steps coarse
    #: without changing semantics: a step only covers primitives that can
    #: execute back-to-back without waiting).
    PRIMITIVES_PER_STEP = 8

    def __init__(self, name, device, executor, op, rank, grid_size=1, block_size=256):
        super().__init__(name, device, grid_size=grid_size, block_size=block_size)
        self.executor = executor
        self.op = op
        self.rank = rank
        self.blocked_polls = 0

    def waiting_on(self):
        """The peer device this kernel's current primitive is stuck on.

        Returns ``(device_id, direction)`` — the device whose send (or
        consume) the kernel busy-waits for — or ``None`` when the kernel can
        progress.  A dedicated kernel has no notion of peer failure: if the
        returned device is dead, the kernel waits forever while holding its
        blocks (the hold-and-wait + no-preemption conditions under faults).
        """
        outcome = self.executor.peek_blockers(self.now)
        primitive = outcome.primitive
        if primitive is None:
            return None
        communicator = self.executor.communicator
        if outcome.outcome.value == "wait_recv":
            return communicator.device_id(primitive.recv_peer), "recv"
        if outcome.outcome.value == "wait_send":
            return communicator.device_id(primitive.send_peer), "send"
        return None

    def run_step(self):
        for _ in range(self.PRIMITIVES_PER_STEP):
            outcome = self.executor.try_execute_current(self.clock, self.engine)
            if outcome.outcome is ExecOutcome.SUCCESS:
                continue
            if outcome.outcome is ExecOutcome.ALL_DONE:
                self.op.mark_rank_complete(self.rank, self.now, self.engine)
                return self.complete(f"collective {self.op.op_id} done on rank {self.rank}")
            # WAIT_RECV / WAIT_SEND: hold resources and wait without bound.
            self.blocked_polls += 1
            return StepResult.blocked(
                [outcome.wait_key],
                f"{outcome.primitive.name} waiting ({outcome.outcome.value})",
            )
        return StepResult.progress("primitive burst")
