"""NCCL baseline: dedicated busy-waiting collective kernels.

The baseline reproduces the properties of NCCL that make it deadlock-prone
(Sec. 2.3): each collective call launches a dedicated kernel onto a CUDA
stream; once resident, the kernel holds its blocks and busy-waits indefinitely
on its connectors until every peer is ready; there is no preemption.  The
launch order, stream assignment and GPU synchronization are entirely up to the
application, which is exactly how the circular dependencies of Fig. 1 arise.
"""

from repro.ncclsim.api import NcclBackend, NcclCommunicator
from repro.ncclsim.kernels import NcclCollectiveKernel, grid_size_for
from repro.ncclsim.mpi_baseline import CudaAwareMpiModel
from repro.ncclsim.ops import NcclCollectiveOp
from repro.ncclsim.program import launch_collective, wait_collective

__all__ = [
    "CudaAwareMpiModel",
    "NcclBackend",
    "NcclCollectiveKernel",
    "NcclCollectiveOp",
    "NcclCommunicator",
    "grid_size_for",
    "launch_collective",
    "wait_collective",
]
