"""Collective operation instances shared by all participating ranks."""

from __future__ import annotations

import itertools
import weakref

from repro.collectives.channels import Communicator
from repro.collectives.primitives import PrimitiveExecutor
from repro.collectives.selector import AlgorithmSelector
from repro.collectives.sequences import (
    DEFAULT_CHUNK_BYTES,
    generate_primitive_sequence,
    hierarchical_island_size,
)
from repro.common.errors import InvalidStateError

_op_ids = itertools.count()

#: Ops by id, for wait-key attribution: fault analysis resolves an
#: ``("nccl-op-done", op_id, rank)`` wait key back to the device that would
#: have signalled it.
_ops_by_id = weakref.WeakValueDictionary()


def op_by_id(op_id):
    """Resolve an op id from an engine wait key, or ``None`` if gone."""
    return _ops_by_id.get(op_id)


class NcclCollectiveOp:
    """One collective call: a spec plus per-rank executors over shared channels.

    The object is shared by every participating rank; each rank creates its
    kernel from it.  Completion is tracked per rank so host threads can wait
    on their local part (matching ``cudaStreamSynchronize`` semantics) and on
    global completion.
    """

    def __init__(self, spec, devices, interconnect, cost_model=None,
                 chunk_bytes=DEFAULT_CHUNK_BYTES, name=None, algorithm="ring"):
        spec.validate()
        self.op_id = next(_op_ids)
        self.name = name or f"nccl-op{self.op_id}-{spec.kind.value}"
        self.spec = spec
        self.devices = list(devices)
        self.communicator = Communicator(self.devices, interconnect)
        self.cost_model = cost_model
        self.chunk_bytes = chunk_bytes
        selector = AlgorithmSelector(interconnect, cost_model=cost_model)
        # A per-collective spec hint overrides the communicator-wide knob.
        self.algorithm = selector.resolve(
            spec.algorithm or algorithm, spec.kind, spec.nbytes,
            len(self.devices),
            [device.device_id for device in self.devices],
        )
        #: Selector prediction for the resolved algorithm, carried on spans
        #: and folded into the calibration report at completion.
        self.predicted_cost_us = selector.predicted_cost_us(
            self.algorithm, spec.kind, spec.nbytes, len(self.devices),
            [device.device_id for device in self.devices],
        )
        #: Per-bucket decomposition of the prediction, for the calibration
        #: report's mispredicted-bucket feedback.
        self.predicted_breakdown = selector.predicted_cost_breakdown(
            self.algorithm, spec.kind, spec.nbytes, len(self.devices),
            [device.device_id for device in self.devices],
        )
        engine = self.devices[0].engine if self.devices else None
        obs = engine.obs if engine is not None else None
        self.obs = obs if (obs is not None and obs.enabled) else None
        # Same island derivation as the DFCCL side (group-rank-ordered node
        # ids), so both backends compile identical hierarchical sequences.
        self.island_size = hierarchical_island_size(
            device.device_id.node for device in self.devices
        )
        self._complete_ranks = {}
        self._kernels = {}
        self._completion_callbacks = {}
        _ops_by_id[self.op_id] = self

    @property
    def group_size(self):
        return len(self.devices)

    def executor_for(self, group_rank):
        """Build the primitive executor for one rank's part."""
        sequence = generate_primitive_sequence(
            self.spec.kind,
            group_rank,
            self.group_size,
            self.spec.nbytes,
            chunk_bytes=self.chunk_bytes,
            root=self.spec.root,
            algorithm=self.algorithm,
            island_size=self.island_size,
        )
        executor = PrimitiveExecutor(
            collective_id=self.op_id,
            group_rank=group_rank,
            communicator=self.communicator,
            primitives=sequence,
            cost_model=self.cost_model,
        )
        if self.obs is not None and self.obs.analysis is not None:
            self.obs.analysis.attach(
                executor, backend="nccl", coll_name=self.name,
                invocation_key=("nccl", self.op_id), owner=self,
                group_rank=group_rank,
                track=self.devices[group_rank].name,
                algorithm=self.algorithm, kind=self.spec.kind.value,
                nbytes=self.spec.nbytes)
        return executor

    # -- completion tracking --------------------------------------------------

    def completion_key(self, group_rank):
        return ("nccl-op-done", self.op_id, group_rank)

    @property
    def global_completion_key(self):
        return ("nccl-op-done-all", self.op_id)

    def add_completion_callback(self, group_rank, fn):
        """Run ``fn()`` when ``group_rank``'s part of the op completes.

        This is the dedicated-kernel analogue of DFCCL's per-invocation
        callbacks, letting the unified ``repro.api`` Work future offer the
        same completion-notification surface over both backends.
        """
        self._completion_callbacks.setdefault(group_rank, []).append(fn)

    def mark_rank_complete(self, group_rank, time_us, engine=None):
        if group_rank in self._complete_ranks:
            raise InvalidStateError(
                f"rank {group_rank} completed op {self.op_id} twice"
            )
        self._complete_ranks[group_rank] = time_us
        if self.obs is not None:
            kernel = self._kernels.get(group_rank)
            launch = getattr(kernel, "launch_time_us", None)
            executor = getattr(kernel, "executor", None)
            attrs = {"group_rank": group_rank,
                     "algorithm": self.algorithm,
                     "predicted_cost_us": self.predicted_cost_us}
            if executor is not None:
                attrs["primitives"] = executor.executed_primitives
                attrs["final_position"] = executor.position
            self.obs.tracer.record(
                self.name, "collective",
                launch if launch is not None else time_us, time_us,
                track=self.devices[group_rank].name,
                attrs=attrs)
            if self.fully_complete():
                launches = [k.launch_time_us for k in self._kernels.values()
                            if getattr(k, "launch_time_us", None) is not None]
                start = min(launches) if launches else time_us
                self.obs.record_collective(
                    "nccl", self.algorithm, self.spec.kind.value,
                    self.spec.nbytes, self.group_size,
                    max(self._complete_ranks.values()) - start,
                    predicted_us=self.predicted_cost_us,
                    predicted_breakdown=self.predicted_breakdown)
        for fn in self._completion_callbacks.get(group_rank, ()):
            fn()
        if engine is not None:
            engine.signal(self.completion_key(group_rank), time_us)
            if self.fully_complete():
                engine.signal(self.global_completion_key, time_us)

    def is_complete(self, group_rank):
        return group_rank in self._complete_ranks

    def incomplete_ranks(self):
        return [rank for rank in range(self.group_size)
                if rank not in self._complete_ranks]

    def fully_complete(self):
        return len(self._complete_ranks) == self.group_size

    def completion_time(self, group_rank=None):
        if group_rank is not None:
            return self._complete_ranks.get(group_rank)
        if not self.fully_complete():
            return None
        return max(self._complete_ranks.values())

    def register_kernel(self, group_rank, kernel):
        self._kernels[group_rank] = kernel

    def kernel(self, group_rank):
        return self._kernels.get(group_rank)

    def __repr__(self):
        return f"<NcclCollectiveOp {self.name} size={self.group_size}>"
