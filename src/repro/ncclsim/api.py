"""NCCL-style backend and communicator objects."""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.common.types import CollectiveKind, CollectiveSpec, DataType, ReduceOp
from repro.collectives.cost import DEFAULT_COST_MODEL
from repro.ncclsim.kernels import NcclCollectiveKernel, grid_size_for
from repro.ncclsim.ops import NcclCollectiveOp


class NcclCommunicator:
    """A communicator over a fixed set of global ranks.

    Collectives may be created either by explicit id (``collective``), which
    is what the deadlock test programs use, or positionally (``next_op``),
    which mirrors NCCL's match-by-call-order semantics.
    """

    def __init__(self, backend, ranks, name=None):
        self.backend = backend
        self.ranks = list(ranks)
        self.name = name or f"comm-{'-'.join(map(str, self.ranks))}"
        self._ops_by_id = {}
        self._call_order = []

    @property
    def size(self):
        return len(self.ranks)

    def group_rank(self, global_rank):
        try:
            return self.ranks.index(global_rank)
        except ValueError:
            raise ConfigurationError(
                f"rank {global_rank} is not a member of communicator {self.name}"
            ) from None

    def collective(self, coll_id, spec, chunk_bytes=None, name=None, algorithm=None):
        """Return the shared op for ``coll_id``, creating it on first use."""
        op = self._ops_by_id.get(coll_id)
        if op is None:
            devices = [self.backend.cluster.device(rank) for rank in self.ranks]
            op = NcclCollectiveOp(
                spec,
                devices,
                self.backend.cluster.interconnect,
                cost_model=self.backend.cost_model,
                chunk_bytes=chunk_bytes or self.backend.chunk_bytes,
                name=name or f"{self.name}:coll{coll_id}",
                algorithm=algorithm or self.backend.algorithm,
            )
            self._ops_by_id[coll_id] = op
            self._call_order.append(op)
        return op

    def ops(self):
        return list(self._call_order)

    # -- convenience spec builders --------------------------------------------

    def all_reduce(self, coll_id, count, dtype=DataType.FLOAT32, op=ReduceOp.SUM):
        return self.collective(
            coll_id, CollectiveSpec(CollectiveKind.ALL_REDUCE, count, dtype, op)
        )

    def all_gather(self, coll_id, count, dtype=DataType.FLOAT32):
        return self.collective(
            coll_id, CollectiveSpec(CollectiveKind.ALL_GATHER, count, dtype)
        )

    def reduce_scatter(self, coll_id, count, dtype=DataType.FLOAT32, op=ReduceOp.SUM):
        return self.collective(
            coll_id, CollectiveSpec(CollectiveKind.REDUCE_SCATTER, count, dtype, op)
        )

    def broadcast(self, coll_id, count, dtype=DataType.FLOAT32, root=0):
        return self.collective(
            coll_id, CollectiveSpec(CollectiveKind.BROADCAST, count, dtype, root=root)
        )

    def reduce(self, coll_id, count, dtype=DataType.FLOAT32, op=ReduceOp.SUM, root=0):
        return self.collective(
            coll_id, CollectiveSpec(CollectiveKind.REDUCE, count, dtype, op, root=root)
        )


class NcclBackend:
    """Factory of communicators and kernels over a simulated cluster."""

    def __init__(self, cluster, cost_model=None, chunk_bytes=None, algorithm="ring"):
        self.cluster = cluster
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.chunk_bytes = chunk_bytes or (128 << 10)
        self.algorithm = algorithm
        self.communicators = []

    def create_communicator(self, ranks=None, name=None):
        """Create a communicator over ``ranks`` (defaults to every GPU)."""
        if ranks is None:
            ranks = list(range(self.cluster.world_size))
        comm = NcclCommunicator(self, ranks, name=name)
        self.communicators.append(comm)
        return comm

    def make_kernel(self, op, global_rank, host=None, tenant=None):
        """Create the kernel for ``global_rank``'s part of ``op``.

        ``tenant`` tags the dedicated kernel with its owning job for the
        multi-tenant SM-contention accounting in :mod:`repro.gpusim`.
        """
        device = self.cluster.device(global_rank)
        group_rank = op.devices.index(device)
        executor = op.executor_for(group_rank)
        kernel = NcclCollectiveKernel(
            name=f"{op.name}-r{group_rank}",
            device=device,
            executor=executor,
            op=op,
            rank=group_rank,
            grid_size=grid_size_for(op.spec.nbytes),
        )
        if tenant is not None:
            kernel.tenant = tenant
        op.register_kernel(group_rank, kernel)
        return kernel
