"""Analytic CUDA-aware MPI baseline for the Sec. 2.1 comparison.

The paper motivates NCCL by showing its all-reduce throughput exceeds
CUDA-aware MPI by up to 6.7x once the buffer exceeds 32 KB.  We model the MPI
path analytically: a host-staged ring all-reduce with a much higher
per-message latency and a much lower effective bandwidth than the on-GPU NCCL
path, which is sufficient to reproduce the crossover and the large-buffer gap.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CudaAwareMpiModel:
    """Alpha/beta model of CUDA-aware MPI all-reduce."""

    #: Per-message software latency of the MPI path (us).
    alpha_us: float = 18.0
    #: Effective staging bandwidth through host memory (GB/s).
    beta_gbps: float = 1.4

    def all_reduce_time_us(self, nbytes, world_size):
        """Ring all-reduce time: 2(n-1) steps of n-th sized chunks."""
        if world_size <= 1:
            return self.alpha_us
        steps = 2 * (world_size - 1)
        chunk = nbytes / world_size
        return steps * (self.alpha_us + chunk / (self.beta_gbps * 1e3))

    def all_reduce_bandwidth_gbps(self, nbytes, world_size):
        """Algorithm bandwidth (payload bytes / end-to-end time)."""
        time_us = self.all_reduce_time_us(nbytes, world_size)
        return nbytes / (time_us * 1e3)
