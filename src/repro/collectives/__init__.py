"""Collective algorithm layer shared by the NCCL baseline and DFCCL.

This package implements the data-plane concepts of Sec. 4.1 of the paper:

* the four buffers used by a collective (send/recv buffers and send/recv
  connectors, the latter realized as bounded ring-buffer channels),
* the primitives that collectives are fused from (``send``, ``recv``,
  ``reduce``, ``copy`` and their fusions such as ``recvReduceSend``),
* chunking of the input buffer and generation of the per-rank primitive
  sequence for the Ring algorithm with the Simple protocol,
* communicators, which own the inter-GPU channels.

Both backends execute the *same* primitive sequences; they differ only in how
long a primitive is allowed to busy-wait (indefinitely for NCCL, up to a spin
threshold for DFCCL) and in who schedules the next primitive.
"""

from repro.collectives.channels import Channel, ChunkMessage, Communicator
from repro.collectives.cost import CostModel
from repro.collectives.primitives import (
    ExecOutcome,
    Primitive,
    PrimitiveExecutor,
    PrimitiveOutcome,
)
from repro.collectives.selector import (
    ALGORITHM_CHOICES,
    AlgorithmChoice,
    AlgorithmSelector,
)
from repro.collectives.sequences import (
    ALGORITHM_HIERARCHICAL,
    ALGORITHM_RING,
    ALGORITHM_TREE,
    ALGORITHMS,
    HIERARCHICAL_KINDS,
    binary_tree_relations,
    binomial_tree_relations,
    chunk_loops,
    generate_primitive_sequence,
    hierarchical_island_size,
    primitive_count,
)

__all__ = [
    "ALGORITHM_CHOICES",
    "ALGORITHM_HIERARCHICAL",
    "ALGORITHM_RING",
    "ALGORITHM_TREE",
    "ALGORITHMS",
    "HIERARCHICAL_KINDS",
    "AlgorithmChoice",
    "AlgorithmSelector",
    "Channel",
    "ChunkMessage",
    "Communicator",
    "CostModel",
    "ExecOutcome",
    "Primitive",
    "PrimitiveExecutor",
    "PrimitiveOutcome",
    "binary_tree_relations",
    "binomial_tree_relations",
    "chunk_loops",
    "generate_primitive_sequence",
    "hierarchical_island_size",
    "primitive_count",
]
