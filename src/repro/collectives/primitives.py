"""Primitives and their execution.

A primitive is a fusion of the basic actions ``send``, ``recv``, ``reduce``
and ``copy`` (Sec. 4.1).  Depending on which of ``send``/``recv`` it contains,
a primitive busy-waits until its send connector is writable and/or its recv
connector is readable before progressing.  The :class:`PrimitiveExecutor`
implements this check-then-execute logic once, so the NCCL baseline (which
waits forever) and the DFCCL daemon kernel (which bounds the wait with a spin
threshold) share exactly the same data-plane behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import InvalidStateError
from repro.common.types import PrimitiveAction
from repro.collectives.channels import ChunkMessage
from repro.collectives.cost import DEFAULT_COST_MODEL


@dataclass(frozen=True)
class Primitive:
    """One step of a collective's per-rank primitive sequence."""

    name: str
    action: PrimitiveAction
    loop: int
    step: int
    chunk_index: int
    nbytes: int
    send_peer: int = None
    recv_peer: int = None

    @property
    def sends(self):
        return bool(self.action & PrimitiveAction.SEND)

    @property
    def recvs(self):
        return bool(self.action & PrimitiveAction.RECV)

    @property
    def touches_memory(self):
        return bool(self.action & (PrimitiveAction.REDUCE | PrimitiveAction.COPY))


#: Named fusions used by the Ring algorithm, mirroring NCCL's primitive names.
PRIM_SEND = PrimitiveAction.SEND
PRIM_RECV = PrimitiveAction.RECV | PrimitiveAction.COPY
PRIM_COPY = PrimitiveAction.COPY
PRIM_RECV_COPY_SEND = PrimitiveAction.RECV | PrimitiveAction.COPY | PrimitiveAction.SEND
PRIM_RECV_REDUCE_SEND = PrimitiveAction.RECV | PrimitiveAction.REDUCE | PrimitiveAction.SEND
PRIM_RECV_REDUCE_COPY = PrimitiveAction.RECV | PrimitiveAction.REDUCE | PrimitiveAction.COPY
PRIM_RECV_REDUCE_COPY_SEND = (
    PrimitiveAction.RECV
    | PrimitiveAction.REDUCE
    | PrimitiveAction.COPY
    | PrimitiveAction.SEND
)


class ExecOutcome(enum.Enum):
    """Result of attempting to execute the current primitive."""

    SUCCESS = "success"
    WAIT_RECV = "wait_recv"
    WAIT_SEND = "wait_send"
    ALL_DONE = "all_done"


@dataclass
class PrimitiveOutcome:
    """Outcome plus the wait key to block/spin on when not successful."""

    outcome: ExecOutcome
    primitive: Primitive = None
    wait_key: tuple = None
    busy_time_us: float = 0.0


class PrimitiveExecutor:
    """Executes one rank's primitive sequence of one collective.

    The executor's ``position`` is the *dynamic context* of the collective on
    this GPU (Sec. 4.2): saving and restoring it is what makes preemption and
    resumption correct, because every already-executed primitive's data stays
    visible in the connectors.
    """

    def __init__(
        self,
        collective_id,
        group_rank,
        communicator,
        primitives,
        cost_model=None,
    ):
        self.collective_id = collective_id
        self.group_rank = group_rank
        self.communicator = communicator
        self.primitives = list(primitives)
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.position = 0
        self.executed_primitives = 0

    # -- introspection ----------------------------------------------------------

    @property
    def total_primitives(self):
        return len(self.primitives)

    @property
    def remaining(self):
        return len(self.primitives) - self.position

    def done(self):
        return self.position >= len(self.primitives)

    def current(self):
        if self.done():
            return None
        return self.primitives[self.position]

    def progress_fraction(self):
        if not self.primitives:
            return 1.0
        return self.position / len(self.primitives)

    # -- context save/restore ----------------------------------------------------

    def save_dynamic_context(self):
        """Return the dynamic context (resume point) of this collective part."""
        return {"position": self.position}

    def load_dynamic_context(self, context):
        position = context["position"]
        if not 0 <= position <= len(self.primitives):
            raise InvalidStateError(
                f"invalid saved position {position} for collective {self.collective_id}"
            )
        self.position = position

    # -- execution -----------------------------------------------------------------

    def _recv_channel(self, primitive):
        return self.communicator.channel(primitive.recv_peer, self.group_rank)

    def _send_channel(self, primitive):
        return self.communicator.channel(self.group_rank, primitive.send_peer)

    def peek_blockers(self, now_us, max_wait_us=None):
        """Return the outcome the next execution attempt would have, without
        executing and without charging any time (used by schedulers)."""
        if self.done():
            return PrimitiveOutcome(ExecOutcome.ALL_DONE)
        primitive = self.current()
        if primitive.recvs and primitive.recv_peer is not None:
            recv_channel = self._recv_channel(primitive)
            if not recv_channel.readable(now_us, max_wait_us):
                return PrimitiveOutcome(
                    ExecOutcome.WAIT_RECV, primitive, recv_channel.readable_key
                )
        if primitive.sends and primitive.send_peer is not None:
            send_channel = self._send_channel(primitive)
            if not send_channel.writable():
                return PrimitiveOutcome(
                    ExecOutcome.WAIT_SEND, primitive, send_channel.writable_key
                )
        return PrimitiveOutcome(ExecOutcome.SUCCESS, primitive)

    def try_execute_current(self, clock, engine=None, max_wait_us=None):
        """Attempt the current primitive; on success advance ``clock`` and move on.

        Returns a :class:`PrimitiveOutcome`.  A WAIT_* outcome does not charge
        time — busy-wait accounting (spinning or blocking) is the caller's
        responsibility, because NCCL and DFCCL handle it differently.
        ``max_wait_us`` bounds how far into the future the executor will wait
        for in-flight data (DFCCL passes its remaining spin budget).
        """
        if self.done():
            return PrimitiveOutcome(ExecOutcome.ALL_DONE)

        primitive = self.current()
        recv_channel = None
        send_channel = None

        if primitive.recvs and primitive.recv_peer is not None:
            recv_channel = self._recv_channel(primitive)
            if not recv_channel.readable(clock.now, max_wait_us):
                return PrimitiveOutcome(
                    ExecOutcome.WAIT_RECV, primitive, recv_channel.readable_key
                )
        if primitive.sends and primitive.send_peer is not None:
            send_channel = self._send_channel(primitive)
            if not send_channel.writable():
                return PrimitiveOutcome(
                    ExecOutcome.WAIT_SEND, primitive, send_channel.writable_key
                )

        link = None
        if send_channel is not None:
            link = self.communicator.link(self.group_rank, primitive.send_peer)
        busy = self.cost_model.primitive_time_us(
            primitive.nbytes,
            link=link,
            sends=primitive.sends and primitive.send_peer is not None,
            touches_memory=primitive.touches_memory,
        )

        if recv_channel is not None:
            message = recv_channel.pop(clock.now)
            # Spin until the in-flight data actually arrives, then consume it.
            clock.advance_to(message.ready_time_us)
            if engine is not None:
                engine.signal(recv_channel.writable_key, clock.now)

        clock.advance(busy)

        if send_channel is not None:
            message = ChunkMessage(
                collective_id=self.collective_id,
                chunk_index=primitive.chunk_index,
                step=primitive.step,
                nbytes=primitive.nbytes,
                ready_time_us=clock.now,
            )
            send_channel.push(message)
            if engine is not None:
                engine.signal(send_channel.readable_key, clock.now)

        self.position += 1
        self.executed_primitives += 1
        return PrimitiveOutcome(ExecOutcome.SUCCESS, primitive, busy_time_us=busy)
