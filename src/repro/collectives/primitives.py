"""Primitives and their execution.

A primitive is a fusion of the basic actions ``send``, ``recv``, ``reduce``
and ``copy`` (Sec. 4.1).  Depending on which of ``send``/``recv`` it contains,
a primitive busy-waits until its send connector is writable and/or its recv
connector is readable before progressing.  The :class:`PrimitiveExecutor`
implements this check-then-execute logic once, so the NCCL baseline (which
waits forever) and the DFCCL daemon kernel (which bounds the wait with a spin
threshold) share exactly the same data-plane behaviour.
"""

from __future__ import annotations

import enum

from repro.common.errors import InvalidStateError
from repro.common.types import PrimitiveAction
from repro.collectives.channels import ChunkMessage
from repro.collectives.cost import DEFAULT_COST_MODEL


_SEND_BITS = PrimitiveAction.SEND.value
_RECV_BITS = PrimitiveAction.RECV.value
_MEMORY_BITS = PrimitiveAction.REDUCE.value | PrimitiveAction.COPY.value


class Primitive:
    """One step of a collective's per-rank primitive sequence.

    A slotted plain class rather than a dataclass: a ring all-reduce at 512
    ranks compiles half a million of these, and the executor consults
    ``sends`` / ``recvs`` / ``touches_memory`` for every one, so both
    construction and attribute reads sit on the hot path.  The flag booleans
    are precomputed here (plain bools, not Flag arithmetic).
    """

    __slots__ = ("name", "action", "loop", "step", "chunk_index", "nbytes",
                 "send_peer", "recv_peer", "sends", "recvs", "touches_memory")

    def __init__(self, name, action, loop, step, chunk_index, nbytes,
                 send_peer=None, recv_peer=None):
        self.name = name
        self.action = action
        self.loop = loop
        self.step = step
        self.chunk_index = chunk_index
        self.nbytes = nbytes
        self.send_peer = send_peer
        self.recv_peer = recv_peer
        bits = action.value
        self.sends = bits & _SEND_BITS != 0
        self.recvs = bits & _RECV_BITS != 0
        self.touches_memory = bits & _MEMORY_BITS != 0

    def _identity(self):
        return (self.name, self.action, self.loop, self.step,
                self.chunk_index, self.nbytes, self.send_peer, self.recv_peer)

    def __eq__(self, other):
        if not isinstance(other, Primitive):
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self):
        return hash(self._identity())

    def __repr__(self):
        return (f"Primitive(name={self.name!r}, action={self.action!r}, "
                f"loop={self.loop}, step={self.step}, "
                f"chunk_index={self.chunk_index}, nbytes={self.nbytes}, "
                f"send_peer={self.send_peer}, recv_peer={self.recv_peer})")


#: Named fusions used by the Ring algorithm, mirroring NCCL's primitive names.
PRIM_SEND = PrimitiveAction.SEND
PRIM_RECV = PrimitiveAction.RECV | PrimitiveAction.COPY
PRIM_COPY = PrimitiveAction.COPY
PRIM_RECV_COPY_SEND = PrimitiveAction.RECV | PrimitiveAction.COPY | PrimitiveAction.SEND
PRIM_RECV_REDUCE_SEND = PrimitiveAction.RECV | PrimitiveAction.REDUCE | PrimitiveAction.SEND
PRIM_RECV_REDUCE_COPY = PrimitiveAction.RECV | PrimitiveAction.REDUCE | PrimitiveAction.COPY
PRIM_RECV_REDUCE_COPY_SEND = (
    PrimitiveAction.RECV
    | PrimitiveAction.REDUCE
    | PrimitiveAction.COPY
    | PrimitiveAction.SEND
)


class ExecOutcome(enum.Enum):
    """Result of attempting to execute the current primitive."""

    SUCCESS = "success"
    WAIT_RECV = "wait_recv"
    WAIT_SEND = "wait_send"
    ALL_DONE = "all_done"


#: Hot-path aliases: enum member access goes through ``EnumType.__getattr__``
#: on every lookup, which is measurable at one attempt per primitive.
_SUCCESS = ExecOutcome.SUCCESS
_WAIT_RECV = ExecOutcome.WAIT_RECV
_WAIT_SEND = ExecOutcome.WAIT_SEND
_ALL_DONE = ExecOutcome.ALL_DONE


class PrimitiveOutcome:
    """Outcome plus the wait key to block/spin on when not successful."""

    __slots__ = ("outcome", "primitive", "wait_key", "busy_time_us")

    def __init__(self, outcome, primitive=None, wait_key=None, busy_time_us=0.0):
        self.outcome = outcome
        self.primitive = primitive
        self.wait_key = wait_key
        self.busy_time_us = busy_time_us


class PrimitiveExecutor:
    """Executes one rank's primitive sequence of one collective.

    The executor's ``position`` is the *dynamic context* of the collective on
    this GPU (Sec. 4.2): saving and restoring it is what makes preemption and
    resumption correct, because every already-executed primitive's data stays
    visible in the connectors.
    """

    def __init__(
        self,
        collective_id,
        group_rank,
        communicator,
        primitives,
        cost_model=None,
    ):
        self.collective_id = collective_id
        self.group_rank = group_rank
        self.communicator = communicator
        self.primitives = list(primitives)
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.position = 0
        self.executed_primitives = 0
        #: Per-peer channel cache: the communicator resolves channels through
        #: a keyed dict, but one executor only ever talks to its fixed ring /
        #: tree peers, so a local cache skips the tuple build + method call on
        #: every primitive attempt.
        self._recv_channels = {}
        self._send_channels = {}
        #: Link and busy-time caches keyed per peer, valid for one
        #: interconnect ``link_epoch``: a degradation or restore bumps the
        #: epoch and both caches are dropped wholesale.
        self._links = {}
        self._busy_cache = {}
        self._cache_epoch = communicator.interconnect.link_epoch
        #: Reused SUCCESS outcome: one is produced per executed primitive and
        #: immediately consumed by every caller, so allocating a fresh object
        #: each time only feeds the garbage collector.
        self._success_outcome = PrimitiveOutcome(_SUCCESS)
        #: Optional per-primitive execution trace: a flat ``array('d')`` of
        #: ``(start_us, end_us, busy_us)`` triples appended per executed
        #: primitive, attached by ``obs.analysis`` when time attribution is
        #: requested.  ``None`` (the default) keeps the hot path at one load
        #: and one identity check per primitive.
        self.trace = None

    # -- introspection ----------------------------------------------------------

    @property
    def total_primitives(self):
        return len(self.primitives)

    @property
    def remaining(self):
        return len(self.primitives) - self.position

    def done(self):
        return self.position >= len(self.primitives)

    def current(self):
        if self.done():
            return None
        return self.primitives[self.position]

    def progress_fraction(self):
        if not self.primitives:
            return 1.0
        return self.position / len(self.primitives)

    # -- context save/restore ----------------------------------------------------

    def save_dynamic_context(self):
        """Return the dynamic context (resume point) of this collective part."""
        return {"position": self.position}

    def load_dynamic_context(self, context):
        position = context["position"]
        if not 0 <= position <= len(self.primitives):
            raise InvalidStateError(
                f"invalid saved position {position} for collective {self.collective_id}"
            )
        self.position = position

    # -- execution -----------------------------------------------------------------

    def _recv_channel(self, primitive):
        peer = primitive.recv_peer
        channel = self._recv_channels.get(peer)
        if channel is None:
            channel = self.communicator.channel(peer, self.group_rank)
            self._recv_channels[peer] = channel
        return channel

    def _send_channel(self, primitive):
        peer = primitive.send_peer
        channel = self._send_channels.get(peer)
        if channel is None:
            channel = self.communicator.channel(self.group_rank, peer)
            self._send_channels[peer] = channel
        return channel

    def peek_blockers(self, now_us, max_wait_us=None):
        """Return the outcome the next execution attempt would have, without
        executing and without charging any time (used by schedulers)."""
        if self.done():
            return PrimitiveOutcome(ExecOutcome.ALL_DONE)
        primitive = self.current()
        if primitive.recvs and primitive.recv_peer is not None:
            recv_channel = self._recv_channel(primitive)
            if not recv_channel.readable(now_us, max_wait_us):
                return PrimitiveOutcome(
                    ExecOutcome.WAIT_RECV, primitive, recv_channel.readable_key
                )
        if primitive.sends and primitive.send_peer is not None:
            send_channel = self._send_channel(primitive)
            if not send_channel.writable():
                return PrimitiveOutcome(
                    ExecOutcome.WAIT_SEND, primitive, send_channel.writable_key
                )
        return PrimitiveOutcome(ExecOutcome.SUCCESS, primitive)

    def try_execute_current(self, clock, engine=None, max_wait_us=None):
        """Attempt the current primitive; on success advance ``clock`` and move on.

        Returns a :class:`PrimitiveOutcome`.  A WAIT_* outcome does not charge
        time — busy-wait accounting (spinning or blocking) is the caller's
        responsibility, because NCCL and DFCCL handle it differently.
        ``max_wait_us`` bounds how far into the future the executor will wait
        for in-flight data (DFCCL passes its remaining spin budget).
        """
        position = self.position
        primitives = self.primitives
        if position >= len(primitives):
            return PrimitiveOutcome(_ALL_DONE)

        primitive = primitives[position]
        recv_channel = None
        send_channel = None

        # The readable/writable checks are inlined over the channel FIFOs
        # (same-package fast path, one or two checks per primitive of every
        # collective in the simulation); `Channel.readable`/`writable` remain
        # the reference semantics for every other caller.
        recv_peer = primitive.recv_peer
        if recv_peer is not None and primitive.recvs:
            recv_channel = self._recv_channels.get(recv_peer)
            if recv_channel is None:
                recv_channel = self._recv_channel(primitive)
            fifo = recv_channel._fifo
            if recv_channel.invalidated or not fifo or (
                max_wait_us is not None
                and fifo[0].ready_time_us > clock.now + max_wait_us
            ):
                return PrimitiveOutcome(
                    _WAIT_RECV, primitive, recv_channel.readable_key
                )
        send_peer = primitive.send_peer
        if send_peer is not None and primitive.sends:
            send_channel = self._send_channels.get(send_peer)
            if send_channel is None:
                send_channel = self._send_channel(primitive)
            if send_channel.invalidated or \
                    len(send_channel._fifo) >= send_channel.capacity:
                return PrimitiveOutcome(
                    _WAIT_SEND, primitive, send_channel.writable_key
                )

        # Both wait checks passed: the primitive executes now.  ``start`` is
        # the rank's clock *before* any arrival spin, so the analysis layer
        # can split recv wait from dilated work.
        trace = self.trace
        if trace is not None:
            trace_start = clock.now

        epoch = self.communicator.interconnect.link_epoch
        if epoch != self._cache_epoch:
            self._links.clear()
            self._busy_cache.clear()
            self._cache_epoch = epoch
        if send_channel is not None:
            peer = primitive.send_peer
            link = self._links.get(peer)
            if link is None:
                link = self.communicator.link(self.group_rank, peer)
                self._links[peer] = link
        else:
            peer = None
            link = None
        busy_key = (primitive.nbytes, peer, primitive.touches_memory)
        busy = self._busy_cache.get(busy_key)
        if busy is None:
            busy = self.cost_model.primitive_time_us(
                primitive.nbytes,
                link=link,
                sends=send_channel is not None,
                touches_memory=primitive.touches_memory,
            )
            self._busy_cache[busy_key] = busy

        if recv_channel is not None:
            message = recv_channel._fifo.popleft()
            recv_channel.popped_count += 1
            # Spin until the in-flight data actually arrives, then consume
            # it; the message shell is dead now and returns to the freelist.
            arrival = message.ready_time_us
            if arrival > clock.now:
                clock.now = arrival
            recv_channel._free.append(message)
            if engine is not None:
                # Fast path: a signal with no registered waiter is a no-op, so
                # consult the engine's public waiter table before paying the
                # call.
                key = recv_channel.writable_key
                if key in engine.waiters_by_key:
                    engine.signal(key, clock.now)

        # clock.advance(busy) inlined: busy is a cached non-negative cost.
        clock.now += busy * clock.rate

        if send_channel is not None:
            free = send_channel._free
            if free:
                message = free.pop()
                message.collective_id = self.collective_id
                message.chunk_index = primitive.chunk_index
                message.step = primitive.step
                message.nbytes = primitive.nbytes
                message.ready_time_us = clock.now
            else:
                message = ChunkMessage(
                    collective_id=self.collective_id,
                    chunk_index=primitive.chunk_index,
                    step=primitive.step,
                    nbytes=primitive.nbytes,
                    ready_time_us=clock.now,
                )
            send_channel._fifo.append(message)
            send_channel.pushed_count += 1
            send_channel.bytes_pushed += primitive.nbytes
            if engine is not None:
                key = send_channel.readable_key
                if key in engine.waiters_by_key:
                    engine.signal(key, clock.now)

        if trace is not None:
            trace.append(trace_start)
            trace.append(clock.now)
            trace.append(busy)

        self.position = position + 1
        self.executed_primitives += 1
        outcome = self._success_outcome
        outcome.primitive = primitive
        outcome.busy_time_us = busy
        return outcome
