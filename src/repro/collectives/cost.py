"""Cost model for the on-GPU part of primitive execution.

The inter-GPU transfer cost comes from the interconnect's alpha/beta link
model; this module adds the local costs: reading/writing device memory for the
``reduce`` and ``copy`` actions, the fixed per-primitive control overhead, and
the cost of a single busy-wait poll.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Tunable knobs of the primitive cost model (times in microseconds)."""

    #: Device-local memory bandwidth used by reduce/copy actions (GB/s).
    local_bandwidth_gbps: float = 350.0
    #: Fixed control overhead charged per executed primitive.
    primitive_overhead_us: float = 0.4
    #: Cost of one failed busy-wait poll on a connector.
    poll_cost_us: float = 0.004
    #: Cost of checking the submission queue once from the daemon kernel.
    sq_check_cost_us: float = 0.3

    def local_copy_time_us(self, nbytes):
        """Time for the copy/reduce actions to touch ``nbytes`` of device memory."""
        if nbytes <= 0:
            return 0.0
        return nbytes / (self.local_bandwidth_gbps * 1e3)

    def primitive_time_us(self, nbytes, link=None, sends=False, touches_memory=True):
        """Busy time of a successfully executing primitive.

        ``link`` is the :class:`LinkSpec` used by the send action (``None``
        when the primitive does not send).  The send transfer and the local
        memory traffic overlap on real hardware, so we charge their maximum
        plus the fixed control overhead.
        """
        transfer = link.transfer_time_us(nbytes) if (sends and link is not None) else 0.0
        local = self.local_copy_time_us(nbytes) if touches_memory else 0.0
        return self.primitive_overhead_us + max(transfer, local)


DEFAULT_COST_MODEL = CostModel()
