"""Topology-aware ring/tree/hierarchical algorithm selection.

Mirrors NCCL's tuner: for every registered collective the selector predicts
the alpha/beta cost of each candidate algorithm from the message size, the
group size and the link parameters of the devices actually involved, and picks
the cheapest.  Small messages on large groups are latency-bound and go to
the tree (``O(log n)`` alpha terms); large messages are bandwidth-bound and go
to the ring (bandwidth-optimal ``2(n-1)/n`` byte volume); on multi-node
topologies with enough islands, the two-level hierarchical all-reduce beats
both by confining most steps to fast intra-island links and paying the slow
inter-island alpha only ``2(k-1)`` times for ``k`` islands.

The predicted costs share their structure with the simulator's primitive cost
model — a systolic ring advances at the pace of its slowest link, the
serialized double binary tree pays every byte several times over the
bottleneck link — and the constants are calibrated against the simulated
dual-server testbed, the same way NCCL's tuner bakes in measured hardware
constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.types import CollectiveKind, LinkType
from repro.collectives.cost import DEFAULT_COST_MODEL
from repro.collectives.sequences import (
    ALGORITHM_HIERARCHICAL,
    ALGORITHM_RING,
    ALGORITHM_TREE,
    DEFAULT_CHUNK_BYTES,
    HIERARCHICAL_KINDS,
    TREE_KINDS,
    hierarchical_island_size,
)

#: Values accepted by the ``algorithm`` configuration knob.
ALGORITHM_CHOICES = ("auto", ALGORITHM_RING, ALGORITHM_TREE,
                     ALGORITHM_HIERARCHICAL)

#: ``auto`` only considers the hierarchical all-reduce at this island count or
#: above.  Below it the inter-island ring is too short to amortize the extra
#: intra-island phases, and the flat ring/tree estimates (calibrated on the
#: dual-server testbed) stay authoritative.
_HIERARCHICAL_MIN_ISLANDS = 4

#: Bottleneck-bytes multiplier of the serialized double binary tree all-reduce
#: relative to a single traversal (up + down phases, two trees, interior ranks
#: serving both children through one executor).
_TREE_ALLREDUCE_BW_FACTOR = 8.5

#: Critical-path hops of a binary/binomial tree as a multiple of its depth
#: (fan-in/fan-out serialization at interior ranks).
_TREE_HOP_FACTOR = 1.5

#: Extra serialized spine traversals of the double binary tree per cross-pod
#: edge on its deepest root path.  On a two-level fat-tree the heap-shaped
#: tree jumps pods on almost every upper level, and each such edge re-pays
#: the payload over the oversubscribed spine on the critical path — a term
#: the flat-topology constants above cannot see.  Calibrated against the
#: measured time-attribution of the 256/512-rank fat-tree ladder points,
#: like the other constants are calibrated on the dual-server testbed.
_TREE_SPINE_BW_FACTOR = 2.25


@dataclass(frozen=True)
class LinkParameters:
    """Aggregate link parameters of a device group's ring embedding."""

    alpha_sum_us: float
    alpha_max_us: float
    beta_min_gbps: float
    #: Sum over ring edges of the per-byte transfer time (us/byte).
    inv_beta_us_per_byte: float

    @property
    def bytes_per_us(self):
        return self.beta_min_gbps * 1e3


@dataclass(frozen=True)
class AlgorithmChoice:
    """Outcome of one selection: the winner plus every predicted cost.

    ``hierarchical_cost_us`` is ``inf`` whenever the group has no valid
    two-level decomposition (single node, ragged islands, no topology info).
    """

    algorithm: str
    ring_cost_us: float
    tree_cost_us: float
    hierarchical_cost_us: float = float("inf")


class AlgorithmSelector:
    """Predicts per-algorithm alpha/beta costs and picks the cheapest schedule.

    One selector instance serves one backend: it caches the interconnect (for
    per-link latency/bandwidth lookups) and the primitive cost model, and is
    consulted once per registered collective (``resolve``) or explicitly via
    ``choose``/``select``.  Candidates are the flat ring, the double binary
    tree, and — for all-reduce on groups spanning >= ``_HIERARCHICAL_MIN_ISLANDS``
    nodes — the two-level hierarchical schedule.
    """

    def __init__(self, interconnect=None, cost_model=None,
                 chunk_bytes=DEFAULT_CHUNK_BYTES):
        self.interconnect = interconnect
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.chunk_bytes = chunk_bytes

    # -- link parameters -------------------------------------------------------

    def link_parameters(self, device_ids):
        """Ring-edge link aggregates for a device group.

        When no topology information is available, falls back to the PIX
        domain defaults (the flat single-server case).
        """
        size = len(device_ids or ())
        if self.interconnect is None or size < 2:
            alpha = LinkType.SHM_PIX.alpha_us
            beta = LinkType.SHM_PIX.beta_gbps
            edges = max(2, size)
            return LinkParameters(alpha * edges, alpha, beta,
                                  edges / (beta * 1e3))
        alphas = []
        inv_beta = 0.0
        betas = []
        ring = list(device_ids)
        for dev_a, dev_b in zip(ring, ring[1:] + ring[:1]):
            link = self.interconnect.link(dev_a, dev_b)
            alphas.append(link.alpha_us)
            betas.append(link.beta_gbps)
            inv_beta += 1.0 / (link.beta_gbps * 1e3)
        return LinkParameters(sum(alphas), max(alphas), min(betas), inv_beta)

    def hierarchical_structure(self, device_ids):
        """Two-level decomposition of a device group, or ``None``.

        Returns ``(island_size, islands, intra_params, inter_params)`` when the
        group's devices form >= 2 equal contiguous node-aligned islands and a
        real interconnect is available to distinguish the tiers.  The intra
        parameters aggregate the first island's ring edges; the inter
        parameters aggregate the ring over each island's lead device.
        """
        if self.interconnect is None or not device_ids:
            return None
        devices = list(device_ids)
        island_size = hierarchical_island_size(dev.node for dev in devices)
        if island_size is None or island_size < 2:
            return None
        islands = len(devices) // island_size
        intra_params = self.link_parameters(devices[:island_size])
        inter_params = self.link_parameters(devices[::island_size])
        return island_size, islands, intra_params, inter_params

    def _tree_inter_pod_cost_us(self, nbytes, device_ids):
        """Spine re-traversal cost of the tree all-reduce on multi-pod fabrics.

        Counts pod-crossing edges on the deepest root path of the heap-shaped
        tree (rank ``n-1`` up through ``(i-1)//2`` to the root) and charges
        :data:`_TREE_SPINE_BW_FACTOR` payload traversals of the spine per
        crossing.  Zero whenever the topology is single-level or the group
        sits inside one pod, so flat-topology predictions are unchanged.
        """
        if self.interconnect is None or not device_ids:
            return 0.0
        topology = getattr(self.interconnect, "topology", None)
        if topology is None or topology.nodes_per_pod <= 0:
            return 0.0
        devices = list(device_ids)
        crossings = 0
        index = len(devices) - 1
        while index > 0:
            parent = (index - 1) // 2
            if (topology.pod_of(devices[index].node)
                    != topology.pod_of(devices[parent].node)):
                crossings += 1
            index = parent
        if not crossings:
            return 0.0
        return (_TREE_SPINE_BW_FACTOR * crossings * nbytes
                / (topology.spine_beta_gbps * 1e3))

    # -- predicted costs -------------------------------------------------------

    def predicted_cost_us(self, algorithm, kind, nbytes, group_size, device_ids=None,
                          params=None):
        """Alpha/beta cost estimate of one algorithm for one collective call.

        ``params`` may carry precomputed :class:`LinkParameters` to avoid
        re-resolving every ring edge when costing several algorithms for the
        same group.
        """
        if group_size <= 1:
            return 0.0
        if params is None:
            params = self.link_parameters(device_ids)
        overhead = self.cost_model.primitive_overhead_us
        hop = overhead + params.alpha_max_us
        n = group_size
        depth = max(1, math.ceil(math.log2(n + 1)))
        loop_bytes = min(nbytes, self.chunk_bytes)
        nloops = max(1, math.ceil(nbytes / self.chunk_bytes))

        if algorithm == ALGORITHM_RING:
            if kind is CollectiveKind.ALL_REDUCE:
                # Systolic ring: 2(n-1) lock-steps at the slowest link's pace.
                return 2 * (n - 1) * (hop + (nbytes / n) / params.bytes_per_us)
            if kind in (CollectiveKind.ALL_GATHER, CollectiveKind.REDUCE_SCATTER):
                return (n - 1) * (hop + (nbytes / n) / params.bytes_per_us)
            # Chain: pipeline fill along every edge, then one loop per slowest
            # hop in steady state.
            fraction = (n - 1) / n
            fill = (
                (n - 1) * overhead
                + params.alpha_sum_us * fraction
                + loop_bytes * params.inv_beta_us_per_byte * fraction
            )
            steady = (nloops - 1) * (hop + loop_bytes / params.bytes_per_us)
            return fill + steady
        if algorithm == ALGORITHM_TREE:
            if kind not in TREE_KINDS:
                return self.predicted_cost_us(ALGORITHM_RING, kind, nbytes,
                                              group_size, device_ids, params=params)
            if kind is CollectiveKind.ALL_REDUCE:
                alpha_term = _TREE_HOP_FACTOR * depth * hop
                bw_term = _TREE_ALLREDUCE_BW_FACTOR * nbytes / params.bytes_per_us
                return (alpha_term + bw_term
                        + self._tree_inter_pod_cost_us(nbytes, device_ids))
            per_loop = hop + loop_bytes / params.bytes_per_us
            if kind is CollectiveKind.BROADCAST:
                # The root forwards the full payload to each of its ~depth
                # children serially, so steady state pays ~depth per loop.
                fill = _TREE_HOP_FACTOR * depth * per_loop
                steady = (nloops - 1) * depth * per_loop
                return fill + steady
            # Reduce: fan-in is cheap (children send concurrently, the parent
            # only pays the local reduce), so the tree is near depth hops.
            fill = 0.75 * depth * per_loop
            steady = (nloops - 1) * 1.5 * per_loop
            return fill + steady
        if algorithm == ALGORITHM_HIERARCHICAL:
            if kind not in HIERARCHICAL_KINDS:
                return self.predicted_cost_us(ALGORITHM_RING, kind, nbytes,
                                              group_size, device_ids, params=params)
            structure = self.hierarchical_structure(device_ids)
            if structure is None:
                return float("inf")
            m, k, intra, inter = structure
            hop_intra = overhead + intra.alpha_max_us
            hop_inter = overhead + inter.alpha_max_us
            # 2(m-1) slab steps of nbytes/m inside the island (reduce-scatter
            # + all-gather), 2(k-1) slice steps of nbytes/n across islands.
            intra_cost = 2 * (m - 1) * (hop_intra
                                        + (nbytes / m) / intra.bytes_per_us)
            inter_cost = 2 * (k - 1) * (hop_inter
                                        + (nbytes / n) / inter.bytes_per_us)
            return intra_cost + inter_cost
        raise ConfigurationError(f"unknown algorithm {algorithm!r}")

    def predicted_cost_breakdown(self, algorithm, kind, nbytes, group_size,
                                 device_ids=None, params=None):
        """Decompose :meth:`predicted_cost_us` into attribution buckets.

        Returns ``{"alpha_us", "beta_us", "memory_us", "overhead_us"}`` —
        the cost-model side of the buckets the analysis layer measures —
        summing to the predicted cost (``None`` when the prediction is
        infinite, e.g. hierarchical without a valid decomposition).  The
        alpha bucket is the per-message link latency, beta the byte/bandwidth
        terms (including the tree's inter-pod spine traversals), overhead the
        fixed per-primitive control cost; the model has no explicit memory
        term, so ``memory_us`` is always zero here.
        """
        zero = {"alpha_us": 0.0, "beta_us": 0.0, "memory_us": 0.0,
                "overhead_us": 0.0}
        if group_size <= 1:
            return zero
        if params is None:
            params = self.link_parameters(device_ids)
        overhead = self.cost_model.primitive_overhead_us
        n = group_size
        depth = max(1, math.ceil(math.log2(n + 1)))
        loop_bytes = min(nbytes, self.chunk_bytes)
        nloops = max(1, math.ceil(nbytes / self.chunk_bytes))

        def split(hops, alpha_max_us, beta_us):
            # ``hops`` full latency hops (overhead + alpha each) plus the
            # bandwidth term: the exact shape of every branch's hop cost.
            return {"alpha_us": hops * alpha_max_us, "beta_us": beta_us,
                    "memory_us": 0.0, "overhead_us": hops * overhead}

        if algorithm == ALGORITHM_RING:
            if kind is CollectiveKind.ALL_REDUCE:
                steps = 2 * (n - 1)
                return split(steps, params.alpha_max_us,
                             steps * (nbytes / n) / params.bytes_per_us)
            if kind in (CollectiveKind.ALL_GATHER,
                        CollectiveKind.REDUCE_SCATTER):
                steps = n - 1
                return split(steps, params.alpha_max_us,
                             steps * (nbytes / n) / params.bytes_per_us)
            fraction = (n - 1) / n
            return {
                "alpha_us": (params.alpha_sum_us * fraction
                             + (nloops - 1) * params.alpha_max_us),
                "beta_us": (loop_bytes * params.inv_beta_us_per_byte * fraction
                            + (nloops - 1) * loop_bytes / params.bytes_per_us),
                "memory_us": 0.0,
                "overhead_us": ((n - 1) + (nloops - 1)) * overhead,
            }
        if algorithm == ALGORITHM_TREE:
            if kind not in TREE_KINDS:
                return self.predicted_cost_breakdown(
                    ALGORITHM_RING, kind, nbytes, group_size, device_ids,
                    params=params)
            if kind is CollectiveKind.ALL_REDUCE:
                hops = _TREE_HOP_FACTOR * depth
                return split(hops, params.alpha_max_us,
                             _TREE_ALLREDUCE_BW_FACTOR * nbytes
                             / params.bytes_per_us
                             + self._tree_inter_pod_cost_us(nbytes,
                                                            device_ids))
            if kind is CollectiveKind.BROADCAST:
                hops = _TREE_HOP_FACTOR * depth + (nloops - 1) * depth
            else:
                hops = 0.75 * depth + (nloops - 1) * 1.5
            return split(hops, params.alpha_max_us,
                         hops * loop_bytes / params.bytes_per_us)
        if algorithm == ALGORITHM_HIERARCHICAL:
            if kind not in HIERARCHICAL_KINDS:
                return self.predicted_cost_breakdown(
                    ALGORITHM_RING, kind, nbytes, group_size, device_ids,
                    params=params)
            structure = self.hierarchical_structure(device_ids)
            if structure is None:
                return None
            m, k, intra, inter = structure
            intra_steps = 2 * (m - 1)
            inter_steps = 2 * (k - 1)
            return {
                "alpha_us": (intra_steps * intra.alpha_max_us
                             + inter_steps * inter.alpha_max_us),
                "beta_us": (intra_steps * (nbytes / m) / intra.bytes_per_us
                            + inter_steps * (nbytes / n) / inter.bytes_per_us),
                "memory_us": 0.0,
                "overhead_us": (intra_steps + inter_steps) * overhead,
            }
        raise ConfigurationError(f"unknown algorithm {algorithm!r}")

    # -- selection -------------------------------------------------------------

    def choose(self, kind, nbytes, group_size, device_ids=None):
        """Compare the candidate algorithms and return an :class:`AlgorithmChoice`.

        The hierarchical all-reduce only enters the comparison when the group
        decomposes into >= ``_HIERARCHICAL_MIN_ISLANDS`` islands; its cost is
        reported as ``inf`` otherwise.
        """
        params = self.link_parameters(device_ids)
        ring_cost = self.predicted_cost_us(ALGORITHM_RING, kind, nbytes,
                                           group_size, params=params)
        if kind not in TREE_KINDS or group_size <= 2:
            return AlgorithmChoice(ALGORITHM_RING, ring_cost, float("inf"))
        tree_cost = self.predicted_cost_us(ALGORITHM_TREE, kind, nbytes,
                                           group_size, device_ids,
                                           params=params)
        hierarchical_cost = float("inf")
        if kind in HIERARCHICAL_KINDS:
            structure = self.hierarchical_structure(device_ids)
            if structure is not None and structure[1] >= _HIERARCHICAL_MIN_ISLANDS:
                hierarchical_cost = self.predicted_cost_us(
                    ALGORITHM_HIERARCHICAL, kind, nbytes, group_size, device_ids)
        winner, best = ALGORITHM_RING, ring_cost
        if tree_cost < best:
            winner, best = ALGORITHM_TREE, tree_cost
        if hierarchical_cost < best:
            winner = ALGORITHM_HIERARCHICAL
        return AlgorithmChoice(winner, ring_cost, tree_cost, hierarchical_cost)

    def select(self, kind, nbytes, group_size, device_ids=None):
        """The winning algorithm name for one collective call."""
        return self.choose(kind, nbytes, group_size, device_ids).algorithm

    def resolve(self, algorithm, kind, nbytes, group_size, device_ids=None):
        """Resolve an algorithm knob value to a concrete algorithm name.

        Accepts ``"auto"`` (run the cost model), ``"ring"``, ``"tree"`` or
        ``"hierarchical"`` and returns a concrete name suitable for
        :func:`generate_primitive_sequence`; anything else raises
        :class:`ConfigurationError`.  Explicit names pass through unchanged —
        the sequence layer falls back to the flat ring when a family does not
        apply to the collective kind or the group has no island structure.
        """
        if algorithm not in ALGORITHM_CHOICES:
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHM_CHOICES}"
            )
        if algorithm == "auto":
            return self.select(kind, nbytes, group_size, device_ids)
        return algorithm
