"""Topology-aware ring-vs-tree algorithm selection.

Mirrors NCCL's tuner: for every registered collective the selector predicts
the alpha/beta cost of the ring and tree algorithms from the message size, the
group size and the link parameters of the devices actually involved, and picks
the cheaper one.  Small messages on large groups are latency-bound and go to
the tree (``O(log n)`` alpha terms); large messages are bandwidth-bound and go
to the ring (bandwidth-optimal ``2(n-1)/n`` byte volume).

The predicted costs share their structure with the simulator's primitive cost
model — a systolic ring advances at the pace of its slowest link, the
serialized double binary tree pays every byte several times over the
bottleneck link — and the constants are calibrated against the simulated
dual-server testbed, the same way NCCL's tuner bakes in measured hardware
constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.types import CollectiveKind, LinkType
from repro.collectives.cost import DEFAULT_COST_MODEL
from repro.collectives.sequences import (
    ALGORITHM_RING,
    ALGORITHM_TREE,
    DEFAULT_CHUNK_BYTES,
    TREE_KINDS,
)

#: Values accepted by the ``algorithm`` configuration knob.
ALGORITHM_CHOICES = ("auto", ALGORITHM_RING, ALGORITHM_TREE)

#: Bottleneck-bytes multiplier of the serialized double binary tree all-reduce
#: relative to a single traversal (up + down phases, two trees, interior ranks
#: serving both children through one executor).
_TREE_ALLREDUCE_BW_FACTOR = 8.5

#: Critical-path hops of a binary/binomial tree as a multiple of its depth
#: (fan-in/fan-out serialization at interior ranks).
_TREE_HOP_FACTOR = 1.5


@dataclass(frozen=True)
class LinkParameters:
    """Aggregate link parameters of a device group's ring embedding."""

    alpha_sum_us: float
    alpha_max_us: float
    beta_min_gbps: float
    #: Sum over ring edges of the per-byte transfer time (us/byte).
    inv_beta_us_per_byte: float

    @property
    def bytes_per_us(self):
        return self.beta_min_gbps * 1e3


@dataclass(frozen=True)
class AlgorithmChoice:
    """Outcome of one selection: the winner plus both predicted costs."""

    algorithm: str
    ring_cost_us: float
    tree_cost_us: float


class AlgorithmSelector:
    """Picks ring vs. tree per collective from size, group and topology."""

    def __init__(self, interconnect=None, cost_model=None,
                 chunk_bytes=DEFAULT_CHUNK_BYTES):
        self.interconnect = interconnect
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.chunk_bytes = chunk_bytes

    # -- link parameters -------------------------------------------------------

    def link_parameters(self, device_ids):
        """Ring-edge link aggregates for a device group.

        When no topology information is available, falls back to the PIX
        domain defaults (the flat single-server case).
        """
        size = len(device_ids or ())
        if self.interconnect is None or size < 2:
            alpha = LinkType.SHM_PIX.alpha_us
            beta = LinkType.SHM_PIX.beta_gbps
            edges = max(2, size)
            return LinkParameters(alpha * edges, alpha, beta,
                                  edges / (beta * 1e3))
        alphas = []
        inv_beta = 0.0
        betas = []
        ring = list(device_ids)
        for dev_a, dev_b in zip(ring, ring[1:] + ring[:1]):
            link = self.interconnect.link(dev_a, dev_b)
            alphas.append(link.alpha_us)
            betas.append(link.beta_gbps)
            inv_beta += 1.0 / (link.beta_gbps * 1e3)
        return LinkParameters(sum(alphas), max(alphas), min(betas), inv_beta)

    # -- predicted costs -------------------------------------------------------

    def predicted_cost_us(self, algorithm, kind, nbytes, group_size, device_ids=None,
                          params=None):
        """Alpha/beta cost estimate of one algorithm for one collective call.

        ``params`` may carry precomputed :class:`LinkParameters` to avoid
        re-resolving every ring edge when costing several algorithms for the
        same group.
        """
        if group_size <= 1:
            return 0.0
        if params is None:
            params = self.link_parameters(device_ids)
        overhead = self.cost_model.primitive_overhead_us
        hop = overhead + params.alpha_max_us
        n = group_size
        depth = max(1, math.ceil(math.log2(n + 1)))
        loop_bytes = min(nbytes, self.chunk_bytes)
        nloops = max(1, math.ceil(nbytes / self.chunk_bytes))

        if algorithm == ALGORITHM_RING:
            if kind is CollectiveKind.ALL_REDUCE:
                # Systolic ring: 2(n-1) lock-steps at the slowest link's pace.
                return 2 * (n - 1) * (hop + (nbytes / n) / params.bytes_per_us)
            if kind in (CollectiveKind.ALL_GATHER, CollectiveKind.REDUCE_SCATTER):
                return (n - 1) * (hop + (nbytes / n) / params.bytes_per_us)
            # Chain: pipeline fill along every edge, then one loop per slowest
            # hop in steady state.
            fraction = (n - 1) / n
            fill = (
                (n - 1) * overhead
                + params.alpha_sum_us * fraction
                + loop_bytes * params.inv_beta_us_per_byte * fraction
            )
            steady = (nloops - 1) * (hop + loop_bytes / params.bytes_per_us)
            return fill + steady
        if algorithm == ALGORITHM_TREE:
            if kind not in TREE_KINDS:
                return self.predicted_cost_us(ALGORITHM_RING, kind, nbytes,
                                              group_size, device_ids, params=params)
            if kind is CollectiveKind.ALL_REDUCE:
                alpha_term = _TREE_HOP_FACTOR * depth * hop
                bw_term = _TREE_ALLREDUCE_BW_FACTOR * nbytes / params.bytes_per_us
                return alpha_term + bw_term
            per_loop = hop + loop_bytes / params.bytes_per_us
            if kind is CollectiveKind.BROADCAST:
                # The root forwards the full payload to each of its ~depth
                # children serially, so steady state pays ~depth per loop.
                fill = _TREE_HOP_FACTOR * depth * per_loop
                steady = (nloops - 1) * depth * per_loop
                return fill + steady
            # Reduce: fan-in is cheap (children send concurrently, the parent
            # only pays the local reduce), so the tree is near depth hops.
            fill = 0.75 * depth * per_loop
            steady = (nloops - 1) * 1.5 * per_loop
            return fill + steady
        raise ConfigurationError(f"unknown algorithm {algorithm!r}")

    # -- selection -------------------------------------------------------------

    def choose(self, kind, nbytes, group_size, device_ids=None):
        """Compare both algorithms and return an :class:`AlgorithmChoice`."""
        params = self.link_parameters(device_ids)
        ring_cost = self.predicted_cost_us(ALGORITHM_RING, kind, nbytes,
                                           group_size, params=params)
        if kind not in TREE_KINDS or group_size <= 2:
            return AlgorithmChoice(ALGORITHM_RING, ring_cost, float("inf"))
        tree_cost = self.predicted_cost_us(ALGORITHM_TREE, kind, nbytes,
                                           group_size, params=params)
        winner = ALGORITHM_TREE if tree_cost < ring_cost else ALGORITHM_RING
        return AlgorithmChoice(winner, ring_cost, tree_cost)

    def select(self, kind, nbytes, group_size, device_ids=None):
        """The winning algorithm name for one collective call."""
        return self.choose(kind, nbytes, group_size, device_ids).algorithm

    def resolve(self, algorithm, kind, nbytes, group_size, device_ids=None):
        """Resolve a config knob value (``auto``/``ring``/``tree``) to a
        concrete algorithm for :func:`generate_primitive_sequence`."""
        if algorithm not in ALGORITHM_CHOICES:
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHM_CHOICES}"
            )
        if algorithm == "auto":
            return self.select(kind, nbytes, group_size, device_ids)
        return algorithm
