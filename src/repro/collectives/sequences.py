"""Per-rank primitive sequence generation for the collective algorithms.

Every common collective (all-reduce, all-gather, reduce-scatter, reduce,
broadcast, all-to-all) is compiled into a sequence of primitives for each
participating rank, exactly as described in Sec. 4.1: the input is divided
into regular chunks and the rank executes its primitive sequence once per
chunk loop.

Three algorithm families are supported, mirroring NCCL:

* ``ring`` — the default: bandwidth-optimal ring (all-reduce, all-gather,
  reduce-scatter) and chain variants (broadcast, reduce);
* ``tree`` — latency-optimal trees for the small-message regime: a double
  binary tree for all-reduce (reduce up + broadcast down over two
  complementary trees, each carrying half the payload) and binomial trees for
  broadcast and reduce.  All-gather and reduce-scatter have no tree variant
  (NCCL likewise only runs them on rings) and fall back to the ring;
* ``hierarchical`` — a two-level all-reduce for node-structured fabrics:
  reduce-scatter inside each island over the intra-node links, ring
  all-reduce of the partials across islands (position peers only cross the
  pod/spine links), all-gather back inside the island.  The island structure
  is supplied by the caller via ``island_size`` (derived from the participant
  devices with :func:`hierarchical_island_size`); groups without a usable
  two-level structure fall back to the flat ring.

All-to-all is a pairwise-exchange schedule (the MoE expert-parallel
collective): each rank copies its own slice locally, then in step ``s`` sends
slice ``(rank+s) mod n`` while receiving from ``(rank-s) mod n``.  It has a
single schedule and ignores the algorithm knob, like all-gather.
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigurationError
from repro.common.types import CollectiveKind
from repro.collectives.primitives import (
    PRIM_COPY,
    PRIM_RECV,
    PRIM_RECV_COPY_SEND,
    PRIM_RECV_REDUCE_COPY,
    PRIM_RECV_REDUCE_COPY_SEND,
    PRIM_RECV_REDUCE_SEND,
    PRIM_SEND,
    Primitive,
)

#: Default chunk size (bytes) per ring slice, matching NCCL's Simple protocol
#: slice granularity order of magnitude.
DEFAULT_CHUNK_BYTES = 128 << 10

#: Algorithm names accepted by :func:`generate_primitive_sequence`.
ALGORITHM_RING = "ring"
ALGORITHM_TREE = "tree"
ALGORITHM_HIERARCHICAL = "hierarchical"
ALGORITHMS = (ALGORITHM_RING, ALGORITHM_TREE, ALGORITHM_HIERARCHICAL)

#: Collectives that have a dedicated tree variant.
TREE_KINDS = (
    CollectiveKind.ALL_REDUCE,
    CollectiveKind.BROADCAST,
    CollectiveKind.REDUCE,
)

#: Collectives that have a two-level hierarchical variant.
HIERARCHICAL_KINDS = (CollectiveKind.ALL_REDUCE,)

#: Below this payload the double binary tree sends everything through one
#: tree: the per-rank executor serializes the two trees, so splitting a
#: latency-bound message across both would double the alpha cost for no
#: bandwidth gain.
TREE_SPLIT_MIN_BYTES = 256 << 10


def chunk_loops(nbytes, group_size, chunk_bytes=DEFAULT_CHUNK_BYTES, per_rank_slices=True):
    """Split ``nbytes`` into chunk loops.

    Returns a list of per-loop chunk sizes (the bytes each primitive of that
    loop carries).  When ``per_rank_slices`` is true the data is additionally
    divided across the ``group_size`` ring slices, as all-reduce and
    reduce-scatter do; broadcast-style chains process the whole chunk per loop.
    """
    if nbytes <= 0:
        raise ConfigurationError(f"collective payload must be positive, got {nbytes}")
    divisor = group_size if per_rank_slices else 1
    loop_bytes = chunk_bytes * divisor
    nloops = max(1, math.ceil(nbytes / loop_bytes))
    sizes = []
    remaining = nbytes
    for _ in range(nloops):
        this_loop = min(loop_bytes, remaining)
        sizes.append(max(1, math.ceil(this_loop / divisor)))
        remaining -= this_loop
    return sizes


def _ring_peers(group_rank, group_size):
    send_peer = (group_rank + 1) % group_size
    recv_peer = (group_rank - 1) % group_size
    return send_peer, recv_peer


def _all_reduce_loop(group_rank, group_size, loop, nbytes):
    """2*(n-1) primitives: reduce-scatter phase then all-gather phase."""
    send_peer, recv_peer = _ring_peers(group_rank, group_size)
    primitives = []
    step = 0
    primitives.append(
        Primitive("send", PRIM_SEND, loop, step, chunk_index=group_rank, nbytes=nbytes,
                  send_peer=send_peer)
    )
    for _ in range(group_size - 2):
        step += 1
        primitives.append(
            Primitive("recvReduceSend", PRIM_RECV_REDUCE_SEND, loop, step,
                      chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                      send_peer=send_peer, recv_peer=recv_peer)
        )
    step += 1
    primitives.append(
        Primitive("recvReduceCopySend", PRIM_RECV_REDUCE_COPY_SEND, loop, step,
                  chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                  send_peer=send_peer, recv_peer=recv_peer)
    )
    for _ in range(group_size - 2):
        step += 1
        primitives.append(
            Primitive("recvCopySend", PRIM_RECV_COPY_SEND, loop, step,
                      chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                      send_peer=send_peer, recv_peer=recv_peer)
        )
    step += 1
    primitives.append(
        Primitive("recv", PRIM_RECV, loop, step,
                  chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                  recv_peer=recv_peer)
    )
    return primitives


def _all_gather_loop(group_rank, group_size, loop, nbytes):
    """n primitives: send own slice, forward n-2 slices, receive the last."""
    send_peer, recv_peer = _ring_peers(group_rank, group_size)
    primitives = [
        Primitive("send", PRIM_SEND, loop, 0, chunk_index=group_rank, nbytes=nbytes,
                  send_peer=send_peer)
    ]
    for step in range(1, group_size - 1):
        primitives.append(
            Primitive("recvCopySend", PRIM_RECV_COPY_SEND, loop, step,
                      chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                      send_peer=send_peer, recv_peer=recv_peer)
        )
    primitives.append(
        Primitive("recv", PRIM_RECV, loop, group_size - 1,
                  chunk_index=(group_rank + 1) % group_size, nbytes=nbytes,
                  recv_peer=recv_peer)
    )
    return primitives


def _reduce_scatter_loop(group_rank, group_size, loop, nbytes):
    """n primitives: send, n-2 recvReduceSend, final recvReduceCopy."""
    send_peer, recv_peer = _ring_peers(group_rank, group_size)
    primitives = [
        Primitive("send", PRIM_SEND, loop, 0, chunk_index=group_rank, nbytes=nbytes,
                  send_peer=send_peer)
    ]
    for step in range(1, group_size - 1):
        primitives.append(
            Primitive("recvReduceSend", PRIM_RECV_REDUCE_SEND, loop, step,
                      chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                      send_peer=send_peer, recv_peer=recv_peer)
        )
    primitives.append(
        Primitive("recvReduceCopy", PRIM_RECV_REDUCE_COPY, loop, group_size - 1,
                  chunk_index=(group_rank + 1) % group_size, nbytes=nbytes,
                  recv_peer=recv_peer)
    )
    return primitives


def _all_to_all_loop(group_rank, group_size, loop, nbytes):
    """Pairwise exchange: 1 local copy + (n-1) independent send/recv pairs.

    Step ``s`` sends this rank's slice for peer ``(rank+s) mod n`` while
    receiving the slice peer ``(rank-s) mod n`` addressed to this rank.  The
    send and recv of one step are separate primitives (nothing is forwarded:
    every rank injects its own data), so the executor first drains the send
    into the bounded channel, then blocks on the matching recv.
    """
    primitives = [
        Primitive("copy", PRIM_COPY, loop, 0, chunk_index=group_rank, nbytes=nbytes)
    ]
    step = 1
    for offset in range(1, group_size):
        send_peer = (group_rank + offset) % group_size
        recv_peer = (group_rank - offset) % group_size
        primitives.append(
            Primitive("send", PRIM_SEND, loop, step, chunk_index=send_peer,
                      nbytes=nbytes, send_peer=send_peer)
        )
        step += 1
        primitives.append(
            Primitive("recv", PRIM_RECV, loop, step, chunk_index=recv_peer,
                      nbytes=nbytes, recv_peer=recv_peer)
        )
        step += 1
    return primitives


def hierarchical_island_size(nodes):
    """Island size usable by the hierarchical all-reduce, or ``None``.

    ``nodes`` is one hashable island label per group rank (typically the
    device's node id), in group-rank order.  The two-level schedule needs the
    rank space to decompose into >= 2 equal contiguous islands whose members
    share a label — exactly the layout row-major rank assignment over
    equal-sized nodes produces.  Anything else (a single node, ragged islands
    after an elastic shrink, interleaved subgroups) returns ``None`` and the
    caller falls back to the flat ring.
    """
    nodes = list(nodes)
    total = len(nodes)
    if total < 4:
        return None
    labels = []
    for label in nodes:
        if not labels or labels[-1] != label:
            labels.append(label)
    islands = len(labels)
    if islands < 2 or len(set(labels)) != islands:
        return None
    size, remainder = divmod(total, islands)
    if remainder or size < 1:
        return None
    if any(nodes[rank] != labels[rank // size] for rank in range(total)):
        return None
    return size


def _hierarchical_all_reduce_loop(group_rank, group_size, loop, nbytes,
                                  island_size):
    """Two-level all-reduce: intra-island reduce-scatter, inter-island ring
    all-reduce of the partials, intra-island all-gather.

    ``nbytes`` is the per-slice payload of this chunk loop (the loop total
    divided across ``group_size`` ring slices, as in the flat ring).  With
    ``k = group_size // island_size`` islands:

    * phase 1 moves ``island_size - 1`` slabs of ``k`` slices over intra-island
      links, leaving each rank with the island-wide partial of its 1/m share;
    * phase 2 runs a ring all-reduce of that share among the ``k`` position
      peers (one rank per island), ``2(k-1)`` single-slice steps over the
      inter-island links;
    * phase 3 all-gathers the fully reduced shares back inside the island.

    Per rank the wire volume is ``2(m-1)·k + 2(k-1) = 2(n-1)`` slices — the
    same total as the flat ring, but with only ``2(k-1)`` slices crossing
    island boundaries.
    """
    m = island_size
    k = group_size // m
    island = group_rank // m
    position = group_rank % m
    base = island * m
    intra_send = base + (position + 1) % m
    intra_recv = base + (position - 1) % m
    inter_send = ((island + 1) % k) * m + position
    inter_recv = ((island - 1) % k) * m + position
    slab = nbytes * k  # one 1/m share of the loop payload (k slices)

    primitives = []
    step = 0

    # -- phase 1: intra-island reduce-scatter (m-1 slab steps) -----------------
    if m > 1:
        primitives.append(
            Primitive("send", PRIM_SEND, loop, step, chunk_index=position,
                      nbytes=slab, send_peer=intra_send)
        )
        for _ in range(m - 2):
            step += 1
            primitives.append(
                Primitive("recvReduceSend", PRIM_RECV_REDUCE_SEND, loop, step,
                          chunk_index=(position - step) % m, nbytes=slab,
                          send_peer=intra_send, recv_peer=intra_recv)
            )
        step += 1
        primitives.append(
            Primitive("recvReduceCopy", PRIM_RECV_REDUCE_COPY, loop, step,
                      chunk_index=(position + 1) % m, nbytes=slab,
                      recv_peer=intra_recv)
        )
        step += 1

    # -- phase 2: inter-island ring all-reduce of the 1/m share ----------------
    primitives.append(
        Primitive("send", PRIM_SEND, loop, step, chunk_index=island,
                  nbytes=nbytes, send_peer=inter_send)
    )
    substep = 0
    for _ in range(k - 2):
        step += 1
        substep += 1
        primitives.append(
            Primitive("recvReduceSend", PRIM_RECV_REDUCE_SEND, loop, step,
                      chunk_index=(island - substep) % k, nbytes=nbytes,
                      send_peer=inter_send, recv_peer=inter_recv)
        )
    step += 1
    substep += 1
    primitives.append(
        Primitive("recvReduceCopySend", PRIM_RECV_REDUCE_COPY_SEND, loop, step,
                  chunk_index=(island - substep) % k, nbytes=nbytes,
                  send_peer=inter_send, recv_peer=inter_recv)
    )
    for _ in range(k - 2):
        step += 1
        substep += 1
        primitives.append(
            Primitive("recvCopySend", PRIM_RECV_COPY_SEND, loop, step,
                      chunk_index=(island - substep) % k, nbytes=nbytes,
                      send_peer=inter_send, recv_peer=inter_recv)
        )
    step += 1
    substep += 1
    primitives.append(
        Primitive("recv", PRIM_RECV, loop, step,
                  chunk_index=(island - substep) % k, nbytes=nbytes,
                  recv_peer=inter_recv)
    )
    step += 1

    # -- phase 3: intra-island all-gather of the reduced shares ----------------
    if m > 1:
        primitives.append(
            Primitive("send", PRIM_SEND, loop, step, chunk_index=position,
                      nbytes=slab, send_peer=intra_send)
        )
        substep = 0
        for _ in range(m - 2):
            step += 1
            substep += 1
            primitives.append(
                Primitive("recvCopySend", PRIM_RECV_COPY_SEND, loop, step,
                          chunk_index=(position - substep) % m, nbytes=slab,
                          send_peer=intra_send, recv_peer=intra_recv)
            )
        step += 1
        primitives.append(
            Primitive("recv", PRIM_RECV, loop, step,
                      chunk_index=(position + 1) % m, nbytes=slab,
                      recv_peer=intra_recv)
        )
    return primitives


def _chain_loop(group_rank, group_size, loop, nbytes, root, reducing):
    """One primitive per loop for broadcast (root → ring) or reduce (ring → root)."""
    # The chain visits ranks in ring order starting after the root and ending
    # at the rank just before the root (broadcast) or at the root (reduce).
    position = (group_rank - root) % group_size
    send_peer = (group_rank + 1) % group_size
    recv_peer = (group_rank - 1) % group_size
    if reducing:
        # Reduce: data flows towards the root; chain start is root+1.
        if position == 1 or group_size == 1:
            return [Primitive("send", PRIM_SEND, loop, 0, chunk_index=loop, nbytes=nbytes,
                              send_peer=send_peer)]
        if group_rank == root:
            return [Primitive("recvReduceCopy", PRIM_RECV_REDUCE_COPY, loop, 0,
                              chunk_index=loop, nbytes=nbytes, recv_peer=recv_peer)]
        return [Primitive("recvReduceSend", PRIM_RECV_REDUCE_SEND, loop, 0,
                          chunk_index=loop, nbytes=nbytes,
                          send_peer=send_peer, recv_peer=recv_peer)]
    # Broadcast: data flows away from the root; chain end is root-1.
    if group_rank == root:
        return [Primitive("send", PRIM_SEND, loop, 0, chunk_index=loop, nbytes=nbytes,
                          send_peer=send_peer)]
    if position == group_size - 1:
        return [Primitive("recv", PRIM_RECV, loop, 0, chunk_index=loop, nbytes=nbytes,
                          recv_peer=recv_peer)]
    return [Primitive("recvCopySend", PRIM_RECV_COPY_SEND, loop, 0, chunk_index=loop,
                      nbytes=nbytes, send_peer=send_peer, recv_peer=recv_peer)]


# -- tree structures ------------------------------------------------------------


def binary_tree_relations(group_rank, group_size, mirror=False):
    """Parent and children of ``group_rank`` in a heap-shaped binary tree.

    With ``mirror=True`` the tree is the mirror image (rank ``r`` occupies the
    heap position of rank ``n-1-r``): the second tree of the double binary
    tree, in which the leaves of the first tree become interior ranks.
    """
    index = (group_size - 1 - group_rank) if mirror else group_rank

    def to_rank(heap_index):
        return (group_size - 1 - heap_index) if mirror else heap_index

    parent = to_rank((index - 1) // 2) if index > 0 else None
    children = [to_rank(c) for c in (2 * index + 1, 2 * index + 2) if c < group_size]
    return parent, children


def binomial_tree_relations(group_rank, group_size, root=0):
    """Parent and children of ``group_rank`` in a binomial tree rooted at ``root``.

    Children are ordered largest subtree first, which is the order a binomial
    broadcast forwards them in.
    """
    rel = (group_rank - root) % group_size
    if rel == 0:
        parent = None
    else:
        parent = ((rel ^ (1 << (rel.bit_length() - 1))) + root) % group_size
    children = []
    k = rel.bit_length()
    while rel + (1 << k) < group_size:
        children.append(((rel + (1 << k)) + root) % group_size)
        k += 1
    children.reverse()
    return parent, children


def _tree_reduce_phase(parent, children, loop, step, nbytes):
    """Reduce-toward-root primitives of one rank: recv-reduce each child, then
    forward the partial result to the parent (fused with the last reduce)."""
    primitives = []
    if not children:
        primitives.append(
            Primitive("send", PRIM_SEND, loop, step, chunk_index=loop, nbytes=nbytes,
                      send_peer=parent)
        )
        return primitives, step + 1
    for child in children[:-1]:
        primitives.append(
            Primitive("recvReduceCopy", PRIM_RECV_REDUCE_COPY, loop, step,
                      chunk_index=loop, nbytes=nbytes, recv_peer=child)
        )
        step += 1
    last = children[-1]
    if parent is None:
        primitives.append(
            Primitive("recvReduceCopy", PRIM_RECV_REDUCE_COPY, loop, step,
                      chunk_index=loop, nbytes=nbytes, recv_peer=last)
        )
    else:
        primitives.append(
            Primitive("recvReduceSend", PRIM_RECV_REDUCE_SEND, loop, step,
                      chunk_index=loop, nbytes=nbytes,
                      send_peer=parent, recv_peer=last)
        )
    return primitives, step + 1


def _tree_broadcast_phase(parent, children, loop, step, nbytes):
    """Broadcast-from-root primitives of one rank: receive from the parent and
    forward to every child (fused with the first send)."""
    primitives = []
    if parent is None:
        for child in children:
            primitives.append(
                Primitive("send", PRIM_SEND, loop, step, chunk_index=loop,
                          nbytes=nbytes, send_peer=child)
            )
            step += 1
        return primitives, step
    if not children:
        primitives.append(
            Primitive("recv", PRIM_RECV, loop, step, chunk_index=loop, nbytes=nbytes,
                      recv_peer=parent)
        )
        return primitives, step + 1
    primitives.append(
        Primitive("recvCopySend", PRIM_RECV_COPY_SEND, loop, step, chunk_index=loop,
                  nbytes=nbytes, send_peer=children[0], recv_peer=parent)
    )
    step += 1
    for child in children[1:]:
        primitives.append(
            Primitive("send", PRIM_SEND, loop, step, chunk_index=loop, nbytes=nbytes,
                      send_peer=child)
        )
        step += 1
    return primitives, step


def _all_reduce_tree_loop(group_rank, group_size, loop, nbytes):
    """Double binary tree all-reduce: reduce up then broadcast down each tree.

    Large payloads are split in half across the two complementary trees so
    that interior/leaf duties balance; small payloads travel through the first
    tree only (see :data:`TREE_SPLIT_MIN_BYTES`).
    """
    if nbytes >= TREE_SPLIT_MIN_BYTES and group_size > 2:
        halves = [nbytes - nbytes // 2, nbytes // 2]
    else:
        halves = [nbytes]
    primitives = []
    step = 0
    for tree_index, half in enumerate(halves):
        parent, children = binary_tree_relations(
            group_rank, group_size, mirror=(tree_index == 1)
        )
        up, step = _tree_reduce_phase(parent, children, loop, step, half)
        down, step = _tree_broadcast_phase(parent, children, loop, step, half)
        primitives.extend(up)
        primitives.extend(down)
    return primitives


def _broadcast_tree_loop(group_rank, group_size, loop, nbytes, root):
    parent, children = binomial_tree_relations(group_rank, group_size, root)
    primitives, _ = _tree_broadcast_phase(parent, children, loop, 0, nbytes)
    return primitives


def _reduce_tree_loop(group_rank, group_size, loop, nbytes, root):
    parent, children = binomial_tree_relations(group_rank, group_size, root)
    primitives, _ = _tree_reduce_phase(parent, children, loop, 0, nbytes)
    return primitives


def generate_primitive_sequence(
    kind,
    group_rank,
    group_size,
    nbytes,
    chunk_bytes=DEFAULT_CHUNK_BYTES,
    root=0,
    algorithm=ALGORITHM_RING,
    island_size=None,
):
    """Generate the full primitive sequence of one rank for one collective call.

    ``nbytes`` is the collective's input payload in bytes (per-rank input for
    all-gather and all-to-all, total for the others), matching
    :class:`CollectiveSpec.nbytes`.  ``algorithm`` selects the ring, tree or
    hierarchical family; ``"auto"`` must be resolved to a concrete algorithm by
    :class:`repro.collectives.selector.AlgorithmSelector` before this layer.

    ``island_size`` enables the two-level hierarchical all-reduce: it is the
    number of consecutive group ranks that share a fast intra-island domain
    (typically one node), as computed by :func:`hierarchical_island_size`.
    When ``algorithm="hierarchical"`` but ``island_size`` does not describe a
    valid two-level decomposition (``None``, does not divide ``group_size``,
    or degenerate), the schedule falls back to the flat ring — the safe
    topology-oblivious default.
    """
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    if group_size < 1:
        raise ConfigurationError("group_size must be at least 1")
    if not 0 <= group_rank < group_size:
        raise ConfigurationError(f"group_rank {group_rank} out of range for size {group_size}")
    if group_size == 1:
        return [Primitive("copy", PRIM_COPY, 0, 0, chunk_index=0, nbytes=nbytes)]

    tree = algorithm == ALGORITHM_TREE and kind in TREE_KINDS
    hierarchical = (
        algorithm == ALGORITHM_HIERARCHICAL
        and kind in HIERARCHICAL_KINDS
        and island_size is not None
        and 1 < island_size < group_size
        and group_size % island_size == 0
    )
    sliced = not tree and kind in (
        CollectiveKind.ALL_REDUCE,
        CollectiveKind.REDUCE_SCATTER,
        CollectiveKind.ALL_GATHER,
        CollectiveKind.ALL_TO_ALL,
    )
    loops = chunk_loops(nbytes, group_size, chunk_bytes, per_rank_slices=sliced)

    sequence = []
    for loop, loop_nbytes in enumerate(loops):
        if kind is CollectiveKind.ALL_REDUCE:
            if tree:
                sequence.extend(_all_reduce_tree_loop(group_rank, group_size, loop,
                                                      loop_nbytes))
            elif hierarchical:
                sequence.extend(_hierarchical_all_reduce_loop(
                    group_rank, group_size, loop, loop_nbytes, island_size))
            else:
                sequence.extend(_all_reduce_loop(group_rank, group_size, loop, loop_nbytes))
        elif kind is CollectiveKind.ALL_TO_ALL:
            sequence.extend(_all_to_all_loop(group_rank, group_size, loop, loop_nbytes))
        elif kind is CollectiveKind.ALL_GATHER:
            sequence.extend(_all_gather_loop(group_rank, group_size, loop, loop_nbytes))
        elif kind is CollectiveKind.REDUCE_SCATTER:
            sequence.extend(_reduce_scatter_loop(group_rank, group_size, loop, loop_nbytes))
        elif kind is CollectiveKind.BROADCAST:
            if tree:
                sequence.extend(_broadcast_tree_loop(group_rank, group_size, loop,
                                                     loop_nbytes, root))
            else:
                sequence.extend(_chain_loop(group_rank, group_size, loop, loop_nbytes,
                                            root, False))
        elif kind is CollectiveKind.REDUCE:
            if tree:
                sequence.extend(_reduce_tree_loop(group_rank, group_size, loop,
                                                  loop_nbytes, root))
            else:
                sequence.extend(_chain_loop(group_rank, group_size, loop, loop_nbytes,
                                            root, True))
        elif kind is CollectiveKind.SEND_RECV:
            # Point-to-point modelled as a two-rank broadcast chain.
            sequence.extend(_chain_loop(group_rank, group_size, loop, loop_nbytes, root, False))
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unsupported collective kind {kind}")
    return sequence


def primitive_count(kind, group_size, nbytes, chunk_bytes=DEFAULT_CHUNK_BYTES,
                    algorithm=ALGORITHM_RING):
    """Number of primitives a rank executes for one collective call."""
    sequence = generate_primitive_sequence(kind, 0, group_size, nbytes, chunk_bytes,
                                           algorithm=algorithm)
    return len(sequence)
