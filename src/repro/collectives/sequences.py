"""Per-rank primitive sequence generation for the Ring and Tree algorithms.

Every common collective (all-reduce, all-gather, reduce-scatter, reduce,
broadcast) is compiled into a sequence of primitives for each participating
rank, exactly as described in Sec. 4.1: the input is divided into regular
chunks and the rank executes its primitive sequence once per chunk loop.

Two algorithm families are supported, mirroring NCCL:

* ``ring`` — the default: bandwidth-optimal ring (all-reduce, all-gather,
  reduce-scatter) and chain variants (broadcast, reduce);
* ``tree`` — latency-optimal trees for the small-message regime: a double
  binary tree for all-reduce (reduce up + broadcast down over two
  complementary trees, each carrying half the payload) and binomial trees for
  broadcast and reduce.  All-gather and reduce-scatter have no tree variant
  (NCCL likewise only runs them on rings) and fall back to the ring.
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigurationError
from repro.common.types import CollectiveKind
from repro.collectives.primitives import (
    PRIM_COPY,
    PRIM_RECV,
    PRIM_RECV_COPY_SEND,
    PRIM_RECV_REDUCE_COPY,
    PRIM_RECV_REDUCE_COPY_SEND,
    PRIM_RECV_REDUCE_SEND,
    PRIM_SEND,
    Primitive,
)

#: Default chunk size (bytes) per ring slice, matching NCCL's Simple protocol
#: slice granularity order of magnitude.
DEFAULT_CHUNK_BYTES = 128 << 10

#: Algorithm names accepted by :func:`generate_primitive_sequence`.
ALGORITHM_RING = "ring"
ALGORITHM_TREE = "tree"
ALGORITHMS = (ALGORITHM_RING, ALGORITHM_TREE)

#: Collectives that have a dedicated tree variant.
TREE_KINDS = (
    CollectiveKind.ALL_REDUCE,
    CollectiveKind.BROADCAST,
    CollectiveKind.REDUCE,
)

#: Below this payload the double binary tree sends everything through one
#: tree: the per-rank executor serializes the two trees, so splitting a
#: latency-bound message across both would double the alpha cost for no
#: bandwidth gain.
TREE_SPLIT_MIN_BYTES = 256 << 10


def chunk_loops(nbytes, group_size, chunk_bytes=DEFAULT_CHUNK_BYTES, per_rank_slices=True):
    """Split ``nbytes`` into chunk loops.

    Returns a list of per-loop chunk sizes (the bytes each primitive of that
    loop carries).  When ``per_rank_slices`` is true the data is additionally
    divided across the ``group_size`` ring slices, as all-reduce and
    reduce-scatter do; broadcast-style chains process the whole chunk per loop.
    """
    if nbytes <= 0:
        raise ConfigurationError(f"collective payload must be positive, got {nbytes}")
    divisor = group_size if per_rank_slices else 1
    loop_bytes = chunk_bytes * divisor
    nloops = max(1, math.ceil(nbytes / loop_bytes))
    sizes = []
    remaining = nbytes
    for _ in range(nloops):
        this_loop = min(loop_bytes, remaining)
        sizes.append(max(1, math.ceil(this_loop / divisor)))
        remaining -= this_loop
    return sizes


def _ring_peers(group_rank, group_size):
    send_peer = (group_rank + 1) % group_size
    recv_peer = (group_rank - 1) % group_size
    return send_peer, recv_peer


def _all_reduce_loop(group_rank, group_size, loop, nbytes):
    """2*(n-1) primitives: reduce-scatter phase then all-gather phase."""
    send_peer, recv_peer = _ring_peers(group_rank, group_size)
    primitives = []
    step = 0
    primitives.append(
        Primitive("send", PRIM_SEND, loop, step, chunk_index=group_rank, nbytes=nbytes,
                  send_peer=send_peer)
    )
    for _ in range(group_size - 2):
        step += 1
        primitives.append(
            Primitive("recvReduceSend", PRIM_RECV_REDUCE_SEND, loop, step,
                      chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                      send_peer=send_peer, recv_peer=recv_peer)
        )
    step += 1
    primitives.append(
        Primitive("recvReduceCopySend", PRIM_RECV_REDUCE_COPY_SEND, loop, step,
                  chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                  send_peer=send_peer, recv_peer=recv_peer)
    )
    for _ in range(group_size - 2):
        step += 1
        primitives.append(
            Primitive("recvCopySend", PRIM_RECV_COPY_SEND, loop, step,
                      chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                      send_peer=send_peer, recv_peer=recv_peer)
        )
    step += 1
    primitives.append(
        Primitive("recv", PRIM_RECV, loop, step,
                  chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                  recv_peer=recv_peer)
    )
    return primitives


def _all_gather_loop(group_rank, group_size, loop, nbytes):
    """n primitives: send own slice, forward n-2 slices, receive the last."""
    send_peer, recv_peer = _ring_peers(group_rank, group_size)
    primitives = [
        Primitive("send", PRIM_SEND, loop, 0, chunk_index=group_rank, nbytes=nbytes,
                  send_peer=send_peer)
    ]
    for step in range(1, group_size - 1):
        primitives.append(
            Primitive("recvCopySend", PRIM_RECV_COPY_SEND, loop, step,
                      chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                      send_peer=send_peer, recv_peer=recv_peer)
        )
    primitives.append(
        Primitive("recv", PRIM_RECV, loop, group_size - 1,
                  chunk_index=(group_rank + 1) % group_size, nbytes=nbytes,
                  recv_peer=recv_peer)
    )
    return primitives


def _reduce_scatter_loop(group_rank, group_size, loop, nbytes):
    """n primitives: send, n-2 recvReduceSend, final recvReduceCopy."""
    send_peer, recv_peer = _ring_peers(group_rank, group_size)
    primitives = [
        Primitive("send", PRIM_SEND, loop, 0, chunk_index=group_rank, nbytes=nbytes,
                  send_peer=send_peer)
    ]
    for step in range(1, group_size - 1):
        primitives.append(
            Primitive("recvReduceSend", PRIM_RECV_REDUCE_SEND, loop, step,
                      chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                      send_peer=send_peer, recv_peer=recv_peer)
        )
    primitives.append(
        Primitive("recvReduceCopy", PRIM_RECV_REDUCE_COPY, loop, group_size - 1,
                  chunk_index=(group_rank + 1) % group_size, nbytes=nbytes,
                  recv_peer=recv_peer)
    )
    return primitives


def _chain_loop(group_rank, group_size, loop, nbytes, root, reducing):
    """One primitive per loop for broadcast (root → ring) or reduce (ring → root)."""
    # The chain visits ranks in ring order starting after the root and ending
    # at the rank just before the root (broadcast) or at the root (reduce).
    position = (group_rank - root) % group_size
    send_peer = (group_rank + 1) % group_size
    recv_peer = (group_rank - 1) % group_size
    if reducing:
        # Reduce: data flows towards the root; chain start is root+1.
        if position == 1 or group_size == 1:
            return [Primitive("send", PRIM_SEND, loop, 0, chunk_index=loop, nbytes=nbytes,
                              send_peer=send_peer)]
        if group_rank == root:
            return [Primitive("recvReduceCopy", PRIM_RECV_REDUCE_COPY, loop, 0,
                              chunk_index=loop, nbytes=nbytes, recv_peer=recv_peer)]
        return [Primitive("recvReduceSend", PRIM_RECV_REDUCE_SEND, loop, 0,
                          chunk_index=loop, nbytes=nbytes,
                          send_peer=send_peer, recv_peer=recv_peer)]
    # Broadcast: data flows away from the root; chain end is root-1.
    if group_rank == root:
        return [Primitive("send", PRIM_SEND, loop, 0, chunk_index=loop, nbytes=nbytes,
                          send_peer=send_peer)]
    if position == group_size - 1:
        return [Primitive("recv", PRIM_RECV, loop, 0, chunk_index=loop, nbytes=nbytes,
                          recv_peer=recv_peer)]
    return [Primitive("recvCopySend", PRIM_RECV_COPY_SEND, loop, 0, chunk_index=loop,
                      nbytes=nbytes, send_peer=send_peer, recv_peer=recv_peer)]


# -- tree structures ------------------------------------------------------------


def binary_tree_relations(group_rank, group_size, mirror=False):
    """Parent and children of ``group_rank`` in a heap-shaped binary tree.

    With ``mirror=True`` the tree is the mirror image (rank ``r`` occupies the
    heap position of rank ``n-1-r``): the second tree of the double binary
    tree, in which the leaves of the first tree become interior ranks.
    """
    index = (group_size - 1 - group_rank) if mirror else group_rank

    def to_rank(heap_index):
        return (group_size - 1 - heap_index) if mirror else heap_index

    parent = to_rank((index - 1) // 2) if index > 0 else None
    children = [to_rank(c) for c in (2 * index + 1, 2 * index + 2) if c < group_size]
    return parent, children


def binomial_tree_relations(group_rank, group_size, root=0):
    """Parent and children of ``group_rank`` in a binomial tree rooted at ``root``.

    Children are ordered largest subtree first, which is the order a binomial
    broadcast forwards them in.
    """
    rel = (group_rank - root) % group_size
    if rel == 0:
        parent = None
    else:
        parent = ((rel ^ (1 << (rel.bit_length() - 1))) + root) % group_size
    children = []
    k = rel.bit_length()
    while rel + (1 << k) < group_size:
        children.append(((rel + (1 << k)) + root) % group_size)
        k += 1
    children.reverse()
    return parent, children


def _tree_reduce_phase(parent, children, loop, step, nbytes):
    """Reduce-toward-root primitives of one rank: recv-reduce each child, then
    forward the partial result to the parent (fused with the last reduce)."""
    primitives = []
    if not children:
        primitives.append(
            Primitive("send", PRIM_SEND, loop, step, chunk_index=loop, nbytes=nbytes,
                      send_peer=parent)
        )
        return primitives, step + 1
    for child in children[:-1]:
        primitives.append(
            Primitive("recvReduceCopy", PRIM_RECV_REDUCE_COPY, loop, step,
                      chunk_index=loop, nbytes=nbytes, recv_peer=child)
        )
        step += 1
    last = children[-1]
    if parent is None:
        primitives.append(
            Primitive("recvReduceCopy", PRIM_RECV_REDUCE_COPY, loop, step,
                      chunk_index=loop, nbytes=nbytes, recv_peer=last)
        )
    else:
        primitives.append(
            Primitive("recvReduceSend", PRIM_RECV_REDUCE_SEND, loop, step,
                      chunk_index=loop, nbytes=nbytes,
                      send_peer=parent, recv_peer=last)
        )
    return primitives, step + 1


def _tree_broadcast_phase(parent, children, loop, step, nbytes):
    """Broadcast-from-root primitives of one rank: receive from the parent and
    forward to every child (fused with the first send)."""
    primitives = []
    if parent is None:
        for child in children:
            primitives.append(
                Primitive("send", PRIM_SEND, loop, step, chunk_index=loop,
                          nbytes=nbytes, send_peer=child)
            )
            step += 1
        return primitives, step
    if not children:
        primitives.append(
            Primitive("recv", PRIM_RECV, loop, step, chunk_index=loop, nbytes=nbytes,
                      recv_peer=parent)
        )
        return primitives, step + 1
    primitives.append(
        Primitive("recvCopySend", PRIM_RECV_COPY_SEND, loop, step, chunk_index=loop,
                  nbytes=nbytes, send_peer=children[0], recv_peer=parent)
    )
    step += 1
    for child in children[1:]:
        primitives.append(
            Primitive("send", PRIM_SEND, loop, step, chunk_index=loop, nbytes=nbytes,
                      send_peer=child)
        )
        step += 1
    return primitives, step


def _all_reduce_tree_loop(group_rank, group_size, loop, nbytes):
    """Double binary tree all-reduce: reduce up then broadcast down each tree.

    Large payloads are split in half across the two complementary trees so
    that interior/leaf duties balance; small payloads travel through the first
    tree only (see :data:`TREE_SPLIT_MIN_BYTES`).
    """
    if nbytes >= TREE_SPLIT_MIN_BYTES and group_size > 2:
        halves = [nbytes - nbytes // 2, nbytes // 2]
    else:
        halves = [nbytes]
    primitives = []
    step = 0
    for tree_index, half in enumerate(halves):
        parent, children = binary_tree_relations(
            group_rank, group_size, mirror=(tree_index == 1)
        )
        up, step = _tree_reduce_phase(parent, children, loop, step, half)
        down, step = _tree_broadcast_phase(parent, children, loop, step, half)
        primitives.extend(up)
        primitives.extend(down)
    return primitives


def _broadcast_tree_loop(group_rank, group_size, loop, nbytes, root):
    parent, children = binomial_tree_relations(group_rank, group_size, root)
    primitives, _ = _tree_broadcast_phase(parent, children, loop, 0, nbytes)
    return primitives


def _reduce_tree_loop(group_rank, group_size, loop, nbytes, root):
    parent, children = binomial_tree_relations(group_rank, group_size, root)
    primitives, _ = _tree_reduce_phase(parent, children, loop, 0, nbytes)
    return primitives


def generate_primitive_sequence(
    kind,
    group_rank,
    group_size,
    nbytes,
    chunk_bytes=DEFAULT_CHUNK_BYTES,
    root=0,
    algorithm=ALGORITHM_RING,
):
    """Generate the full primitive sequence of one rank for one collective call.

    ``nbytes`` is the collective's input payload in bytes (per-rank input for
    all-gather, total for the others), matching :class:`CollectiveSpec.nbytes`.
    ``algorithm`` selects the ring or tree family; ``"auto"`` must be resolved
    to a concrete algorithm by :class:`repro.collectives.selector.AlgorithmSelector`
    before this layer.
    """
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    if group_size < 1:
        raise ConfigurationError("group_size must be at least 1")
    if not 0 <= group_rank < group_size:
        raise ConfigurationError(f"group_rank {group_rank} out of range for size {group_size}")
    if group_size == 1:
        return [Primitive("copy", PRIM_COPY, 0, 0, chunk_index=0, nbytes=nbytes)]

    tree = algorithm == ALGORITHM_TREE and kind in TREE_KINDS
    sliced = not tree and kind in (
        CollectiveKind.ALL_REDUCE,
        CollectiveKind.REDUCE_SCATTER,
        CollectiveKind.ALL_GATHER,
    )
    loops = chunk_loops(nbytes, group_size, chunk_bytes, per_rank_slices=sliced)

    sequence = []
    for loop, loop_nbytes in enumerate(loops):
        if kind is CollectiveKind.ALL_REDUCE:
            if tree:
                sequence.extend(_all_reduce_tree_loop(group_rank, group_size, loop,
                                                      loop_nbytes))
            else:
                sequence.extend(_all_reduce_loop(group_rank, group_size, loop, loop_nbytes))
        elif kind is CollectiveKind.ALL_GATHER:
            sequence.extend(_all_gather_loop(group_rank, group_size, loop, loop_nbytes))
        elif kind is CollectiveKind.REDUCE_SCATTER:
            sequence.extend(_reduce_scatter_loop(group_rank, group_size, loop, loop_nbytes))
        elif kind is CollectiveKind.BROADCAST:
            if tree:
                sequence.extend(_broadcast_tree_loop(group_rank, group_size, loop,
                                                     loop_nbytes, root))
            else:
                sequence.extend(_chain_loop(group_rank, group_size, loop, loop_nbytes,
                                            root, False))
        elif kind is CollectiveKind.REDUCE:
            if tree:
                sequence.extend(_reduce_tree_loop(group_rank, group_size, loop,
                                                  loop_nbytes, root))
            else:
                sequence.extend(_chain_loop(group_rank, group_size, loop, loop_nbytes,
                                            root, True))
        elif kind is CollectiveKind.SEND_RECV:
            # Point-to-point modelled as a two-rank broadcast chain.
            sequence.extend(_chain_loop(group_rank, group_size, loop, loop_nbytes, root, False))
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unsupported collective kind {kind}")
    return sequence


def primitive_count(kind, group_size, nbytes, chunk_bytes=DEFAULT_CHUNK_BYTES,
                    algorithm=ALGORITHM_RING):
    """Number of primitives a rank executes for one collective call."""
    sequence = generate_primitive_sequence(kind, 0, group_size, nbytes, chunk_bytes,
                                           algorithm=algorithm)
    return len(sequence)
