"""Per-rank primitive sequence generation for the Ring algorithm.

Every common collective (all-reduce, all-gather, reduce-scatter, reduce,
broadcast) is compiled into a sequence of primitives for each participating
rank, exactly as described in Sec. 4.1: the input is divided into regular
chunks and the rank executes its primitive sequence once per chunk loop.
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigurationError
from repro.common.types import CollectiveKind
from repro.collectives.primitives import (
    PRIM_COPY,
    PRIM_RECV,
    PRIM_RECV_COPY_SEND,
    PRIM_RECV_REDUCE_COPY,
    PRIM_RECV_REDUCE_COPY_SEND,
    PRIM_RECV_REDUCE_SEND,
    PRIM_SEND,
    Primitive,
)

#: Default chunk size (bytes) per ring slice, matching NCCL's Simple protocol
#: slice granularity order of magnitude.
DEFAULT_CHUNK_BYTES = 128 << 10


def chunk_loops(nbytes, group_size, chunk_bytes=DEFAULT_CHUNK_BYTES, per_rank_slices=True):
    """Split ``nbytes`` into chunk loops.

    Returns a list of per-loop chunk sizes (the bytes each primitive of that
    loop carries).  When ``per_rank_slices`` is true the data is additionally
    divided across the ``group_size`` ring slices, as all-reduce and
    reduce-scatter do; broadcast-style chains process the whole chunk per loop.
    """
    if nbytes <= 0:
        raise ConfigurationError(f"collective payload must be positive, got {nbytes}")
    divisor = group_size if per_rank_slices else 1
    loop_bytes = chunk_bytes * divisor
    nloops = max(1, math.ceil(nbytes / loop_bytes))
    sizes = []
    remaining = nbytes
    for _ in range(nloops):
        this_loop = min(loop_bytes, remaining)
        sizes.append(max(1, math.ceil(this_loop / divisor)))
        remaining -= this_loop
    return sizes


def _ring_peers(group_rank, group_size):
    send_peer = (group_rank + 1) % group_size
    recv_peer = (group_rank - 1) % group_size
    return send_peer, recv_peer


def _all_reduce_loop(group_rank, group_size, loop, nbytes):
    """2*(n-1) primitives: reduce-scatter phase then all-gather phase."""
    send_peer, recv_peer = _ring_peers(group_rank, group_size)
    primitives = []
    step = 0
    primitives.append(
        Primitive("send", PRIM_SEND, loop, step, chunk_index=group_rank, nbytes=nbytes,
                  send_peer=send_peer)
    )
    for _ in range(group_size - 2):
        step += 1
        primitives.append(
            Primitive("recvReduceSend", PRIM_RECV_REDUCE_SEND, loop, step,
                      chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                      send_peer=send_peer, recv_peer=recv_peer)
        )
    step += 1
    primitives.append(
        Primitive("recvReduceCopySend", PRIM_RECV_REDUCE_COPY_SEND, loop, step,
                  chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                  send_peer=send_peer, recv_peer=recv_peer)
    )
    for _ in range(group_size - 2):
        step += 1
        primitives.append(
            Primitive("recvCopySend", PRIM_RECV_COPY_SEND, loop, step,
                      chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                      send_peer=send_peer, recv_peer=recv_peer)
        )
    step += 1
    primitives.append(
        Primitive("recv", PRIM_RECV, loop, step,
                  chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                  recv_peer=recv_peer)
    )
    return primitives


def _all_gather_loop(group_rank, group_size, loop, nbytes):
    """n primitives: send own slice, forward n-2 slices, receive the last."""
    send_peer, recv_peer = _ring_peers(group_rank, group_size)
    primitives = [
        Primitive("send", PRIM_SEND, loop, 0, chunk_index=group_rank, nbytes=nbytes,
                  send_peer=send_peer)
    ]
    for step in range(1, group_size - 1):
        primitives.append(
            Primitive("recvCopySend", PRIM_RECV_COPY_SEND, loop, step,
                      chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                      send_peer=send_peer, recv_peer=recv_peer)
        )
    primitives.append(
        Primitive("recv", PRIM_RECV, loop, group_size - 1,
                  chunk_index=(group_rank + 1) % group_size, nbytes=nbytes,
                  recv_peer=recv_peer)
    )
    return primitives


def _reduce_scatter_loop(group_rank, group_size, loop, nbytes):
    """n primitives: send, n-2 recvReduceSend, final recvReduceCopy."""
    send_peer, recv_peer = _ring_peers(group_rank, group_size)
    primitives = [
        Primitive("send", PRIM_SEND, loop, 0, chunk_index=group_rank, nbytes=nbytes,
                  send_peer=send_peer)
    ]
    for step in range(1, group_size - 1):
        primitives.append(
            Primitive("recvReduceSend", PRIM_RECV_REDUCE_SEND, loop, step,
                      chunk_index=(group_rank - step) % group_size, nbytes=nbytes,
                      send_peer=send_peer, recv_peer=recv_peer)
        )
    primitives.append(
        Primitive("recvReduceCopy", PRIM_RECV_REDUCE_COPY, loop, group_size - 1,
                  chunk_index=(group_rank + 1) % group_size, nbytes=nbytes,
                  recv_peer=recv_peer)
    )
    return primitives


def _chain_loop(group_rank, group_size, loop, nbytes, root, reducing):
    """One primitive per loop for broadcast (root → ring) or reduce (ring → root)."""
    # The chain visits ranks in ring order starting after the root and ending
    # at the rank just before the root (broadcast) or at the root (reduce).
    position = (group_rank - root) % group_size
    send_peer = (group_rank + 1) % group_size
    recv_peer = (group_rank - 1) % group_size
    if reducing:
        # Reduce: data flows towards the root; chain start is root+1.
        if position == 1 or group_size == 1:
            return [Primitive("send", PRIM_SEND, loop, 0, chunk_index=loop, nbytes=nbytes,
                              send_peer=send_peer)]
        if group_rank == root:
            return [Primitive("recvReduceCopy", PRIM_RECV_REDUCE_COPY, loop, 0,
                              chunk_index=loop, nbytes=nbytes, recv_peer=recv_peer)]
        return [Primitive("recvReduceSend", PRIM_RECV_REDUCE_SEND, loop, 0,
                          chunk_index=loop, nbytes=nbytes,
                          send_peer=send_peer, recv_peer=recv_peer)]
    # Broadcast: data flows away from the root; chain end is root-1.
    if group_rank == root:
        return [Primitive("send", PRIM_SEND, loop, 0, chunk_index=loop, nbytes=nbytes,
                          send_peer=send_peer)]
    if position == group_size - 1:
        return [Primitive("recv", PRIM_RECV, loop, 0, chunk_index=loop, nbytes=nbytes,
                          recv_peer=recv_peer)]
    return [Primitive("recvCopySend", PRIM_RECV_COPY_SEND, loop, 0, chunk_index=loop,
                      nbytes=nbytes, send_peer=send_peer, recv_peer=recv_peer)]


def generate_primitive_sequence(
    kind,
    group_rank,
    group_size,
    nbytes,
    chunk_bytes=DEFAULT_CHUNK_BYTES,
    root=0,
):
    """Generate the full primitive sequence of one rank for one collective call.

    ``nbytes`` is the collective's input payload in bytes (per-rank input for
    all-gather, total for the others), matching :class:`CollectiveSpec.nbytes`.
    """
    if group_size < 1:
        raise ConfigurationError("group_size must be at least 1")
    if not 0 <= group_rank < group_size:
        raise ConfigurationError(f"group_rank {group_rank} out of range for size {group_size}")
    if group_size == 1:
        return [Primitive("copy", PRIM_COPY, 0, 0, chunk_index=0, nbytes=nbytes)]

    sliced = kind in (
        CollectiveKind.ALL_REDUCE,
        CollectiveKind.REDUCE_SCATTER,
        CollectiveKind.ALL_GATHER,
    )
    loops = chunk_loops(nbytes, group_size, chunk_bytes, per_rank_slices=sliced)

    sequence = []
    for loop, loop_nbytes in enumerate(loops):
        if kind is CollectiveKind.ALL_REDUCE:
            sequence.extend(_all_reduce_loop(group_rank, group_size, loop, loop_nbytes))
        elif kind is CollectiveKind.ALL_GATHER:
            sequence.extend(_all_gather_loop(group_rank, group_size, loop, loop_nbytes))
        elif kind is CollectiveKind.REDUCE_SCATTER:
            sequence.extend(_reduce_scatter_loop(group_rank, group_size, loop, loop_nbytes))
        elif kind is CollectiveKind.BROADCAST:
            sequence.extend(_chain_loop(group_rank, group_size, loop, loop_nbytes, root, False))
        elif kind is CollectiveKind.REDUCE:
            sequence.extend(_chain_loop(group_rank, group_size, loop, loop_nbytes, root, True))
        elif kind is CollectiveKind.SEND_RECV:
            # Point-to-point modelled as a two-rank broadcast chain.
            sequence.extend(_chain_loop(group_rank, group_size, loop, loop_nbytes, root, False))
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unsupported collective kind {kind}")
    return sequence


def primitive_count(kind, group_size, nbytes, chunk_bytes=DEFAULT_CHUNK_BYTES):
    """Number of primitives a rank executes for one collective call."""
    sequence = generate_primitive_sequence(kind, 0, group_size, nbytes, chunk_bytes)
    return len(sequence)
