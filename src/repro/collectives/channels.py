"""Connectors (inter-GPU channels) and communicators.

A :class:`Channel` models one direction of a connector pair: a bounded,
lock-free ring buffer through which the sender GPU pushes chunk messages and
from which the receiver GPU pops them.  Messages carry the virtual time at
which their data becomes visible to the receiver, which models the transfer
latency over the physical link.

Data written to a channel stays there until the receiver pops it — this is the
*persistent visibility* property of Sec. 4.1 that makes decentralized
preemption correct: preempting the sender after the write, or the receiver
before the read, never loses data.
"""

from __future__ import annotations

import itertools
import weakref
from collections import deque

from repro.common.errors import ConfigurationError, InvalidStateError

_channel_ids = itertools.count()
_communicator_ids = itertools.count()

#: Channels by id, for wait-key attribution (deadlock/fault analysis needs to
#: know which device would have signalled a ``chan-*`` key).
_channels_by_id = weakref.WeakValueDictionary()


def channel_by_id(channel_id):
    """Resolve a channel id from an engine wait key, or ``None`` if gone."""
    return _channels_by_id.get(channel_id)


class ChunkMessage:
    """One chunk travelling through a channel."""

    __slots__ = ("collective_id", "chunk_index", "step", "nbytes", "ready_time_us")

    def __init__(self, collective_id, chunk_index, step, nbytes, ready_time_us):
        self.collective_id = collective_id
        self.chunk_index = chunk_index
        self.step = step
        self.nbytes = nbytes
        self.ready_time_us = ready_time_us

    def __repr__(self):
        return (
            f"ChunkMessage(coll={self.collective_id}, chunk={self.chunk_index}, "
            f"step={self.step}, {self.nbytes}B, ready={self.ready_time_us:.2f}us)"
        )


class Channel:
    """A bounded FIFO connecting a sender GPU to a receiver GPU."""

    #: Default connector FIFO depth (NCCL uses 8 slots per channel).
    DEFAULT_CAPACITY = 8

    def __init__(self, src_device, dst_device, capacity=None):
        self.channel_id = next(_channel_ids)
        self.src_device = src_device
        self.dst_device = dst_device
        self.capacity = capacity or self.DEFAULT_CAPACITY
        self._fifo = deque()
        #: Freelist of consumed :class:`ChunkMessage` shells for the executor
        #: fast path: a popped message is dead the moment its arrival time is
        #: read, so its shell is recycled for the next push on this channel
        #: instead of feeding the allocator (bounded by the FIFO capacity).
        self._free = []
        self.pushed_count = 0
        self.popped_count = 0
        self.bytes_pushed = 0
        self.invalidated = False
        _channels_by_id[self.channel_id] = self
        # Wait keys are prebuilt: the executor touches them on every primitive
        # attempt, and a property constructing a fresh tuple each time showed
        # up in large-scale profiles.
        #: Signalled when a message is pushed (receiver may make progress).
        self.readable_key = ("chan-readable", self.channel_id)
        #: Signalled when a slot frees up (sender may make progress).
        self.writable_key = ("chan-writable", self.channel_id)

    # -- invalidation --------------------------------------------------------------

    def invalidate(self):
        """Mark the channel unusable and drop its in-flight data.

        Called when one endpoint failed: the connector's memory is gone, so
        pending chunks are lost and no further push or pop may succeed.  A
        surviving peer polling the channel simply never sees it become
        readable/writable again — which is exactly the condition that bounds
        (DFCCL) or does not bound (NCCL) its busy-wait.
        """
        self.invalidated = True
        self._fifo.clear()

    # -- sender side -------------------------------------------------------------

    def writable(self):
        if self.invalidated:
            return False
        return len(self._fifo) < self.capacity

    def push(self, message):
        if self.invalidated:
            raise InvalidStateError(
                f"channel {self.channel_id} is invalidated: push attempted"
            )
        if len(self._fifo) >= self.capacity:
            raise ConfigurationError(
                f"channel {self.channel_id} full: push attempted without checking writable()"
            )
        self._fifo.append(message)
        self.pushed_count += 1
        self.bytes_pushed += message.nbytes
        return message

    # -- receiver side -----------------------------------------------------------

    def readable(self, now_us=None, max_wait_us=None):
        """True when a head message exists that the receiver is willing to wait for.

        A message is always considered readable once it has been pushed (its
        data will arrive at ``ready_time_us``); the receiver accounts for the
        remaining arrival delay when it pops.  When ``max_wait_us`` is given,
        a message whose arrival is further than that in the receiver's future
        is treated as not readable — DFCCL uses this to bound busy-waiting.
        """
        if self.invalidated or not self._fifo:
            return False
        if max_wait_us is None or now_us is None:
            return True
        return self._fifo[0].ready_time_us <= now_us + max_wait_us

    def head(self):
        return self._fifo[0] if self._fifo else None

    def pop(self, now_us):
        if not self._fifo:
            raise ConfigurationError(
                f"channel {self.channel_id} empty: pop attempted at t={now_us:.2f}us"
            )
        self.popped_count += 1
        return self._fifo.popleft()

    @property
    def occupancy(self):
        return len(self._fifo)

    def __repr__(self):
        return (
            f"<Channel {self.channel_id} {self.src_device}->{self.dst_device} "
            f"occ={self.occupancy}/{self.capacity}>"
        )


class Communicator:
    """A group of devices plus the channels connecting ring neighbours.

    Ranks inside a communicator are *group ranks* (0..group_size-1); the
    mapping to cluster devices is fixed at construction.  Channels are created
    lazily for any (src, dst) group-rank pair so that both ring and
    point-to-point patterns work.
    """

    def __init__(self, devices, interconnect, channel_capacity=None):
        if len(devices) < 1:
            raise ConfigurationError("a communicator needs at least one device")
        self.comm_id = next(_communicator_ids)
        self.devices = list(devices)
        self.interconnect = interconnect
        self.channel_capacity = channel_capacity
        self._channels = {}
        self.invalidated = False

    @property
    def size(self):
        return len(self.devices)

    def device(self, group_rank):
        return self.devices[group_rank]

    def device_id(self, group_rank):
        return self.devices[group_rank].device_id

    def group_rank_of(self, device):
        return self.devices.index(device)

    def channel(self, src_rank, dst_rank):
        """Return (creating on demand) the channel from ``src_rank`` to ``dst_rank``."""
        key = (src_rank, dst_rank)
        channel = self._channels.get(key)
        if channel is None:
            channel = Channel(
                self.device_id(src_rank),
                self.device_id(dst_rank),
                capacity=self.channel_capacity,
            )
            self._channels[key] = channel
        return channel

    def link(self, src_rank, dst_rank):
        """Interconnect link between two group ranks."""
        return self.interconnect.link(self.device_id(src_rank), self.device_id(dst_rank))

    def ring_next(self, group_rank):
        return (group_rank + 1) % self.size

    def ring_prev(self, group_rank):
        return (group_rank - 1) % self.size

    def channels(self):
        return dict(self._channels)

    def reset_channels(self):
        """Drop all channels (used between independent experiment repetitions)."""
        self._channels.clear()

    def invalidate(self):
        """Invalidate the communicator and every channel it created.

        A failure-invalidated communicator must never be reused: its
        connectors may hold chunks of a collective that died mid-flight
        (Sec. 4.5's correctness argument relies on connectors never being
        shared across collectives, and recovery extends that to failures).
        """
        self.invalidated = True
        for channel in self._channels.values():
            channel.invalidate()

    def __repr__(self):
        members = ", ".join(str(device.device_id) for device in self.devices)
        return f"<Communicator {self.comm_id} [{members}]>"
