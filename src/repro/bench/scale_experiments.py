"""Engine-scale experiments: steps/sec and wall time up to 512 ranks.

The differential fuzzer replays thousands of generated programs, so the
engine's wall-clock throughput is a first-class deliverable of its own.
``run_scale_point`` drives one all-reduce workload through the unified
``repro.api`` front-end on an N-rank cluster and reports simulator *steps per
wall-second* (the engine-overhead metric: virtual-time costs are workload
physics, steps/sec is pure simulator speed) plus wall time, virtual time and
primitive counts.  ``scale_sweep`` runs the standard ladder — flat multi-node
rings up to 128 ranks, two-level fat-tree trees at 256/512 — and
``write_scale_report`` lands the rows in ``BENCH_scale.json``.

The 64-rank ring point doubles as the regression gate against the engine that
shipped before the indexed event queue / link cache / primitive-flag work:
:data:`PRE_PR_BASELINE` records that engine's throughput, measured on the
same workload with the same GC discipline.  Because absolute steps/sec moves
with the host machine, the baseline also records a pure-Python calibration
score; :func:`machine_calibration_factor` reruns the same loop so the
comparison can be normalized to the recording machine's speed.
"""

from __future__ import annotations

import gc
import json
import time

from repro.api import make_backend
from repro.common.types import CollectiveKind, CollectiveSpec
from repro.gpusim import HostProgram, build_cluster, fat_tree_spec, multi_node_spec

#: Throughput of the pre-overhaul engine (lazy-deletion double heap, uncached
#: link resolution, Flag-arithmetic primitives) on the 64-rank sweep point —
#: ``run_scale_point(64, topology="flat")`` — measured at commit c7a1c39 on
#: the machine whose calibration score is recorded alongside (best of four
#: runs, GC disabled during the measured region, like run_scale_point does;
#: the calibration score is the same best-of-3 measurement
#: :func:`machine_calibration_factor` performs).
PRE_PR_BASELINE = {
    "ranks": 64,
    "topology": "flat",
    "algorithm": "ring",
    "steps_per_sec": 12322.0,
    "wall_s": 0.311,
    "calibration_ops_per_sec": 8.24e6,
    "measured_at": "c7a1c39 (pre PR 5)",
}

#: The standard sweep ladder: (ranks, topology kind, algorithm).  The three
#: 512-rank fat-tree points run the same workload under every all-reduce
#: schedule, so the report doubles as the flat-vs-hierarchical comparison
#: (virtual_time_us is the workload-physics column to compare).
SCALE_SWEEP_POINTS = (
    (16, "flat", "ring"),
    (64, "flat", "ring"),
    (128, "flat", "ring"),
    (256, "fat-tree", "tree"),
    (512, "fat-tree", "ring"),
    (512, "fat-tree", "tree"),
    (512, "fat-tree", "hierarchical"),
)


def machine_calibration_factor(iterations=200_000, repeats=3):
    """Pure-Python ops/sec of this machine (dict/attr/float mix).

    The loop shape roughly matches the simulator's instruction mix.  Used to
    normalize :data:`PRE_PR_BASELINE` to the current host: a machine that
    runs Python half as fast is expected to run the engine half as fast.
    Returns the best of ``repeats`` short runs — engine throughput is
    likewise reported best-of-N, so both sides of the speedup ratio estimate
    the machine at its attainable speed rather than under transient load
    (claiming extra speedup from a loaded calibration run would be the
    dishonest direction; taking the max is the conservative one).
    """

    class _Probe:
        __slots__ = ("a", "b")

        def __init__(self):
            self.a = 0
            self.b = 1.0

    def once():
        probe = _Probe()
        table = {}
        start = time.perf_counter()
        for i in range(iterations):
            table[i & 1023] = i
            probe.a = table.get(i & 511, 0)
            probe.b = probe.b + 1.0
        return iterations / (time.perf_counter() - start)

    return max(once() for _ in range(repeats))


def _cluster_spec_for(ranks, topology):
    if topology == "flat":
        return multi_node_spec(ranks)
    if topology == "fat-tree":
        return fat_tree_spec(ranks)
    return topology  # a ClusterSpec or named topology, passed through


def run_scale_point(ranks, topology="flat", algorithm="ring", nbytes=1 << 20,
                    iterations=2, backend="dfccl", chunk_bytes=128 << 10,
                    observe=True, collect_metrics=False, analyze=False):
    """Run one N-rank all-reduce workload; return the measured row.

    GC is collected once and disabled across the measured region (standard
    steady-state benchmarking discipline; collector pauses would otherwise
    dominate run-to-run variance), and re-enabled before returning.

    ``observe=False`` runs with a disabled :class:`~repro.obs.Observability`
    hub — the control arm of the flight-recorder overhead gate.  With
    ``collect_metrics=True`` the row additionally carries the full metrics
    snapshot (always-on rows carry only the calibration samples).
    ``analyze=True`` opts the run into critical-path time attribution and
    attaches the decomposition as ``row["attribution"]`` — analyzed runs pay
    the trace-append cost, so the sweep times its points *without* analysis
    and runs one extra analyzed pass per point (the simulator is
    deterministic, so both passes see identical virtual times).
    """
    from repro.obs import Observability

    spec = _cluster_spec_for(ranks, topology)
    observability = None if observe else Observability(enabled=False)
    cluster = build_cluster(spec, observability=observability)
    if analyze and cluster.engine.obs.enabled:
        cluster.engine.obs.enable_analysis()
    api_backend = make_backend(backend, cluster, chunk_bytes=chunk_bytes,
                               algorithm=algorithm)
    group = api_backend.new_group(list(range(ranks)))
    coll = CollectiveSpec(CollectiveKind.ALL_REDUCE, max(1, nbytes // 4))
    group.ensure_collective(coll)

    works_by_rank = {}
    programs = []
    for rank in group.ranks:
        works = [group.collective(rank, coll) for _ in range(iterations)]
        works_by_rank[rank] = works
        ops = []
        for work in works:
            ops.extend(work.ops())
        ops.extend(api_backend.finalize_ops(rank))
        programs.append(HostProgram(ops))
    cluster.add_hosts(programs)

    gc.collect()
    gc.disable()
    try:
        wall_start = time.perf_counter()
        final_time_us = cluster.run()
        wall_s = time.perf_counter() - wall_start
    finally:
        gc.enable()

    completed = all(work.done for works in works_by_rank.values()
                    for work in works)
    steps = cluster.engine.step_count
    row = {
        "ranks": ranks,
        "topology": topology if isinstance(topology, str) else "custom",
        "backend": backend,
        "algorithm": algorithm,
        "nbytes": nbytes,
        "iterations": iterations,
        "completed": completed,
        "steps": steps,
        "wall_s": wall_s,
        "steps_per_sec": steps / wall_s if wall_s > 0 else float("inf"),
        "virtual_time_us": final_time_us,
        "queue_stats": cluster.engine.queue_stats(),
        "observed": cluster.engine.obs.enabled,
    }
    obs = cluster.engine.obs
    if obs.enabled:
        if analyze and obs.analysis is not None:
            from repro.obs.analysis import analyze_run

            row["attribution"] = attribution_summary(analyze_run(obs))
        # After analyze_run the calibration rows carry per-bucket feedback
        # (measured_buckets / mispredicted_bucket) for each cell.
        row["calibration"] = obs.calibration_report()
        if collect_metrics:
            api_backend.diagnostics()  # folds link metrics into the registry
            row["metrics"] = obs.metrics.snapshot()
    return row


def attribution_summary(results):
    """Compact, JSON-safe summary of one run's time attribution.

    Keeps the run-level bucket decomposition plus per-invocation buckets and
    the named slowest rank / slowest link — the fields the scale report's
    acceptance gates assert on — while dropping the per-edge flow detail.
    """
    def compact(result):
        path = result["critical_path"]
        return {
            "measured_us": result["measured_us"],
            "buckets": dict(result["buckets"]),
            "tiers": dict(result["tiers"]),
            "conservation_error": result["conservation_error"],
            "critical_path": {
                "nodes": path["nodes"],
                "cross_rank_edges": path["cross_rank_edges"],
                "path_time_us": path["path_time_us"],
                "slowest_rank": path["slowest_rank"],
                "slowest_link": path["slowest_link"],
            },
            "straggler": result["straggler"],
        }

    invocations = [dict(compact(inv),
                        invocation=inv["invocation"],
                        algorithm=inv["algorithm"])
                   for inv in results.get("invocations") or ()]
    errors = [inv["conservation_error"] for inv in invocations]
    run_result = results.get("run")
    return {
        "run": compact(run_result) if run_result else None,
        "invocations": invocations,
        "worst_invocation_conservation_error": max(errors) if errors else None,
    }


def best_of(point_kwargs, repeats=3):
    """Run one sweep point ``repeats`` times; return the fastest row.

    Wall-clock throughput is noisy on shared CI machines — best-of-N is the
    standard way to estimate the attainable speed.
    """
    rows = [run_scale_point(**point_kwargs) for _ in range(repeats)]
    return max(rows, key=lambda row: row["steps_per_sec"])


def speedup_vs_pre_pr(row, calibration_ops_per_sec=None):
    """Machine-normalized speedup of ``row`` over :data:`PRE_PR_BASELINE`.

    The raw steps/sec ratio is scaled by how much slower/faster this host
    runs the calibration loop than the machine that recorded the baseline.
    """
    if calibration_ops_per_sec is None:
        calibration_ops_per_sec = machine_calibration_factor()
    machine_scale = (PRE_PR_BASELINE["calibration_ops_per_sec"]
                     / calibration_ops_per_sec)
    raw = row["steps_per_sec"] / PRE_PR_BASELINE["steps_per_sec"]
    return raw * machine_scale


def selector_report(ranks=512, nbytes=1 << 20):
    """The cost model's verdict on the headline fat-tree all-reduce point.

    Recorded alongside the measured rows so the report shows both that the
    hierarchical schedule *wins* (virtual_time_us of the 512-rank trio) and
    that ``algorithm="auto"`` *picks* it from the alpha-beta estimates.
    """
    from repro.collectives import AlgorithmSelector

    cluster = build_cluster(fat_tree_spec(ranks))
    device_ids = [cluster.device(rank).device_id for rank in range(ranks)]
    selector = AlgorithmSelector(cluster.interconnect)
    choice = selector.choose(CollectiveKind.ALL_REDUCE, nbytes, ranks,
                             device_ids)
    return {
        "ranks": ranks,
        "topology": "fat-tree",
        "nbytes": nbytes,
        "auto_algorithm": choice.algorithm,
        "predicted_ring_cost_us": choice.ring_cost_us,
        "predicted_tree_cost_us": choice.tree_cost_us,
        "predicted_hierarchical_cost_us": choice.hierarchical_cost_us,
    }


def selector_calibration_section(rows):
    """Aggregate per-point cost-model error into the report section.

    Each measured row carries the run's calibration samples (predicted
    selector cost vs measured virtual time per completed collective); this
    flattens them into one table keyed by (ranks, topology, algorithm) and
    records the worst absolute relative error across the ladder.
    """
    points = []
    for row in rows:
        for sample in row.get("calibration", ()):
            points.append({
                "ranks": row["ranks"],
                "topology": row["topology"],
                "backend": sample["backend"],
                "algorithm": sample["algorithm"],
                "kind": sample["kind"],
                "nbytes": sample["nbytes"],
                "group_size": sample["group_size"],
                "samples": sample["samples"],
                "predicted_cost_us": sample["predicted_cost_us"],
                "measured_cost_us": sample["measured_cost_us"],
                "relative_error": sample["relative_error"],
            })
    errors = [abs(point["relative_error"]) for point in points
              if point["relative_error"] is not None]
    return {
        "points": points,
        "worst_relative_error": max(errors) if errors else None,
    }


def scale_sweep(points=SCALE_SWEEP_POINTS, repeats=2, nbytes=1 << 20,
                iterations=2, analyze=True):
    """Run the standard ladder; returns rows plus the 64-rank speedup.

    With ``analyze=True`` (the default) every point gets one extra
    *analyzed* pass whose attribution and bucket-level calibration replace
    the timed row's — timing and attribution never contaminate each other,
    and the deterministic simulator guarantees both passes agree on virtual
    time.
    """
    calibration = machine_calibration_factor()
    rows = []
    for ranks, topology, algorithm in points:
        point_kwargs = {"ranks": ranks, "topology": topology,
                        "algorithm": algorithm, "nbytes": nbytes,
                        "iterations": iterations}
        row = best_of(point_kwargs, repeats=repeats)
        if analyze:
            analyzed = run_scale_point(analyze=True, **point_kwargs)
            row["attribution"] = analyzed.get("attribution")
            row["calibration"] = analyzed.get("calibration",
                                              row.get("calibration"))
        if (ranks == PRE_PR_BASELINE["ranks"]
                and topology == PRE_PR_BASELINE["topology"]
                and algorithm == PRE_PR_BASELINE["algorithm"]):
            row["speedup_vs_pre_pr"] = speedup_vs_pre_pr(row, calibration)
        rows.append(row)
    return {
        "calibration_ops_per_sec": calibration,
        "pre_pr_baseline": dict(PRE_PR_BASELINE),
        "selector_512": selector_report(nbytes=nbytes),
        "selector_calibration": selector_calibration_section(rows),
        "points": rows,
    }


def write_scale_report(path="BENCH_scale.json", report=None, **sweep_kwargs):
    """Run (or take) a sweep and write it to ``path``; returns the report."""
    if report is None:
        report = scale_sweep(**sweep_kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    return report
