"""DNN training experiments (Figs. 10, 11, 12 and 13)."""

from __future__ import annotations

from repro.api import make_backend
from repro.core import DfcclConfig
from repro.gpusim import build_cluster
from repro.workloads import (
    GroupTrainingBackend,
    ParallelPlan,
    TrainingRun,
    gpt2_model,
    resnet50_model,
    vit_model,
)

#: Chunk size used for training runs (larger chunks keep the simulated
#: primitive counts manageable without changing who wins).
TRAINING_CHUNK_BYTES = 512 << 10


def _dfccl_backend(cluster):
    return GroupTrainingBackend(cluster, "dfccl", chunk_bytes=TRAINING_CHUNK_BYTES)


def _nccl_backend(cluster, orchestrator_name, world_size):
    del world_size  # the orchestrator is sized from the plan at prepare time
    return GroupTrainingBackend(cluster, "nccl", orchestrator=orchestrator_name,
                                chunk_bytes=TRAINING_CHUNK_BYTES)


def _run(plan, backend_factory, topology, iterations, warmup=1):
    cluster = build_cluster(topology)
    backend = backend_factory(cluster)
    run = TrainingRun(cluster, plan, backend, iterations=iterations, warmup=warmup)
    return run.run()


# -- Fig. 10: ResNet50 data-parallel training ---------------------------------------------------


def fig10_resnet50_dp(server="3090", num_gpus=8, iterations=4, grad_buckets=24):
    """Fig. 10: ResNet50 DP throughput for OneFlow-static, DFCCL, KungFu, Horovod."""
    batch = 96 if server == "3090" else 48
    topology = "single-3090" if server == "3090" else "single-3080ti"
    model = resnet50_model()
    plan = ParallelPlan(model, tp=1, dp=num_gpus, pp=1, microbatch_size=batch,
                        grad_buckets=grad_buckets)
    rows = []
    systems = [
        ("oneflow-static", lambda c: _nccl_backend(c, "oneflow", num_gpus)),
        ("dfccl", _dfccl_backend),
        ("kungfu", lambda c: _nccl_backend(c, "kungfu", num_gpus)),
        ("horovod", lambda c: _nccl_backend(c, "horovod", num_gpus)),
    ]
    for label, factory in systems:
        result = _run(plan, factory, topology, iterations)
        rows.append({
            "system": label,
            "server": server,
            "throughput_samples_per_s": result.throughput_samples_per_s,
            "iteration_ms": result.mean_iteration_time_ms,
        })
    return rows


# -- Fig. 11: impact of adaptive scheduling ------------------------------------------------------


def fig11_adaptive_scheduling(num_gpus=4, iterations=3, grad_buckets=16, batch=96):
    """Fig. 11: context switches and task-queue lengths, naive vs adaptive policy."""
    model = resnet50_model()
    plan = ParallelPlan(model, tp=1, dp=num_gpus, pp=1, microbatch_size=batch,
                        grad_buckets=grad_buckets)
    results = {}
    for policy in ("naive", "adaptive"):
        cluster = build_cluster("single-3090")
        config = DfcclConfig(chunk_bytes=TRAINING_CHUNK_BYTES, spin_policy=policy)
        backend = GroupTrainingBackend(cluster, make_backend("dfccl", cluster,
                                                             config=config))
        run = TrainingRun(cluster, plan, backend, iterations=iterations, warmup=1)
        result = run.run()
        per_rank = {}
        for rank in range(num_gpus):
            stats = backend.stats(rank)
            per_rank[rank] = {
                "context_switches": dict(stats.context_switches_per_invocation),
                "task_queue_lengths": list(stats.task_queue_length_samples),
                "total_preemptions": stats.preemptions,
            }
        results[policy] = {
            "throughput_samples_per_s": result.throughput_samples_per_s,
            "per_rank": per_rank,
        }
    return results


# -- Fig. 12: ViT training under DP / TP / 3D hybrid ---------------------------------------------


VIT_CASES = {
    "dp-8gpu-base": {"variant": "base", "tp": 1, "dp": 8, "pp": 1, "topology": "single-3090"},
    "tp-8gpu-base": {"variant": "base", "tp": 8, "dp": 1, "pp": 1, "topology": "single-3090"},
    "3d-16gpu-base": {"variant": "base", "tp": 4, "dp": 2, "pp": 2, "topology": "dual-3090"},
    "3d-16gpu-large": {"variant": "large", "tp": 4, "dp": 2, "pp": 2, "topology": "dual-3090"},
}


def fig12_vit_training(case="dp-8gpu-base", iterations=4, microbatch=128):
    """Fig. 12: ViT training throughput, DFCCL vs (statically sorted) NCCL."""
    params = VIT_CASES[case]
    model = vit_model(params["variant"])
    world = params["tp"] * params["dp"] * params["pp"]
    plan = ParallelPlan(model, tp=params["tp"], dp=params["dp"], pp=params["pp"],
                        microbatch_size=microbatch, num_microbatches=1, grad_buckets=12)
    rows = []
    systems = [
        ("nccl", lambda c: _nccl_backend(c, "oneflow", world)),
        ("dfccl", _dfccl_backend),
    ]
    for label, factory in systems:
        result = _run(plan, factory, params["topology"], iterations)
        rows.append({
            "case": case,
            "system": label,
            "throughput_samples_per_s": result.throughput_samples_per_s,
            "iteration_ms": result.mean_iteration_time_ms,
            "throughput_curve": result.cumulative_mean_throughput(),
        })
    return rows


# -- Fig. 13: GPT-2 3D-hybrid training ---------------------------------------------------------------


GPT2_CASES = {
    "3d-8gpu": {"variant": "small", "tp": 2, "dp": 2, "pp": 2, "topology": "single-3090"},
    "3d-16gpu": {"variant": "small", "tp": 4, "dp": 2, "pp": 2, "topology": "dual-3090"},
}


def fig13_gpt2_training(case="3d-8gpu", iterations=4, microbatch=18):
    """Fig. 13: GPT-2 per-iteration time, DFCCL vs Megatron-orchestrated NCCL."""
    params = GPT2_CASES[case]
    model = gpt2_model(params["variant"])
    world = params["tp"] * params["dp"] * params["pp"]
    plan = ParallelPlan(model, tp=params["tp"], dp=params["dp"], pp=params["pp"],
                        microbatch_size=microbatch, num_microbatches=2, grad_buckets=8)
    rows = []
    systems = [
        ("nccl-megatron", lambda c: _nccl_backend(c, "megatron", world)),
        ("dfccl", _dfccl_backend),
    ]
    for label, factory in systems:
        result = _run(plan, factory, params["topology"], iterations)
        rows.append({
            "case": case,
            "system": label,
            "iteration_ms": result.mean_iteration_time_ms,
            "iteration_cv": result.iteration_time_cv(),
            "throughput_samples_per_s": result.throughput_samples_per_s,
        })
    return rows
