"""Experiment harness: one driver per table/figure of the paper's evaluation.

Every driver returns plain Python data (dicts / lists of rows) so it can be
used from the pytest-benchmark suite under ``benchmarks/``, from the runnable
examples, or interactively.  ``repro.bench.reporting`` renders the results in
a paper-like table format.
"""

from repro.bench.reporting import format_series, format_table
from repro.bench.collective_perf import (
    measure_collective,
    sweep_bandwidth_latency,
    latency_breakdown,
    workload_independent_overheads,
    nccl_vs_mpi_comparison,
)
from repro.bench.deadlock_experiments import (
    run_table1_row,
    run_table1,
    sec61_random_order_program,
    sec61_sync_program,
    deadlock_sensitivity_sweep,
)
from repro.bench.controlplane_experiments import (
    controlplane_job_stream,
    preemption_ablation,
    preemption_slo_sweep,
    run_controlplane,
)
from repro.bench.fault_experiments import (
    CHAOS_PLANS,
    goodput_under_chaos,
    measure_recovery,
)
from repro.bench.multijob_experiments import (
    deadlock_ratio_sweep,
    multijob_policy_comparison,
    multijob_under_churn,
    run_multijob,
)
from repro.bench.scale_experiments import (
    PRE_PR_BASELINE,
    attribution_summary,
    machine_calibration_factor,
    run_scale_point,
    scale_sweep,
    selector_report,
    speedup_vs_pre_pr,
    write_scale_report,
)
from repro.bench.training_experiments import (
    fig10_resnet50_dp,
    fig11_adaptive_scheduling,
    fig12_vit_training,
    fig13_gpt2_training,
)

__all__ = [
    "CHAOS_PLANS",
    "PRE_PR_BASELINE",
    "machine_calibration_factor",
    "attribution_summary",
    "run_scale_point",
    "scale_sweep",
    "selector_report",
    "speedup_vs_pre_pr",
    "write_scale_report",
    "controlplane_job_stream",
    "deadlock_ratio_sweep",
    "deadlock_sensitivity_sweep",
    "preemption_ablation",
    "preemption_slo_sweep",
    "run_controlplane",
    "goodput_under_chaos",
    "measure_recovery",
    "multijob_policy_comparison",
    "multijob_under_churn",
    "run_multijob",
    "fig10_resnet50_dp",
    "fig11_adaptive_scheduling",
    "fig12_vit_training",
    "fig13_gpt2_training",
    "format_series",
    "format_table",
    "latency_breakdown",
    "measure_collective",
    "nccl_vs_mpi_comparison",
    "run_table1",
    "run_table1_row",
    "sec61_random_order_program",
    "sec61_sync_program",
    "sweep_bandwidth_latency",
    "workload_independent_overheads",
]
