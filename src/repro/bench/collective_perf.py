"""Collective bandwidth / latency experiments (Figs. 7, 8, 9 and the Sec. 2.1 claim).

``measure_collective`` runs one collective repeatedly on a fresh simulated
cluster through either backend and reports end-to-end latency, core execution
time and algorithm bandwidth, mirroring the rewritten NCCL-Tests harness the
paper uses.
"""

from __future__ import annotations

import statistics

from repro.common.types import CollectiveKind, CollectiveSpec
from repro.core import DfcclBackend, DfcclConfig
from repro.gpusim import HostProgram, build_cluster
from repro.ncclsim import CudaAwareMpiModel, NcclBackend
from repro.ncclsim.program import launch_collective, wait_collective

#: Buffer sizes swept in Fig. 8 (512 B – 4 MB on one server, up to 16 MB on 32 GPUs).
FIG8_SIZES_SINGLE = [512 << i for i in range(0, 14)]
FIG8_SIZES_MULTI = [2048 << i for i in range(0, 14)]


def _kind_from_name(name):
    return CollectiveKind(name) if not isinstance(name, CollectiveKind) else name


def measure_collective(backend="dfccl", kind="all_reduce", nbytes=1 << 20,
                       world_size=8, topology="single-3090", iterations=3,
                       chunk_bytes=128 << 10, algorithm="ring"):
    """Measure one collective's end-to-end latency, core time and bandwidth.

    ``algorithm`` is ``"ring"``, ``"tree"`` or ``"auto"`` (topology-aware
    selection).  Returns a dict with mean values over ``iterations`` timed
    runs; the ``algorithm`` key reports the resolved algorithm.
    """
    kind = _kind_from_name(kind)
    count = max(1, nbytes // 4)
    ranks = list(range(world_size))

    cluster = build_cluster(topology)
    if world_size > cluster.world_size:
        raise ValueError(f"topology {topology} has only {cluster.world_size} GPUs")

    if backend == "dfccl":
        return _measure_dfccl(cluster, kind, count, nbytes, ranks, iterations,
                              chunk_bytes, algorithm)
    if backend == "nccl":
        return _measure_nccl(cluster, kind, count, nbytes, ranks, iterations,
                             chunk_bytes, algorithm)
    raise ValueError(f"unknown backend {backend!r}")


def _measure_dfccl(cluster, kind, count, nbytes, ranks, iterations, chunk_bytes,
                   algorithm="ring"):
    config = DfcclConfig(chunk_bytes=chunk_bytes, algorithm=algorithm)
    dfccl = DfcclBackend(cluster, config)
    dfccl.init_all_ranks(ranks)
    spec = CollectiveSpec(kind, count)
    coll = dfccl.register_collective(0, spec, ranks=ranks)

    handles = {rank: [dfccl.submit(rank, 0) for _ in range(iterations)] for rank in ranks}
    programs = []
    for rank in ranks:
        ops = []
        for handle in handles[rank]:
            ops.append(handle.submit_op())
            ops.append(handle.wait_op())
        ops.append(dfccl.destroy_op(rank))
        programs.append(HostProgram(ops))
    cluster.add_hosts(programs)
    cluster.run()

    latencies = []
    for index in range(iterations):
        invocation = coll.invocation(index)
        start = min(invocation.submit_times.values())
        end = max(invocation.complete_times.values())
        latencies.append(end - start)
    stats = dfccl.stats(ranks[0])
    completed = max(1, stats.cqes_written)
    core = (stats.execute_time_us + stats.preparing_time_us) / completed
    latency = statistics.fmean(latencies)
    return {
        "backend": "dfccl",
        "kind": kind.value,
        "nbytes": nbytes,
        "algorithm": coll.algorithm,
        "latency_us": latency,
        "core_time_us": core,
        "bandwidth_gbps": nbytes / (latency * 1e3),
        "preemptions": stats.preemptions,
    }


def _measure_nccl(cluster, kind, count, nbytes, ranks, iterations, chunk_bytes,
                  algorithm="ring"):
    nccl = NcclBackend(cluster, chunk_bytes=chunk_bytes, algorithm=algorithm)
    comm = nccl.create_communicator(ranks=ranks)
    spec = CollectiveSpec(kind, count)
    ops_by_iter = [comm.collective(index, spec) for index in range(iterations)]

    programs = []
    for rank in ranks:
        ops = []
        for op in ops_by_iter:
            ops.append(launch_collective(nccl, op, rank))
            ops.append(wait_collective(op, comm.group_rank(rank)))
        programs.append(HostProgram(ops))
    cluster.add_hosts(programs)
    cluster.run()

    latencies = []
    cores = []
    for op in ops_by_iter:
        starts = []
        ends = []
        core_times = []
        for group_rank in range(len(ranks)):
            kernel = op.kernel(group_rank)
            starts.append(kernel.launch_time_us)
            ends.append(kernel.complete_time_us)
            core_times.append(kernel.complete_time_us - kernel.launch_time_us)
        # End to end includes the host-side launch overhead before residency.
        latencies.append(max(ends) - min(starts) + cluster.device(0).launch_overhead_us)
        cores.append(statistics.fmean(core_times))
    latency = statistics.fmean(latencies)
    return {
        "backend": "nccl",
        "kind": kind.value,
        "nbytes": nbytes,
        "algorithm": ops_by_iter[0].algorithm,
        "latency_us": latency,
        "core_time_us": statistics.fmean(cores),
        "bandwidth_gbps": nbytes / (latency * 1e3),
        "preemptions": 0,
    }


def sweep_bandwidth_latency(kind="all_reduce", world_size=8, topology="single-3090",
                            sizes=None, iterations=2):
    """Fig. 8: bandwidth and latency vs buffer size for both backends."""
    if sizes is None:
        sizes = FIG8_SIZES_SINGLE if world_size <= 8 else FIG8_SIZES_MULTI
    rows = []
    for nbytes in sizes:
        for backend in ("nccl", "dfccl"):
            result = measure_collective(backend, kind, nbytes, world_size, topology,
                                        iterations=iterations)
            rows.append(result)
    return rows


#: Buffer sizes for the ring-vs-tree crossover sweep (1 KB – 4 MB).
RING_TREE_SIZES = [1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20]


def sweep_ring_vs_tree(kind="all_reduce", world_size=16, topology="dual-3090",
                       sizes=None, iterations=2, backend="nccl"):
    """Fig. 8 companion: ring vs. tree latency and the ``auto`` selection.

    For every buffer size the collective is simulated with the ring and the
    tree algorithm plus ``algorithm="auto"``; each row reports both latencies,
    the measured winner and the algorithm ``auto`` resolved to, so the
    crossover and the selector's accuracy land in the Fig. 8 reporting.
    """
    if sizes is None:
        sizes = RING_TREE_SIZES
    rows = []
    for nbytes in sizes:
        measured = {
            algorithm: measure_collective(backend, kind, nbytes, world_size,
                                          topology, iterations=iterations,
                                          algorithm=algorithm)
            for algorithm in ("ring", "tree", "auto")
        }
        ring_latency = measured["ring"]["latency_us"]
        tree_latency = measured["tree"]["latency_us"]
        rows.append({
            "kind": _kind_from_name(kind).value,
            "nbytes": nbytes,
            "ring_latency_us": ring_latency,
            "tree_latency_us": tree_latency,
            "auto_latency_us": measured["auto"]["latency_us"],
            "auto_algorithm": measured["auto"]["algorithm"],
            "winner": "tree" if tree_latency < ring_latency else "ring",
        })
    return rows


def latency_breakdown(nbytes_small=4 << 10, nbytes_large=4 << 20, world_size=8,
                      topology="single-3090", kind="all_gather"):
    """Fig. 9: end-to-end latency vs core execution time, small and large buffers."""
    rows = []
    for label, nbytes in (("small", nbytes_small), ("large", nbytes_large)):
        for backend in ("nccl", "dfccl"):
            result = measure_collective(backend, kind, nbytes, world_size, topology)
            result["case"] = label
            rows.append(result)
    return rows


def workload_independent_overheads(world_size=8, topology="single-3090"):
    """Fig. 7(b,c) + Sec. 6.2: SQE read / preparing / CQE write times and memory.

    Runs the same all-reduce workload under each CQ variant and reports the
    measured per-CQE write time along with the fixed SQE-read and preparing
    overheads and the memory overhead report for 1,000 collectives.
    """
    from repro.core.context import memory_overhead_report

    rows = []
    for variant in ("vanilla", "optimized-ring", "optimized-cas"):
        cluster = build_cluster(topology)
        config = DfcclConfig(cq_variant=variant)
        dfccl = DfcclBackend(cluster, config)
        ranks = list(range(world_size))
        dfccl.init_all_ranks(ranks)
        dfccl.register_all_reduce(0, count=1 << 18, ranks=ranks)
        programs = []
        for rank in ranks:
            handles = [dfccl.submit(rank, 0) for _ in range(3)]
            ops = []
            for handle in handles:
                ops.extend(handle.ops())
            ops.append(dfccl.destroy_op(rank))
            programs.append(HostProgram(ops))
        cluster.add_hosts(programs)
        cluster.run()
        stats = dfccl.stats(0)
        rows.append({
            "cq_variant": variant,
            "sqe_read_us": stats.mean_sqe_read_time_us(),
            "preparing_us": (stats.preparing_time_us / max(1, stats.cqes_written)),
            "cqe_write_us": stats.mean_cqe_write_time_us(),
        })
    memory = memory_overhead_report(DfcclConfig(), num_collectives=1000)
    return {"time_overheads": rows, "memory_overheads": memory}


def nccl_vs_mpi_comparison(world_size=8, topology="single-3090", sizes=None):
    """Sec. 2.1: NCCL all-reduce throughput vs CUDA-aware MPI.

    The NCCL numbers come from the simulated backend, the MPI numbers from the
    analytic host-staged model; the claim to reproduce is the crossover above
    32 KB and a >6x large-buffer gap.
    """
    if sizes is None:
        sizes = [4 << 10, 32 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20]
    mpi = CudaAwareMpiModel()
    rows = []
    for nbytes in sizes:
        nccl = measure_collective("nccl", "all_reduce", nbytes, world_size, topology)
        mpi_bw = mpi.all_reduce_bandwidth_gbps(nbytes, world_size)
        rows.append({
            "nbytes": nbytes,
            "nccl_bw_gbps": nccl["bandwidth_gbps"],
            "mpi_bw_gbps": mpi_bw,
            "speedup": nccl["bandwidth_gbps"] / mpi_bw if mpi_bw else float("inf"),
        })
    return rows
