"""Collective bandwidth / latency experiments (Figs. 7, 8, 9 and the Sec. 2.1 claim).

``measure_collective`` runs one collective repeatedly on a fresh simulated
cluster through any registered ``repro.api`` backend and reports end-to-end
latency, core execution time and algorithm bandwidth, mirroring the rewritten
NCCL-Tests harness the paper uses.  Program construction is fully
backend-agnostic (ProcessGroup + Work futures); metric extraction comes from
each backend's :meth:`~repro.api.CollectiveBackend.perf_report`.
"""

from __future__ import annotations

from repro.api import make_backend
from repro.common.types import CollectiveKind, CollectiveSpec
from repro.core import DfcclConfig
from repro.gpusim import HostProgram, build_cluster
from repro.ncclsim import CudaAwareMpiModel

#: Buffer sizes swept in Fig. 8 (512 B – 4 MB on one server, up to 16 MB on 32 GPUs).
FIG8_SIZES_SINGLE = [512 << i for i in range(0, 14)]
FIG8_SIZES_MULTI = [2048 << i for i in range(0, 14)]


def _kind_from_name(name):
    return CollectiveKind(name) if not isinstance(name, CollectiveKind) else name


def measure_collective(backend="dfccl", kind="all_reduce", nbytes=1 << 20,
                       world_size=8, topology="single-3090", iterations=3,
                       chunk_bytes=128 << 10, algorithm="ring"):
    """Measure one collective's end-to-end latency, core time and bandwidth.

    ``backend`` is any registered ``repro.api`` backend name.  ``algorithm``
    is ``"ring"``, ``"tree"`` or ``"auto"`` (topology-aware selection).
    Returns a dict with mean values over ``iterations`` timed runs; the
    ``algorithm`` key reports the resolved algorithm.
    """
    kind = _kind_from_name(kind)
    count = max(1, nbytes // 4)
    ranks = list(range(world_size))

    cluster = build_cluster(topology)
    if world_size > cluster.world_size:
        raise ValueError(f"topology {topology} has only {cluster.world_size} GPUs")

    api_backend = make_backend(backend, cluster, chunk_bytes=chunk_bytes,
                               algorithm=algorithm)
    group = api_backend.new_group(ranks)
    spec = CollectiveSpec(kind, count)
    group.ensure_collective(spec)

    works_by_rank = {}
    programs = []
    for rank in ranks:
        works = [group.collective(rank, spec) for _ in range(iterations)]
        works_by_rank[rank] = works
        ops = []
        for work in works:
            ops.extend(work.ops())
        ops.extend(api_backend.finalize_ops(rank))
        programs.append(HostProgram(ops))
    cluster.add_hosts(programs)
    cluster.run()

    report = api_backend.perf_report(group, works_by_rank)
    return {
        "backend": api_backend.name,
        "kind": kind.value,
        "nbytes": nbytes,
        "algorithm": report["algorithm"],
        "latency_us": report["latency_us"],
        "core_time_us": report["core_time_us"],
        "bandwidth_gbps": nbytes / (report["latency_us"] * 1e3),
        "preemptions": report["preemptions"],
    }


def sweep_bandwidth_latency(kind="all_reduce", world_size=8, topology="single-3090",
                            sizes=None, iterations=2):
    """Fig. 8: bandwidth and latency vs buffer size for both backends."""
    if sizes is None:
        sizes = FIG8_SIZES_SINGLE if world_size <= 8 else FIG8_SIZES_MULTI
    rows = []
    for nbytes in sizes:
        for backend in ("nccl", "dfccl"):
            result = measure_collective(backend, kind, nbytes, world_size, topology,
                                        iterations=iterations)
            rows.append(result)
    return rows


#: Buffer sizes for the ring-vs-tree crossover sweep (1 KB – 4 MB).
RING_TREE_SIZES = [1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20]


def sweep_ring_vs_tree(kind="all_reduce", world_size=16, topology="dual-3090",
                       sizes=None, iterations=2, backend="nccl"):
    """Fig. 8 companion: ring vs. tree latency and the ``auto`` selection.

    For every buffer size the collective is simulated with the ring and the
    tree algorithm plus ``algorithm="auto"``; each row reports both latencies,
    the measured winner and the algorithm ``auto`` resolved to, so the
    crossover and the selector's accuracy land in the Fig. 8 reporting.
    """
    if sizes is None:
        sizes = RING_TREE_SIZES
    rows = []
    for nbytes in sizes:
        measured = {
            algorithm: measure_collective(backend, kind, nbytes, world_size,
                                          topology, iterations=iterations,
                                          algorithm=algorithm)
            for algorithm in ("ring", "tree", "auto")
        }
        ring_latency = measured["ring"]["latency_us"]
        tree_latency = measured["tree"]["latency_us"]
        rows.append({
            "kind": _kind_from_name(kind).value,
            "nbytes": nbytes,
            "ring_latency_us": ring_latency,
            "tree_latency_us": tree_latency,
            "auto_latency_us": measured["auto"]["latency_us"],
            "auto_algorithm": measured["auto"]["algorithm"],
            "winner": "tree" if tree_latency < ring_latency else "ring",
        })
    return rows


def latency_breakdown(nbytes_small=4 << 10, nbytes_large=4 << 20, world_size=8,
                      topology="single-3090", kind="all_gather"):
    """Fig. 9: end-to-end latency vs core execution time, small and large buffers."""
    rows = []
    for label, nbytes in (("small", nbytes_small), ("large", nbytes_large)):
        for backend in ("nccl", "dfccl"):
            result = measure_collective(backend, kind, nbytes, world_size, topology)
            result["case"] = label
            rows.append(result)
    return rows


def workload_independent_overheads(world_size=8, topology="single-3090"):
    """Fig. 7(b,c) + Sec. 6.2: SQE read / preparing / CQE write times and memory.

    Runs the same all-reduce workload under each CQ variant and reports the
    measured per-CQE write time along with the fixed SQE-read and preparing
    overheads and the memory overhead report for 1,000 collectives.
    """
    from repro.core.context import memory_overhead_report

    rows = []
    for variant in ("vanilla", "optimized-ring", "optimized-cas"):
        cluster = build_cluster(topology)
        dfccl = make_backend("dfccl", cluster, config=DfcclConfig(cq_variant=variant))
        ranks = list(range(world_size))
        group = dfccl.new_group(ranks)
        programs = []
        for rank in ranks:
            works = [group.all_reduce(rank, count=1 << 18) for _ in range(3)]
            ops = []
            for work in works:
                ops.extend(work.ops())
            ops.extend(dfccl.finalize_ops(rank))
            programs.append(HostProgram(ops))
        cluster.add_hosts(programs)
        cluster.run()
        stats = dfccl.stats(0)
        rows.append({
            "cq_variant": variant,
            "sqe_read_us": stats.mean_sqe_read_time_us(),
            "preparing_us": (stats.preparing_time_us / max(1, stats.cqes_written)),
            "cqe_write_us": stats.mean_cqe_write_time_us(),
        })
    memory = memory_overhead_report(DfcclConfig(), num_collectives=1000)
    return {"time_overheads": rows, "memory_overheads": memory}


def nccl_vs_mpi_comparison(world_size=8, topology="single-3090", sizes=None):
    """Sec. 2.1: NCCL all-reduce throughput vs CUDA-aware MPI.

    The NCCL numbers come from the simulated backend, the MPI numbers from the
    analytic host-staged model; the claim to reproduce is the crossover above
    32 KB and a >6x large-buffer gap.
    """
    if sizes is None:
        sizes = [4 << 10, 32 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20]
    mpi = CudaAwareMpiModel()
    rows = []
    for nbytes in sizes:
        nccl = measure_collective("nccl", "all_reduce", nbytes, world_size, topology)
        mpi_bw = mpi.all_reduce_bandwidth_gbps(nbytes, world_size)
        rows.append({
            "nbytes": nbytes,
            "nccl_bw_gbps": nccl["bandwidth_gbps"],
            "mpi_bw_gbps": mpi_bw,
            "speedup": nccl["bandwidth_gbps"] / mpi_bw if mpi_bw else float("inf"),
        })
    return rows
