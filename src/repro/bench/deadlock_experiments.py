"""Deadlock experiments: Table 1 and the Sec. 6.1 deadlock-prevention programs."""

from __future__ import annotations

from repro.api import make_backend, wait_all
from repro.common.errors import DeadlockError
from repro.common.rng import DeterministicRNG
from repro.common.types import CollectiveKind, CollectiveSpec
from repro.deadlock import DeadlockSimulator, TABLE1_CONFIGS
from repro.gpusim import HostProgram, build_cluster
from repro.gpusim.host import DeviceSynchronize


# -- Table 1 -----------------------------------------------------------------------------


def run_table1_row(name, rounds=200, collective_scale=0.1, seed=0):
    """Estimate the deadlock ratio for one Table 1 configuration.

    ``collective_scale`` < 1 shrinks the per-group collective counts and boosts
    the probabilities by the same factor so that the expected number of
    disorder / synchronization events per round is preserved.
    """
    config = TABLE1_CONFIGS[name].scaled(collective_scale)
    simulator = DeadlockSimulator(
        config.build_policy(), config.model, config.disorder_prob, config.sync_prob,
        seed=seed,
    )
    estimate = simulator.estimate(rounds)
    return {
        "config": name,
        "model": config.model,
        "grouping": config.grouping,
        "disorder_prob": config.disorder_prob,
        "sync_prob": config.sync_prob,
        "rounds": rounds,
        "measured_ratio": estimate.ratio,
        "paper_ratio": TABLE1_CONFIGS[name].paper_ratio,
        "mean_disorder_events": estimate.mean_disorder_events,
        "mean_sync_events": estimate.mean_sync_events,
    }


#: Rows small enough to estimate quickly with default settings (the huge
#: 3,072-GPU and heavily synchronized rows are opt-in via ``run_table1(full=True)``).
TABLE1_FAST_ROWS = [
    "sq-free-1x8-1e-5",
    "sq-3d-444-1e-7",
    "sq-3d-444-1e-6",
    "sq-free-32x64-1e-6",
    "sq-free-32x64-1e-5",
    "sync-free-32x64-4e-5-4e-5",
    "sync-free-32x64-4e-5-8e-5",
]


def run_table1(rows=None, rounds=100, collective_scale=0.05, seed=0, full=False):
    """Run (a subset of) Table 1 and return one result dict per row."""
    if rows is None:
        rows = list(TABLE1_CONFIGS) if full else TABLE1_FAST_ROWS
    return [run_table1_row(name, rounds, collective_scale, seed) for name in rows]


def deadlock_sensitivity_sweep(rounds=150, seed=0):
    """Qualitative reproduction of the Sec. 2.4.3 sensitivity findings.

    Uses an 8-GPU free-grouping workload and sweeps the disorder and the
    synchronization probabilities independently, showing that (a) the deadlock
    ratio grows with both and (b) it is more sensitive to the synchronization
    probability than to the disorder probability.
    """
    from repro.deadlock.grouping import FreeGroupingPolicy

    groups = [([0, 1, 2, 3], 40), ([2, 3, 4, 5], 40), ([4, 5, 6, 7], 40),
              ([0, 1, 2, 3, 4, 5, 6, 7], 40)]
    policy = FreeGroupingPolicy(groups)
    base_disorder, base_sync = 2e-3, 2e-3
    rows = []
    for label, disorder, sync in [
        ("baseline", base_disorder, base_sync),
        ("disorder x4", base_disorder * 4, base_sync),
        ("sync x4", base_disorder, base_sync * 4),
    ]:
        simulator = DeadlockSimulator(policy, "synchronization", disorder, sync, seed=seed)
        estimate = simulator.estimate(rounds)
        rows.append({
            "case": label,
            "disorder_prob": disorder,
            "sync_prob": sync,
            "deadlock_ratio": estimate.ratio,
        })
    return rows


# -- Sec. 6.1 deadlock-prevention programs ------------------------------------------------------


def _sec61_result(api_backend, deadlocked, time_us, **extras):
    result = {"backend": api_backend.name, "deadlocked": deadlocked,
              "time_us": time_us, **extras}
    diagnostics = api_backend.diagnostics()
    for key in ("preemptions", "voluntary_quits"):
        if key in diagnostics:
            result[key] = diagnostics[key]
    return result


def sec61_random_order_program(backend="dfccl", num_gpus=8, num_collectives=8,
                               iterations=5, seed=11, min_bytes=256):
    """First Sec. 6.1 program: same collectives, unique random order per GPU.

    Buffer sizes grow from ``min_bytes`` by powers of two, as in the paper
    (256 B to 1 MB for eight collectives).  Returns a result dict; for the
    NCCL backend a deadlock is expected and reported as ``deadlocked=True``.
    """
    rng = DeterministicRNG(seed)
    sizes = [min_bytes << index for index in range(num_collectives)]
    cluster = build_cluster("single-3090")
    ranks = list(range(num_gpus))

    api_backend = make_backend(backend, cluster)
    group = api_backend.new_group(ranks)
    counts = {coll_id: max(1, nbytes // 4) for coll_id, nbytes in enumerate(sizes)}
    for coll_id in range(num_collectives):
        group.ensure_collective(
            CollectiveSpec(CollectiveKind.ALL_REDUCE, counts[coll_id]), key=coll_id
        )
    programs = []
    for rank in ranks:
        ops = []
        for iteration in range(iterations):
            order = rng.child("order", rank, iteration).permutation(num_collectives)
            works = [group.all_reduce(rank, counts[coll_id], key=coll_id)
                     for coll_id in order]
            ops.extend(work.submit_op() for work in works)
            ops.extend(wait_all(works))
        ops.extend(api_backend.finalize_ops(rank))
        programs.append(HostProgram(ops))
    cluster.add_hosts(programs)
    try:
        final_time = cluster.run()
    except DeadlockError:
        return _sec61_result(api_backend, True, cluster.engine.now)
    return _sec61_result(api_backend, False, final_time, iterations=iterations)


def sec61_sync_program(backend="dfccl", num_gpus=8, num_collectives=4, iterations=3,
                       seed=13, nbytes=64 << 10):
    """Second Sec. 6.1 program: disordered all-reduces separated by device syncs."""
    rng = DeterministicRNG(seed)
    cluster = build_cluster("single-3090")
    ranks = list(range(num_gpus))

    api_backend = make_backend(backend, cluster)
    group = api_backend.new_group(ranks)
    count = max(1, nbytes // 4)
    for coll_id in range(num_collectives):
        group.ensure_collective(
            CollectiveSpec(CollectiveKind.ALL_REDUCE, count), key=coll_id
        )
    programs = []
    for rank in ranks:
        ops = []
        for iteration in range(iterations):
            order = rng.child("order", rank, iteration).permutation(num_collectives)
            # Per-collective streams: with a device sync between launches the
            # dedicated-kernel baseline wedges exactly as in the paper.
            works = [group.all_reduce(rank, count, key=coll_id,
                                      stream=f"s{coll_id}")
                     for coll_id in order]
            for work in works:
                ops.append(work.submit_op())
                ops.append(DeviceSynchronize())
            ops.extend(wait_all(works))
        ops.extend(api_backend.finalize_ops(rank))
        programs.append(HostProgram(ops))
    cluster.add_hosts(programs)
    try:
        final_time = cluster.run()
    except DeadlockError:
        return _sec61_result(api_backend, True, cluster.engine.now)
    return _sec61_result(api_backend, False, final_time)
