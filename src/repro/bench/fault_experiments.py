"""Chaos experiments: recovery time and goodput under fault plans.

These drivers extend the paper's evaluation beyond healthy clusters: the same
collective workload is replayed with seeded fault plans injected, and the
reported quantities are the ones an operator cares about —

* **detection latency** — crash to CQE-timeout confirmation;
* **recovery time** — confirmation to the last surviving rank's completion of
  the re-formed collectives;
* **goodput under chaos** — survivor-side completed collectives per virtual
  millisecond, relative to the same workload on a healthy cluster;
* **baseline behaviour** — whether the dedicated-kernel baseline survived the
  same plan at all (it deadlocks on any crash).
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan
from repro.faults.scenarios import run_dfccl_chaos, run_nccl_chaos

#: Virtual-time horizon the canned plans are scaled to (us).
CHAOS_HORIZON_US = 8_000.0


def _crash_plan(world_size, horizon_us=CHAOS_HORIZON_US):
    return FaultPlan(name="crash").add_crash(world_size // 2, at_us=0.015 * horizon_us)


def _double_crash_plan(world_size, horizon_us=CHAOS_HORIZON_US):
    return (FaultPlan(name="double-crash")
            .add_crash(world_size // 2, at_us=0.015 * horizon_us)
            .add_crash(world_size - 1, at_us=0.5 * horizon_us))


def _flap_plan(world_size, horizon_us=CHAOS_HORIZON_US):
    # Flap the two node-boundary ring edges: the inter-node RDMA links every
    # ring collective over the full group must cross.
    half = world_size // 2
    return (FaultPlan(name="link-flap")
            .add_link_flap(half - 1, half, at_us=0.01 * horizon_us,
                           duration_us=0.15 * horizon_us)
            .add_link_flap(world_size - 1, 0, at_us=0.3 * horizon_us,
                           duration_us=0.1 * horizon_us))


def _straggler_plan(world_size, horizon_us=CHAOS_HORIZON_US):
    return (FaultPlan(name="straggler")
            .add_straggler(1, at_us=0.01 * horizon_us, factor=6.0,
                           duration_us=0.4 * horizon_us)
            .add_kernel_stall(2, at_us=0.2 * horizon_us, duration_us=120.0))


def _mixed_plan(world_size, horizon_us=CHAOS_HORIZON_US):
    return FaultPlan.random(
        seed=1236, world_size=world_size, horizon_us=0.6 * horizon_us,
        expected_crashes=2.0, expected_stragglers=2.0, expected_flaps=2.0,
        expected_stalls=2.0, name="mixed-seeded", protect_ranks=(0,),
    )


#: The canned chaos plans (name -> factory(world_size, horizon_us)).
CHAOS_PLANS = {
    "crash": _crash_plan,
    "double-crash": _double_crash_plan,
    "link-flap": _flap_plan,
    "straggler": _straggler_plan,
    "mixed-seeded": _mixed_plan,
}


def _last_survivor_completion_us(result):
    times = [record["time_us"]
             for rank in result.survivor_ranks
             for record in result.completions.get(rank, ())
             if record.get("time_us") is not None]
    return max(times) if times else None


def measure_recovery(plan_name="crash", topology="dual-3090-nvlink",
                     world_size=16, num_collectives=3, nbytes=1 << 20,
                     iterations=2, seed=17, config=None):
    """Recovery-time breakdown for one crash-bearing plan.

    Returns a row with crash/detection/completion timestamps, the detection
    latency and the recovery time (confirmation -> last survivor completion).
    """
    plan = CHAOS_PLANS[plan_name](world_size)
    result = run_dfccl_chaos(plan, topology, world_size, num_collectives,
                             nbytes, iterations, config=config, seed=seed)
    events = result.recovery.get("events", [])
    first_event = events[0] if events else None
    last_completion = _last_survivor_completion_us(result)
    row = {
        "plan": plan_name,
        "outcome": result.outcome,
        "crashed_ranks": result.crashed_ranks,
        "recoveries": result.recovery.get("recoveries", 0),
        "detection_latency_us": (first_event["detection_latency_us"]
                                 if first_event else None),
        "recovery_confirmed_us": first_event["time_us"] if first_event else None,
        "last_survivor_completion_us": last_completion,
        "recovery_time_us": (
            last_completion - first_event["time_us"]
            if first_event and last_completion is not None else None
        ),
        "total_time_us": result.time_us,
    }
    return row


def goodput_under_chaos(plans=None, topology="dual-3090-nvlink", world_size=16,
                        num_collectives=3, nbytes=1 << 20, iterations=2,
                        seed=17, config=None, include_baseline=True):
    """Survivor goodput for each chaos plan, relative to a healthy run.

    Goodput counts survivor-side completed collectives per virtual
    millisecond.  ``include_baseline`` adds the dedicated-kernel backend's
    outcome under the same plan (deadlock / stuck / completed).
    """
    if plans is None:
        plans = ["crash", "double-crash", "link-flap", "straggler", "mixed-seeded"]

    healthy = run_dfccl_chaos(FaultPlan(name="healthy"), topology, world_size,
                              num_collectives, nbytes, iterations,
                              config=config, seed=seed)
    healthy_completions = sum(
        len(records) for records in healthy.completions.values()
    )
    healthy_goodput = healthy_completions / (healthy.time_us / 1e3)

    rows = []
    for plan_name in plans:
        plan = CHAOS_PLANS[plan_name](world_size)
        chaos = run_dfccl_chaos(plan, topology, world_size, num_collectives,
                                nbytes, iterations, config=config, seed=seed)
        survivor_completions = sum(
            len(chaos.completions.get(rank, ())) for rank in chaos.survivor_ranks
        )
        goodput = survivor_completions / (chaos.time_us / 1e3) if chaos.time_us else 0.0
        row = {
            "plan": plan_name,
            "events": len(plan),
            "outcome": chaos.outcome,
            "crashed_ranks": chaos.crashed_ranks,
            "recoveries": chaos.recovery.get("recoveries", 0),
            "survivor_completions": survivor_completions,
            "time_us": chaos.time_us,
            "goodput_per_ms": goodput,
            "relative_goodput": goodput / healthy_goodput if healthy_goodput else 0.0,
        }
        if include_baseline:
            baseline = run_nccl_chaos(plan, topology, world_size,
                                      num_collectives, nbytes, iterations)
            row["nccl_outcome"] = baseline.outcome
        rows.append(row)
    return {
        "healthy_goodput_per_ms": healthy_goodput,
        "healthy_time_us": healthy.time_us,
        "rows": rows,
    }
