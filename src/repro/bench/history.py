"""Benchmark history ledger: ``python -m repro.bench.history``.

``BENCH_scale.json`` and ``BENCH_obs.json`` are snapshots — each regeneration
overwrites the last, so a slow regression that lands together with a report
refresh is invisible in review.  This module keeps an append-only ledger,
``BENCH_history.json``, of *machine-normalized* throughput snapshots:

* ``--append`` reads the current report files, divides every steps/sec figure
  by the report's recorded pure-Python calibration score (see
  :func:`repro.bench.scale_experiments.machine_calibration_factor`), and
  appends one snapshot entry.  Normalizing by the calibration score makes
  entries recorded on different machines comparable: steps-per-calibration-op
  is a machine-free measure of simulator efficiency.
* ``--check`` diffs the newest snapshot against the previous one and fails
  (exit 1) if any shared point's normalized throughput regressed by more
  than ``--threshold`` (default 15%).  CI runs append-then-check on every
  push, so the ledger grows one entry per CI run and the diff is always
  "this commit vs the last one that ran".

Entries carry no wall-clock timestamp on purpose: the simulator is
deterministic and CI history is ordered by position, so a timestamp would be
the only non-reproducible field in the file.
"""

from __future__ import annotations

import argparse
import json
import os

#: Ledger entries are keyed by this schema version so a future format change
#: can skip (rather than misread) old entries.
HISTORY_VERSION = 1


def _load_json(path):
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def snapshot_from_reports(scale_path="BENCH_scale.json",
                          obs_path="BENCH_obs.json"):
    """Build one normalized history entry from the current report files.

    Every point becomes ``"<ranks>/<topology>/<algorithm>" ->
    {steps_per_sec, normalized_steps_per_calibration_op, virtual_time_us}``.
    Raises ``ValueError`` when the scale report is missing (nothing to
    normalize against) — the obs report is optional.
    """
    scale = _load_json(scale_path)
    if scale is None:
        raise ValueError(f"no scale report at {scale_path!r}; run "
                         "write_scale_report() first")
    calibration = scale.get("calibration_ops_per_sec")
    if not calibration:
        raise ValueError(f"{scale_path!r} carries no calibration_ops_per_sec")
    points = {}
    for row in scale.get("points", ()):
        key = f"{row['ranks']}/{row['topology']}/{row['algorithm']}"
        points[key] = {
            "steps_per_sec": row["steps_per_sec"],
            "normalized": row["steps_per_sec"] / calibration,
            "virtual_time_us": row["virtual_time_us"],
        }
    obs = _load_json(obs_path)
    if obs is not None and obs.get("steps_per_sec"):
        key = (f"obs/{obs['ranks']}/{obs['topology']}/"
               f"{obs['algorithm']}")
        points[key] = {
            "steps_per_sec": obs["steps_per_sec"],
            "normalized": obs["steps_per_sec"] / calibration,
            "virtual_time_us": obs["virtual_time_us"],
        }
    return {
        "version": HISTORY_VERSION,
        "calibration_ops_per_sec": calibration,
        "points": points,
    }


def append_snapshot(history_path="BENCH_history.json",
                    scale_path="BENCH_scale.json",
                    obs_path="BENCH_obs.json"):
    """Append the current reports' snapshot to the ledger; returns it."""
    history = _load_json(history_path) or {"entries": []}
    entry = snapshot_from_reports(scale_path=scale_path, obs_path=obs_path)
    history["entries"].append(entry)
    with open(history_path, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2, sort_keys=True)
    return entry


def diff_latest(history_path="BENCH_history.json", threshold=0.15):
    """Compare the two newest snapshots; returns (regressions, lines).

    ``regressions`` lists the shared points whose normalized throughput
    dropped by more than ``threshold``; ``lines`` is the full human-readable
    diff (every shared point, regressed or not).  Fewer than two comparable
    entries → no regressions, with a line saying why.
    """
    history = _load_json(history_path) or {"entries": []}
    entries = [entry for entry in history["entries"]
               if entry.get("version") == HISTORY_VERSION]
    if len(entries) < 2:
        return [], [f"{len(entries)} history entr"
                    f"{'y' if len(entries) == 1 else 'ies'}; "
                    "need 2 to diff — no regression check possible"]
    previous, latest = entries[-2], entries[-1]
    lines = []
    regressions = []
    shared = sorted(set(previous["points"]) & set(latest["points"]))
    for key in shared:
        before = previous["points"][key]["normalized"]
        after = latest["points"][key]["normalized"]
        change = (after - before) / before if before else 0.0
        marker = ""
        if change < -threshold:
            marker = "  <-- REGRESSION"
            regressions.append({"point": key, "before": before,
                                "after": after, "change": change})
        lines.append(f"{key}: {before:.6f} -> {after:.6f} "
                     f"steps/cal-op ({change:+.1%}){marker}")
    for key in sorted(set(latest["points"]) - set(previous["points"])):
        lines.append(f"{key}: (new point, no baseline)")
    return regressions, lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.history",
        description="Append-only machine-normalized benchmark ledger.")
    parser.add_argument("--history", default="BENCH_history.json")
    parser.add_argument("--scale", default="BENCH_scale.json")
    parser.add_argument("--obs", default="BENCH_obs.json")
    parser.add_argument("--append", action="store_true",
                        help="append a snapshot of the current reports")
    parser.add_argument("--check", action="store_true",
                        help="diff the two newest snapshots; exit 1 on a "
                             "normalized regression beyond --threshold")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional regression tolerance (default 0.15)")
    args = parser.parse_args(argv)
    if not args.append and not args.check:
        parser.error("nothing to do: pass --append and/or --check")
    if args.append:
        entry = append_snapshot(history_path=args.history,
                                scale_path=args.scale, obs_path=args.obs)
        print(f"appended snapshot: {len(entry['points'])} points, "
              f"calibration {entry['calibration_ops_per_sec']:.3g} ops/sec")
    status = 0
    if args.check:
        regressions, lines = diff_latest(history_path=args.history,
                                         threshold=args.threshold)
        print("\n".join(lines))
        if regressions:
            print(f"\n{len(regressions)} point(s) regressed beyond "
                  f"{args.threshold:.0%} (machine-normalized)")
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
