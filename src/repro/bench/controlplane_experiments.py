"""Control-plane experiments: preemptive scheduling vs run-to-completion.

The headline driver replays a 24h-equivalent open-loop Zipf arrival stream
on one saturated 8-GPU cluster twice — once under the preemptive control
plane (:class:`repro.controlplane.ControlPlane`) and once with preemption
disabled (plain run-to-completion, the no-preemption baseline) — and
compares SLO attainment.  The stream mixes latency-sensitive high-priority
jobs (tight SLOs) with loose-SLO batch jobs, the regime where preempting a
batch victim to admit a latency-sensitive arrival is a structural win: the
victim's slack absorbs the checkpoint/restore detour while the arrival
makes a deadline it would otherwise miss in the queue.

Drivers:

* :func:`run_controlplane` — one seeded stream, one control-plane
  configuration (preemption on/off, tenant quotas, starvation aging,
  optional mid-run cluster grow); per-job rows plus the control-plane
  summary (preemptions, resumes, migrations, rejoins, rejected, starved);
* :func:`preemption_ablation` — the headline pair on the *same* stream;
  returns both runs plus the SLO-attainment gain.

All drivers are seeded and deterministic; the CI ``controlplane-smoke``
job archives the results as ``BENCH_controlplane.json``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.controlplane import install_control_plane
from repro.gpusim import SmInterferenceModel, build_cluster
from repro.multijob.arrivals import estimate_standalone_us, generate_jobs
from repro.multijob.runtime import make_job_runner

#: Virtual-time ceiling: generous against the sub-second makespans below;
#: a stream not drained by then is a liveness bug, not a tight budget.
CONTROLPLANE_DEADLINE_US = 240_000_000.0

#: SM slots per GPU — same tight regime as the multijob experiments, so a
#: large-collective kernel fills the GPU and placement actually contends.
CONTROLPLANE_BLOCKS = 4

#: Priority-tiered SLO stretch over the standalone-runtime estimate.
#: High priority (2) models latency-sensitive jobs with tight deadlines;
#: low priority (0) models batch jobs with generous slack.  A uniform
#: stretch makes preemption pointless (everyone attains, or victims pay
#: more than beneficiaries gain); the tiering is what production mixed
#: workloads look like and what makes priority preemption structural.
PRIORITY_SLO_STRETCH = {0: 14.0, 1: 7.0, 2: 2.5}

#: Tenants for quota accounting; the arrival stream assigns them Zipf-style.
CONTROLPLANE_TENANTS = ("tenant-a", "tenant-b", "tenant-c")

#: Virtual-to-production time scale.  Simulated jobs run 2-3 iterations in
#: tens of virtual milliseconds; the production jobs they stand in for run
#: the same *arrival and contention profile* over hours.  One virtual
#: second of the stream therefore represents ~6.4x10^4 production seconds,
#: which maps the default 14-job stream's ~1.35 s makespan to a ~24h
#: production window.
TIME_COMPRESSION = 64_000.0


def equivalent_hours(total_time_us):
    """Production hours the virtual makespan stands in for."""
    return total_time_us * 1e-6 * TIME_COMPRESSION / 3600.0


def controlplane_job_stream(seed, num_jobs=14, mean_interarrival_us=25_000.0,
                            tenants=CONTROLPLANE_TENANTS):
    """The canned open-loop stream the control-plane experiments share.

    Zipf-sized data-parallel jobs arriving fast enough to saturate the
    8-GPU cluster (offered load near capacity), three priority levels,
    and priority-tiered SLOs per :data:`PRIORITY_SLO_STRETCH`.
    """
    specs = generate_jobs(
        seed,
        num_jobs=num_jobs,
        mean_interarrival_us=mean_interarrival_us,
        size_classes=(2, 4, 8),
        models=("resnet50", "vit"),
        iterations_range=(2, 3),
        priority_levels=3,
        slo_stretch=None,
        tenants=tenants,
        name_prefix="cpjob",
    )
    return [replace(spec, slo_us=PRIORITY_SLO_STRETCH[spec.priority]
                    * estimate_standalone_us(spec))
            for spec in specs]


def run_controlplane(seed=11, preemption=True, policy="packed",
                     topology="single-3090", num_jobs=14, specs=None,
                     tenants_per_gpu=1, quotas=None,
                     starvation_boost_us=1_000_000.0, grow_at_us=None,
                     launch_jitter_us=300.0,
                     deadline_us=CONTROLPLANE_DEADLINE_US):
    """Run one seeded stream under one control-plane configuration.

    ``preemption=False`` is the run-to-completion baseline: identical
    admission, placement and aging, but a queued high-priority job can
    never evict a running one.  ``grow_at_us`` schedules a mid-run
    :meth:`~repro.controlplane.ControlPlane.grow_cluster` (elastic world
    growth).  Returns ``{"summary", "jobs", "events", "obs", "pool",
    "equivalent_hours", ...}`` in the :func:`run_multijob` shape plus the
    control-plane summary keys.
    """
    cluster = build_cluster(topology, deadlock_mode="record",
                            max_resident_blocks=CONTROLPLANE_BLOCKS,
                            interference=SmInterferenceModel())
    runner = make_job_runner("dfccl", cluster,
                             launch_jitter_us=launch_jitter_us, seed=seed)
    if specs is None:
        specs = controlplane_job_stream(seed, num_jobs=num_jobs)
    service = install_control_plane(
        cluster, runner, specs, policy=policy,
        tenants_per_gpu=tenants_per_gpu, preemption=preemption,
        starvation_boost_us=starvation_boost_us, quotas=quotas,
    )
    if grow_at_us is not None:
        service.schedule(grow_at_us,
                         lambda s, now: s.grow_cluster(time_us=now))

    total = cluster.run(until_us=deadline_us)
    service.finalize(total)
    summary = service.summary(total)
    result = {
        "backend": "dfccl",
        "policy": policy,
        "seed": seed,
        "preemption": service.preemption,
        "time_us": total,
        "equivalent_hours": equivalent_hours(total),
        "summary": summary,
        "jobs": service.job_rows(),
        "events": list(service.events),
        "engine_deadlock": cluster.engine.deadlock_report is not None,
        "obs": cluster.engine.obs,
    }
    diagnostics = runner.backend.diagnostics()
    if "pool" in diagnostics:
        result["pool"] = diagnostics["pool"]
    return result


def preemption_ablation(seed=11, num_jobs=14, **kwargs):
    """The headline pair: same stream with and without preemption.

    Returns both full runs plus ``slo_gain`` — the SLO-attainment delta the
    preemptive control plane buys on this stream.  Acceptance requires the
    gain strictly positive with zero starved jobs on both sides.
    """
    with_preemption = run_controlplane(seed=seed, num_jobs=num_jobs,
                                       preemption=True, **kwargs)
    baseline = run_controlplane(seed=seed, num_jobs=num_jobs,
                                preemption=False, **kwargs)
    return {
        "seed": seed,
        "preemption": with_preemption,
        "baseline": baseline,
        "slo_gain": (with_preemption["summary"]["slo_attainment"]
                     - baseline["summary"]["slo_attainment"]),
    }


def preemption_slo_sweep(seeds=(7, 11, 13, 23, 42), num_jobs=14, **kwargs):
    """SLO-gain distribution over seeds — the robustness check behind the
    headline single-seed number."""
    rows = []
    for seed in seeds:
        pair = preemption_ablation(seed=seed, num_jobs=num_jobs, **kwargs)
        rows.append({
            "seed": seed,
            "slo_preemption": pair["preemption"]["summary"]["slo_attainment"],
            "slo_baseline": pair["baseline"]["summary"]["slo_attainment"],
            "slo_gain": pair["slo_gain"],
            "preemptions": pair["preemption"]["summary"]["preemptions"],
            "starved": pair["preemption"]["summary"]["starved"],
        })
    mean_gain = sum(row["slo_gain"] for row in rows) / len(rows)
    return {"rows": rows, "mean_slo_gain": mean_gain}
