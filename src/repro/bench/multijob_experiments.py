"""Multi-tenant experiments: concurrent jobs on one shared cluster.

Three drivers cover the multi-tenant story:

* :func:`run_multijob` — one backend, one placement policy, one seeded job
  stream; per-job rows (JCT, queueing delay, goodput, SLO) plus aggregate
  metrics (deadlock ratio, aggregate goodput, SLO attainment);
* :func:`multijob_policy_comparison` — the headline table: DFCCL vs the
  dedicated-kernel baseline for each placement policy on the same stream.
  Co-located dedicated kernels contend for SM block slots, so the baseline
  deadlocks *across* jobs; DFCCL's one shared daemon kernel per GPU cannot;
* :func:`multijob_under_churn` — job churn via :class:`repro.faults` plans:
  ranks crash mid-run, DFCCL recovery shrinks the affected jobs' collectives
  and the survivors finish (``degraded``), while untouched jobs complete.

All drivers are seeded and deterministic; sweeping ``seed`` turns single
runs into the deadlock-ratio distributions the headline reports.
"""

from __future__ import annotations

from repro.faults.injector import install_fault_plan
from repro.faults.plan import FaultPlan
from repro.gpusim import SmInterferenceModel, build_cluster
from repro.multijob.arrivals import generate_jobs
from repro.multijob.runtime import make_job_runner
from repro.multijob.scheduler import install_scheduler

#: Virtual-time deadline: a shared cluster not drained by then is stuck.
MULTIJOB_DEADLINE_US = 8_000_000.0

#: SM slots per GPU in the shared-cluster experiments: tight enough that one
#: large-collective kernel fills the GPU, the regime where co-located
#: dedicated kernels fence each other out.
SHARED_CLUSTER_BLOCKS = 4


def default_job_stream(seed, num_jobs=4, mean_interarrival_us=400.0):
    """The canned job stream the comparison experiments share.

    Data-parallel jobs with two gradient buckets: collectives large enough
    for full-GPU grids, arrivals bunched tightly enough that jobs overlap.
    """
    return generate_jobs(
        seed,
        num_jobs=num_jobs,
        mean_interarrival_us=mean_interarrival_us,
        size_classes=(2, 4, 8),
        models=("resnet50", "vit"),
        iterations_range=(2, 3),
        slo_stretch=8.0,
    )


def run_multijob(backend="dfccl", policy="packed", topology="dual-3090",
                 seed=11, num_jobs=4, specs=None, tenants_per_gpu=2,
                 max_resident_blocks=SHARED_CLUSTER_BLOCKS,
                 launch_jitter_us=300.0, interference="default",
                 fault_plan=None, deadline_us=MULTIJOB_DEADLINE_US,
                 config=None):
    """Run one seeded job stream on one shared cluster.

    ``interference="default"`` applies the standard
    :class:`SmInterferenceModel`; pass ``None`` for the contention-off
    ablation (tenant counters only), or a custom model instance.

    Returns ``{"backend", "policy", "seed", "summary", "jobs", "events",
    "engine_deadlock", "contention", "pool", "obs"}``.  ``obs`` is the
    cluster's :class:`~repro.obs.Observability` hub — spans, metrics and the
    flight recorder of the finished run.  ``summary["deadlock_ratio"]``
    counts placed-but-stuck jobs only when the engine actually recorded a
    deadlock; deadline cutoffs and never-placed jobs are reported separately.
    """
    if interference == "default":
        interference = SmInterferenceModel()
    cluster = build_cluster(
        topology, deadlock_mode="record",
        max_resident_blocks=max_resident_blocks,
        interference=interference,
    )
    runner_kwargs = {"launch_jitter_us": launch_jitter_us, "seed": seed}
    if config is not None:
        # Forwarded to the backend factory; factories that cannot honour a
        # DfcclConfig (the dedicated-kernel baseline) accept and ignore it.
        runner_kwargs["config"] = config
    runner = make_job_runner(backend, cluster, **runner_kwargs)
    if specs is None:
        specs = default_job_stream(seed, num_jobs=num_jobs)
    scheduler = install_scheduler(cluster, runner, specs, policy=policy,
                                  tenants_per_gpu=tenants_per_gpu)
    if fault_plan is not None:
        install_fault_plan(cluster, fault_plan)

    total = cluster.run(until_us=deadline_us)
    scheduler.finalize(total)
    engine_deadlock = cluster.engine.deadlock_report is not None
    summary = scheduler.summary(total)
    # Attribute stuck jobs to deadlock only when the engine recorded one;
    # otherwise they are deadline timeouts (or capacity starvation, counted
    # under never_placed) and must not inflate the deadlock ratio.
    summary["deadlock_ratio"] = summary["stuck_ratio"] if engine_deadlock else 0.0

    contention = {
        "cross_tenant_block_waits": sum(
            device.cross_tenant_block_waits for device in cluster.devices
        ),
        "peak_resident_tenants": max(
            device.peak_resident_tenants for device in cluster.devices
        ),
    }
    result = {
        "backend": backend,
        "policy": policy,
        "seed": seed,
        "time_us": total,
        "summary": summary,
        "jobs": scheduler.job_rows(),
        "events": list(scheduler.events),
        "engine_deadlock": engine_deadlock,
        "contention": contention,
        "obs": cluster.engine.obs,
    }
    diagnostics = runner.backend.diagnostics()
    if "pool" in diagnostics:
        result["pool"] = diagnostics["pool"]
    recovery = diagnostics.get("recovery")
    if recovery is not None:
        result["recoveries"] = recovery["recoveries"]
        result["recovery_events"] = [
            {"time_us": event["time_us"], "coll_id": event["coll_id"],
             "job": (event["coll_id"][0]
                     if isinstance(event["coll_id"], tuple) else None)}
            for event in recovery["events"]
        ]
    return result


def multijob_policy_comparison(policies=("packed", "spread", "nvlink-affine"),
                               backends=("nccl", "dfccl"), topology="dual-3090",
                               seed=11, num_jobs=4, tenants_per_gpu=2,
                               deadline_us=MULTIJOB_DEADLINE_US, **kwargs):
    """The headline table: per-(policy, backend) JCT / goodput / deadlock ratio.

    Every cell replays the *same* seeded arrival stream, so rows differ only
    in placement and backend.
    """
    rows = []
    for policy in policies:
        for backend in backends:
            result = run_multijob(
                backend=backend, policy=policy, topology=topology, seed=seed,
                num_jobs=num_jobs, tenants_per_gpu=tenants_per_gpu,
                deadline_us=deadline_us, **kwargs,
            )
            summary = result["summary"]
            rows.append({
                "policy": policy,
                "backend": backend,
                "jobs": summary["jobs"],
                "completed": summary["completed"],
                "deadlock_ratio": summary["deadlock_ratio"],
                "engine_deadlock": result["engine_deadlock"],
                "mean_jct_us": summary["mean_jct_us"],
                "mean_queueing_delay_us": summary["mean_queueing_delay_us"],
                "aggregate_goodput_samples_per_s":
                    summary["aggregate_goodput_samples_per_s"],
                "slo_attainment": summary["slo_attainment"],
                "cross_tenant_block_waits":
                    result["contention"]["cross_tenant_block_waits"],
            })
    return rows


def deadlock_ratio_sweep(seeds=range(1, 6), backend="nccl", policy="packed",
                         **kwargs):
    """Deadlock-ratio distribution over seeds (jobs unfinished / jobs)."""
    rows = []
    for seed in seeds:
        result = run_multijob(backend=backend, policy=policy, seed=seed, **kwargs)
        rows.append({
            "seed": seed,
            "deadlock_ratio": result["summary"]["deadlock_ratio"],
            "engine_deadlock": result["engine_deadlock"],
            "completed": result["summary"]["completed"],
        })
    mean_ratio = sum(row["deadlock_ratio"] for row in rows) / len(rows)
    return {"rows": rows, "mean_deadlock_ratio": mean_ratio}


def multijob_under_churn(seed=11, num_jobs=4, crash_rank=1, crash_at_us=40_000.0,
                         policy="packed", topology="dual-3090",
                         tenants_per_gpu=2, **kwargs):
    """Job churn through the fault plans: a leased rank crashes mid-run.

    DFCCL recovery shrinks every collective registered over the dead device —
    *across all jobs leasing it* — so affected jobs finish ``degraded`` while
    unaffected jobs complete normally.
    """
    plan = FaultPlan(name="multijob-churn").add_crash(crash_rank, at_us=crash_at_us)
    result = run_multijob(
        backend="dfccl", policy=policy, topology=topology, seed=seed,
        num_jobs=num_jobs, tenants_per_gpu=tenants_per_gpu,
        fault_plan=plan, **kwargs,
    )
    result["fault_plan"] = plan.describe()
    affected = [row["job"] for row in result["jobs"]
                if crash_rank in row["leased_ranks"]]
    result["affected_jobs"] = affected
    return result
