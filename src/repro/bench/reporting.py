"""Small helpers to render experiment results as text tables/series."""

from __future__ import annotations


def format_table(rows, columns=None, title=None, float_format="{:.3f}"):
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value):
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    table = [[cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(line[index]) for line in table))
        for index, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in table:
        lines.append("  ".join(value.ljust(width) for value, width in zip(line, widths)))
    return "\n".join(lines)


def format_series(series, label_x="x", label_y="y", title=None, float_format="{:.3f}"):
    """Render an (x, y) series as two aligned columns."""
    rows = [{label_x: x, label_y: y} for x, y in series]
    return format_table(rows, columns=[label_x, label_y], title=title,
                        float_format=float_format)


def human_bytes(nbytes):
    """512 -> '512B', 4096 -> '4KB', ..."""
    units = ["B", "KB", "MB", "GB"]
    value = float(nbytes)
    for unit in units:
        if value < 1024 or unit == units[-1]:
            if value == int(value):
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{nbytes}B"
