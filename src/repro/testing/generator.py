"""Seeded random collective-program generation.

A :class:`ProgramSpec` is a complete, declarative description of one
multi-rank program over the unified API: the process groups to create (with
jobs and priorities), the logical collective calls to issue (kind, size,
dtype, root, key, per-call priority), the per-rank submission order (possibly
deliberately disordered, as in the paper's Fig. 1 recipes) and an optional
:class:`~repro.faults.plan.FaultPlan`.

Everything is drawn from :class:`~repro.common.rng.DeterministicRNG` child
streams, so ``generate_program(seed, ...)`` is a pure function of its
arguments: the differential checker relies on that to assert deterministic
replay, and the minimizer relies on specs being plain data it can shrink.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.faults.plan import FaultPlan

#: Collective call surface exercised by the generator (`barrier` is sugar for
#: a one-element all-reduce but goes through its own ProcessGroup entry point).
CALL_KINDS = ("all_reduce", "all_gather", "reduce_scatter", "all_to_all",
              "broadcast", "reduce", "barrier")

#: Kinds that carry a root argument.
ROOTED_KINDS = ("broadcast", "reduce")

#: Kinds whose result is a reduction (fingerprint-checkable).
REDUCING_KINDS = ("all_reduce", "reduce_scatter", "reduce", "barrier")

#: Default virtual-time deadline per program; a replay not finished by then
#: counts as stuck.
DEFAULT_DEADLINE_US = 1_000_000.0


@dataclass(frozen=True)
class GroupSpec:
    """One process group of a generated program."""

    index: int
    ranks: tuple
    job: str = None
    priority: int = 0


@dataclass(frozen=True)
class CallSpec:
    """One logical collective call (every member rank issues it once)."""

    call_id: int
    group_index: int
    kind: str
    count: int
    root: int = 0
    key: str = ""
    priority: int = None

    def describe(self):
        record = {"call_id": self.call_id, "group": self.group_index,
                  "kind": self.kind, "count": self.count, "key": self.key}
        if self.kind in ROOTED_KINDS:
            record["root"] = self.root
        if self.priority is not None:
            record["priority"] = self.priority
        return record


@dataclass(frozen=True)
class ProgramSpec:
    """A complete generated program (plain data, shrinkable)."""

    seed: int
    world_size: int
    topology: str
    chunk_bytes: int
    algorithm: str
    groups: tuple
    calls: tuple
    #: Per-rank call-id submission order, indexed by global rank.  Ranks not
    #: participating in any call have an empty tuple.
    orders: tuple
    fault_plan: FaultPlan = None
    deadline_us: float = DEFAULT_DEADLINE_US

    def group(self, index):
        return self.groups[index]

    def call(self, call_id):
        for call in self.calls:
            if call.call_id == call_id:
                return call
        raise ConfigurationError(f"no call with id {call_id}")

    def order_for(self, rank):
        return self.orders[rank]

    @property
    def has_faults(self):
        return self.fault_plan is not None and len(self.fault_plan) > 0

    def crashed_ranks(self):
        return tuple(self.fault_plan.crash_ranks()) if self.has_faults else ()

    def describe(self):
        """The program as plain data (for logs and failure reports)."""
        return {
            "seed": self.seed,
            "world_size": self.world_size,
            "topology": self.topology,
            "chunk_bytes": self.chunk_bytes,
            "algorithm": self.algorithm,
            "groups": [
                {"index": group.index, "ranks": list(group.ranks),
                 "job": group.job, "priority": group.priority}
                for group in self.groups
            ],
            "calls": [call.describe() for call in self.calls],
            "orders": {rank: list(order) for rank, order in enumerate(self.orders)
                       if order},
            "fault_plan": self.fault_plan.describe() if self.has_faults else None,
            "deadline_us": self.deadline_us,
        }

    def with_calls(self, calls):
        """A copy restricted to ``calls`` (orders filtered accordingly)."""
        keep = {call.call_id for call in calls}
        orders = tuple(
            tuple(call_id for call_id in order if call_id in keep)
            for order in self.orders
        )
        return replace(self, calls=tuple(calls), orders=orders)


def topology_for_world(world_size):
    """The smallest named testbed that fits ``world_size`` ranks."""
    if world_size < 1:
        raise ConfigurationError(f"world_size must be positive, got {world_size}")
    if world_size <= 8:
        return "single-3090"
    if world_size <= 16:
        return "dual-3090"
    if world_size <= 32:
        return "mixed-32"
    nodes = (world_size + 7) // 8
    return f"fat-tree-{nodes * 8}"


def _draw_count(stream, max_count):
    """Log-uniform element count in [1, max_count]."""
    bits = stream.randint(0, max(0, max_count.bit_length() - 1))
    low = 1 << bits
    return stream.randint(low, min(max_count, (low << 1) - 1))


def generate_program(seed, world_size=8, max_calls=8, max_groups=3,
                     max_count=1 << 14, p_subgroup=0.5, p_disorder=0.3,
                     p_repeat=0.25, p_jobs=0.3, p_priority=0.3,
                     with_faults=False, algorithm=None, chunk_bytes=None,
                     topology=None, deadline_us=DEFAULT_DEADLINE_US):
    """Draw one random program from a seeded distribution.

    ``with_faults`` adds a seeded :class:`FaultPlan` (at least one rank crash
    plus background chaos); fault programs are checked for DFCCL
    deadlock-freedom rather than cross-backend parity, since the baseline
    backends have no recovery story by design.
    """
    if world_size < 2:
        raise ConfigurationError("generated programs need at least 2 ranks")
    rng = DeterministicRNG(seed).child("program", world_size)

    knob_stream = rng.child("knobs")
    if algorithm is None:
        algorithm = knob_stream.choice(["ring", "ring", "tree", "hierarchical",
                                        "auto"])
    if chunk_bytes is None:
        chunk_bytes = knob_stream.choice([16 << 10, 64 << 10, 128 << 10])
    if topology is None:
        topology = topology_for_world(world_size)

    # -- groups ---------------------------------------------------------------
    group_stream = rng.child("groups")
    groups = [GroupSpec(0, tuple(range(world_size)))]
    extra_groups = group_stream.randint(0, max_groups - 1)
    for index in range(1, extra_groups + 1):
        if group_stream.bernoulli(p_subgroup) and world_size > 2:
            size = group_stream.randint(2, world_size)
            ranks = tuple(sorted(group_stream.sample(range(world_size), size)))
        else:
            ranks = tuple(range(world_size))
        job = f"job{index}" if group_stream.bernoulli(p_jobs) else None
        priority = group_stream.randint(0, 2) if group_stream.bernoulli(p_priority) else 0
        groups.append(GroupSpec(index, ranks, job=job, priority=priority))

    # -- calls ----------------------------------------------------------------
    call_stream = rng.child("calls")
    calls = []
    num_calls = call_stream.randint(1, max_calls)
    for call_id in range(num_calls):
        if calls and call_stream.bernoulli(p_repeat):
            # Repeat an earlier logical collective: same group/kind/shape/key,
            # new call — the next invocation index on every member rank.
            base = call_stream.choice(calls)
            calls.append(replace(base, call_id=call_id))
            continue
        group = groups[call_stream.randint(0, len(groups) - 1)]
        kind = call_stream.choice(CALL_KINDS)
        count = _draw_count(call_stream, max_count)
        root = (call_stream.randint(0, len(group.ranks) - 1)
                if kind in ROOTED_KINDS else 0)
        priority = (call_stream.randint(0, 3)
                    if call_stream.bernoulli(p_priority) else None)
        calls.append(CallSpec(
            call_id=call_id, group_index=group.index, kind=kind, count=count,
            root=root, key=f"c{call_id}", priority=priority,
        ))

    # -- per-rank submission orders -------------------------------------------
    orders = []
    for rank in range(world_size):
        order = [call.call_id for call in calls
                 if rank in groups[call.group_index].ranks]
        if len(order) > 1 and rng.child("order", rank).bernoulli(p_disorder):
            rng.child("shuffle", rank).shuffle(order)
        orders.append(tuple(order))

    # -- faults ---------------------------------------------------------------
    fault_plan = None
    if with_faults:
        fault_stream = rng.child("faults")
        horizon = min(deadline_us * 0.5, 50_000.0)
        fault_plan = FaultPlan.random(
            seed=fault_stream.randint(0, 1 << 30),
            world_size=world_size,
            horizon_us=horizon,
            expected_crashes=1.0,
            protect_ranks=(0,),
            name=f"fuzz-s{seed}",
        )
        if not fault_plan.crash_ranks():
            victim = fault_stream.randint(1, world_size - 1)
            fault_plan.add_crash(victim,
                                 at_us=fault_stream.uniform(0.05, 0.5) * horizon)

    return ProgramSpec(
        seed=seed,
        world_size=world_size,
        topology=topology,
        chunk_bytes=chunk_bytes,
        algorithm=algorithm,
        groups=tuple(groups),
        calls=tuple(calls),
        orders=tuple(orders),
        fault_plan=fault_plan,
        deadline_us=deadline_us,
    )
