"""Elastic control-plane fuzzing: preempt/resume and grow/rejoin scenarios.

The differential fuzzer (:mod:`repro.testing.fuzz`) checks cross-backend
conformance of collective *programs*; this module fuzzes the *control
plane*: seeded scenarios of jobs plus elastic events — a high-priority
arrival forcing preemption, a migration, a mid-run cluster grow, a device
failure forcing rejoin — replayed on the DFCCL backend.

The oracle is twofold:

* **determinism** — a scenario replayed twice must produce byte-identical
  outcomes (event log, per-job lifecycle, checkpoint fingerprints): the
  virtual-time engine has no hidden nondeterminism, so any divergence is a
  control-plane ordering bug;
* **liveness and accounting invariants** — every job reaches a terminal
  state, no job starves (admitted but never placed), preempted jobs resume
  and complete, and a resumed job's cumulative iterations never exceed its
  spec.

``python -m repro.testing.fuzz --elastic 20`` runs twenty scenarios from
consecutive child seeds.
"""

from __future__ import annotations

import json

from repro.common.rng import DeterministicRNG
from repro.controlplane import install_control_plane
from repro.multijob import JobSpec, make_job_runner

#: Virtual-time ceiling per scenario — generous against the few-hundred-ms
#: job runtimes; hitting it means a liveness bug, not a tight budget.
SCENARIO_DEADLINE_US = 60_000_000.0

#: Elastic event kinds a scenario may draw (with repetition).
EVENT_KINDS = ("preempt-arrival", "migrate", "grow", "fail", "live-submit")


def generate_elastic_scenario(seed, max_jobs=3, max_events=3):
    """Draw one scenario as plain data (JSON-safe, a pure function of seed)."""
    stream = DeterministicRNG(seed).child("elastic-scenario")
    job_stream = stream.child("jobs")
    event_stream = stream.child("events")
    num_jobs = job_stream.randint(2, max_jobs)
    jobs = []
    arrival = 0.0
    for index in range(num_jobs):
        if index > 0:
            arrival += job_stream.uniform(1_000.0, 20_000.0)
        jobs.append({
            "job_id": f"ej-{index}",
            "dp": job_stream.choice([2, 2, 4]),
            "iterations": job_stream.randint(2, 3),
            "priority": job_stream.randint(0, 1),
            "arrival_time_us": arrival,
        })
    events = []
    for index in range(event_stream.randint(1, max_events)):
        kind = event_stream.choice(list(EVENT_KINDS))
        event = {"kind": kind,
                 "time_us": event_stream.uniform(20_000.0, 120_000.0)}
        if kind in ("preempt-arrival", "live-submit"):
            event["dp"] = (8 if kind == "preempt-arrival"
                           else event_stream.choice([2, 4]))
            event["iterations"] = event_stream.randint(2, 3)
        elif kind == "migrate":
            event["job"] = f"ej-{event_stream.randint(0, num_jobs - 1)}"
        elif kind == "fail":
            event["rank"] = event_stream.randint(0, 15)
        events.append(event)
    events.sort(key=lambda event: event["time_us"])
    return {"seed": seed, "jobs": jobs, "events": events}


def _schedule_event(service, event, index):
    kind = event["kind"]
    if kind in ("preempt-arrival", "live-submit"):
        spec = JobSpec(
            job_id=f"ev-{index}-{kind}",
            model="resnet50",
            dp=event["dp"],
            iterations=event["iterations"],
            priority=3 if kind == "preempt-arrival" else 0,
            arrival_time_us=event["time_us"],
        )
        service.schedule(event["time_us"],
                         lambda s, now, spec=spec: s.submit(spec))
    elif kind == "migrate":
        def migrate(s, now, job=event["job"]):
            record = s.jobs.get(job)
            if record is not None and record.state.value == "running":
                s.migrate(job, now)
        service.schedule(event["time_us"], migrate)
    elif kind == "grow":
        service.schedule(event["time_us"],
                         lambda s, now: s.grow_cluster(time_us=now))
    elif kind == "fail":
        def fail(s, now, rank=event["rank"]):
            if not s.cluster.device(rank).failed:
                s.cluster.fail_rank(rank, now)
        service.schedule(event["time_us"], fail)


def run_elastic_scenario(scenario):
    """Replay one scenario; returns a JSON-safe outcome dict."""
    # Local import: repro.bench pulls optional heavyweight reporting.
    from repro.bench.multijob_experiments import build_cluster

    cluster = build_cluster("dual-3090", deadlock_mode="record",
                            max_resident_blocks=4)
    runner = make_job_runner("dfccl", cluster, launch_jitter_us=100.0,
                             seed=scenario["seed"])
    specs = [JobSpec(job_id=job["job_id"], model="resnet50", dp=job["dp"],
                     iterations=job["iterations"], priority=job["priority"],
                     arrival_time_us=job["arrival_time_us"])
             for job in scenario["jobs"]]
    service = install_control_plane(cluster, runner, specs,
                                    tenants_per_gpu=1,
                                    starvation_boost_us=2_000_000.0)
    for index, event in enumerate(scenario["events"]):
        _schedule_event(service, event, index)
    total = cluster.run(until_us=SCENARIO_DEADLINE_US)
    records = service.finalize(total)
    jobs = []
    for record in records:
        checkpoint = record.checkpoint
        jobs.append({
            "job": record.job_id,
            "state": record.state.value,
            "preemptions": record.preemptions,
            "epoch": record.epoch,
            "completed_iterations": record.completed_iterations,
            "jct_us": record.jct_us,
            "leased_ranks": list(record.lease.ranks) if record.lease else [],
            "checkpoint": checkpoint.describe() if checkpoint else None,
        })
    summary = service.summary(total)
    return {
        "events": [[time_us, kind, job] for time_us, kind, job
                   in service.events],
        "jobs": jobs,
        "summary": {key: summary[key] for key in
                    ("jobs", "completed", "degraded", "unfinished", "starved",
                     "preemptions", "migrations", "rejoins", "grow_events")},
        "total_time_us": total,
    }


def check_elastic_scenario(scenario):
    """Replay twice; returns ``(problems, outcome)`` — empty list is a pass."""
    first = run_elastic_scenario(scenario)
    second = run_elastic_scenario(scenario)
    problems = []
    if json.dumps(first, sort_keys=True) != json.dumps(second, sort_keys=True):
        problems.append("nondeterministic: two replays diverged")
    summary = first["summary"]
    if summary["unfinished"]:
        problems.append(f"liveness: {summary['unfinished']} jobs unfinished "
                        f"at the scenario deadline")
    if summary["starved"]:
        problems.append(f"starvation: {summary['starved']} jobs never placed")
    for job in first["jobs"]:
        if job["preemptions"] and job["state"] not in ("completed", "degraded"):
            problems.append(f"{job['job']}: preempted but ended {job['state']}")
        spec_iterations = next(
            (entry["iterations"] for entry in scenario["jobs"]
             if entry["job_id"] == job["job"]), None)
        if spec_iterations is not None and \
                job["completed_iterations"] > spec_iterations:
            problems.append(f"{job['job']}: checkpointed "
                            f"{job['completed_iterations']} iterations "
                            f"of {spec_iterations}")
    return problems, first


def fuzz_elastic(seed=0, scenarios=20, stop_on_failure=True, log=print):
    """Run the elastic fuzz loop; returns a summary dict."""
    failures = []
    kind_histogram = {}
    for index in range(scenarios):
        scenario = generate_elastic_scenario(
            DeterministicRNG(seed).child("elastic", index).randint(0, 1 << 30))
        for event in scenario["events"]:
            kind_histogram[event["kind"]] = \
                kind_histogram.get(event["kind"], 0) + 1
        problems, outcome = check_elastic_scenario(scenario)
        if problems:
            log(f"[{index + 1}/{scenarios}] FAIL: {'; '.join(problems)}")
            failures.append({"index": index, "scenario": scenario,
                             "problems": problems, "outcome": outcome})
            if stop_on_failure:
                break
        else:
            log(f"[{index + 1}/{scenarios}] ok: "
                f"{outcome['summary']['preemptions']} preemptions, "
                f"{outcome['summary']['grow_events']} grows, "
                f"{outcome['summary']['rejoins']} rejoins")
    summary = {"seed": seed, "scenarios": scenarios,
               "kinds": dict(sorted(kind_histogram.items())),
               "failures": failures}
    log(f"elastic fuzz: {scenarios} scenarios, kinds {summary['kinds']} -> "
        f"{len(failures)} failing")
    return summary
