"""Replay generated programs through any backend and check parity invariants.

:func:`replay_program` executes one :class:`~repro.testing.generator.ProgramSpec`
on a fresh simulated cluster through one registered ``repro.api`` backend —
building the exact ProcessGroup/Work program every rank would write by hand —
and returns a :class:`ReplayResult` of plain data: per-work completion
records, serialized primitive sequences, the engine outcome.

:func:`check_program` replays through every requested backend and verifies:

``liveness``
    Fault-free programs complete on every backend before the deadline.
``deadlock-freedom``
    DFCCL never ends in an engine deadlock, fault plan or not.
``sequence parity``
    Backends that compile per-rank primitive sequences (DFCCL, NCCL) must
    produce identical sequences for every (rank, logical collective,
    invocation).
``fingerprints``
    Within a backend, ranks sharing a completion signature must agree on the
    reduced value; across backends, each rank's invocation must reduce over
    the same member set (fault-free programs).
``determinism``
    Replaying the same program twice on the same backend yields identical
    results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import make_backend, wait_all
from repro.common.rng import DeterministicRNG
from repro.gpusim import HostProgram, build_cluster
from repro.faults.injector import install_fault_plan
from repro.testing.generator import REDUCING_KINDS, ROOTED_KINDS

#: Backends checked by default (everything registered out of the box).
DEFAULT_BACKENDS = ("dfccl", "nccl", "mpi")

#: The backend whose deadlock-freedom is an invariant of the system under
#: test (the paper's claim), and the one used for determinism replays.
DEADLOCK_FREE_BACKEND = "dfccl"


def primitive_identity(primitive):
    """Serialize one primitive into a comparable plain tuple."""
    return (primitive.name, primitive.action.value, primitive.loop,
            primitive.step, primitive.chunk_index, primitive.nbytes,
            primitive.send_peer, primitive.recv_peer)


def contribution_values(world_size, seed):
    """Deterministic per-rank integers contributed to reductions."""
    rng = DeterministicRNG(seed)
    return {rank: rng.child("contribution", rank).randint(1, 1 << 20)
            for rank in range(world_size)}


@dataclass
class WorkRecord:
    """Plain-data view of one rank's part of one invocation."""

    rank: int
    call_id: int
    key: str
    index: int
    kind: str
    done: bool
    #: Resolved-without-completion (recovery abandoned the collective, e.g.
    #: a rooted collective whose root crashed).  done and aborted are
    #: mutually exclusive.
    aborted: bool = False
    sequence: tuple = None          # serialized primitives, or None
    members: tuple = None           # global ranks reduced over
    signature: tuple = None
    reduced: int = None             # fingerprint over members (reducing kinds)
    time_us: float = None

    def logical(self):
        return (self.key, self.index)


@dataclass
class ReplayResult:
    """Everything one backend produced for one program."""

    backend: str
    outcome: str                    # "completed" | "stuck" | "deadlock"
    time_us: float
    records: list = field(default_factory=list)
    survivor_ranks: tuple = ()
    diagnostics: dict = field(default_factory=dict)
    #: Flight-recorder dump of the replay (``capture_obs=True`` only); kept
    #: out of :meth:`comparable_state` so determinism replays never compare
    #: observability payloads.
    flight_dump: dict = None

    @property
    def completed(self):
        return self.outcome == "completed"

    @property
    def deadlocked(self):
        return self.outcome == "deadlock"

    def by_rank_logical(self):
        """``{(rank, key, index): record}`` over all records."""
        return {(record.rank, record.key, record.index): record
                for record in self.records}

    def sequences_available(self):
        return any(record.sequence is not None for record in self.records)

    def comparable_state(self):
        """The deterministic-replay fingerprint of this result."""
        return (
            self.outcome,
            self.time_us,
            tuple(sorted(
                (record.rank, record.call_id, record.key, record.index,
                 record.done, record.aborted, record.sequence, record.members,
                 record.signature, record.reduced, record.time_us)
                for record in self.records
            )),
        )


@dataclass(frozen=True)
class Divergence:
    """One violated invariant."""

    invariant: str
    backend: str
    detail: str
    rank: int = None
    key: str = None
    index: int = None

    def __str__(self):
        where = ""
        if self.rank is not None:
            where = f" rank={self.rank}"
        if self.key is not None:
            where += f" key={self.key!r}#{self.index}"
        return f"[{self.invariant}] {self.backend}{where}: {self.detail}"


@dataclass
class CheckResult:
    """Outcome of one differential check."""

    program: object
    backends: tuple
    divergences: list = field(default_factory=list)
    results: dict = field(default_factory=dict)

    @property
    def ok(self):
        return not self.divergences

    def summary(self):
        if self.ok:
            return (f"ok: seed={self.program.seed} world={self.program.world_size} "
                    f"calls={len(self.program.calls)} backends={list(self.backends)}")
        lines = [f"FAIL: seed={self.program.seed} "
                 f"({len(self.divergences)} divergences)"]
        lines.extend(f"  {divergence}" for divergence in self.divergences)
        return "\n".join(lines)


def _issue_call(group, call, rank):
    """Issue one CallSpec on ``group`` for ``rank``; returns the Work."""
    kwargs = {"key": call.key, "priority": call.priority,
              "stream": f"s{call.call_id}"}
    if call.kind == "barrier":
        # Barrier takes no count/priority; its key namespacing is internal.
        return group.barrier(rank, key=call.key, stream=f"s{call.call_id}")
    if call.kind in ROOTED_KINDS:
        kwargs["root"] = call.root
    method = getattr(group, call.kind)
    return method(rank, call.count, **kwargs)


def replay_program(program, backend_name, seed=17, capture_obs=False, **knobs):
    """Replay ``program`` through one backend; returns a :class:`ReplayResult`.

    ``knobs`` are forwarded to :func:`repro.api.make_backend` on top of the
    program's own ``chunk_bytes`` / ``algorithm``.  With ``capture_obs=True``
    the result carries a flight-recorder dump of the run (step events, spans,
    metrics) in ``flight_dump`` — the artifact the fuzzer writes next to a
    minimized failing program.
    """
    cluster = build_cluster(program.topology, deadlock_mode="record")
    if program.world_size > cluster.world_size:
        raise ValueError(
            f"topology {program.topology} has only {cluster.world_size} GPUs "
            f"for a {program.world_size}-rank program"
        )
    backend = make_backend(backend_name, cluster,
                           chunk_bytes=program.chunk_bytes,
                           algorithm=program.algorithm, **knobs)

    groups = {
        spec.index: backend.new_group(list(spec.ranks), job=spec.job,
                                      priority=spec.priority,
                                      name=f"g{spec.index}")
        for spec in program.groups
    }
    if program.fault_plan is not None:
        install_fault_plan(cluster, program.fault_plan)

    works = []
    for rank in range(program.world_size):
        order = program.order_for(rank)
        if not order:
            continue
        rank_works = []
        for call_id in order:
            call = program.call(call_id)
            group = groups[call.group_index]
            work = _issue_call(group, call, rank)
            rank_works.append((call, work))
        ops = [work.submit_op() for _, work in rank_works]
        ops.extend(wait_all([work for _, work in rank_works]))
        ops.extend(backend.finalize_ops(rank))
        cluster.add_host(rank, HostProgram(ops), name=f"h{rank}")
        works.extend((rank, call, work) for call, work in rank_works)

    final_time_us = cluster.run(until_us=program.deadline_us)

    contributions = contribution_values(program.world_size, seed)
    records = []
    for rank, call, work in works:
        record = WorkRecord(
            rank=rank, call_id=call.call_id, key=work.key, index=work.index,
            kind=call.kind, done=work.done, aborted=work.aborted,
        )
        if work.done:
            info = work.completion_info()
            record.members = tuple(info.member_ranks)
            record.signature = tuple(info.signature)
            record.time_us = info.time_us
            if call.kind in REDUCING_KINDS:
                record.reduced = sum(contributions[member]
                                     for member in record.members)
            sequence = work.primitive_sequence()
            if sequence is not None:
                record.sequence = tuple(primitive_identity(p) for p in sequence)
        records.append(record)

    crashed = set(program.crashed_ranks())
    survivors = tuple(rank for rank in range(program.world_size)
                      if rank not in crashed)
    if cluster.engine.deadlock_report is not None:
        outcome = "deadlock"
    elif all(record.done or record.aborted for record in records
             if record.rank not in crashed):
        # Aborted parts count as resolved: the wait returned and told the
        # application the collective cannot finish — that is liveness.
        outcome = "completed"
    else:
        outcome = "stuck"

    flight_dump = None
    if capture_obs:
        flight_dump = cluster.engine.obs.dump(
            "fuzz", context={"backend": backend_name, "outcome": outcome,
                             "seed": program.seed,
                             "world_size": program.world_size})

    return ReplayResult(
        backend=backend_name,
        outcome=outcome,
        time_us=final_time_us,
        records=records,
        survivor_ranks=survivors,
        diagnostics=backend.diagnostics(),
        flight_dump=flight_dump,
    )


# -- invariant checks -------------------------------------------------------------


def _check_liveness(result, divergences):
    if not result.completed:
        # Name only the ranks that actually violate the invariant: crashed
        # ranks can never complete and abort-resolved parts already returned.
        survivors = set(result.survivor_ranks)
        stuck = sorted({record.rank for record in result.records
                        if record.rank in survivors
                        and not record.done and not record.aborted})
        divergences.append(Divergence(
            "liveness", result.backend,
            f"outcome={result.outcome}, incomplete ranks {stuck[:8]}",
        ))


def _check_sequence_parity(reference, other, divergences):
    ref_records = reference.by_rank_logical()
    other_records = other.by_rank_logical()
    if set(ref_records) != set(other_records):
        divergences.append(Divergence(
            "sequence-parity", other.backend,
            f"work sets differ from {reference.backend}: "
            f"{sorted(set(ref_records) ^ set(other_records))[:4]}",
        ))
        return
    for ident, ref_record in ref_records.items():
        other_record = other_records[ident]
        if ref_record.sequence != other_record.sequence:
            rank, key, index = ident
            detail = "sequence missing"
            if ref_record.sequence and other_record.sequence:
                length = min(len(ref_record.sequence), len(other_record.sequence))
                position = next(
                    (i for i in range(length)
                     if ref_record.sequence[i] != other_record.sequence[i]),
                    length,
                )
                detail = (f"first differs at primitive {position} "
                          f"(lengths {len(ref_record.sequence)} vs "
                          f"{len(other_record.sequence)})")
            divergences.append(Divergence(
                "sequence-parity", other.backend,
                f"differs from {reference.backend}: {detail}",
                rank=rank, key=key, index=index,
            ))


def _check_fingerprints_within(result, divergences):
    grouped = {}
    for record in result.records:
        if record.done and record.reduced is not None:
            grouped.setdefault(record.logical(), {})[record.rank] = record
    for (key, index), by_rank in grouped.items():
        by_signature = {}
        for record in by_rank.values():
            by_signature.setdefault(record.signature, set()).add(
                (record.members, record.reduced))
        for signature, values in by_signature.items():
            if len(values) > 1:
                divergences.append(Divergence(
                    "fingerprint", result.backend,
                    f"ranks sharing signature {signature} disagree: {values}",
                    key=key, index=index,
                ))


def _check_members_across(reference, other, divergences):
    ref_records = reference.by_rank_logical()
    for ident, other_record in other.by_rank_logical().items():
        ref_record = ref_records.get(ident)
        if ref_record is None or not (ref_record.done and other_record.done):
            continue
        if set(ref_record.members or ()) != set(other_record.members or ()):
            rank, key, index = ident
            divergences.append(Divergence(
                "fingerprint", other.backend,
                f"member set {sorted(other_record.members)} differs from "
                f"{reference.backend}'s {sorted(ref_record.members)}",
                rank=rank, key=key, index=index,
            ))


def check_program(program, backends=DEFAULT_BACKENDS, seed=17,
                  check_determinism=True, **knobs):
    """Run the differential check for one program over ``backends``.

    Fault programs exercise the deadlock-freedom and fingerprint invariants
    on :data:`DEADLOCK_FREE_BACKEND` only — the baselines wedge on dead peers
    *by design* (that asymmetry is the paper's Table 1, not a bug to flag).
    """
    if program.has_faults:
        backends = tuple(backend for backend in backends
                         if backend == DEADLOCK_FREE_BACKEND) or (DEADLOCK_FREE_BACKEND,)
    else:
        backends = tuple(backends)

    check = CheckResult(program=program, backends=backends)
    for backend in backends:
        check.results[backend] = replay_program(program, backend, seed=seed,
                                                **knobs)

    for backend, result in check.results.items():
        if backend == DEADLOCK_FREE_BACKEND and result.deadlocked:
            check.divergences.append(Divergence(
                "deadlock-freedom", backend,
                f"engine deadlock at t={result.time_us:.1f}us",
            ))
            continue
        if not program.has_faults:
            _check_liveness(result, check.divergences)
        elif backend == DEADLOCK_FREE_BACKEND and not result.completed:
            # Under faults the survivors must still finish: a "stuck" run —
            # bounded busy-waiting converts would-be deadlocks into retry
            # loops the engine never reports — is a recovery hang, not a
            # pass.  Crashed ranks' own works are exempt (replay_program's
            # completion test already ignores them).
            _check_liveness(result, check.divergences)
        _check_fingerprints_within(result, check.divergences)

    if not program.has_faults:
        sequence_results = [result for result in check.results.values()
                            if result.sequences_available()]
        for other in sequence_results[1:]:
            _check_sequence_parity(sequence_results[0], other, check.divergences)
        all_results = list(check.results.values())
        for other in all_results[1:]:
            _check_members_across(all_results[0], other, check.divergences)

    if check_determinism and check.ok:
        backend = (DEADLOCK_FREE_BACKEND
                   if DEADLOCK_FREE_BACKEND in check.results else backends[0])
        replayed = replay_program(program, backend, seed=seed, **knobs)
        if replayed.comparable_state() != check.results[backend].comparable_state():
            check.divergences.append(Divergence(
                "determinism", backend,
                "two replays of the same seed differ",
            ))
    return check
