"""The differential fuzz loop and program minimizer.

``python -m repro.testing.fuzz --seed 0 --programs 200`` generates programs
from consecutive child seeds, replays each through every backend and reports
divergences.  Exit code 0 means zero divergences.

On failure the offending :class:`~repro.testing.generator.ProgramSpec` is
printed as plain data together with a one-line repro command;
``--minimize`` additionally shrinks it — greedily dropping calls, halving
payload sizes and dropping fault events while the failure persists — so the
committed reproducer is the smallest program that still diverges.  With an
``artifact_dir`` (CLI ``--artifact-dir``), each failure also writes the
minimized program as JSON plus a flight-recorder dump of its replay
(``*.flight.json``) — step events, spans and the metrics snapshot of the
diverging run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace

from repro.common.rng import DeterministicRNG
from repro.testing.differential import (
    DEADLOCK_FREE_BACKEND,
    DEFAULT_BACKENDS,
    check_program,
    replay_program,
)
from repro.testing.generator import generate_program


def draw_world_size(stream, max_ranks, min_ranks=2):
    """Mostly small worlds (fast), occasionally the largest allowed."""
    max_ranks = max(min_ranks, max_ranks)
    small_cap = min(8, max_ranks)
    if max_ranks > 8 and stream.bernoulli(0.1):
        return stream.choice([size for size in (16, 32, 64, 128, 256, 512)
                              if size <= max_ranks] or [max_ranks])
    return stream.randint(min_ranks, small_cap)


def program_at(seed, index, max_ranks=8, fault_fraction=0.15, max_calls=8):
    """The program the fuzz loop generates at ``index`` — a pure function.

    Child streams are label-derived, so the program at one index does not
    depend on earlier iterations; a printed repro command replays exactly
    this function with the original generation knobs (the stream draws
    depend on ``max_ranks``/``fault_fraction`` themselves, which is why the
    knobs — not the drawn world size — must be echoed).
    """
    stream = DeterministicRNG(seed).child("fuzz").child("p", index)
    world_size = draw_world_size(stream, max_ranks)
    with_faults = stream.bernoulli(fault_fraction)
    return generate_program(
        seed=stream.randint(0, 1 << 30),
        world_size=world_size,
        max_calls=max_calls,
        with_faults=with_faults,
    )


def write_failure_artifacts(failure, artifact_dir, seed, backends):
    """Write the failing program and its flight-recorder dump to disk.

    Returns the list of paths written.  The program written is the minimized
    one when minimization ran; the flight dump replays it on
    :data:`DEADLOCK_FREE_BACKEND` (or the first requested backend) with
    ``capture_obs=True``.
    """
    os.makedirs(artifact_dir, exist_ok=True)
    program = failure.get("minimized", failure["program"])
    stem = os.path.join(artifact_dir, f"fuzz-seed{seed}-p{failure['index']}")
    paths = []

    program_path = f"{stem}.program.json"
    with open(program_path, "w", encoding="utf-8") as handle:
        json.dump({"divergences": failure["divergences"],
                   "program": program.describe()},
                  handle, indent=2, default=str)
    paths.append(program_path)

    replay_backend = (DEADLOCK_FREE_BACKEND
                      if DEADLOCK_FREE_BACKEND in backends else backends[0])
    result = replay_program(program, replay_backend, capture_obs=True)
    flight_path = f"{stem}.flight.json"
    with open(flight_path, "w", encoding="utf-8") as handle:
        json.dump(result.flight_dump, handle, indent=2, default=str)
    paths.append(flight_path)
    return paths


def fuzz(seed=0, programs=200, max_ranks=8, backends=DEFAULT_BACKENDS,
         fault_fraction=0.15, max_calls=8, verbose=False, stop_on_failure=True,
         minimize=False, artifact_dir=None, log=print):
    """Run the fuzz loop; returns a summary dict (``failures`` empty on pass)."""
    started = time.perf_counter()
    kind_histogram = {}
    failures = []
    stats = {"programs": 0, "calls": 0, "faulty": 0, "max_world": 0}

    for index in range(programs):
        program = program_at(seed, index, max_ranks=max_ranks,
                             fault_fraction=fault_fraction, max_calls=max_calls)
        stats["programs"] += 1
        stats["calls"] += len(program.calls)
        stats["faulty"] += bool(program.has_faults)
        stats["max_world"] = max(stats["max_world"], program.world_size)
        for call in program.calls:
            kind_histogram[call.kind] = kind_histogram.get(call.kind, 0) + 1

        check = check_program(program, backends=backends)
        if verbose or not check.ok:
            log(f"[{index + 1}/{programs}] {check.summary()}")
        if check.ok:
            continue

        failure = {"index": index, "program": program,
                   "divergences": [str(d) for d in check.divergences]}
        if minimize:
            minimized = minimize_program(program, backends=backends)
            failure["minimized"] = minimized
            log("minimized reproducer:")
            log(json.dumps(minimized.describe(), indent=2, default=str))
        if artifact_dir is not None:
            failure["artifacts"] = write_failure_artifacts(
                failure, artifact_dir, seed, backends)
            for path in failure["artifacts"]:
                log(f"wrote {path}")
        failures.append(failure)
        if stop_on_failure:
            break

    elapsed = time.perf_counter() - started
    summary = {
        "seed": seed,
        "backends": list(backends),
        "elapsed_s": elapsed,
        "kinds": dict(sorted(kind_histogram.items())),
        "failures": failures,
        # The exact generation knobs: a repro command must replay these, not
        # the drawn per-program values (the stream consumed to draw a world
        # size depends on max_ranks itself).
        "knobs": {"max_ranks": max_ranks, "fault_fraction": fault_fraction,
                  "max_calls": max_calls},
        **stats,
    }
    log(f"fuzz: {stats['programs']} programs ({stats['calls']} calls, "
        f"{stats['faulty']} with faults, worlds up to {stats['max_world']} "
        f"ranks) over {list(backends)} in {elapsed:.1f}s -> "
        f"{len(failures)} divergent"
        + ("" if failures else " (zero cross-backend divergences)"))
    return summary


def _still_fails(program, backends):
    return not check_program(program, backends=backends,
                             check_determinism=False).ok


def minimize_program(program, backends=DEFAULT_BACKENDS, max_passes=6):
    """Greedy shrink of a failing program while it keeps failing.

    Passes, to fixpoint (bounded by ``max_passes``): drop one call at a time;
    halve call payload counts; drop fault events.  The result is the smallest
    program this procedure can reach, not a global minimum — in practice a
    one-or-two-call reproducer.
    """
    if not _still_fails(program, backends):
        return program

    current = program
    for _ in range(max_passes):
        changed = False

        # Drop calls one by one (later calls first: they depend on earlier
        # invocation indices, so dropping from the tail succeeds more often).
        for call in sorted(current.calls, key=lambda c: -c.call_id):
            if len(current.calls) == 1:
                break
            candidate = current.with_calls(
                [c for c in current.calls if c.call_id != call.call_id])
            if _still_fails(candidate, backends):
                current = candidate
                changed = True

        # Halve payloads.
        for call in current.calls:
            if call.count <= 1 or call.kind == "barrier":
                continue
            candidate = current.with_calls([
                replace(c, count=max(1, c.count // 2)) if c.call_id == call.call_id
                else c
                for c in current.calls
            ])
            if _still_fails(candidate, backends):
                current = candidate
                changed = True

        # Drop fault events.
        if current.fault_plan is not None:
            plan = current.fault_plan
            for event in list(plan.events):
                if len(plan.events) <= 1:
                    break
                shrunk_plan = type(plan)(name=plan.name, seed=plan.seed)
                for other in plan.events:
                    if other is not event:
                        shrunk_plan.add(other)
                candidate = replace(current, fault_plan=shrunk_plan)
                if _still_fails(candidate, backends):
                    current = candidate
                    plan = shrunk_plan
                    changed = True

        if not changed:
            break
    return current


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description="Differential conformance fuzzer over the repro.api backends.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="fuzz stream seed (default 0)")
    parser.add_argument("--programs", type=int, default=200,
                        help="number of programs to generate (default 200)")
    parser.add_argument("--ranks", type=int, default=8,
                        help="largest world size to draw (default 8; e.g. 512)")
    parser.add_argument("--backends", default=",".join(DEFAULT_BACKENDS),
                        help="comma-separated backend names "
                             f"(default {','.join(DEFAULT_BACKENDS)})")
    parser.add_argument("--fault-fraction", type=float, default=0.15,
                        help="fraction of programs carrying a fault plan "
                             "(checked dfccl-only; default 0.15)")
    parser.add_argument("--max-calls", type=int, default=8,
                        help="max collective calls per program (default 8)")
    parser.add_argument("--minimize", action="store_true",
                        help="shrink the first failing program before reporting")
    parser.add_argument("--artifact-dir", default=None,
                        help="directory for failure artifacts — the failing "
                             "program and its flight-recorder dump, written "
                             "only when a program diverges (default: no "
                             "artifacts)")
    parser.add_argument("--keep-going", action="store_true",
                        help="do not stop at the first divergent program")
    parser.add_argument("--verbose", action="store_true",
                        help="log every program, not only failures")
    parser.add_argument("--elastic", type=int, default=0, metavar="N",
                        help="additionally fuzz N elastic control-plane "
                             "scenarios (preempt/resume, migrate, grow, "
                             "rejoin; default 0)")
    args = parser.parse_args(argv)

    if args.elastic:
        from repro.testing.elastic import fuzz_elastic
        elastic_summary = fuzz_elastic(
            seed=args.seed, scenarios=args.elastic,
            stop_on_failure=not args.keep_going,
        )
        if elastic_summary["failures"]:
            for failure in elastic_summary["failures"]:
                print("failing scenario:")
                print(json.dumps(failure["scenario"], indent=2, default=str))
                print(f"problems: {failure['problems']}")
            return 1

    summary = fuzz(
        seed=args.seed,
        programs=args.programs,
        max_ranks=args.ranks,
        backends=tuple(name.strip() for name in args.backends.split(",") if name.strip()),
        fault_fraction=args.fault_fraction,
        max_calls=args.max_calls,
        verbose=args.verbose,
        stop_on_failure=not args.keep_going,
        minimize=args.minimize,
        artifact_dir=args.artifact_dir,
    )
    if summary["failures"]:
        knobs = summary["knobs"]
        for failure in summary["failures"]:
            program = failure.get("minimized", failure["program"])
            print("failing program:")
            print(json.dumps(program.describe(), indent=2, default=str))
            # Echo the original generation knobs verbatim: the fuzz stream's
            # draws depend on them, so a repro with the drawn world size (or
            # default fractions) would regenerate a different program.
            print(f"repro: python -m repro.testing.fuzz --seed {summary['seed']} "
                  f"--programs {failure['index'] + 1} "
                  f"--ranks {knobs['max_ranks']} "
                  f"--fault-fraction {knobs['fault_fraction']} "
                  f"--max-calls {knobs['max_calls']}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
