"""Differential conformance testing of the ``repro.api`` backends.

SYSFLOW-style validation for the execution platform: a seeded generator
(:mod:`repro.testing.generator`) draws random collective programs — mixed
collective kinds over random subgroups, sizes, keys, jobs, priorities and
optional fault plans — and a differential checker
(:mod:`repro.testing.differential`) replays each program through every
registered backend via the ``ProcessGroup`` / ``Work`` surface, asserting the
cross-backend invariants:

* every backend completes the program (liveness);
* sequence-compiling backends (DFCCL, NCCL) execute byte-identical per-rank
  primitive sequences;
* reduction fingerprints agree — within one backend across ranks sharing a
  completion signature, and across backends per invocation;
* DFCCL never deadlocks, including under injected faults;
* a fixed seed replays deterministically.

``python -m repro.testing.fuzz --seed 0 --programs 200`` runs the fuzz loop
from the command line; :func:`repro.testing.fuzz.minimize_program` shrinks a
failing program to a minimal reproducer.
"""

from repro.testing.generator import (
    CallSpec,
    GroupSpec,
    ProgramSpec,
    generate_program,
    topology_for_world,
)
from repro.testing.differential import (
    CheckResult,
    Divergence,
    ReplayResult,
    check_program,
    replay_program,
)
__all__ = [
    "CallSpec",
    "CheckResult",
    "Divergence",
    "GroupSpec",
    "ProgramSpec",
    "ReplayResult",
    "check_program",
    "generate_program",
    "replay_program",
    "topology_for_world",
]

# ``fuzz`` and ``minimize_program`` resolve lazily through ``__getattr__``
# below (importing the CLI module eagerly would shadow ``python -m
# repro.testing.fuzz``), so they are deliberately absent from ``__all__``.


def __getattr__(name):
    # Lazy: importing the CLI module here would shadow `python -m
    # repro.testing.fuzz` (runpy warns when the module is pre-imported).
    # importlib, not a from-import: resolving the submodule through the
    # package attribute would re-enter this __getattr__ forever.
    if name in ("fuzz", "minimize_program", "write_failure_artifacts"):
        import importlib

        _fuzz = importlib.import_module("repro.testing.fuzz")
        return getattr(_fuzz, name)
    raise AttributeError(name)
