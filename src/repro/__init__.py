"""Simulation-based reproduction of DFCCL (deadlock-free collective
communication for GPUs).

Subpackages:

* :mod:`repro.api` — the unified application surface: backend registry
  (``make_backend``), torch.distributed-style ``ProcessGroup`` and ``Work``
  futures over every execution backend;
* :mod:`repro.gpusim` — discrete-event GPU cluster simulator;
* :mod:`repro.collectives` — primitive sequences (ring and tree algorithms),
  channels, cost model and the topology-aware algorithm selector;
* :mod:`repro.ncclsim` — the NCCL-style baseline backend;
* :mod:`repro.core` — the DFCCL daemon-kernel backend;
* :mod:`repro.deadlock` — deadlock scenario construction and analysis;
* :mod:`repro.orchestration`, :mod:`repro.workloads` — framework scheduling
  models and training workloads;
* :mod:`repro.bench` — the experiments behind the paper's figures and tables.
"""

__version__ = "0.1.0"
