"""DFCCL behind the unified ``repro.api`` front-end.

The adapter owns (or shares) a :class:`~repro.core.DfcclBackend`, registers
one DFCCL collective per logical ``(spec, key)`` of each process group with
auto-assigned collective ids, and wraps every submission's
:class:`~repro.core.api.InvocationHandle` in a :class:`DfcclWork` future.

``job_view`` returns a view sharing the same DfcclBackend — one daemon
kernel per GPU serves every tenant — whose registrations are namespaced by
the job id, both in the collective-id space and in the communicator pool.
"""

from __future__ import annotations

import statistics

from repro.common.errors import ConfigurationError, InvalidStateError
from repro.core import DfcclBackend, DfcclConfig
from repro.obs import record_link_metrics
from repro.api.backend import CollectiveBackend, register_backend
from repro.api.work import CompletionInfo, Work


class DfcclWork(Work):
    """Work future over one DFCCL invocation handle."""

    def __init__(self, group, rank, key, index, handle):
        super().__init__(group, rank, key, index)
        self.handle = handle

    @property
    def invocation(self):
        """The backend-side :class:`~repro.core.registration.Invocation`."""
        return self.handle.invocation

    def submit_op(self):
        """Host-program op submitting this rank's part to the daemon."""
        return self.handle.submit_op()

    def wait_op(self):
        """Host-program op blocking until this rank's part resolves."""
        return self.handle.wait_op()

    @property
    def done(self):
        """Whether this rank's callback fired (user-visible completion)."""
        return self.handle.done

    @property
    def aborted(self):
        """Whether recovery abandoned this rank's part."""
        return self.handle.aborted

    @property
    def started_at_us(self):
        """Virtual time this rank submitted, or ``None`` before submission."""
        return self.invocation.submit_times.get(self.handle.group_rank)

    def completion_info(self):
        """The rank's :class:`CompletionInfo`, or ``None`` while running."""
        invocation = self.invocation
        group_rank = self.handle.group_rank
        if not invocation.is_gpu_complete(group_rank):
            return None
        # The signature this rank's GPU part actually completed under — a
        # rank that finished before a later recovery keeps the pre-crash
        # full-group identity even though it is observed afterwards.
        signature = invocation.completion_signatures.get(
            group_rank, invocation.participant_signature()
        )
        cluster = self.group.backend.cluster
        executor = invocation.executor_if_cached(group_rank)
        if executor is not None:
            # Ground truth: the member set of the communicator this rank
            # actually communicated over.
            members = tuple(cluster.rank_of(device)
                            for device in executor.communicator.devices)
        else:
            members = tuple(invocation.coll.global_ranks[rank]
                            for rank in signature[1])
        return CompletionInfo(
            signature=signature,
            member_ranks=members,
            time_us=invocation.complete_times.get(group_rank),
        )

    def primitive_sequence(self):
        """The primitive sequence this rank compiled (for conformance checks)."""
        executor = self.invocation.executor_if_cached(self.handle.group_rank)
        if executor is None:
            executor = self.invocation.executor_for(self.handle.group_rank)
        return list(executor.primitives)


class DfcclCollectiveBackend(CollectiveBackend):
    """DFCCL as a :class:`CollectiveBackend`."""

    name = "dfccl"

    def __init__(self, cluster, config=None, dfccl=None, job=None,
                 chunk_bytes=None, algorithm=None, **_ignored):
        super().__init__(cluster)
        if dfccl is None:
            base = config or DfcclConfig()
            overrides = {}
            if chunk_bytes is not None:
                overrides["chunk_bytes"] = chunk_bytes
            if algorithm is not None:
                overrides["algorithm"] = algorithm
            if overrides:
                base = base.with_overrides(**overrides)
            dfccl = DfcclBackend(cluster, base)
            #: Whether finalize should destroy the rank contexts: only when
            #: this adapter created them — a shared backend outlives any one
            #: view (multi-tenant job views never destroy).
            self.owns_backend = True
        else:
            self.owns_backend = False
        self.dfccl = dfccl
        self.job = job
        self._collectives = {}
        self._registered_ids = []
        obs = cluster.engine.obs
        if self.owns_backend and obs.enabled:
            registry = obs.metrics
            registry.gauge_fn("pool_hits",
                              lambda: self.dfccl.pool.stats()["hits"])
            registry.gauge_fn("pool_misses",
                              lambda: self.dfccl.pool.stats()["misses"])
            registry.gauge_fn("pool_created",
                              lambda: self.dfccl.pool.stats()["created"])
            registry.gauge_fn("pool_reused",
                              lambda: self.dfccl.pool.stats()["reused"])
            registry.gauge_fn("pool_active",
                              lambda: self.dfccl.pool.stats()["active"])
            registry.gauge_fn("pool_discarded",
                              lambda: self.dfccl.pool.stats()["discarded"])
            registry.gauge_fn("pool_free",
                              lambda: self.dfccl.pool.stats()["free"])
            registry.gauge_fn("pool_double_releases",
                              lambda: self.dfccl.pool.stats()["double_releases"])
            registry.gauge_fn("daemon_launches",
                              lambda: self._daemon_total("launches"))
            registry.gauge_fn("daemon_preemptions",
                              lambda: self._daemon_total("preemptions"))
            registry.gauge_fn("daemon_voluntary_quits",
                              lambda: self._daemon_total("voluntary_quits"))
            registry.gauge_fn("daemon_spin_polls",
                              lambda: self._daemon_total("spin_polls"))
            registry.gauge_fn("daemon_primitives_executed",
                              lambda: self._daemon_total("primitives_executed"))

    def _daemon_total(self, field):
        return sum(getattr(stats, field)
                   for stats in self.dfccl.all_stats().values())

    # -- registration ----------------------------------------------------------

    def _effective_job(self, group):
        return group.job if group.job is not None else self.job

    def ensure_collective(self, group, spec, key):
        """Register the logical collective with DFCCL once, caching the result."""
        ident = (group, spec, key)
        coll = self._collectives.get(ident)
        if coll is None:
            job = self._effective_job(group)
            coll_id = self.dfccl.allocate_coll_id(job=job)
            suffix = "" if key is None else f":{key}"
            # ProcessGroup already resolved the effective priority (explicit
            # per-call value or the group default) into the spec.
            coll = self.dfccl.register_collective(
                coll_id, spec, ranks=group.ranks, priority=spec.priority,
                name=f"{group.name}:{spec.kind.value}{suffix}",
                job=job,
            )
            self._collectives[ident] = coll
            self._registered_ids.append(coll_id)
        return coll

    def create_work(self, group, spec, key, index, rank, callback=None, stream=None):
        """Submit ``rank``'s part of invocation ``index`` and wrap the handle."""
        coll = self.ensure_collective(group, spec, key)
        handle = self.dfccl.submit(rank, coll.coll_id)
        work = DfcclWork(group, rank, key, index, handle)
        if callback is not None:
            handle.callback = lambda invocation, work=work: callback(work)
        return work

    # -- lifecycle --------------------------------------------------------------

    def finalize_ops(self, rank):
        """Teardown ops for ``rank``'s host program (``dfcclDestroy``)."""
        if not self.owns_backend:
            # Shared rank contexts serve other views; the daemon kernels
            # quit voluntarily once every tenant drained.
            return []
        return [self.dfccl.destroy_op(rank)]

    def quiesce(self, time_us):
        """Abort this view's unresolved invocation parts (job preemption).

        The control plane evicts a placed job by killing its rank processes
        mid-run; their submitted collective parts would otherwise sit in the
        daemon task queues forever, holding outstanding accounting and SQ/CQ
        slots.  Aborting each unresolved part releases the accounting and
        makes the daemon kernels drop the matching task entries lazily (the
        same mechanism recovery's abandon path uses).  A collective caught
        mid-invocation gets its communicator invalidated — its channels may
        hold half-delivered chunks and must be discarded, not recycled — while
        a collective preempted at an invocation boundary keeps its
        communicator clean for pooled reuse when the job resumes.  Returns
        the number of rank parts aborted.
        """
        aborted = 0
        seen = set()
        for coll in list(self._collectives.values()):
            if id(coll) in seen or coll.abandoned:
                continue
            seen.add(id(coll))
            dirty = False
            for invocation in coll.invocations:
                if invocation.fully_complete():
                    continue
                if not invocation.submit_times and not invocation.complete_times:
                    continue  # created but never touched: nothing to abort
                dirty = True
                for rank in sorted(invocation.expected_ranks()):
                    if coll.devices[rank].failed:
                        continue
                    ctx = self.dfccl.contexts.get(coll.global_ranks[rank])
                    if ctx is not None and ctx.abort_invocation(invocation,
                                                                time_us):
                        aborted += 1
            if dirty and not coll.communicator.invalidated:
                coll.communicator.invalidate()
        return aborted

    def unregister_all(self):
        """Unregister this view's collectives, recycling their communicators.

        Collectives with an invocation still in flight (e.g. abandoned by
        recovery) are left registered; returns the number unregistered.
        """
        released = 0
        for coll_id in list(self._registered_ids):
            try:
                self.dfccl.unregister_collective(coll_id)
            except (ConfigurationError, InvalidStateError):
                continue
            self._registered_ids.remove(coll_id)
            # Drop the cached registration too, so a later call on the same
            # group re-registers instead of submitting to a dead id.
            self._collectives = {ident: coll for ident, coll in
                                 self._collectives.items()
                                 if coll.coll_id != coll_id}
            released += 1
        return released

    def job_view(self, job):
        """A tenant-namespaced view sharing this adapter's daemon kernels."""
        return DfcclCollectiveBackend(self.cluster, dfccl=self.dfccl, job=job)

    def release_job(self, job):
        """Evict a departed tenant's communicator-pool namespace."""
        self.dfccl.pool.evict_job(job)

    # -- reporting -----------------------------------------------------------------

    def stats(self, rank):
        """Per-rank daemon-kernel counters (``dfcclGetStats``)."""
        return self.dfccl.stats(rank)

    def diagnostics(self):
        """Pool, daemon and recovery statistics for conformance reports."""
        daemon_stats = self.dfccl.all_stats()
        diag = {
            "pool": self.dfccl.pool.stats(),
            "daemon_stats": daemon_stats,
            "preemptions": sum(stats.preemptions for stats in daemon_stats.values()),
            "voluntary_quits": sum(stats.voluntary_quits
                                   for stats in daemon_stats.values()),
        }
        manager = self.dfccl.recovery_manager
        if manager is not None:
            stats = manager.stats
            diag["recovery"] = {
                "recoveries": stats.recoveries,
                "invocations_rerun": stats.invocations_rerun,
                "suspected_stragglers": stats.suspected_stragglers,
                "abandoned": stats.abandoned,
                "events": [
                    {
                        "time_us": event.time_us,
                        "coll_id": event.coll_id,
                        "failed_ranks": event.failed_ranks,
                        "survivor_ranks": event.survivor_ranks,
                        "detection_latency_us": event.detection_latency_us,
                        "generation": event.generation,
                    }
                    for event in stats.events
                ],
            }
        obs = self.cluster.engine.obs
        if obs.enabled:
            record_link_metrics(
                obs.metrics,
                [coll.communicator for coll in self.dfccl._collectives.values()])
            diag["metrics"] = obs.metrics.snapshot()
        return diag

    def perf_report(self, group, works_by_rank):
        """Latency/occupancy summary of a finished benchmark run."""
        first = group.ranks[0]
        works = works_by_rank[first]
        latencies = []
        for work in works:
            invocation = work.invocation
            start = min(invocation.submit_times.values())
            end = max(invocation.complete_times.values())
            latencies.append(end - start)
        stats = self.dfccl.stats(first)
        completed = max(1, stats.cqes_written)
        return {
            "algorithm": works[0].invocation.coll.algorithm,
            "latency_us": statistics.fmean(latencies),
            "core_time_us": (stats.execute_time_us + stats.preparing_time_us) / completed,
            "preemptions": stats.preemptions,
            "predicted_cost_us": statistics.fmean(
                work.invocation.coll.predicted_cost_us for work in works
            ),
        }


register_backend("dfccl", DfcclCollectiveBackend)
