"""Work futures: the unified asynchronous-completion surface of ``repro.api``.

Every collective call on a :class:`~repro.api.ProcessGroup` returns a
:class:`Work` — one rank's part of one collective invocation.  A Work knows
how to produce the host ops that perform the asynchronous submission
(``submit_op``) and the completion wait (``wait_op``), reports completion via
``done``, and exposes post-run introspection (``completion_info``,
``primitive_sequence``) that is identical in shape for every backend.

The class subsumes both of the pre-existing per-backend surfaces: DFCCL's
:class:`~repro.core.api.InvocationHandle` and the raw
``launch_collective``/``wait_collective`` op lists of the NCCL baseline.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CompletionInfo:
    """What one rank's completed collective actually reduced over.

    ``signature`` is the ``(recovery_generation, group_ranks)`` identity of
    the participant set at completion time — all ranks sharing a signature
    must hold byte-identical results.  ``member_ranks`` are the *global*
    ranks whose contributions entered this rank's result (after any elastic
    group shrink), and ``time_us`` is the completion time.
    """

    signature: tuple
    member_ranks: tuple
    time_us: float


class Work:
    """One rank's future for one collective invocation.

    ``key`` is the logical collective the call joined (user key or ``None``
    for shape-identity) and ``index`` the per-rank invocation number of that
    logical collective, auto-assigned by call order on the process group.
    """

    def __init__(self, group, rank, key, index):
        self.group = group
        self.rank = rank
        self.key = key
        self.index = index

    # -- host ops -------------------------------------------------------------

    def submit_op(self):
        """Host op performing the asynchronous submission/launch."""
        raise NotImplementedError

    def wait_op(self):
        """Host op blocking until this rank's part completed."""
        raise NotImplementedError

    def ops(self):
        """Submit immediately followed by wait (synchronous-style usage)."""
        return [self.submit_op(), self.wait_op()]

    # -- completion -----------------------------------------------------------

    @property
    def done(self):
        """True once this rank's part of the invocation completed."""
        raise NotImplementedError

    @property
    def aborted(self):
        """True when the backend resolved this part without completing it.

        Only elastic backends abort (DFCCL's recovery abandons a collective
        it cannot re-form — e.g. a rooted collective whose root died — and
        wakes the waiters); backends without recovery never do.
        """
        return False

    def completion_info(self):
        """A :class:`CompletionInfo` once complete, else ``None``."""
        raise NotImplementedError

    def primitive_sequence(self):
        """The primitives this rank executed, or ``None`` when unavailable.

        Backends that compile per-rank primitive sequences (DFCCL, NCCL)
        return the compiled sequence; analytic backends return ``None``.
        """
        return None

    @property
    def started_at_us(self):
        """Submission/launch time of this rank's part, or ``None``."""
        return None

    @property
    def finished_at_us(self):
        """Completion time of this rank's part, or ``None``."""
        info = self.completion_info()
        return info.time_us if info is not None else None

    def __repr__(self):
        return (f"<{type(self).__name__} key={self.key!r} #{self.index} "
                f"rank={self.rank} done={self.done}>")


def wait_all(works):
    """Host ops waiting for every work in submission order."""
    return [work.wait_op() for work in works]
