"""The unified application-facing API (``repro.api``).

One execution-platform abstraction in the spirit of SYSFLOW fronts every
collective engine in the repo:

* :func:`make_backend` / :data:`BACKENDS` — the backend registry
  (``"dfccl"``, ``"nccl"``, ``"mpi"`` built in; :func:`register_backend`
  adds more);
* :class:`CollectiveBackend` — the protocol adapters implement;
* :class:`ProcessGroup` — torch.distributed-style groups created via
  ``backend.new_group(ranks, job=..., priority=...)``, exposing
  ``all_reduce`` / ``all_gather`` / ``reduce_scatter`` / ``broadcast`` /
  ``reduce`` / ``barrier`` with auto-assigned collective ids;
* :class:`Work` / :func:`wait_all` — per-rank futures producing the host
  ops that submit and await each invocation.

A minimal program::

    from repro.api import make_backend, wait_all
    from repro.gpusim import HostProgram, build_cluster

    cluster = build_cluster("single-3090")
    backend = make_backend("dfccl", cluster)
    group = backend.new_group()               # every GPU
    programs = []
    for rank in group.ranks:
        works = [group.all_reduce(rank, count=1 << 20, key=i) for i in (0, 1)]
        ops = [work.submit_op() for work in works] + wait_all(works)
        programs.append(HostProgram(ops + backend.finalize_ops(rank)))
    cluster.add_hosts(programs)
    cluster.run()

The same program runs unchanged over any registered backend — that is the
whole point.
"""

from repro.api.backend import (
    BACKENDS,
    CollectiveBackend,
    make_backend,
    register_backend,
)
from repro.api.group import ProcessGroup
from repro.api.work import CompletionInfo, Work, wait_all
from repro.api.dfccl_adapter import DfcclCollectiveBackend, DfcclWork
from repro.api.nccl_adapter import NcclCollectiveBackend, NcclWork
from repro.api.mpi_adapter import MpiCollectiveBackend, MpiWork

__all__ = [
    "BACKENDS",
    "CollectiveBackend",
    "CompletionInfo",
    "DfcclCollectiveBackend",
    "DfcclWork",
    "MpiCollectiveBackend",
    "MpiWork",
    "NcclCollectiveBackend",
    "NcclWork",
    "ProcessGroup",
    "Work",
    "make_backend",
    "register_backend",
    "wait_all",
]
