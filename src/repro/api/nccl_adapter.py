"""The NCCL-style dedicated-kernel baseline behind ``repro.api``.

Each invocation of a logical collective becomes one
:class:`~repro.ncclsim.NcclCollectiveOp` shared by every participating rank
(match-by-call-order, as in real NCCL); a rank's :class:`NcclWork` launches
its dedicated kernel and waits on its per-rank completion, exactly like the
old ``launch_collective``/``wait_collective`` op lists.

``tenant`` tags the view's kernels with their owning job (multi-tenant SM
accounting) and gives it its own launch stream.  ``orchestrator`` names the
CPU-coordination baseline a *training* loop over this backend should charge
(resolved lazily by :meth:`orchestrator_for`, defaulting to the paper's
Megatron-style manual orchestration); raw ProcessGroup programs — deadlock
studies, microbenchmarks — never pay it.
"""

from __future__ import annotations

import statistics

from repro.ncclsim import NcclBackend
from repro.ncclsim.program import launch_collective, wait_collective
from repro.obs import record_link_metrics
from repro.api.backend import (
    CollectiveBackend,
    register_backend,
    resolve_orchestrator,
)
from repro.api.work import CompletionInfo, Work


class NcclWork(Work):
    """Work future over one rank's part of one dedicated-kernel op."""

    def __init__(self, group, rank, key, index, backend, op, group_rank, stream):
        super().__init__(group, rank, key, index)
        self.backend = backend
        self.op = op
        self.group_rank = group_rank
        self.stream = stream

    def submit_op(self):
        """Host-program op launching this rank's dedicated kernel."""
        return launch_collective(self.backend.nccl, self.op, self.rank,
                                 stream=self.stream, tenant=self.backend.tenant)

    def wait_op(self):
        """Host-program op blocking on this rank's kernel completion."""
        return wait_collective(self.op, self.group_rank)

    @property
    def done(self):
        """Whether this rank's kernel completed."""
        return self.op.is_complete(self.group_rank)

    @property
    def started_at_us(self):
        """Virtual launch time of this rank's kernel, or ``None``."""
        kernel = self.op.kernel(self.group_rank)
        return kernel.launch_time_us if kernel is not None else None

    def completion_info(self):
        """The rank's :class:`CompletionInfo`, or ``None`` while running."""
        if not self.done:
            return None
        # Dedicated kernels have no elastic recovery: the participant set is
        # always the full registration-time group, generation 0.
        return CompletionInfo(
            signature=(0, tuple(range(self.op.group_size))),
            member_ranks=tuple(self.group.ranks),
            time_us=self.op.completion_time(self.group_rank),
        )

    def primitive_sequence(self):
        """The primitive sequence this rank compiled (for conformance checks)."""
        kernel = self.op.kernel(self.group_rank)
        if kernel is not None:
            return list(kernel.executor.primitives)
        return list(self.op.executor_for(self.group_rank).primitives)


class NcclCollectiveBackend(CollectiveBackend):
    """The dedicated-kernel baseline as a :class:`CollectiveBackend`."""

    name = "nccl"

    def __init__(self, cluster, cost_model=None, chunk_bytes=None, algorithm="ring",
                 nccl=None, tenant=None, orchestrator="megatron", config=None,
                 **_ignored):
        # ``config`` (a DfcclConfig) is accepted for knob-uniformity with the
        # dfccl factory and ignored: the baseline has no daemon to configure.
        del config
        super().__init__(cluster)
        self.nccl = nccl if nccl is not None else NcclBackend(
            cluster, cost_model=cost_model, chunk_bytes=chunk_bytes,
            algorithm=algorithm,
        )
        self.tenant = tenant
        self.default_stream = "comm" if tenant is None else f"comm-{tenant}"
        self._orchestrator = orchestrator
        self._comms = {}
        self._ops = {}

    def _comm_for(self, ranks):
        ranks = tuple(ranks)
        comm = self._comms.get(ranks)
        if comm is None:
            comm = self.nccl.create_communicator(ranks=list(ranks))
            self._comms[ranks] = comm
        return comm

    def create_work(self, group, spec, key, index, rank, callback=None, stream=None):
        """Join invocation ``index``'s shared op and wrap this rank's part."""
        comm = self._comm_for(group.ranks)
        ident = (group.group_id, spec, key, index)
        op = self._ops.get(ident)
        if op is None:
            suffix = "" if key is None else f":{key}"
            op = comm.collective(
                ident, spec,
                name=f"{group.name}:{spec.kind.value}{suffix}#{index}",
            )
            self._ops[ident] = op
        group_rank = comm.group_rank(rank)
        work = NcclWork(group, rank, key, index, self, op, group_rank,
                        stream if stream is not None else self.default_stream)
        if callback is not None:
            op.add_completion_callback(group_rank,
                                       lambda work=work: callback(work))
        return work

    # -- training integration ----------------------------------------------------

    def orchestrator_for(self, world_size):
        """The CPU-coordination model training loops charge per step."""
        return resolve_orchestrator(self._orchestrator, world_size)

    def job_view(self, job):
        """A tenant-tagged view sharing this adapter's NcclBackend."""
        return NcclCollectiveBackend(self.cluster, nccl=self.nccl, tenant=job,
                                     orchestrator=self._orchestrator)

    # -- reporting -----------------------------------------------------------------

    def diagnostics(self):
        """Communicator counts plus the metrics-registry snapshot."""
        diag = {"communicators": len(self.nccl.communicators)}
        obs = self.cluster.engine.obs
        if obs.enabled:
            record_link_metrics(
                obs.metrics, [op.communicator for op in self._ops.values()])
            diag["metrics"] = obs.metrics.snapshot()
        return diag

    def perf_report(self, group, works_by_rank):
        """Latency/occupancy summary of a finished benchmark run."""
        first = group.ranks[0]
        launch_overhead = self.cluster.device(first).launch_overhead_us
        latencies = []
        cores = []
        for work in works_by_rank[first]:
            op = work.op
            starts, ends, core_times = [], [], []
            for group_rank in range(op.group_size):
                kernel = op.kernel(group_rank)
                starts.append(kernel.launch_time_us)
                ends.append(kernel.complete_time_us)
                core_times.append(kernel.complete_time_us - kernel.launch_time_us)
            # End to end includes the host-side launch overhead before
            # residency.
            latencies.append(max(ends) - min(starts) + launch_overhead)
            cores.append(statistics.fmean(core_times))
        return {
            "algorithm": works_by_rank[first][0].op.algorithm,
            "latency_us": statistics.fmean(latencies),
            "core_time_us": statistics.fmean(cores),
            "preemptions": 0,
            "predicted_cost_us": statistics.fmean(
                work.op.predicted_cost_us for work in works_by_rank[first]
            ),
        }


register_backend("nccl", NcclCollectiveBackend)
