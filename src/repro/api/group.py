"""The torch.distributed-style process group over any collective backend.

A :class:`ProcessGroup` is created by ``backend.new_group(ranks, ...)`` and
exposes the collective call surface (``all_reduce`` … ``barrier``).  Calls
return :class:`~repro.api.work.Work` futures; collective ids are assigned
automatically:

* a *logical collective* is identified by its spec plus an optional user
  ``key`` (two same-shaped collectives a program treats as distinct — e.g.
  the two deliberately disordered all-reduces of the paper's Fig. 1(c)
  recipe — disambiguate with different keys);
* each rank's N-th call of a logical collective joins that collective's N-th
  *invocation*, so repeated calls (training iterations) line up across ranks
  without any manual id bookkeeping, in whatever per-rank order the
  application produces them.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.common.types import CollectiveKind, CollectiveSpec, DataType, ReduceOp

#: Reserved logical-collective key prefix for ``barrier`` calls.
_BARRIER_KEY = "__barrier__"


class ProcessGroup:
    """A fixed set of global ranks issuing collectives through one backend."""

    def __init__(self, backend, ranks, group_id=0, job=None, priority=0, name=None):
        if len(set(ranks)) != len(ranks):
            raise ConfigurationError(f"process-group ranks must be distinct, got {ranks}")
        if not ranks:
            raise ConfigurationError("a process group needs at least one rank")
        self.backend = backend
        self.ranks = list(ranks)
        self.group_id = group_id
        self.job = job
        self.priority = priority
        self.name = name or f"pg{group_id}"
        #: Per-logical-collective, per-rank call counters (invocation index).
        self._call_counts = {}
        #: Canonical spec per logical collective (first registration wins).
        self._specs = {}

    @property
    def size(self):
        """Number of member ranks."""
        return len(self.ranks)

    def group_rank(self, global_rank):
        """Map a global rank to its dense 0-based rank within this group."""
        try:
            return self.ranks.index(global_rank)
        except ValueError:
            raise ConfigurationError(
                f"rank {global_rank} is not a member of group {self.name}"
            ) from None

    # -- generic call path ---------------------------------------------------------

    def _canonical(self, spec, key):
        """Resolve the logical-collective identity and its canonical spec.

        With an explicit ``key`` the key IS the identity — the first call's
        spec becomes canonical, so per-rank shape asymmetries of one logical
        collective (a pipeline send/recv whose sender and receiver quote
        different buffer sizes) still meet in one backend-side op, exactly
        like NCCL's match-by-call-order.  Without a key, the shape is the
        identity.
        """
        ident = spec if key is None else key
        canonical = self._specs.get(ident)
        if canonical is None:
            self._specs[ident] = spec
            canonical = spec
        return ident, canonical

    def ensure_collective(self, spec, key=None):
        """Eagerly materialize a logical collective (registration order).

        Optional: collectives are created lazily on first call, but callers
        that care about deterministic backend-side id assignment (the trainer
        registers in sorted schedule-key order) declare them up front.  The
        declared spec becomes the collective's canonical spec.
        """
        spec.validate()
        _, canonical = self._canonical(spec, key)
        self.backend.ensure_collective(self, canonical, key)

    def collective(self, rank, spec, key=None, callback=None, stream=None):
        """Join the next invocation of the logical collective ``(spec, key)``.

        Returns the :class:`Work` future for ``rank``'s part.  ``callback``
        is invoked as ``callback(work)`` when this rank's part completes;
        ``stream`` is a launch-stream hint for backends with dedicated
        kernels (ignored by DFCCL's shared daemon kernel).
        """
        spec.validate()
        if rank not in self.ranks:
            raise ConfigurationError(
                f"rank {rank} is not a member of group {self.name}"
            )
        ident, canonical = self._canonical(spec, key)
        counters = self._call_counts.setdefault(ident, {})
        index = counters.get(rank, 0)
        counters[rank] = index + 1
        return self.backend.create_work(
            self, canonical, key, index, rank, callback=callback, stream=stream
        )

    # -- the collective call surface ----------------------------------------------

    def _priority(self, priority):
        return self.priority if priority is None else priority

    def all_reduce(self, rank, count, dtype=DataType.FLOAT32, op=ReduceOp.SUM,
                   key=None, priority=None, callback=None, stream=None,
                   algorithm=None):
        """Reduce ``count`` elements across the group, result on every rank.

        ``algorithm`` overrides the backend-wide schedule knob for this
        logical collective only: ``"ring"``, ``"tree"``, ``"hierarchical"``
        or ``"auto"`` (cost-model selection); ``None`` defers to the backend.
        """
        spec = CollectiveSpec(CollectiveKind.ALL_REDUCE, count, dtype, op,
                              priority=self._priority(priority),
                              algorithm=algorithm)
        return self.collective(rank, spec, key=key, callback=callback, stream=stream)

    def all_gather(self, rank, count, dtype=DataType.FLOAT32,
                   key=None, priority=None, callback=None, stream=None):
        """Concatenate every rank's ``count`` elements onto every rank."""
        spec = CollectiveSpec(CollectiveKind.ALL_GATHER, count, dtype,
                              priority=self._priority(priority))
        return self.collective(rank, spec, key=key, callback=callback, stream=stream)

    def reduce_scatter(self, rank, count, dtype=DataType.FLOAT32, op=ReduceOp.SUM,
                       key=None, priority=None, callback=None, stream=None):
        """Reduce across the group, each rank keeping one 1/n shard."""
        spec = CollectiveSpec(CollectiveKind.REDUCE_SCATTER, count, dtype, op,
                              priority=self._priority(priority))
        return self.collective(rank, spec, key=key, callback=callback, stream=stream)

    def all_to_all(self, rank, count, dtype=DataType.FLOAT32,
                   key=None, priority=None, callback=None, stream=None):
        """Personalized exchange: every rank sends a distinct slice to every peer.

        ``count`` is the per-rank send-buffer element count (one 1/n slice per
        peer), matching ``torch.distributed.all_to_all_single``.  This is the
        MoE expert-parallel dispatch/combine collective; it runs the pairwise
        exchange schedule regardless of the algorithm knob.
        """
        spec = CollectiveSpec(CollectiveKind.ALL_TO_ALL, count, dtype,
                              priority=self._priority(priority))
        return self.collective(rank, spec, key=key, callback=callback, stream=stream)

    def broadcast(self, rank, count, dtype=DataType.FLOAT32, root=0,
                  key=None, priority=None, callback=None, stream=None):
        """Copy ``count`` elements from group rank ``root`` to every rank."""
        spec = CollectiveSpec(CollectiveKind.BROADCAST, count, dtype, root=root,
                              priority=self._priority(priority))
        return self.collective(rank, spec, key=key, callback=callback, stream=stream)

    def reduce(self, rank, count, dtype=DataType.FLOAT32, op=ReduceOp.SUM, root=0,
               key=None, priority=None, callback=None, stream=None):
        """Reduce ``count`` elements across the group onto group rank ``root``."""
        spec = CollectiveSpec(CollectiveKind.REDUCE, count, dtype, op, root=root,
                              priority=self._priority(priority))
        return self.collective(rank, spec, key=key, callback=callback, stream=stream)

    def barrier(self, rank, key=None, callback=None, stream=None):
        """A rendezvous of every group member (a one-element all-reduce)."""
        barrier_key = (_BARRIER_KEY,) if key is None else (_BARRIER_KEY, key)
        return self.all_reduce(rank, 1, key=barrier_key, callback=callback,
                               stream=stream)

    def __repr__(self):
        return (f"<ProcessGroup {self.name} backend={self.backend.name} "
                f"size={self.size}>")
