"""CUDA-aware MPI as a third ``repro.api`` backend.

The Sec. 2.1 baseline is analytic (:class:`~repro.ncclsim.CudaAwareMpiModel`);
here it becomes a driveable execution platform: every collective is a
host-staged rendezvous — each rank's submit records its arrival, the wait op
blocks until every member arrived and then sleeps out the model's transfer
time.  No GPU kernels are involved, which is exactly the property the paper
motivates NCCL (and then DFCCL) against.

The ring-all-reduce cost formula is applied to every collective kind: the
host-staged path is dominated by staging latency and bandwidth, not by the
algorithm shape, and this model only needs to be faithful enough for the
crossover comparisons.
"""

from __future__ import annotations

import itertools
import statistics

from repro.gpusim.host import CallHook, HostOp
from repro.gpusim.engine import StepResult
from repro.ncclsim import CudaAwareMpiModel
from repro.api.backend import CollectiveBackend, register_backend
from repro.api.work import CompletionInfo, Work

_mpi_op_ids = itertools.count()


class _MpiCollective:
    """Shared rendezvous state of one host-staged collective invocation."""

    def __init__(self, spec, ranks, model):
        self.op_id = next(_mpi_op_ids)
        self.spec = spec
        self.ranks = list(ranks)
        self.duration_us = model.all_reduce_time_us(spec.nbytes, len(self.ranks))
        self.submit_times = {}
        self.complete_times = {}

    @property
    def submitted_key(self):
        return ("mpi-all-submitted", self.op_id)

    def all_submitted(self):
        return len(self.submit_times) == len(self.ranks)

    def finish_time_us(self):
        return max(self.submit_times.values()) + self.duration_us


class _MpiWaitOp(HostOp):
    """Block until the rendezvous formed, then sleep out the transfer."""

    def __init__(self, work):
        self.work = work

    def poll(self, host):
        coll = self.work.coll
        if not coll.all_submitted():
            return StepResult.blocked([coll.submitted_key],
                                      f"mpi rendezvous op {coll.op_id}")
        target = coll.finish_time_us()
        if host.now < target:
            return StepResult.sleep(target, f"mpi transfer op {coll.op_id}")
        self.work.mark_complete(host.now)
        return StepResult.progress(f"mpi op {coll.op_id} done")


class MpiWork(Work):
    """Work future over one rank's part of a host-staged collective."""

    def __init__(self, group, rank, key, index, coll, callback=None):
        super().__init__(group, rank, key, index)
        self.coll = coll
        self.callback = callback

    def submit_op(self):
        """Host-program op marking this rank's arrival at the rendezvous."""
        def submit(host):
            self.coll.submit_times[self.rank] = host.now
            if self.coll.all_submitted():
                host.cluster.engine.signal(self.coll.submitted_key, host.now)

        return CallHook(submit, detail=f"mpi submit op {self.coll.op_id}")

    def wait_op(self):
        """Host-program op blocking until the rendezvous resolves."""
        return _MpiWaitOp(self)

    def mark_complete(self, time_us):
        """Record completion at ``time_us`` and fire the callback."""
        if self.rank not in self.coll.complete_times:
            self.coll.complete_times[self.rank] = time_us
            obs = self.group.backend.cluster.engine.obs
            if obs.enabled:
                coll = self.coll
                obs.tracer.record(
                    f"mpi-op{coll.op_id}-{coll.spec.kind.value}",
                    "collective",
                    coll.submit_times.get(self.rank, time_us), time_us,
                    track=f"rank{self.rank}", job=self.group.job,
                    attrs={"algorithm": "host-staged-ring",
                           "predicted_cost_us": coll.duration_us})
                if len(coll.complete_times) == len(coll.ranks):
                    measured = (max(coll.complete_times.values())
                                - min(coll.submit_times.values()))
                    obs.record_collective(
                        "mpi", "host-staged-ring", coll.spec.kind.value,
                        coll.spec.nbytes, len(coll.ranks), measured,
                        predicted_us=coll.duration_us)
            if self.callback is not None:
                self.callback(self)

    @property
    def done(self):
        """Whether the rendezvous completed for this rank."""
        return self.rank in self.coll.complete_times

    @property
    def started_at_us(self):
        """Virtual time this rank arrived, or ``None`` before arrival."""
        return self.coll.submit_times.get(self.rank)

    def completion_info(self):
        """The rank's :class:`CompletionInfo`, or ``None`` while running."""
        if not self.done:
            return None
        return CompletionInfo(
            signature=(0, tuple(range(len(self.coll.ranks)))),
            member_ranks=tuple(self.coll.ranks),
            time_us=self.coll.complete_times[self.rank],
        )


class MpiCollectiveBackend(CollectiveBackend):
    """Analytic host-staged MPI as a :class:`CollectiveBackend`."""

    name = "mpi"

    def __init__(self, cluster, model=None, alpha_us=None, beta_gbps=None,
                 chunk_bytes=None, algorithm=None, config=None, **_ignored):
        # ``chunk_bytes`` / ``algorithm`` / ``config`` are accepted for knob
        # uniformity with the other factories; the analytic model has no use
        # for them.
        del chunk_bytes, algorithm, config
        super().__init__(cluster)
        if model is None:
            kwargs = {}
            if alpha_us is not None:
                kwargs["alpha_us"] = alpha_us
            if beta_gbps is not None:
                kwargs["beta_gbps"] = beta_gbps
            model = CudaAwareMpiModel(**kwargs)
        self.model = model
        self._collectives = {}
        obs = cluster.engine.obs
        if obs.enabled:
            registry = obs.metrics
            registry.gauge_fn("mpi_host_staged_ops",
                              lambda: len(self._collectives))
            registry.gauge_fn("mpi_rendezvous_completed",
                              lambda: self._rendezvous_completed())
            registry.gauge_fn("mpi_rendezvous_pending",
                              lambda: (len(self._collectives)
                                       - self._rendezvous_completed()))

    def _rendezvous_completed(self):
        return sum(1 for coll in self._collectives.values()
                   if len(coll.complete_times) == len(coll.ranks))

    def diagnostics(self):
        """Host-staged op and rendezvous counters, plus the metrics snapshot.

        Overrides the empty :class:`CollectiveBackend` default so the
        cross-backend parity suite can assert all three backends report
        diagnostics.
        """
        completed = self._rendezvous_completed()
        diag = {
            "backend": "mpi",
            "host_staged_ops": len(self._collectives),
            "rendezvous_completed": completed,
            "rendezvous_pending": len(self._collectives) - completed,
        }
        obs = self.cluster.engine.obs
        if obs.enabled:
            diag["metrics"] = obs.metrics.snapshot()
        return diag

    def create_work(self, group, spec, key, index, rank, callback=None, stream=None):
        """Join the analytic rendezvous of invocation ``index``."""
        del stream  # host-staged: there is no kernel launch stream
        ident = (group.group_id, spec, key, index)
        coll = self._collectives.get(ident)
        if coll is None:
            coll = _MpiCollective(spec, group.ranks, self.model)
            self._collectives[ident] = coll
        return MpiWork(group, rank, key, index, coll, callback=callback)

    def perf_report(self, group, works_by_rank):
        """Latency summary of a finished benchmark run."""
        first = group.ranks[0]
        latencies = []
        for work in works_by_rank[first]:
            coll = work.coll
            latencies.append(max(coll.complete_times.values())
                             - min(coll.submit_times.values()))
        return {
            "algorithm": "host-staged-ring",
            "latency_us": statistics.fmean(latencies),
            "core_time_us": statistics.fmean(
                work.coll.duration_us for work in works_by_rank[first]
            ),
            "preemptions": 0,
            "predicted_cost_us": statistics.fmean(
                work.coll.duration_us for work in works_by_rank[first]
            ),
        }


register_backend("mpi", MpiCollectiveBackend)
