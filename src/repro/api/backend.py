"""The ``CollectiveBackend`` protocol and the backend registry.

One execution-platform abstraction fronts every collective engine in the
repo: applications obtain a backend with :func:`make_backend`, carve process
groups out of it with :meth:`CollectiveBackend.new_group`, and drive the
returned :class:`~repro.api.work.Work` futures — without knowing whether a
shared daemon kernel (DFCCL), dedicated busy-waiting kernels (NCCL) or an
analytic host-staged path (MPI) executes the primitives underneath.

Backends self-register in :data:`BACKENDS`; third-party engines plug in via
:func:`register_backend` without touching any consumer code.  All of the
``backend == "dfccl"``-style string dispatch that used to be copied across
workloads, multijob, faults and bench lives here and nowhere else.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.api.group import ProcessGroup

#: Registry of backend factories: name -> factory(cluster, **knobs).
BACKENDS = {}


def register_backend(name, factory):
    """Register a backend factory under ``name`` (overwrites silently)."""
    BACKENDS[name] = factory
    return factory


def make_backend(name, cluster, **knobs):
    """Instantiate a registered backend over ``cluster``.

    ``knobs`` are passed through to the backend factory (``config=`` /
    ``chunk_bytes=`` / ``algorithm=`` / ``orchestrator=`` ...); every
    factory accepts the common knobs it cannot honour and ignores them, so
    one experiment driver can sweep backends with a uniform knob set.
    """
    factory = BACKENDS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown collective backend {name!r} "
            f"(registered: {', '.join(sorted(BACKENDS))})"
        )
    return factory(cluster, **knobs)


def resolve_orchestrator(spec, world_size):
    """Resolve an orchestrator knob: ``None``, a name, or an instance."""
    if spec is None:
        return None
    if isinstance(spec, str):
        from repro.orchestration import make_orchestrator

        return make_orchestrator(spec, world_size=world_size)
    return spec


class CollectiveBackend:
    """Abstract execution platform behind :class:`ProcessGroup`.

    Subclasses implement :meth:`create_work` (and usually
    :meth:`ensure_collective`); everything else has conservative defaults so
    a minimal backend is just a Work factory.
    """

    name = "abstract"

    def __init__(self, cluster):
        self.cluster = cluster
        self._next_group_id = 0

    # -- group creation -------------------------------------------------------

    def new_group(self, ranks=None, job=None, priority=0, name=None):
        """Create a :class:`ProcessGroup` over ``ranks`` (default: all GPUs).

        ``job`` namespaces the group's backend-side resources for
        multi-tenant isolation; ``priority`` is the default collective
        priority of the group's calls.
        """
        if ranks is None:
            ranks = list(range(self.cluster.world_size))
        group_id = self._next_group_id
        self._next_group_id += 1
        return ProcessGroup(self, ranks, group_id=group_id, job=job,
                            priority=priority, name=name)

    # -- per-collective hooks ---------------------------------------------------

    def ensure_collective(self, group, spec, key):
        """Materialize a logical collective ahead of its first call (no-op)."""

    def create_work(self, group, spec, key, index, rank, callback=None, stream=None):
        """Create the Work future for one rank's part of one invocation."""
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------------

    def finalize_ops(self, rank):
        """Host ops a rank program appends after its last collective."""
        return []

    def unregister_all(self):
        """Unregister every collective this backend (view) registered."""
        return 0

    def job_view(self, job):
        """A backend view whose groups default to the ``job`` namespace.

        Views share the underlying engine (one daemon kernel per GPU serves
        every tenant under DFCCL; one kernel factory under NCCL) while
        keeping per-job resources — ids, communicators, streams — apart.
        """
        return self

    def release_job(self, job):
        """Drop backend-side resources of a departed tenant (no-op)."""

    # -- training integration ------------------------------------------------------

    def orchestrator_for(self, world_size):
        """The CPU-orchestration baseline training over this backend needs.

        DFCCL needs none (deadlock freedom is the backend's job); the NCCL
        baseline resolves its configured orchestrator here.
        """
        return None

    # -- reporting -------------------------------------------------------------------

    def stats(self, rank):
        """Backend-specific per-rank statistics object (or ``None``)."""
        return None

    def diagnostics(self):
        """Backend-specific post-run diagnostics as a plain dict."""
        return {}

    def perf_report(self, group, works_by_rank):
        """Latency / core-time / algorithm metrics for a timed-run program.

        ``works_by_rank`` maps every group rank to its list of works, one
        per timed invocation in submission order.  Returns a dict with at
        least ``latency_us``, ``core_time_us``, ``algorithm`` and
        ``preemptions`` keys.
        """
        raise NotImplementedError(f"{self.name} backend has no perf report")

    def __repr__(self):
        return f"<{type(self).__name__} {self.name}>"
