"""Dependency graph and cycle detection for the deadlock simulator.

Nodes are collective *parts* — (collective, GPU) pairs.  Two kinds of directed
edges exist (Sec. 2.4.1):

1. an executing collective part points to all of its invoked (not yet
   executing) counterparts on other GPUs — it waits for them to join;
2. an invoked collective part points to every collective part currently
   executing on the same GPU — it waits for them to release the GPU.

A cycle in this graph is a deadlock.
"""

from __future__ import annotations

from collections import defaultdict


class DependencyGraph:
    """Incrementally maintained wait-for graph over collective parts."""

    def __init__(self):
        self._edges = defaultdict(set)

    def clear(self):
        self._edges.clear()

    def add_edge(self, src, dst):
        if src != dst:
            self._edges[src].add(dst)

    def remove_node(self, node):
        self._edges.pop(node, None)
        for targets in self._edges.values():
            targets.discard(node)

    def edges(self):
        return {node: set(targets) for node, targets in self._edges.items()}

    def successors(self, node):
        return set(self._edges.get(node, ()))

    def __len__(self):
        return sum(len(targets) for targets in self._edges.values())

    def has_cycle(self):
        """Iterative three-colour DFS cycle detection."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour = defaultdict(int)
        for start in list(self._edges):
            if colour[start] != WHITE:
                continue
            stack = [(start, iter(self._edges.get(start, ())))]
            colour[start] = GREY
            while stack:
                node, child_iter = stack[-1]
                advanced = False
                for child in child_iter:
                    if colour[child] == GREY:
                        return True
                    if colour[child] == WHITE:
                        colour[child] = GREY
                        stack.append((child, iter(self._edges.get(child, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return False

    def find_cycle(self):
        """Return one cycle as a list of nodes, or ``None``."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour = defaultdict(int)
        parent = {}
        for start in list(self._edges):
            if colour[start] != WHITE:
                continue
            stack = [(start, iter(self._edges.get(start, ())))]
            colour[start] = GREY
            while stack:
                node, child_iter = stack[-1]
                advanced = False
                for child in child_iter:
                    if colour[child] == GREY:
                        # Walk back from node to child to extract the cycle.
                        cycle = [child, node]
                        current = node
                        while current != child and current in parent:
                            current = parent[current]
                            if current != child:
                                cycle.append(current)
                        cycle.reverse()
                        return cycle
                    if colour[child] == WHITE:
                        colour[child] = GREY
                        parent[child] = node
                        stack.append((child, iter(self._edges.get(child, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None
