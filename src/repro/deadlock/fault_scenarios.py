"""Fault-induced deadlock analysis: engine reports → wait-for cycles.

The round-based simulator in this package predicts deadlock *ratios* from
abstract invocation orders; this module closes the loop for *fault-induced*
deadlocks observed in the full engine.  When a rank crashes mid-collective,
the engine's deadlock report contains the blocked actors and the wait keys
they can never see signalled.  :func:`analyze_fault_deadlock` lifts that
report into the same :class:`DependencyGraph` formalism used by Sec. 2.4:

* nodes are ranks (one per GPU) plus one ``("crashed", rank)`` node per dead
  device;
* an edge ``A -> B`` means rank A busy-waits on data (or buffer space, or a
  kernel completion) that only rank B can produce;
* a crashed rank points at its crash marker and the marker points back —
  the standard wait-for-graph encoding of a failed process that holds its
  resources forever and waits on a recovery that never comes.

A cycle through a ``crashed`` node is the signature of a fault-induced hang:
every path of waiters that reaches the dead rank can never be satisfied.  The
same analysis on a DFCCL run comes back empty, because the daemon kernel's
bounded spinning means no actor ever *blocks* on a dead peer — it preempts,
and the recovery layer re-forms the group.

``FAULT_DEADLOCK_SCENARIOS`` names the canned fault plans the chaos
experiments and CI smoke tests replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collectives.channels import channel_by_id
from repro.deadlock.dependency_graph import DependencyGraph


@dataclass
class FaultDeadlockAnalysis:
    """Wait-for structure extracted from an engine deadlock under faults."""

    time_us: float
    blocked_actors: list = field(default_factory=list)
    edges: dict = field(default_factory=dict)
    cycle: list = None
    crashed_ranks: tuple = ()

    @property
    def deadlocked(self):
        return bool(self.blocked_actors)

    @property
    def fault_induced(self):
        """True when the wait-for cycle passes through a crashed rank."""
        if not self.cycle:
            return False
        return any(node[0] == "crashed" for node in self.cycle)

    def involved_ranks(self):
        return sorted({node[1] for node in self.edges} |
                      {target[1] for targets in self.edges.values()
                       for target in targets})


def _rank_of_device_id(cluster, device_id):
    return cluster.devices.index(cluster.device_by_id(device_id))


def _resolve_key_rank(key, cluster, actors_by_name):
    """The rank that would have signalled ``key``, or ``None``."""
    tag = key[0] if isinstance(key, tuple) and key else None
    if tag == "chan-readable" or tag == "chan-writable":
        channel = channel_by_id(key[1])
        if channel is None:
            return None
        device_id = channel.src_device if tag == "chan-readable" else channel.dst_device
        return _rank_of_device_id(cluster, device_id)
    if tag == "kernel-done":
        actor = actors_by_name.get(key[1])
        device = getattr(actor, "device", None)
        if device is None:
            return None
        return cluster.devices.index(device)
    if tag in ("nccl-op-done", "nccl-op-done-all"):
        from repro.ncclsim.ops import op_by_id

        op = op_by_id(key[1])
        if op is None:
            return None
        if tag == "nccl-op-done":
            device = op.devices[key[2]]
        else:
            incomplete = op.incomplete_ranks()
            if not incomplete:
                return None
            device = op.devices[incomplete[0]]
        return cluster.devices.index(device)
    return None


def analyze_fault_deadlock(report, cluster):
    """Lift an engine :class:`DeadlockReport` into a rank-level wait-for graph.

    Returns a :class:`FaultDeadlockAnalysis`; ``report`` may be ``None`` (no
    deadlock was recorded), in which case the analysis is empty.
    """
    analysis = FaultDeadlockAnalysis(
        time_us=report.time_us if report is not None else 0.0,
        crashed_ranks=tuple(
            cluster.devices.index(device) for device in cluster.failed_devices()
        ),
    )
    if report is None:
        return analysis

    analysis.blocked_actors = list(report.involved())
    actors_by_name = {actor.name: actor for actor in cluster.engine.actors()}
    graph = DependencyGraph()

    for actor in report.blocked_actors:
        device = getattr(actor, "device", None)
        if device is None:
            continue
        src = ("rank", cluster.devices.index(device))
        for key in report.wait_graph.get(actor.name, ()):
            dst_rank = _resolve_key_rank(key, cluster, actors_by_name)
            if dst_rank is not None:
                graph.add_edge(src, ("rank", dst_rank))

    # A crashed rank holds its resources forever while "waiting" on a
    # recovery that never happens: encode that as a two-node cycle so every
    # chain of waiters reaching the dead rank is part of an irresolvable
    # wait-for cycle.
    for rank in analysis.crashed_ranks:
        graph.add_edge(("rank", rank), ("crashed", rank))
        graph.add_edge(("crashed", rank), ("rank", rank))

    analysis.edges = graph.edges()
    analysis.cycle = graph.find_cycle()
    return analysis


# -- canned fault-deadlock scenarios ---------------------------------------------


@dataclass(frozen=True)
class FaultScenarioSpec:
    """A named fault plan recipe over a given world size."""

    name: str
    description: str
    build: object  # callable(world_size, horizon_us) -> FaultPlan


def _crash_mid_collective(world_size, horizon_us):
    from repro.faults.plan import FaultPlan

    victim = world_size // 2
    return FaultPlan(name="crash-mid-collective").add_crash(
        victim, at_us=0.25 * horizon_us
    )


def _crash_under_disorder(world_size, horizon_us):
    from repro.faults.plan import FaultPlan

    victim = max(1, world_size - 1)
    return (FaultPlan(name="crash-under-disorder")
            .add_kernel_stall(0, at_us=0.1 * horizon_us, duration_us=50.0)
            .add_crash(victim, at_us=0.3 * horizon_us))


def _flap_then_crash(world_size, horizon_us):
    from repro.faults.plan import FaultPlan

    return (FaultPlan(name="flap-then-crash")
            .add_link_flap(0, world_size // 2, at_us=0.1 * horizon_us,
                           duration_us=0.1 * horizon_us)
            .add_crash(world_size // 2, at_us=0.45 * horizon_us))


FAULT_DEADLOCK_SCENARIOS = {
    "crash-mid-collective": FaultScenarioSpec(
        "crash-mid-collective",
        "one rank dies while an all-reduce is in flight",
        _crash_mid_collective,
    ),
    "crash-under-disorder": FaultScenarioSpec(
        "crash-under-disorder",
        "a kernel stall reorders progress, then a rank dies",
        _crash_under_disorder,
    ),
    "flap-then-crash": FaultScenarioSpec(
        "flap-then-crash",
        "an inter-node link flaps before one of its endpoints dies",
        _flap_then_crash,
    ),
}
